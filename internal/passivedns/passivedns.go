// Package passivedns models the two passive DNS databases of §5.1: a
// DNSDB-style aggregate view (first/last seen, total lookup count, broad
// coverage) and a 360-PassiveDNS-style daily-volume view (per-domain daily
// query counts), both fed by a sensor observing recursive resolver traffic.
// §5.3 evaluates DoH usage by querying these for DoH bootstrap domains.
package passivedns

import (
	"sort"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
)

// Observation is one sensed DNS lookup.
type Observation struct {
	Time  time.Time
	QName string
	QType dnswire.Type
}

// Aggregate is the DNSDB-style summary of one domain.
type Aggregate struct {
	QName     string
	FirstSeen time.Time
	LastSeen  time.Time
	Count     int
}

// DailyPoint is one day's query volume for a domain.
type DailyPoint struct {
	Day   string // "2019-03-05"
	Count int
}

// DB is a passive DNS database. It is safe for concurrent use.
type DB struct {
	mu    sync.RWMutex
	agg   map[string]*Aggregate
	daily map[string]map[string]int
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{
		agg:   make(map[string]*Aggregate),
		daily: make(map[string]map[string]int),
	}
}

// Observe records one lookup.
func (db *DB) Observe(obs Observation) {
	name := dnswire.CanonicalName(obs.QName)
	db.mu.Lock()
	defer db.mu.Unlock()
	a, ok := db.agg[name]
	if !ok {
		a = &Aggregate{QName: name, FirstSeen: obs.Time, LastSeen: obs.Time}
		db.agg[name] = a
	}
	if obs.Time.Before(a.FirstSeen) {
		a.FirstSeen = obs.Time
	}
	if obs.Time.After(a.LastSeen) {
		a.LastSeen = obs.Time
	}
	a.Count++

	day := obs.Time.Format("2006-01-02")
	byDay, ok := db.daily[name]
	if !ok {
		byDay = make(map[string]int)
		db.daily[name] = byDay
	}
	byDay[day]++
}

// ObserveCount records n identical lookups spread across one day —
// workload generators use it to feed aggregate volumes efficiently.
func (db *DB) ObserveCount(t time.Time, qname string, n int) {
	if n <= 0 {
		return
	}
	name := dnswire.CanonicalName(qname)
	db.mu.Lock()
	defer db.mu.Unlock()
	a, ok := db.agg[name]
	if !ok {
		a = &Aggregate{QName: name, FirstSeen: t, LastSeen: t}
		db.agg[name] = a
	}
	if t.Before(a.FirstSeen) {
		a.FirstSeen = t
	}
	if t.After(a.LastSeen) {
		a.LastSeen = t
	}
	a.Count += n

	day := t.Format("2006-01-02")
	byDay, ok := db.daily[name]
	if !ok {
		byDay = make(map[string]int)
		db.daily[name] = byDay
	}
	byDay[day] += n
}

// Lookup returns the DNSDB-style aggregate for a domain.
func (db *DB) Lookup(qname string) (Aggregate, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.agg[dnswire.CanonicalName(qname)]
	if !ok {
		return Aggregate{}, false
	}
	return *a, true
}

// DailyVolume returns the 360-style daily series for a domain, sorted by
// day.
func (db *DB) DailyVolume(qname string) []DailyPoint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	byDay, ok := db.daily[dnswire.CanonicalName(qname)]
	if !ok {
		return nil
	}
	out := make([]DailyPoint, 0, len(byDay))
	for day, n := range byDay {
		out = append(out, DailyPoint{Day: day, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// MonthlyVolume rolls the daily series up to months ("2019-03" keys),
// the granularity of Fig. 13.
func (db *DB) MonthlyVolume(qname string) []DailyPoint {
	daily := db.DailyVolume(qname)
	byMonth := map[string]int{}
	for _, p := range daily {
		byMonth[p.Day[:7]] += p.Count
	}
	out := make([]DailyPoint, 0, len(byMonth))
	for m, n := range byMonth {
		out = append(out, DailyPoint{Day: m, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// Domains returns all recorded domains sorted by total count descending —
// used to find which DoH domains "have more than 10K queries" (§5.3).
func (db *DB) Domains() []Aggregate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Aggregate, 0, len(db.agg))
	for _, a := range db.agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].QName < out[j].QName
	})
	return out
}
