package vantage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/resolver"
	"dnsencryption.info/doe/internal/runner"
)

// This file is the streaming half of the campaign API (DESIGN.md §15).
// Campaign/CampaignContext materialize every node's results and hand the
// caller a slice — fine at study scale, O(population) at a million
// vantages. CampaignStream folds each lookup into a mergeable accumulator
// (CampaignStats) through runner.MapReduceCtx instead: per-node result
// slices never exist, node populations come from a NodeSource that may
// synthesize nodes on demand, and world state for generated nodes lives
// only while a worker holds the node.

// NodeSource abstracts the vantage population a streaming campaign sweeps.
// Acquire materializes node i (for generator-fed sources: starts its SOCKS
// service) and returns a release func that retires it again; each index is
// dispatched to exactly one worker, which is the only caller of its
// release.
type NodeSource interface {
	Len() int
	Acquire(i int) (proxy.ExitNode, func())
}

// listSource adapts a pre-built node slice (the materialized study pools).
// Acquire is a plain index: the nodes already live in the world.
type listSource struct {
	nodes []proxy.ExitNode
}

func (s listSource) Len() int { return len(s.nodes) }

func (s listSource) Acquire(i int) (proxy.ExitNode, func()) {
	return s.nodes[i], func() {}
}

// ListSource wraps an in-memory node slice as a NodeSource.
func ListSource(nodes []proxy.ExitNode) NodeSource { return listSource{nodes} }

// generatorSource adapts a generator-fed proxy network (Network.SetGenerator):
// nodes are synthesized, installed and torn down per index.
type generatorSource struct {
	net *proxy.Network
}

func (s generatorSource) Len() int { return s.net.GenCount() }

func (s generatorSource) Acquire(i int) (proxy.ExitNode, func()) {
	return s.net.Acquire(i)
}

// GeneratorSource exposes net's generated population (SetGenerator) as a
// NodeSource. World state per node exists only between Acquire and
// release, so a campaign's simulated-world footprint is O(workers).
func GeneratorSource(net *proxy.Network) NodeSource { return generatorSource{net} }

// CellKey addresses one (resolver, proto, country) reachability cell.
type CellKey struct {
	Resolver string
	Proto    Proto
	Country  string
}

// FailKey selects a (resolver, proto) pair whose failing nodes a campaign
// retains by ID — the Table 5 forensics population. Untracked pairs only
// count failures, so memory stays bounded by the tracked keys the caller
// actually probes afterwards.
type FailKey struct {
	Resolver string
	Proto    Proto
}

// NodeRef names one node by campaign index and ID. Index is the dispatch
// index, so sorting by it restores the node-order sequence a serial sweep
// would have produced.
type NodeRef struct {
	Index int
	ID    string
}

// interceptedRef carries an intercepted session with its (node index,
// intra-node ordinal) so the merged list can be sorted back into the
// deterministic order the positional merge produced.
type interceptedRef struct {
	idx, ord int
	r        Result
}

// CampaignOpts configures a streaming campaign's accumulator.
type CampaignOpts struct {
	// TrackFailed lists the (resolver, proto) pairs whose failing node IDs
	// are retained for follow-up probes.
	TrackFailed []FailKey
	// SketchOpts shapes the setup-latency sketches (zero value: the obs
	// defaults, 100µs–10s at 8 buckets per decade).
	SketchOpts obs.SketchOpts
}

// CampaignStats is the mergeable accumulator of one streaming campaign.
// Every field follows the obs.Registry.Merge fold discipline — counters
// and cells sum, sketches add bucket-wise, order-bearing lists carry their
// node index and sort at finalize — so merging per-worker shards in any
// partition yields identical stats, which is what keeps reports
// byte-identical across worker counts.
type CampaignStats struct {
	// Lookups counts every classification produced, including dropped
	// ones (it equals len(results) of the materialized API).
	Lookups int
	// Dropped counts measurements lost to platform disruption; they are
	// excluded from every tally below, matching TallyResults.
	Dropped int
	// Nodes counts vantages that passed the uptime screen and ran;
	// Skipped counts those the screen discarded.
	Nodes   int
	Skipped int
	// Cells holds per-(resolver, proto, country) outcome tallies.
	Cells map[CellKey]Tally
	// Errors is the failure taxonomy: error class → count.
	Errors map[string]int
	// Retry aggregates attempt-level outcomes (RetryTally's shape).
	Retry resolver.RetryStats
	// Setup holds per-protocol session-setup latency sketches.
	Setup map[Proto]*obs.Sketch

	opts        CampaignOpts
	failed      map[FailKey][]NodeRef
	intercepted []interceptedRef
}

// NewCampaignStats returns an empty accumulator for opts.
func NewCampaignStats(opts CampaignOpts) *CampaignStats {
	s := &CampaignStats{
		Cells:  make(map[CellKey]Tally),
		Errors: make(map[string]int),
		Setup:  make(map[Proto]*obs.Sketch),
		opts:   opts,
		failed: make(map[FailKey][]NodeRef),
	}
	for _, k := range opts.TrackFailed {
		s.failed[k] = nil
	}
	return s
}

// tracks reports whether (resolver, proto) failures retain node IDs.
func (s *CampaignStats) tracks(k FailKey) bool {
	_, ok := s.failed[k]
	return ok
}

// Add folds one lookup classification into the accumulator. nodeIdx is the
// node's dispatch index and ord the lookup's ordinal within the node (both
// only order the retained lists; the sums ignore them).
func (s *CampaignStats) Add(nodeIdx, ord int, r Result) {
	s.Lookups++
	if r.Dropped {
		s.Dropped++
		return
	}
	key := CellKey{Resolver: r.Resolver, Proto: r.Proto, Country: r.Country}
	t := s.Cells[key]
	switch r.Outcome {
	case Correct:
		t.Correct++
	case Incorrect:
		t.Incorrect++
	default:
		t.Failed++
	}
	s.Cells[key] = t

	a := r.Attempts
	if a < 1 {
		a = 1
	}
	s.Retry.Attempts += a
	s.Retry.Retries += a - 1
	if r.Recovered {
		s.Retry.Recovered++
	}
	if r.Outcome == Failed {
		s.Retry.HardFailures++
		s.Errors[ErrorClass(r.Err)]++
		fk := FailKey{Resolver: r.Resolver, Proto: r.Proto}
		if s.tracks(fk) {
			s.failed[fk] = append(s.failed[fk], NodeRef{Index: nodeIdx, ID: r.NodeID})
		}
	}
	if r.Setup > 0 {
		sk := s.Setup[r.Proto]
		if sk == nil {
			sk = obs.NewSketch(s.opts.SketchOpts)
			s.Setup[r.Proto] = sk
		}
		sk.Observe(r.Setup)
	}
	if r.Intercepted {
		s.intercepted = append(s.intercepted, interceptedRef{idx: nodeIdx, ord: ord, r: r})
	}
}

// Merge folds src into s. Partition-independent: counters and cells sum,
// sketches merge bucket-wise, the index-tagged lists concatenate and are
// canonicalized by finalize's sort.
func (s *CampaignStats) Merge(src *CampaignStats) error {
	s.Lookups += src.Lookups
	s.Dropped += src.Dropped
	s.Nodes += src.Nodes
	s.Skipped += src.Skipped
	for k, t := range src.Cells {
		dst := s.Cells[k]
		dst.Correct += t.Correct
		dst.Incorrect += t.Incorrect
		dst.Failed += t.Failed
		s.Cells[k] = dst
	}
	for class, n := range src.Errors {
		s.Errors[class] += n
	}
	s.Retry = s.Retry.Plus(src.Retry)
	for proto, sk := range src.Setup {
		dst := s.Setup[proto]
		if dst == nil {
			dst = obs.NewSketch(s.opts.SketchOpts)
			s.Setup[proto] = dst
		}
		if err := dst.Merge(sk); err != nil {
			return fmt.Errorf("vantage: merging %s setup sketch: %w", proto, err)
		}
	}
	for k, refs := range src.failed {
		if _, ok := s.failed[k]; !ok {
			s.failed[k] = nil
		}
		s.failed[k] = append(s.failed[k], refs...)
	}
	s.intercepted = append(s.intercepted, src.intercepted...)
	return nil
}

// finalize sorts the order-bearing lists into node order — the
// canonicalizing step that makes the merged accumulator independent of how
// indices were partitioned across workers.
func (s *CampaignStats) finalize() {
	sort.Slice(s.intercepted, func(i, j int) bool {
		if s.intercepted[i].idx != s.intercepted[j].idx {
			return s.intercepted[i].idx < s.intercepted[j].idx
		}
		return s.intercepted[i].ord < s.intercepted[j].ord
	})
	for _, refs := range s.failed {
		sort.Slice(refs, func(i, j int) bool { return refs[i].Index < refs[j].Index })
	}
}

// Intercepted returns the TLS-intercepted sessions in node order — the
// streaming equivalent of InterceptedResults over a materialized campaign.
func (s *CampaignStats) Intercepted() []Result {
	out := make([]Result, len(s.intercepted))
	for i, ref := range s.intercepted {
		out[i] = ref.r
	}
	return out
}

// FailedRefs returns the retained failing nodes for a tracked key, in node
// order. Nil for untracked keys.
func (s *CampaignStats) FailedRefs(k FailKey) []NodeRef {
	return s.failed[k]
}

// ByResolverProto sums the country cells into the Table 4 shape — the
// streaming equivalent of TallyResults.
func (s *CampaignStats) ByResolverProto() map[string]map[Proto]Tally {
	out := map[string]map[Proto]Tally{}
	for k, t := range s.Cells {
		byProto, ok := out[k.Resolver]
		if !ok {
			byProto = map[Proto]Tally{}
			out[k.Resolver] = byProto
		}
		dst := byProto[k.Proto]
		dst.Correct += t.Correct
		dst.Incorrect += t.Incorrect
		dst.Failed += t.Failed
		byProto[k.Proto] = dst
	}
	return out
}

// ErrorClass maps a failure string into the campaign error taxonomy. The
// classes mirror the simulated failure modes the paper's §4.2 forensics
// distinguish: refusals and resets (in-path filtering), timeouts
// (blackholes and lossy paths), TLS failures (interception, bad chains),
// unroutable targets, and platform churn.
func ErrorClass(err string) string {
	e := strings.ToLower(err)
	switch {
	case e == "":
		return "none"
	case strings.Contains(e, "refused"):
		return "refused"
	case strings.Contains(e, "reset"):
		return "reset"
	case strings.Contains(e, "blackhole"), strings.Contains(e, "timeout"),
		strings.Contains(e, "deadline"):
		return "timeout"
	case strings.Contains(e, "tls"), strings.Contains(e, "certificate"),
		strings.Contains(e, "x509"), strings.Contains(e, "handshake"):
		return "tls"
	case strings.Contains(e, "no route"), strings.Contains(e, "unreachable"):
		return "noroute"
	case strings.Contains(e, "socks"), strings.Contains(e, "node"):
		return "platform"
	default:
		return "other"
	}
}

// VisitReachability runs the Fig. 7 workflow for one node, feeding each
// classification to visit in target order — the streaming form of
// TestReachabilityContext, with no per-node slice.
func (p *Platform) VisitReachability(ctx context.Context, node proxy.ExitNode, targets []Target, visit func(Result)) {
	for _, tgt := range targets {
		if tgt.DNS.IsValid() {
			visit(p.lookup(ctx, node, tgt, ProtoDNS, tgt.DNS, p.testDNS))
		}
		if tgt.DoT.IsValid() {
			visit(p.lookup(ctx, node, tgt, ProtoDoT, tgt.DoT, p.testDoT))
		}
		if tgt.DoHAddr.IsValid() {
			visit(p.lookup(ctx, node, tgt, ProtoDoH, tgt.DoHAddr, p.testDoH))
		}
		if tgt.DoQ.IsValid() {
			visit(p.lookup(ctx, node, tgt, ProtoDoQ, tgt.DoQ, p.testDoQ))
		}
	}
}

// CampaignStream runs the reachability campaign over the network's
// materialized pool as a streaming fold: same spans, same telemetry, same
// node order as CampaignContext, but the result is a CampaignStats
// accumulator instead of an O(population) result slice.
func (p *Platform) CampaignStream(ctx context.Context, targets []Target, workers int, opts CampaignOpts) (*CampaignStats, error) {
	return p.CampaignStreamSource(ctx, ListSource(p.Network.Nodes()), targets, workers, opts)
}

// CampaignStreamSource is CampaignStream over an arbitrary NodeSource.
// The uptime screen runs inline per index (instead of pre-filtering into a
// usable slice): a node's own tests are the only consumer of its session
// budget, so the screen sees the same remaining uptimes a serial pre-pass
// would, and skipped nodes simply fold nothing.
//
//doelint:streaming
func (p *Platform) CampaignStreamSource(ctx context.Context, src NodeSource, targets []Target, workers int, opts CampaignOpts) (*CampaignStats, error) {
	red := runner.Reducer[*CampaignStats]{
		New: func() *CampaignStats { return NewCampaignStats(opts) },
		Fold: func(ctx context.Context, acc *CampaignStats, i int) {
			node, release := src.Acquire(i)
			defer release()
			if !p.UsableNode(node) {
				acc.Skipped++
				return
			}
			// Key(i) pins sibling order to the node's dispatch index, so
			// the trace is identical no matter which worker ran the node.
			ctx, sp := obs.Start(ctx, "node:"+node.ID, obs.Key(i))
			sp.SetAttr("country", node.Country)
			acc.Nodes++
			ord := 0
			p.VisitReachability(ctx, node, targets, func(r Result) {
				acc.Add(i, ord, r)
				ord++
			})
		},
		Merge: func(dst, src *CampaignStats) error { return dst.Merge(src) },
	}
	stats, err := runner.MapReduceCtx(obs.WithPool(ctx, "campaign"), workers, src.Len(), red)
	stats.finalize()
	return stats, err
}

// Render writes the campaign summary: deterministic, fully sorted, and
// computed from the accumulator alone — the report of the million-vantage
// scale campaigns, byte-identical at any worker count.
func (s *CampaignStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes measured: %d (skipped %d below min uptime)\n", s.Nodes, s.Skipped)
	fmt.Fprintf(&b, "lookups: %d (%d dropped to platform churn)\n", s.Lookups, s.Dropped)

	byRP := s.ByResolverProto()
	resolvers := make([]string, 0, len(byRP))
	for r := range byRP {
		resolvers = append(resolvers, r)
	}
	sort.Strings(resolvers)
	fmt.Fprintf(&b, "\nreachability (correct / incorrect / failed):\n")
	for _, res := range resolvers {
		protos := make([]string, 0, len(byRP[res]))
		for pr := range byRP[res] {
			protos = append(protos, string(pr))
		}
		sort.Strings(protos)
		for _, pr := range protos {
			t := byRP[res][Proto(pr)]
			c, i, f := t.Rates()
			fmt.Fprintf(&b, "  %-12s %-4s %8d lookups  %6.2f%% / %5.2f%% / %5.2f%%\n",
				res, pr, t.Total(), c*100, i*100, f*100)
		}
	}

	countries := map[string]Tally{}
	for k, t := range s.Cells {
		dst := countries[k.Country]
		dst.Correct += t.Correct
		dst.Incorrect += t.Incorrect
		dst.Failed += t.Failed
		countries[k.Country] = dst
	}
	ccs := make([]string, 0, len(countries))
	for cc := range countries {
		ccs = append(ccs, cc)
	}
	// Failure-heavy countries first (the §4.2 view), ties by code.
	sort.Slice(ccs, func(i, j int) bool {
		ti, tj := countries[ccs[i]], countries[ccs[j]]
		if ti.Failed != tj.Failed {
			return ti.Failed > tj.Failed
		}
		return ccs[i] < ccs[j]
	})
	if len(ccs) > 0 {
		fmt.Fprintf(&b, "\ntop countries by failed lookups:\n")
		max := len(ccs)
		if max > 15 {
			max = 15
		}
		for _, cc := range ccs[:max] {
			t := countries[cc]
			_, _, f := t.Rates()
			fmt.Fprintf(&b, "  %s %8d lookups  %6.2f%% failed\n", cc, t.Total(), f*100)
		}
	}

	if len(s.Errors) > 0 {
		classes := make([]string, 0, len(s.Errors))
		for c := range s.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "\nfailure taxonomy:\n")
		for _, c := range classes {
			fmt.Fprintf(&b, "  %-10s %d\n", c, s.Errors[c])
		}
	}

	if len(s.Setup) > 0 {
		protos := make([]string, 0, len(s.Setup))
		for pr := range s.Setup {
			protos = append(protos, string(pr))
		}
		sort.Strings(protos)
		fmt.Fprintf(&b, "\nsession setup latency (p50 / p90 / p99):\n")
		for _, pr := range protos {
			sk := s.Setup[Proto(pr)]
			fmt.Fprintf(&b, "  %-4s %s / %s / %s over %d sessions\n", pr,
				renderMS(sk.Quantile(0.50)), renderMS(sk.Quantile(0.90)),
				renderMS(sk.Quantile(0.99)), sk.Count())
		}
	}

	fmt.Fprintf(&b, "\nretries: %d attempts, %d retries, %d recovered, %d hard failures\n",
		s.Retry.Attempts, s.Retry.Retries, s.Retry.Recovered, s.Retry.HardFailures)
	if n := len(s.intercepted); n > 0 {
		fmt.Fprintf(&b, "tls-intercepted sessions: %d\n", n)
	}
	return b.String()
}

func renderMS(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
