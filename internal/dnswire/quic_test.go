package dnswire

import (
	"bytes"
	"testing"
)

// RFC 9000 §A.1's worked varint examples, plus the encoding-length
// boundaries in both directions.
func TestQUICVarintKnownValues(t *testing.T) {
	cases := []struct {
		wire []byte
		v    uint64
	}{
		{[]byte{0x25}, 37},
		{[]byte{0x40, 0x25}, 37}, // non-minimal 2-byte form of 37
		{[]byte{0x7b, 0xbd}, 15293},
		{[]byte{0x9d, 0x7f, 0x3e, 0x7d}, 494878333},
		{[]byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}, 151288809941952652},
		{[]byte{0x00}, 0},
		{[]byte{0x3f}, 63},
		{[]byte{0x40, 0x40}, 64},
		{[]byte{0x7f, 0xff}, 16383},
		{[]byte{0x80, 0x00, 0x40, 0x00}, 16384},
		{[]byte{0xbf, 0xff, 0xff, 0xff}, 1<<30 - 1},
		{[]byte{0xc0, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00}, 1 << 30},
		{[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, MaxQUICVarint},
	}
	for _, tc := range cases {
		v, n, err := ReadQUICVarint(tc.wire)
		if err != nil {
			t.Fatalf("ReadQUICVarint(%x): %v", tc.wire, err)
		}
		if v != tc.v || n != len(tc.wire) {
			t.Errorf("ReadQUICVarint(%x) = (%d, %d), want (%d, %d)", tc.wire, v, n, tc.v, len(tc.wire))
		}
		// Canonical re-encode must parse back to the same value and be
		// minimal (no longer than the input form).
		enc := AppendQUICVarint(nil, tc.v)
		if len(enc) > len(tc.wire) {
			t.Errorf("AppendQUICVarint(%d) = %x longer than wire form %x", tc.v, enc, tc.wire)
		}
		v2, n2, err := ReadQUICVarint(enc)
		if err != nil || v2 != tc.v || n2 != len(enc) {
			t.Errorf("round trip of %d: got (%d, %d, %v) from %x", tc.v, v2, n2, err, enc)
		}
	}
}

func TestQUICVarintTruncated(t *testing.T) {
	for _, wire := range [][]byte{
		nil,
		{0x40},
		{0x80, 0x01},
		{0x80, 0x01, 0x02},
		{0xc0, 1, 2, 3, 4, 5, 6},
	} {
		if _, _, err := ReadQUICVarint(wire); err == nil {
			t.Errorf("ReadQUICVarint(%x) accepted a truncated varint", wire)
		}
	}
}

func TestQUICHeaderRoundTrip(t *testing.T) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12, 13, 14, 15, 16}
	cases := []QUICHeader{
		{Type: QUICInitial, Version: QUICVersion, DCID: dcid, SCID: scid},
		{Type: QUICHandshake, Version: QUICVersion, DCID: dcid, SCID: scid},
		{Type: QUICZeroRTT, Version: QUICVersion, DCID: dcid, SCID: scid},
		{Type: QUICInitial, Version: QUICVersion}, // zero-length CIDs
		{Type: QUICOneRTT, DCID: dcid},
	}
	for _, h := range cases {
		wire, err := AppendQUICHeader(nil, h)
		if err != nil {
			t.Fatalf("AppendQUICHeader(%+v): %v", h, err)
		}
		// Trailing payload bytes must not confuse the parser.
		got, n, err := ParseQUICHeader(append(wire, 0xAA, 0xBB))
		if err != nil {
			t.Fatalf("ParseQUICHeader(%x): %v", wire, err)
		}
		if n != len(wire) {
			t.Errorf("header %+v consumed %d bytes, want %d", h, n, len(wire))
		}
		if got.Type != h.Type || got.Version != h.Version ||
			!bytes.Equal(got.DCID, h.DCID) || !bytes.Equal(got.SCID, h.SCID) {
			t.Errorf("header round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestQUICHeaderErrors(t *testing.T) {
	if _, err := AppendQUICHeader(nil, QUICHeader{Type: QUICOneRTT, DCID: []byte{1}}); err == nil {
		t.Error("short header with non-standard DCID length accepted")
	}
	if _, err := AppendQUICHeader(nil, QUICHeader{Type: QUICInitial, DCID: make([]byte, 21)}); err == nil {
		t.Error("long header with oversized DCID accepted")
	}
	for _, wire := range [][]byte{
		nil,
		{0x00},                   // fixed bit clear
		{0x40, 1, 2, 3},          // short header, truncated DCID
		{0xc0, 0, 0, 0},          // long header, truncated version
		{0xc0, 0, 0, 0, 1, 9, 1}, // long header, DCID length beyond buffer
	} {
		if _, _, err := ParseQUICHeader(wire); err == nil {
			t.Errorf("ParseQUICHeader(%x) accepted malformed header", wire)
		}
	}
}

func quicFrameEqual(a, b QUICFrame) bool {
	return a.Type == b.Type && a.StreamID == b.StreamID && a.Offset == b.Offset &&
		a.Fin == b.Fin && bytes.Equal(a.Data, b.Data) &&
		a.AckLargest == b.AckLargest && a.AckDelay == b.AckDelay &&
		a.AckFirstRange == b.AckFirstRange &&
		a.ErrorCode == b.ErrorCode && a.FrameType == b.FrameType
}

func quicSeedFrames() []QUICFrame {
	return []QUICFrame{
		{Type: QUICFramePadding},
		{Type: QUICFramePing},
		{Type: QUICFrameAck, AckLargest: 7, AckDelay: 25, AckFirstRange: 3},
		{Type: QUICFrameCrypto, Data: []byte("client hello")},
		{Type: QUICFrameCrypto, Offset: 96, Data: []byte{}},
		{Type: QUICFrameStream, StreamID: 0, Fin: true, Data: []byte{0, 3, 'd', 'o', 'q'}},
		{Type: QUICFrameStream, StreamID: 4, Offset: 12, Data: []byte("partial")},
		{Type: QUICFrameStream, StreamID: 4096, Fin: true, Data: []byte{}}, // zero-length stream
		{Type: QUICFrameConnClose, ErrorCode: 0x0a, FrameType: 0x08, Data: []byte("bad stream")},
		{Type: QUICFrameConnCloseApp, ErrorCode: 2, Data: []byte("DOQ_PROTOCOL_ERROR")},
	}
}

func TestQUICFrameRoundTrip(t *testing.T) {
	for _, f := range quicSeedFrames() {
		wire, err := AppendQUICFrame(nil, f)
		if err != nil {
			t.Fatalf("AppendQUICFrame(%+v): %v", f, err)
		}
		got, n, err := ParseQUICFrame(append(wire, 0x01 /* trailing PING */))
		if err != nil {
			t.Fatalf("ParseQUICFrame(%x): %v", wire, err)
		}
		if n != len(wire) {
			t.Errorf("frame %+v consumed %d bytes, want %d", f, n, len(wire))
		}
		if !quicFrameEqual(got, f) {
			t.Errorf("frame round trip: got %+v, want %+v", got, f)
		}
	}
}

// A STREAM frame without the LEN bit extends to the end of the packet; it
// reparses as a canonical LEN-carrying frame with the same payload.
func TestQUICStreamFrameImplicitLength(t *testing.T) {
	wire := []byte{0x09, 0x08, 'p', 'a', 'y', 'l', 'o', 'a', 'd'} // FIN set, LEN clear, stream 8
	f, n, err := ParseQUICFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if f.StreamID != 8 || !f.Fin || string(f.Data) != "payload" {
		t.Fatalf("parsed %+v", f)
	}
	canon, err := AppendQUICFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := ParseQUICFrame(canon)
	if err != nil || !quicFrameEqual(f, again) {
		t.Fatalf("canonical form did not round-trip: %+v vs %+v (%v)", f, again, err)
	}
}

func TestQUICFrameErrors(t *testing.T) {
	for _, wire := range [][]byte{
		nil,
		{0x1e},             // unknown type
		{0x06, 0x00},       // CRYPTO missing length
		{0x06, 0x00, 0x05}, // CRYPTO length beyond buffer
		{0x0b, 0x00, 0x40}, // STREAM with truncated length varint
		{0x0b, 0x00, 0x02, 'x'},
		{0x02, 0x01, 0x00, 0x01, 0x00}, // ACK with a second range
		{0x1c, 0x00, 0x00, 0x09},       // close reason beyond buffer
		{0x1d, 0x00, 0x04, 'a'},
	} {
		if _, _, err := ParseQUICFrame(wire); err == nil {
			t.Errorf("ParseQUICFrame(%x) accepted malformed frame", wire)
		}
	}
}

// A whole packet — header plus a frame sequence — survives compose/parse,
// the loop shape the doq client and server both use.
func TestQUICPacketComposeParse(t *testing.T) {
	dcid := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	buf, err := AppendQUICHeader(nil, QUICHeader{Type: QUICOneRTT, DCID: dcid})
	if err != nil {
		t.Fatal(err)
	}
	frames := quicSeedFrames()
	for _, f := range frames {
		if buf, err = AppendQUICFrame(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	h, n, err := ParseQUICHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != QUICOneRTT || !bytes.Equal(h.DCID, dcid) {
		t.Fatalf("parsed header %+v", h)
	}
	var got []QUICFrame
	for n < len(buf) {
		f, adv, err := ParseQUICFrame(buf[n:])
		if err != nil {
			t.Fatalf("frame at offset %d: %v", n, err)
		}
		got = append(got, f)
		n += adv
	}
	if len(got) != len(frames) {
		t.Fatalf("parsed %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !quicFrameEqual(got[i], frames[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], frames[i])
		}
	}
}
