// Package bufpool provides size-classed free lists for the byte buffers the
// per-query hot paths churn through: packed queries, TCP frames, TLS record
// reads and simulated network segments.
//
// Pooling is deterministic-safe: a pooled buffer is either fully overwritten
// before use or sliced down to exactly the bytes just written, so reuse can
// never change bytes on the wire — only allocation counts (DESIGN.md §9).
// The traffic counters, by contrast, are scheduling-dependent and belong in
// volatile telemetry only, never in deterministic report output.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// MaxPooled is the largest pooled capacity: a maximal DNS message plus its
// 2-byte TCP length prefix. Larger buffers are allocated directly and
// dropped on Put rather than pinning worst-case memory in the pool.
const MaxPooled = 0xFFFF + 2

// classSizes are the pooled capacities: 512 covers typical queries and
// responses, 2048 covers padded answers and HTTP request heads, 16384
// covers large answers and TLS record reads, MaxPooled the worst case.
var classSizes = [...]int{512, 2048, 16384, MaxPooled}

var pools [len(classSizes)]sync.Pool

var stats struct {
	gets, puts, hits, misses, drops atomic.Uint64
}

// classStats tracks traffic per size class for the occupancy gauges;
// oversized Gets belong to no class.
var classStats [len(classSizes)]struct {
	gets, puts atomic.Uint64
}

// ClassStats counts one size class's traffic.
type ClassStats struct {
	Size       int
	Gets, Puts uint64
}

// Stats counts pool traffic since process start. Gets = Hits + Misses;
// Puts counts buffers accepted back and Drops buffers returned but
// rejected (outside every class), so InUse = Gets - Puts - Drops is the
// number of checked-out buffers the pool still expects back.
type Stats struct {
	Gets, Puts, Hits, Misses, Drops uint64
	PerClass                        [len(classSizes)]ClassStats
}

// InUse returns the current occupancy: buffers handed out and neither
// accepted back nor dropped. Counters are read independently, so a
// snapshot taken mid-flight may be off by the number of racing calls.
func (s Stats) InUse() int64 {
	return int64(s.Gets) - int64(s.Puts) - int64(s.Drops)
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	s := Stats{
		Gets:   stats.gets.Load(),
		Puts:   stats.puts.Load(),
		Hits:   stats.hits.Load(),
		Misses: stats.misses.Load(),
		Drops:  stats.drops.Load(),
	}
	for i, size := range classSizes {
		s.PerClass[i] = ClassStats{
			Size: size,
			Gets: classStats[i].gets.Load(),
			Puts: classStats[i].puts.Load(),
		}
	}
	return s
}

// Get returns a zero-length buffer with capacity at least n. The pointer
// form keeps Put from re-boxing the slice header on every return trip.
// Callers must not retain the buffer — or any slice of it — after Put.
func Get(n int) *[]byte {
	stats.gets.Add(1)
	for i, size := range classSizes {
		if n > size {
			continue
		}
		classStats[i].gets.Add(1)
		if v := pools[i].Get(); v != nil {
			stats.hits.Add(1)
			b := v.(*[]byte)
			*b = (*b)[:0]
			return b
		}
		stats.misses.Add(1)
		b := make([]byte, 0, size) //doelint:allow hotalloc -- pool miss; cost amortized across reuses
		return &b
	}
	stats.misses.Add(1)
	b := make([]byte, 0, n) //doelint:allow hotalloc -- oversized request; outside every pool class
	return &b
}

// Put returns b to the pool serving its capacity — a buffer grown past its
// original class by append is filed under the largest class it still
// satisfies. Buffers outside every class are dropped. Put(nil) is a no-op.
// The caller must not touch *b (or aliases of it) after Put.
func Put(b *[]byte) {
	if b == nil {
		return
	}
	c := cap(*b)
	if c > MaxPooled {
		stats.drops.Add(1)
		return
	}
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c >= classSizes[i] {
			*b = (*b)[:0]
			stats.puts.Add(1)
			classStats[i].puts.Add(1)
			pools[i].Put(b)
			return
		}
	}
	stats.drops.Add(1)
}

// Grow returns b extended by n bytes of length, reallocating (with capacity
// doubling) only when needed. The added bytes are uninitialized.
func Grow(b []byte, n int) []byte {
	want := len(b) + n
	if want <= cap(b) {
		return b[:want]
	}
	nb := make([]byte, want, max(want, 2*cap(b))) //doelint:allow hotalloc -- amortized doubling; steady state reuses capacity
	copy(nb, b)
	return nb
}
