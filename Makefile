# Verify path for the DNS-over-Encryption measurement repo.
#
# `make verify` is what CI runs and what a PR must keep green: build, vet,
# the custom static-analysis suite (cmd/doelint), the test suite, and the
# race detector over the concurrency-heavy packages. The doelint gate also
# runs inside `go test ./...` (internal/lint.TestRepositoryIsClean), so
# plain tier-1 testing cannot drift from the lint suite.

GO ?= go

RACE_PKGS := ./internal/netsim ./internal/proxy ./internal/dnsserver ./internal/scanner

.PHONY: verify build vet lint test race

verify: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/doelint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)
