package lint_test

import (
	"testing"

	"dnsencryption.info/doe/internal/lint"
)

// TestRepositoryIsClean runs the full suite over this module, the same as
// `go run ./cmd/doelint ./...`. Being part of `go test ./...` makes the
// lint gate part of the tier-1 verify path: a new violation anywhere in
// the module fails this test with the finding's position and message.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := lint.Run("../..", nil, lint.DefaultConfig())
	if err != nil {
		t.Fatalf("lint.Run on repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the finding or add a justified //doelint:allow directive (see internal/lint/doc.go)")
	}
}
