package netsim

import (
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
)

// scriptedInjector returns a fixed fault per dial/exchange and counts how
// often it was consulted.
type scriptedInjector struct {
	mu      sync.Mutex
	stream  DialFault
	dgram   DatagramFault
	streams int
	dgrams  int
}

func (s *scriptedInjector) StreamFault(from, to netip.Addr, port uint16) DialFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams++
	return s.stream
}

func (s *scriptedInjector) DatagramFault(from, to netip.Addr, port uint16) DatagramFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dgrams++
	return s.dgram
}

func TestFaultDropLooksLikeBlackhole(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	w.SetFaults(&scriptedInjector{stream: DialFault{Drop: true}})
	_, err := w.Dial(clientIP, serverIP, 80)
	if !errors.Is(err, ErrBlackhole) {
		t.Fatalf("err = %v, want ErrBlackhole", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("dropped SYN must look like a timeout, got %v", err)
	}
}

func TestFaultRefuseLooksLikeRST(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	w.SetFaults(&scriptedInjector{stream: DialFault{Refuse: true}})
	if _, err := w.Dial(clientIP, serverIP, 80); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestFaultStallChargesVirtualLatency(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	clean, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	base := clean.Elapsed()

	stall := 75 * time.Millisecond
	w.SetFaults(&scriptedInjector{stream: DialFault{ExtraLatency: stall}})
	slow, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if got := slow.Elapsed(); got != base+stall {
		t.Errorf("stalled dial elapsed = %v, want %v + %v", got, base, stall)
	}
}

func TestFaultCutBeforeFirstSegmentTruncatesHandshake(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	w.SetFaults(&scriptedInjector{stream: DialFault{CutAfterSegments: 1}})
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// The echo comes back as the first segment — the cut replaces it.
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrReset) {
		t.Fatalf("read = %v, want ErrReset before any server data", err)
	}
	// Reads keep failing with ErrReset, like a real RST-closed socket.
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrReset) {
		t.Fatalf("second read = %v, want ErrReset", err)
	}
}

func TestFaultCutAgainstTLSFailsHandshake(t *testing.T) {
	w := newTestWorld(t)
	ca := mustCA(t)
	leaf, err := ca.Issue(certs.LeafOptions{CommonName: "dns.example", IPs: []netip.Addr{serverIP}})
	if err != nil {
		t.Fatal(err)
	}
	tlsCert := leaf.TLSCertificate()
	w.RegisterStream(serverIP, 853, func(conn *Conn) {
		defer conn.Close()
		tc := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{tlsCert}}) //nolint:gosec // test
		tc.Handshake()                                                                //nolint:errcheck
	})
	w.SetFaults(&scriptedInjector{stream: DialFault{CutAfterSegments: 1}})
	conn, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	tc := tls.Client(conn, &tls.Config{InsecureSkipVerify: true}) //nolint:gosec // test
	if err := tc.Handshake(); !errors.Is(err, ErrReset) {
		t.Fatalf("handshake err = %v, want ErrReset", err)
	}
}

func TestFaultMidStreamResetAfterNSegments(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	w.SetFaults(&scriptedInjector{stream: DialFault{CutAfterSegments: 3}})
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	// Segments 1 and 2 deliver; the third read hits the RST.
	for i := 0; i < 2; i++ {
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("segment %d: %v", i+1, err)
		}
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("third segment read = %v, want ErrReset", err)
	}
}

// TestFaultResetUnblocksPeerHandler: the injected RST closes both
// directions, so the server handler's blocking read returns EOF instead of
// leaking a goroutine.
func TestFaultResetUnblocksPeerHandler(t *testing.T) {
	w := newTestWorld(t)
	handlerDone := make(chan error, 1)
	w.RegisterStream(serverIP, 80, func(conn *Conn) {
		defer conn.Close()
		if _, err := conn.Write([]byte("banner")); err != nil {
			handlerDone <- err
			return
		}
		_, err := conn.Read(make([]byte, 8)) // blocks until reset fires
		handlerDone <- err
	})
	w.SetFaults(&scriptedInjector{stream: DialFault{CutAfterSegments: 1}})
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrReset) {
		t.Fatalf("client read = %v, want ErrReset", err)
	}
	select {
	case err := <-handlerDone:
		if err == nil {
			t.Error("handler read succeeded after reset")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server handler still blocked after reset")
	}
}

func TestPolicyVerdictWinsOverFaults(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	w.AddPolicy(PolicyFunc(func(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict {
		return Verdict{Action: ActRefuse}
	}))
	inj := &scriptedInjector{stream: DialFault{Drop: true}}
	w.SetFaults(inj)
	if _, err := w.Dial(clientIP, serverIP, 80); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want the policy's ErrRefused, not the fault's blackhole", err)
	}
	if inj.streams != 0 {
		t.Errorf("injector consulted %d times behind a refusing policy, want 0", inj.streams)
	}
}

func TestDatagramFaults(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterDatagram(serverIP, 53, func(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
		return req, time.Millisecond, nil
	})
	_, clean, err := w.Exchange(clientIP, serverIP, 53, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}

	w.SetFaults(&scriptedInjector{dgram: DatagramFault{Drop: true}})
	if _, _, err := w.Exchange(clientIP, serverIP, 53, []byte("q")); !errors.Is(err, ErrBlackhole) {
		t.Fatalf("dropped datagram err = %v, want ErrBlackhole", err)
	}

	stall := 30 * time.Millisecond
	w.SetFaults(&scriptedInjector{dgram: DatagramFault{ExtraLatency: stall}})
	_, slow, err := w.Exchange(clientIP, serverIP, 53, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if slow != clean+stall {
		t.Errorf("stalled exchange = %v, want %v + %v", slow, clean, stall)
	}
}

// TestFaultedDialsLeakNoGoroutines is the runtime leak assertion: a burst of
// faulted dials — drops, refusals, handshake cuts, mid-stream resets — must
// leave the goroutine count where it started once the connections close.
func TestFaultedDialsLeakNoGoroutines(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	before := runtime.NumGoroutine()

	for round, fault := range []DialFault{
		{Drop: true},
		{Refuse: true},
		{CutAfterSegments: 1},
		{CutAfterSegments: 2},
	} {
		w.SetFaults(&scriptedInjector{stream: fault})
		for i := 0; i < 50; i++ {
			conn, err := w.Dial(clientIP, serverIP, 80)
			if err != nil {
				continue
			}
			conn.SetDeadline(time.Now().Add(time.Second))
			conn.Write([]byte("ping")) //nolint:errcheck
			conn.Read(make([]byte, 4)) //nolint:errcheck
			conn.Close()
		}
		_ = round
	}

	// Handlers unwind asynchronously after Close; give them a settle window.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond) //doelint:allow simsleep -- real-time settle poll in a leak test
	}
	t.Errorf("goroutines: %d before, %d after faulted dial burst", before, runtime.NumGoroutine())
}
