package analysis

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := Mean(xs); got != 22 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input not zero")
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{5, 1, 9}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 9 {
		t.Error("percentile bounds wrong")
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("P50 = %v", got)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMedianWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.Float64() * 1000
		}
		m := Median(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if m < lo || m > hi {
			t.Fatalf("median %v outside [%v, %v]", m, lo, hi)
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1}}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("CDF = %v, want %v", pts, want)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) != nil")
	}
}

func TestQuickCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		// F non-decreasing, ends at 1, X strictly increasing.
		if pts[len(pts)-1].F != 1 {
			return false
		}
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].F < pts[i-1].F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCounterTopN(t *testing.T) {
	c := Counter{}
	c.Add("IE", 456)
	c.Add("CN", 257)
	c.Inc("US")
	top := c.TopN(2)
	if top[0].K != "IE" || top[1].K != "CN" {
		t.Errorf("top = %v", top)
	}
	if c.Total() != 456+257+1 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.TopN(10); len(got) != 3 {
		t.Errorf("TopN overflow = %v", got)
	}
}

func TestCounterTopNDeterministicTies(t *testing.T) {
	c := Counter{"b": 5, "a": 5, "c": 5}
	top := c.TopN(3)
	if top[0].K != "a" || top[1].K != "b" || top[2].K != "c" {
		t.Errorf("tie order = %v", top)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "Table 2: Top countries", Columns: []string{"CC", "Feb 1", "May 1", "Growth"}}
	tbl.AddRow("IE", 456, 951, "+108%")
	tbl.AddRow("CN", 257, 40, "-84%")
	out := tbl.Render()
	for _, want := range []string{"Table 2", "CC", "IE", "+108%", "-84%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Alignment: all data lines equal width of header line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{Title: "Fig 11", XLabel: "month", YLabel: "flows"}
	fig.AddPoint("cloudflare", "2018-07", 4674)
	fig.AddPoint("cloudflare", "2018-12", 7318)
	fig.AddPoint("quad9", "2018-07", 900)
	out := fig.Render()
	for _, want := range []string{"Fig 11", "[cloudflare]", "2018-12", "[quad9]"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 2 {
		t.Errorf("series structure = %+v", fig.Series)
	}
}

func TestGrowthPercent(t *testing.T) {
	if got := GrowthPercent(4674, 7318); math.Abs(got-56.57) > 0.1 {
		t.Errorf("growth = %v, want ≈56.6 (the paper's 56%%)", got)
	}
	if GrowthPercent(0, 5) != 0 {
		t.Error("zero base not handled")
	}
	if FormatGrowth(-84.4) != "-84%" || FormatGrowth(108) != "+108%" {
		t.Errorf("FormatGrowth = %q / %q", FormatGrowth(-84.4), FormatGrowth(108))
	}
}

func TestRenderBars(t *testing.T) {
	fig := &Figure{Title: "Bars"}
	fig.AddPoint("s", "jan", 10)
	fig.AddPoint("s", "feb", 5)
	fig.AddPoint("s", "mar", 0)
	out := fig.RenderBars(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	jan := strings.Count(lines[2], "#")
	feb := strings.Count(lines[3], "#")
	mar := strings.Count(lines[4], "#")
	if jan != 20 || feb != 10 || mar != 0 {
		t.Errorf("bar widths = %d/%d/%d, want 20/10/0", jan, feb, mar)
	}
	// Tiny width still renders.
	if !strings.Contains((&Figure{Title: "x"}).RenderBars(1), "x") {
		t.Error("empty figure render broken")
	}
}
