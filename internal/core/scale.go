package core

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/vantage"
	"dnsencryption.info/doe/internal/workload"
)

// This file is the million-vantage scale campaign (DESIGN.md §15): a
// deliberately minimal world — one authoritative zone, one public resolver,
// one generator-fed proxy platform — sized so the only thing that grows
// with the population is the campaign itself, and the campaign streams.
// Every per-query memory sink the study world tolerates is switched off
// here: the resolver cache is capped (safe because probe names are
// task-private), the zone's query log is disabled, vantage geo comes from a
// model-backed fallback instead of a million registered prefixes, and nodes
// exist in the simulated world only while a worker holds them.

// ScaleConfig sizes a streaming scale campaign.
type ScaleConfig struct {
	// Seed drives the vantage model, the world and the platform RNGs; the
	// report is a pure function of (Seed, Nodes, targets).
	Seed int64
	// Nodes is the generated vantage population, at most
	// workload.VantageCapacity.
	Nodes int
	// Workers shards the campaign; any value yields a byte-identical
	// report.
	Workers int
	// AllProtos extends each vantage's sweep from clear-text DNS to the
	// full DNS/DoT/DoH/DoQ matrix (4x the lookups).
	AllProtos bool
	// CacheLimit caps the resolver's answer cache (entries). Zero keeps
	// the DefaultScaleConfig cap; campaigns never re-query a name, so the
	// cap cannot change any answer or latency.
	CacheLimit int
}

// DefaultScaleConfig is the 1M-vantage configuration the doebench memory
// gate runs.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Seed:       20190501,
		Nodes:      1_000_000,
		Workers:    8,
		CacheLimit: 4096,
	}
}

// ValidateScaleNodes rejects population sizes the vantage generator cannot
// honor. Oversized requests are an error, never a silent truncation: a
// campaign that claims N vantages must measure N vantages.
func ValidateScaleNodes(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: node count %d must be positive", n)
	}
	if n > workload.VantageCapacity {
		return fmt.Errorf("core: node count %d exceeds the vantage generator capacity %d (refusing to truncate)",
			n, workload.VantageCapacity)
	}
	return nil
}

// ScaleCampaign is an assembled scale world plus its generated population.
type ScaleCampaign struct {
	Config   ScaleConfig
	World    *netsim.World
	Model    *workload.VantageModel
	Network  *proxy.Network
	Platform *vantage.Platform
	Targets  []vantage.Target
	Zone     *dnsserver.Zone
	Resolver *dnsserver.Resolver
}

// NewScaleCampaign builds the minimal world: authoritative zone, one
// cloudflare-style resolver (with the DoT/DoH/DoQ front-ends when
// cfg.AllProtos), a generator-fed proxy network, and geo that answers
// vantage addresses from the model instead of a per-node registry.
func NewScaleCampaign(cfg ScaleConfig) (*ScaleCampaign, error) {
	if err := ValidateScaleNodes(cfg.Nodes); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = DefaultScaleConfig().CacheLimit
	}

	c := &ScaleCampaign{
		Config: cfg,
		World:  netsim.NewWorld(cfg.Seed),
		Model:  workload.NewVantageModel(cfg.Seed + 7),
	}

	// Geo: fixed infrastructure prefixes, model-backed vantage fallback.
	reg := func(prefix, cc string, asn int, name string) {
		c.World.Geo.Register(netip.MustParsePrefix(prefix),
			geo.Location{Country: cc, ASN: asn, ASName: name})
	}
	reg("1.1.1.0/24", "US", 13335, "Cloudflare, Inc.")
	reg("198.18.0.0/16", "US", 64500, "Study Infrastructure")
	reg("172.16.0.0/14", "US", 64501, "Study Clouds")
	model := c.Model
	c.World.Geo.SetFallback(func(a netip.Addr) (geo.Location, bool) {
		if i, ok := model.IndexOf(a); ok {
			return model.Location(i), true
		}
		return geo.Location{}, false
	})

	// Authoritative zone, query log off: retaining one name per lookup is
	// the kind of O(population) state this world exists to avoid.
	c.Zone = dnsserver.NewZone(ProbeZone)
	c.Zone.WildcardA = netip.MustParseAddr("198.18.0.80")
	c.Zone.DisableQueryLog = true
	c.World.RegisterDatagram(authServerAddr, 53, dnsserver.DatagramHandler(c.Zone))

	// One public resolver with a capped cache. Probe names are unique per
	// lookup (Platform.UniqueName), so no insertion after the cap fills
	// could ever have produced a hit — answers and latencies are
	// unchanged, heap stays O(CacheLimit).
	c.Resolver = dnsserver.NewResolver(c.World, cloudflareDNS,
		map[string]netip.Addr{ProbeZone: authServerAddr}, cfg.Seed+101)
	c.Resolver.CacheLimit = cfg.CacheLimit
	c.World.RegisterDatagram(cloudflareDNS, 53, dnsserver.DatagramHandler(c.Resolver))
	c.World.RegisterStream(cloudflareDNS, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, c.Resolver)
	})

	c.Targets = []vantage.Target{{Name: "cloudflare", DNS: cloudflareDNS}}

	c.Network = proxy.NewNetwork(c.World, "genrack", globalSuper, cfg.Seed+9)
	c.Network.PerDialCost = 10 * time.Second
	c.Network.SetGenerator(cfg.Nodes, model.Node)

	// Afflictions: a hash-derived slice of the population sits behind
	// port-53 filtering middleboxes (the Finding 2.1 shape). Membership is
	// a pure function of the vantage index, so the verdict a node sees is
	// independent of scheduling.
	c.World.AddPolicy(netsim.PolicyFunc(
		func(w *netsim.World, from, to netip.Addr, port uint16, proto netsim.Proto) netsim.Verdict {
			if port != 53 || to != cloudflareDNS {
				return netsim.Verdict{}
			}
			if i, ok := model.IndexOf(from); ok && model.Filtered(i) {
				return netsim.Verdict{Action: netsim.ActBlackhole}
			}
			return netsim.Verdict{}
		}))

	c.Platform = &vantage.Platform{
		Network:   c.Network,
		From:      measureClient,
		ProbeZone: ProbeZone,
		ExpectedA: c.Zone.WildcardA,
		MinUptime: 3 * time.Minute,
	}

	if cfg.AllProtos {
		if err := c.buildEncryptedFrontends(&c.Targets[0]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// buildEncryptedFrontends adds DoT/DoH/DoQ service on the resolver and
// extends the target matrix accordingly.
func (c *ScaleCampaign) buildEncryptedFrontends(target *vantage.Target) error {
	ca, err := certs.NewCA("DoE Scale Root CA", true)
	if err != nil {
		return err
	}
	leaf, err := ca.Issue(certs.LeafOptions{
		CommonName: "cloudflare-dns.com",
		IPs:        []netip.Addr{cloudflareDNS},
	})
	if err != nil {
		return err
	}
	dot.Serve(c.World, cloudflareDNS, leaf, c.Resolver, time.Millisecond)
	doq.Serve(c.World, cloudflareDNS, leaf, c.Resolver, time.Millisecond)
	doh.Serve(c.World, cloudflareDNS, leaf, &doh.Server{Handler: c.Resolver})
	c.Platform.Roots = certs.Pool(ca)
	target.DoT = cloudflareDNS
	target.DoHAddr = cloudflareDNS
	target.DoH = doh.Template{Host: "cloudflare-dns.com", Path: doh.DefaultPath}
	target.DoQ = cloudflareDNS
	return nil
}

// Run executes the streaming campaign over the generated population and
// returns its accumulator. Memory is O(Workers + CacheLimit + cells), never
// O(Nodes).
func (c *ScaleCampaign) Run(ctx context.Context) (*vantage.CampaignStats, error) {
	return c.Platform.CampaignStreamSource(ctx,
		vantage.GeneratorSource(c.Network), c.Targets, c.Config.Workers,
		vantage.CampaignOpts{})
}

// Report renders the campaign header and summary — byte-identical for any
// Workers value.
func (c *ScaleCampaign) Report(stats *vantage.CampaignStats) string {
	protos := "DNS"
	if c.Config.AllProtos {
		protos = "DNS/DoT/DoH/DoQ"
	}
	return fmt.Sprintf("== scale campaign: %d vantages, %s, seed %d ==\n\n%s",
		c.Config.Nodes, protos, c.Config.Seed, stats.Render())
}

// Close tears the world down.
func (c *ScaleCampaign) Close() { c.Network.Shutdown() }
