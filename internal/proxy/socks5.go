// Package proxy implements SOCKS5 (RFC 1928, with RFC 1929 username/password
// authentication) and the residential proxy networks the paper uses as
// vantage-point platforms (§4.1): a super proxy that forwards measurement
// traffic to geographically distributed exit nodes, which connect to the
// actual targets. Virtual latency is propagated across hops, so a
// measurement client's observed time T_R composes client→super, super→exit
// and exit→target segments exactly as in the paper's Figure 8.
package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"dnsencryption.info/doe/internal/netsim"
)

// SOCKS protocol constants (RFC 1928).
const (
	socksVersion = 5

	authNone         = 0x00
	authUserPass     = 0x02
	authNoAcceptable = 0xFF

	cmdConnect = 0x01

	atypIPv4   = 0x01
	atypDomain = 0x03
	atypIPv6   = 0x04

	repSuccess            = 0x00
	repGeneralFailure     = 0x01
	repNetworkUnreachable = 0x03
	repHostUnreachable    = 0x04
	repConnRefused        = 0x05
	repCmdNotSupported    = 0x07
)

// Errors surfaced by the SOCKS layer.
var (
	ErrAuthRequired   = errors.New("proxy: server requires credentials")
	ErrAuthRejected   = errors.New("proxy: credentials rejected")
	ErrConnectFailed  = errors.New("proxy: CONNECT failed")
	ErrBadProtocol    = errors.New("proxy: protocol violation")
	ErrUnsupportedCmd = errors.New("proxy: unsupported command")
)

// ConnectError is a CONNECT rejection carrying the server's reply code.
// Codes propagate unchanged across chained proxies, so a measurement
// client can distinguish target-side failures (refused, unreachable) from
// platform-side disruptions (general failure: exit churn, expired session).
type ConnectError struct {
	Code byte
}

// Error implements error.
func (e *ConnectError) Error() string {
	return fmt.Sprintf("proxy: CONNECT failed: reply code %d", e.Code)
}

// Unwrap lets errors.Is(err, ErrConnectFailed) hold.
func (e *ConnectError) Unwrap() error { return ErrConnectFailed }

// IsPlatformDisruption reports whether err is the proxy platform failing
// (rather than the destination being unreachable). The paper removes such
// vantage points from the dataset ("upon any service disruption of exit
// nodes ... we remove this node from our dataset").
func IsPlatformDisruption(err error) bool {
	var ce *ConnectError
	return errors.As(err, &ce) && ce.Code == repGeneralFailure
}

// Credentials carry RFC 1929 username/password. The paper-style networks
// use the username to pin a session to a specific exit node.
type Credentials struct {
	Username string
	Password string
}

// ClientConnect performs the client side of a SOCKS5 session on conn:
// method negotiation, optional authentication, then a CONNECT to
// target:port. On return the conn is a transparent tunnel to the target.
func ClientConnect(conn io.ReadWriter, creds *Credentials, target netip.Addr, port uint16) error {
	methods := []byte{authNone}
	if creds != nil {
		methods = []byte{authUserPass, authNone}
	}
	greeting := append([]byte{socksVersion, byte(len(methods))}, methods...)
	if _, err := conn.Write(greeting); err != nil {
		return err
	}
	var sel [2]byte
	if _, err := io.ReadFull(conn, sel[:]); err != nil {
		return err
	}
	if sel[0] != socksVersion {
		return ErrBadProtocol
	}
	switch sel[1] {
	case authNone:
	case authUserPass:
		if creds == nil {
			return ErrAuthRequired
		}
		if err := clientAuth(conn, creds); err != nil {
			return err
		}
	default:
		return ErrAuthRequired
	}

	req := []byte{socksVersion, cmdConnect, 0}
	if target.Is4() {
		v4 := target.As4()
		req = append(req, atypIPv4)
		req = append(req, v4[:]...)
	} else {
		v6 := target.As16()
		req = append(req, atypIPv6)
		req = append(req, v6[:]...)
	}
	req = binary.BigEndian.AppendUint16(req, port)
	if _, err := conn.Write(req); err != nil {
		return err
	}
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return err
	}
	if head[0] != socksVersion {
		return ErrBadProtocol
	}
	// Consume BND.ADDR/BND.PORT.
	var skip int
	switch head[3] {
	case atypIPv4:
		skip = 4 + 2
	case atypIPv6:
		skip = 16 + 2
	case atypDomain:
		var l [1]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return err
		}
		skip = int(l[0]) + 2
	default:
		return ErrBadProtocol
	}
	if _, err := io.ReadFull(conn, make([]byte, skip)); err != nil {
		return err
	}
	if head[1] != repSuccess {
		return &ConnectError{Code: head[1]}
	}
	return nil
}

func clientAuth(conn io.ReadWriter, creds *Credentials) error {
	msg := []byte{1, byte(len(creds.Username))}
	msg = append(msg, creds.Username...)
	msg = append(msg, byte(len(creds.Password)))
	msg = append(msg, creds.Password...)
	if _, err := conn.Write(msg); err != nil {
		return err
	}
	var resp [2]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return err
	}
	if resp[1] != 0 {
		return ErrAuthRejected
	}
	return nil
}

// Request is a parsed CONNECT request received by a server.
type Request struct {
	Target netip.Addr
	// Domain is set instead of Target when the client sent a hostname.
	Domain string
	Port   uint16
	// Username the client authenticated with ("" for no-auth).
	Username string
}

// Dialer establishes the outbound leg for a CONNECT request. It returns the
// downstream conn, whose virtual elapsed time (connection setup) the server
// charges to the client before replying.
type Dialer func(req Request) (*netsim.Conn, error)

// ServeConn runs the server side of one SOCKS5 session on conn. requireAuth
// demands username/password (any password accepted; the username is
// surfaced in the Request for session routing, like ProxyRack's
// username-keyed sessions).
func ServeConn(conn *netsim.Conn, requireAuth bool, dial Dialer) {
	defer conn.Close()
	req, err := serverHandshake(conn, requireAuth)
	if err != nil {
		return
	}
	downstream, err := dial(*req)
	if err != nil {
		reply(conn, errorReply(err))
		return
	}
	defer downstream.Close()
	// The client waited while the downstream leg was established; charge
	// that virtual time to its connection before confirming.
	conn.AddLatency(downstream.Elapsed())
	if err := reply(conn, repSuccess); err != nil {
		return
	}
	Relay(conn, downstream)
}

func serverHandshake(conn *netsim.Conn, requireAuth bool) (*Request, error) {
	var head [2]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return nil, err
	}
	if head[0] != socksVersion {
		return nil, ErrBadProtocol
	}
	methods := make([]byte, head[1])
	if _, err := io.ReadFull(conn, methods); err != nil {
		return nil, err
	}
	var username string
	if requireAuth {
		if !contains(methods, authUserPass) {
			conn.Write([]byte{socksVersion, authNoAcceptable}) //nolint:errcheck
			return nil, ErrAuthRequired
		}
		if _, err := conn.Write([]byte{socksVersion, authUserPass}); err != nil {
			return nil, err
		}
		var err error
		username, err = serverAuth(conn)
		if err != nil {
			return nil, err
		}
	} else {
		if _, err := conn.Write([]byte{socksVersion, authNone}); err != nil {
			return nil, err
		}
	}

	var reqHead [4]byte
	if _, err := io.ReadFull(conn, reqHead[:]); err != nil {
		return nil, err
	}
	if reqHead[0] != socksVersion {
		return nil, ErrBadProtocol
	}
	if reqHead[1] != cmdConnect {
		reply(conn, repCmdNotSupported) //nolint:errcheck
		return nil, ErrUnsupportedCmd
	}
	req := &Request{Username: username}
	switch reqHead[3] {
	case atypIPv4:
		var a [4]byte
		if _, err := io.ReadFull(conn, a[:]); err != nil {
			return nil, err
		}
		req.Target = netip.AddrFrom4(a)
	case atypIPv6:
		var a [16]byte
		if _, err := io.ReadFull(conn, a[:]); err != nil {
			return nil, err
		}
		req.Target = netip.AddrFrom16(a)
	case atypDomain:
		var l [1]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return nil, err
		}
		name := make([]byte, l[0])
		if _, err := io.ReadFull(conn, name); err != nil {
			return nil, err
		}
		req.Domain = string(name)
	default:
		return nil, ErrBadProtocol
	}
	var p [2]byte
	if _, err := io.ReadFull(conn, p[:]); err != nil {
		return nil, err
	}
	req.Port = binary.BigEndian.Uint16(p[:])
	return req, nil
}

func serverAuth(conn *netsim.Conn) (string, error) {
	var head [2]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return "", err
	}
	if head[0] != 1 {
		return "", ErrBadProtocol
	}
	user := make([]byte, head[1])
	if _, err := io.ReadFull(conn, user); err != nil {
		return "", err
	}
	var plen [1]byte
	if _, err := io.ReadFull(conn, plen[:]); err != nil {
		return "", err
	}
	if _, err := io.ReadFull(conn, make([]byte, plen[0])); err != nil {
		return "", err
	}
	if _, err := conn.Write([]byte{1, 0}); err != nil {
		return "", err
	}
	return string(user), nil
}

func reply(conn *netsim.Conn, code byte) error {
	_, err := conn.Write([]byte{socksVersion, code, 0, atypIPv4, 0, 0, 0, 0, 0, 0})
	return err
}

func errorReply(err error) byte {
	var ce *ConnectError
	switch {
	case errors.As(err, &ce):
		// Propagate the downstream hop's code unchanged.
		return ce.Code
	case errors.Is(err, netsim.ErrRefused):
		return repConnRefused
	case errors.Is(err, netsim.ErrBlackhole):
		return repHostUnreachable
	case errors.Is(err, netsim.ErrNoRoute):
		return repNetworkUnreachable
	default:
		return repGeneralFailure
	}
}

func contains(b []byte, v byte) bool {
	for _, x := range b {
		if x == v {
			return true
		}
	}
	return false
}

// Relay copies bytes between the client-facing conn and the downstream
// conn in both directions, propagating the downstream leg's virtual time
// onto the client's connection so end-to-end latency composes across hops.
func Relay(client, downstream *netsim.Conn) {
	done := make(chan struct{}, 2)
	// Snapshot the downstream clock before either copier starts: once the
	// client→downstream goroutine runs, request bytes advance the
	// downstream clock, and a late snapshot would drop that leg from the
	// composed latency.
	last := downstream.Elapsed()
	go func() {
		io.Copy(downstream, client) //nolint:errcheck
		downstream.Close()
		done <- struct{}{}
	}()
	go func() {
		buf := make([]byte, 32*1024)
		for {
			n, err := downstream.Read(buf)
			if n > 0 {
				now := downstream.Elapsed()
				if now > last {
					client.AddLatency(now - last)
					last = now
				}
				if _, werr := client.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		client.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}
