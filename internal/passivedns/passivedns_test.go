package passivedns

import (
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
)

var day1 = time.Date(2019, 3, 5, 10, 0, 0, 0, time.UTC)

func TestObserveAndLookup(t *testing.T) {
	db := NewDB()
	db.Observe(Observation{Time: day1, QName: "dns.Google", QType: dnswire.TypeA})
	db.Observe(Observation{Time: day1.Add(time.Hour), QName: "dns.google.", QType: dnswire.TypeA})
	agg, ok := db.Lookup("DNS.GOOGLE")
	if !ok {
		t.Fatal("lookup failed")
	}
	if agg.Count != 2 || agg.QName != "dns.google." {
		t.Errorf("agg = %+v", agg)
	}
	if !agg.FirstSeen.Equal(day1) || !agg.LastSeen.Equal(day1.Add(time.Hour)) {
		t.Errorf("seen range = %v..%v", agg.FirstSeen, agg.LastSeen)
	}
}

func TestLookupMissing(t *testing.T) {
	db := NewDB()
	if _, ok := db.Lookup("nothing.example"); ok {
		t.Error("lookup of unseen domain succeeded")
	}
	if db.DailyVolume("nothing.example") != nil {
		t.Error("daily volume of unseen domain non-nil")
	}
}

func TestDailyAndMonthlyVolume(t *testing.T) {
	db := NewDB()
	db.ObserveCount(day1, "doh.cleanbrowsing.org", 100)
	db.ObserveCount(day1.AddDate(0, 0, 1), "doh.cleanbrowsing.org", 50)
	db.ObserveCount(day1.AddDate(0, 1, 0), "doh.cleanbrowsing.org", 300)

	daily := db.DailyVolume("doh.cleanbrowsing.org")
	if len(daily) != 3 || daily[0].Count != 100 || daily[0].Day != "2019-03-05" {
		t.Errorf("daily = %+v", daily)
	}
	monthly := db.MonthlyVolume("doh.cleanbrowsing.org")
	if len(monthly) != 2 || monthly[0].Count != 150 || monthly[0].Day != "2019-03" || monthly[1].Count != 300 {
		t.Errorf("monthly = %+v", monthly)
	}
}

func TestObserveCountIgnoresNonPositive(t *testing.T) {
	db := NewDB()
	db.ObserveCount(day1, "x.example", 0)
	db.ObserveCount(day1, "x.example", -5)
	if _, ok := db.Lookup("x.example"); ok {
		t.Error("non-positive counts recorded")
	}
}

func TestDomainsSortedByCount(t *testing.T) {
	db := NewDB()
	db.ObserveCount(day1, "dns.google", 1000000)
	db.ObserveCount(day1, "mozilla.cloudflare-dns.com", 50000)
	db.ObserveCount(day1, "doh.crypto.sx", 120)
	domains := db.Domains()
	if len(domains) != 3 || domains[0].QName != "dns.google." || domains[2].QName != "doh.crypto.sx." {
		t.Errorf("domains = %+v", domains)
	}
}

func TestFirstSeenMovesBackward(t *testing.T) {
	db := NewDB()
	db.Observe(Observation{Time: day1, QName: "a.example"})
	db.Observe(Observation{Time: day1.Add(-24 * time.Hour), QName: "a.example"})
	agg, _ := db.Lookup("a.example")
	if !agg.FirstSeen.Equal(day1.Add(-24 * time.Hour)) {
		t.Errorf("FirstSeen = %v", agg.FirstSeen)
	}
}
