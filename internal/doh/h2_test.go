package doh

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
)

func (f *fixture) muxClient() *Client {
	c := f.client()
	c.Mux = true
	return c
}

func TestH2Negotiation(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.muxClient()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !conn.Multiplexed() {
		t.Fatal("Mux client did not negotiate h2")
	}
	if conn.MaxInFlight() != dnsclient.DefaultMaxInFlight {
		t.Errorf("MaxInFlight = %d, want default %d", conn.MaxInFlight(), dnsclient.DefaultMaxInFlight)
	}
	res, err := conn.Query("probe-h2.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %v, want > 0", res.Latency)
	}
}

func TestH2PostQuery(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.muxClient()
	c.Method = POST
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query("probe-h2p.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestH2SerialClientUnaffected(t *testing.T) {
	// A client without Mux offers no ALPN and must still get plain
	// HTTP/1.1 from the upgraded server.
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.client()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Multiplexed() {
		t.Fatal("serial client negotiated h2")
	}
	if _, err := conn.Query("serial.measure.example.org", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}

func TestH2BatchDeterministicLatencies(t *testing.T) {
	const batch = 8
	f := newFixture(t)
	f.world.JitterFrac = 0
	f.serve(t, &Server{Handler: f.zone})
	c := f.muxClient()
	c.MaxInFlight = batch
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	names := make([]string, batch)
	for i := range names {
		names[i] = fmt.Sprintf("h2b%d.measure.example.org", i)
	}
	run := func() ([]dnsclient.Result, time.Duration) {
		before := conn.Elapsed()
		results, err := conn.BatchContext(context.Background(), names, dnswire.TypeA, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results, conn.Elapsed() - before
	}
	results, total := run()
	if len(results) != batch {
		t.Fatalf("got %d results, want %d", len(results), batch)
	}
	for i, r := range results {
		if a, ok := r.FirstA(); !ok || a != answerIP {
			t.Errorf("query %d: answer %v", i, r.Msg.Answers)
		}
		// One request segment out, one coalesced response segment back:
		// every stream's latency equals the batch round trip.
		if r.Latency != total {
			t.Errorf("query %d: latency %v, want batch total %v", i, r.Latency, total)
		}
	}
	// A second batch on the same session must behave identically (slot and
	// buffer recycling paths).
	results2, total2 := run()
	if total2 != total {
		t.Errorf("second batch total %v, want %v (jitter disabled)", total2, total)
	}
	for i, r := range results2 {
		if r.Latency != total2 {
			t.Errorf("second batch query %d: latency %v, want %v", i, r.Latency, total2)
		}
	}
}

func TestH2ConcurrentExchange(t *testing.T) {
	const n = 16
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.muxClient()
	c.MaxInFlight = n
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("h2c%d.measure.example.org", i)
			res, err := conn.QueryContext(context.Background(), name, dnswire.TypeA)
			if err != nil {
				errs[i] = err
				return
			}
			if a, ok := res.FirstA(); !ok || a != answerIP {
				errs[i] = fmt.Errorf("answer %v", res.Msg.Answers)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	// Every uniquely named query must have reached the zone exactly once.
	seen := make(map[string]int)
	for _, name := range f.zone.QueriedNames() {
		seen[name]++
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h2c%d.measure.example.org.", i)
		if seen[name] != 1 {
			t.Errorf("zone saw %q %d times, want 1", name, seen[name])
		}
	}
}

func TestH2ErrorStatusPerStream(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.muxClient()
	tmpl := Template{Host: f.tmpl.Host, Path: "/wrong-path"}
	conn, err := c.Dial(tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("err.measure.example.org", dnswire.TypeA); !errors.Is(err, ErrHTTPStatus) {
		t.Errorf("err = %v, want ErrHTTPStatus", err)
	}
	// The session survives a per-stream error; only that stream failed.
	conn2, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Query("ok.measure.example.org", dnswire.TypeA); err != nil {
		t.Errorf("good-path query after error: %v", err)
	}
}
