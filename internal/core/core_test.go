package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/vantage"
)

// sharedStudy is built once: constructing the world (certificates, servers)
// dominates test time and the pipeline stages cache their results.
var sharedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := NewStudy(TestConfig())
		if err != nil {
			t.Fatalf("NewStudy: %v", err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestTable1Static(t *testing.T) {
	out := Table1().Render()
	for _, want := range []string{"DNS-over", "Standardized by IETF", "●", "○"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if len(ComparisonMatrix) != 10 {
		t.Errorf("criteria = %d, want 10", len(ComparisonMatrix))
	}
	for _, c := range ComparisonMatrix {
		if len(c.Grades) != 5 {
			t.Errorf("criterion %q has %d grades", c.Name, len(c.Grades))
		}
	}
}

func TestTable8AndStats(t *testing.T) {
	out := Table8().Render()
	for _, want := range []string{"Cloudflare", "Stubby", "Firefox", "Android 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 8 missing %q", want)
		}
	}
	stats := ImplementationStats()
	// DoT and DoH gained support quickly; DNSSEC remains the most
	// widespread (it is a decade older).
	if stats["DoT"] < 10 || stats["DoH"] < 10 {
		t.Errorf("DoT/DoH support = %d/%d", stats["DoT"], stats["DoH"])
	}
	if stats["DNSSEC"] <= stats["DoH"] {
		t.Errorf("DNSSEC (%d) should exceed DoH (%d) in the survey", stats["DNSSEC"], stats["DoH"])
	}
}

func TestScansDiscoverPopulation(t *testing.T) {
	s := study(t)
	scans, err := s.ScanResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != s.ScanRounds {
		t.Fatalf("scan rounds = %d", len(scans))
	}
	first, last := scans[0], scans[len(scans)-1]

	// Ground truth: every active resolver must be found.
	if want := s.ActiveResolverCount(0); len(first.Resolvers) < want {
		t.Errorf("first scan found %d resolvers, ground truth %d", len(first.Resolvers), want)
	}
	// Port-open population is far larger than the DoT population.
	if first.PortOpen <= len(first.Resolvers) {
		t.Errorf("port-open %d not above resolvers %d", first.PortOpen, len(first.Resolvers))
	}

	// Churn shapes (Table 2): IE grows ≈2x, US grows ≈5x, CN collapses.
	fc, lc := first.CountryCounts(), last.CountryCounts()
	if lc["IE"] <= fc["IE"] {
		t.Errorf("IE: %d -> %d, want growth", fc["IE"], lc["IE"])
	}
	if lc["US"] <= 3*fc["US"] {
		t.Errorf("US: %d -> %d, want ≈5x growth", fc["US"], lc["US"])
	}
	if lc["CN"] >= fc["CN"]/2 {
		t.Errorf("CN: %d -> %d, want collapse", fc["CN"], lc["CN"])
	}

	// Finding 1.2 shapes on the last scan.
	counts := last.ProviderCounts()
	invalid := last.InvalidCertProviders()
	frac := float64(len(invalid)) / float64(len(counts))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("invalid-cert provider fraction = %.2f (want ≈0.25)", frac)
	}
	single := 0
	for _, n := range counts {
		if n == 1 {
			single++
		}
	}
	if sf := float64(single) / float64(len(counts)); sf < 0.5 {
		t.Errorf("single-address provider fraction = %.2f (want ≈0.7)", sf)
	}
	// Large providers own most addresses.
	top := 0
	for _, kv := range topProviders(counts, 7) {
		top += kv
	}
	if share := float64(top) / float64(len(last.Resolvers)); share < 0.6 {
		t.Errorf("top-7 provider address share = %.2f (want > 0.6)", share)
	}
}

func topProviders(counts map[string]int, n int) []int {
	var sizes []int
	for _, v := range counts {
		sizes = append(sizes, v)
	}
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	if n > len(sizes) {
		n = len(sizes)
	}
	return sizes[:n]
}

func TestDoHDiscovery(t *testing.T) {
	s := study(t)
	found := s.DoHDiscovery()
	if len(found) != 17 {
		t.Fatalf("DoH resolvers = %d, want 17", len(found))
	}
	beyond := 0
	for _, r := range found {
		if !r.InKnownList {
			beyond++
		}
	}
	if beyond != 2 {
		t.Errorf("beyond-list discoveries = %d, want 2", beyond)
	}
}

func TestReachabilityShapes(t *testing.T) {
	s := study(t)
	data := s.Reachability()
	global := data.Global.ByResolverProto()
	censored := data.Censored.ByResolverProto()

	rate := func(tallies map[string]map[vantage.Proto]vantage.Tally, resolver string, proto vantage.Proto) (c, i, f float64) {
		return tallies[resolver][proto].Rates()
	}

	// Finding 2.1: Cloudflare clear-text DNS fails far more often than
	// its DoT, which fails more often than its DoH.
	_, _, dnsFail := rate(global, "cloudflare", vantage.ProtoDNS)
	_, _, dotFail := rate(global, "cloudflare", vantage.ProtoDoT)
	_, _, dohFail := rate(global, "cloudflare", vantage.ProtoDoH)
	if dnsFail < 0.05 || dnsFail > 0.35 {
		t.Errorf("cloudflare DNS fail rate = %.3f (paper: 0.165)", dnsFail)
	}
	// At full scale the ordering is dns > dot > doh; at test scale a
	// single interceptor can tie the encrypted protocols, so assert the
	// robust shape: both encrypted transports fail far less than
	// clear-text DNS.
	if dotFail >= dnsFail/3 || dohFail >= dnsFail/3 {
		t.Errorf("encrypted fail rates dot=%.3f doh=%.3f not well below dns=%.3f", dotFail, dohFail, dnsFail)
	}

	// Quad9 clear-text DNS is barely affected (port filters target the
	// prominent addresses).
	_, _, q9dnsFail := rate(global, "quad9", vantage.ProtoDNS)
	if q9dnsFail > dnsFail/2 {
		t.Errorf("quad9 DNS fail %.3f not well below cloudflare %.3f", q9dnsFail, dnsFail)
	}

	// Finding 2.4: Quad9 DoH sees a substantial incorrect (SERVFAIL)
	// rate globally, but not on the censored platform.
	_, q9dohInc, _ := rate(global, "quad9", vantage.ProtoDoH)
	if q9dohInc < 0.04 || q9dohInc > 0.30 {
		t.Errorf("quad9 DoH incorrect rate = %.3f (paper: 0.13)", q9dohInc)
	}
	_, q9dohIncCN, _ := rate(censored, "quad9", vantage.ProtoDoH)
	if q9dohIncCN > q9dohInc/2 {
		t.Errorf("censored quad9 DoH incorrect %.3f not well below global %.3f", q9dohIncCN, q9dohInc)
	}

	// Finding 2.2: Google DoH is blocked for ≈100% of censored clients.
	_, _, gDoHFailCN := rate(censored, "google", vantage.ProtoDoH)
	if gDoHFailCN < 0.99 {
		t.Errorf("censored google DoH fail = %.3f, want ≈1.0", gDoHFailCN)
	}
	// ... while its clear-text DNS passes.
	_, _, gDNSFailCN := rate(censored, "google", vantage.ProtoDNS)
	if gDNSFailCN > 0.05 {
		t.Errorf("censored google DNS fail = %.3f, want ≈0", gDNSFailCN)
	}

	// Self-built resolver: near-perfect everywhere, DoQ included.
	for _, proto := range []vantage.Proto{vantage.ProtoDNS, vantage.ProtoDoT, vantage.ProtoDoH, vantage.ProtoDoQ} {
		c, _, _ := rate(global, "self-built", proto)
		if c < 0.95 {
			t.Errorf("self-built %s correct = %.3f", proto, c)
		}
	}

	// Finding 2.3: some opportunistic DoT sessions are intercepted, and
	// every intercepted result still resolved correctly.
	intercepted := data.Global.Intercepted()
	if len(intercepted) == 0 {
		t.Error("no intercepted sessions observed")
	}
	for _, r := range intercepted {
		if r.Outcome != vantage.Correct || r.IssuerCN == "" {
			t.Errorf("intercepted result = %+v", r)
		}
	}
}

func TestPerfShapes(t *testing.T) {
	s := study(t)
	samples := s.PerfSamples()
	if len(samples) < s.PerfNodes/2 {
		t.Fatalf("perf samples = %d", len(samples))
	}
	dotAvg, _, dohAvg, _ := vantage.GlobalOverheads(samples)
	// Key observation 3: with reuse, overhead is a few milliseconds.
	if dotAvg < 0 || dotAvg > 30 {
		t.Errorf("global DoT overhead = %.1f ms (want small positive)", dotAvg)
	}
	if dohAvg < -10 || dohAvg > 30 {
		t.Errorf("global DoH overhead = %.1f ms", dohAvg)
	}
	// DoQ lands in the same few-millisecond band, but on the cheap side of
	// clear-text: the UDP flight skips the TCP handshake the DNS baseline
	// pays, so a small negative overhead is the expected shape.
	doqAvg, _, _ := vantage.GlobalDoQOverheads(samples)
	if doqAvg < -30 || doqAvg > 30 {
		t.Errorf("global DoQ overhead = %.1f ms (want small magnitude)", doqAvg)
	}
	if doqAvg >= dotAvg {
		t.Errorf("global DoQ overhead %.1f ms not below DoT's %.1f ms", doqAvg, dotAvg)
	}
}

func TestTrafficShapes(t *testing.T) {
	s := study(t)
	data := s.GenerateTraffic()
	if len(data.Flows) == 0 {
		t.Fatal("no DoT flows selected")
	}
	// The scanner source must be screened out.
	flagged := 0
	for _, v := range data.Verdicts {
		if v.Scanner {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("scan screening flagged nothing")
	}
	// Fig 13: four domains dominate.
	domains := data.PDNS.Domains()
	if len(domains) < 5 {
		t.Fatalf("passive DNS domains = %d", len(domains))
	}
	if domains[0].QName != "dns.google." {
		t.Errorf("top DoH domain = %s", domains[0].QName)
	}
}

func TestCertsRefTimeAligned(t *testing.T) {
	// Guard: the study's scan window ends at the certificate reference
	// instant, May 1 2019.
	if got := certs.RefTime.Format("2006-01-02"); got != "2019-05-01" {
		t.Errorf("RefTime = %s", got)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Errorf("experiments = %d, want 20", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig1", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown experiment id resolved")
	}
}

func TestRunAllProducesReport(t *testing.T) {
	s := study(t)
	var sb strings.Builder
	if err := s.RunAll(&sb); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Figure 3", "Figure 4", "Table 4", "Table 5",
		"Table 7", "Figure 9", "Figure 11", "Figure 12", "Figure 13",
		"cloudflare", "quad9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "ERROR") {
		idx := strings.Index(out, "ERROR")
		t.Errorf("report contains errors: ...%s", out[idx:min(len(out), idx+200)])
	}
}

func TestDeterministicReports(t *testing.T) {
	// Two studies with the same seed must produce identical static-stage
	// outputs (scans, traffic figures) — the reproducibility guarantee
	// behind EXPERIMENTS.md.
	cfg := TestConfig()
	cfg.ScanRounds = 2
	cfg.GlobalNodes = 20
	cfg.CensoredNodes = 10
	run := func() (string, string) {
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scanExp, _ := ExperimentByID("table2")
		scanOut, err := scanExp.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		figExp, _ := ExperimentByID("fig11")
		figOut, err := figExp.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return scanOut, figOut
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Errorf("table2 not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("fig11 not deterministic:\n%s\nvs\n%s", f1, f2)
	}
}

// matrixConfig is the miniature world the worker-count matrix runs on.
func matrixConfig() Config {
	cfg := TestConfig()
	cfg.ScanRounds = 2
	cfg.GlobalNodes = 24
	cfg.CensoredNodes = 12
	cfg.PerfNodes = 6
	cfg.PerfQueriesReused = 4
	cfg.PerfQueriesFresh = 4
	return cfg
}

// diffReports fails the test at the first diverging byte of two reports.
func diffReports(t *testing.T, labelA, a, labelB, b string) {
	t.Helper()
	if a == b {
		return
	}
	line := 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			lo, hi := max(0, i-120), min(len(a), i+120)
			hi2 := min(len(b), i+120)
			t.Fatalf("report diverges at byte %d (line %d):\n%s: ...%q...\n%s: ...%q...",
				i, line, labelA, a[lo:hi], labelB, b[lo:hi2])
		}
		if a[i] == '\n' {
			line++
		}
	}
	t.Fatalf("reports differ in length: %s %d bytes, %s %d bytes", labelA, len(a), labelB, len(b))
}

// TestReportByteIdenticalAcrossWorkerCounts is the parallel engine's
// end-to-end guarantee, with and without fault injection: the complete
// doereport output — every experiment, including the worker-sharded scans,
// campaigns, forensics and perf stages, and under faults the injected-fault
// schedules and retry recovery — must be byte-for-byte identical at any
// worker count. The matrix covers {workers 1, 4, 8} × {fault seeds 0, 1, 2}
// plus the faults-off baseline.
func TestReportByteIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(t *testing.T, workers int, fc FaultsConfig) string {
		c := matrixConfig()
		c.Workers = workers
		c.Faults = fc
		s, err := NewStudy(c)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := s.RunAll(&b); err != nil {
			t.Fatalf("workers=%d faults=%+v: %v", workers, fc, err)
		}
		return b.String()
	}
	cases := []struct {
		name   string
		faults FaultsConfig
	}{
		{"faults-off", FaultsConfig{}},
		{"harsh-seed0", FaultsConfig{Profile: "harsh", Seed: 0}},
		{"harsh-seed1", FaultsConfig{Profile: "harsh", Seed: 1}},
		{"harsh-seed2", FaultsConfig{Profile: "harsh", Seed: 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.faults.Enabled() {
				t.Skip("faulted matrix rows skipped in -short")
			}
			t.Parallel()
			serial := run(t, 1, tc.faults)
			for _, workers := range []int{4, 8} {
				parallel := run(t, workers, tc.faults)
				diffReports(t, "workers=1", serial, fmt.Sprintf("workers=%d", workers), parallel)
			}
			if !strings.Contains(serial, "== table4") || strings.Contains(serial, "ERROR") {
				t.Fatalf("report incomplete or errored:\n%s", serial)
			}
			if tc.faults.Enabled() && !strings.Contains(serial, "== faults:") {
				t.Fatal("faulted report missing the faults summary")
			}
		})
	}
}

// TestFullScaleReportMatchesGolden pins the faults-off, default-scale report
// to the committed report_full.txt byte for byte: any change to the
// measurement pipeline that shifts a single value must regenerate the golden
// deliberately. Fault injection must never leak into the default path.
func TestFullScaleReportMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale study takes ~30s")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "report_full.txt"))
	if err != nil {
		t.Fatalf("reading committed golden: %v", err)
	}
	s, err := NewStudy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.RunAll(&b); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	diffReports(t, "golden", string(golden), "regenerated", b.String())
}
