package scanner

import (
	"context"
	"crypto/x509"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/runner"
)

// Resolver is one verified open DoT resolver discovered by a scan.
type Resolver struct {
	Addr netip.Addr
	// Provider is the grouping key from the certificate Common Name
	// (SLD for domain-shaped CNs), per §3.2.
	Provider string
	// CommonName is the certificate subject CN as presented.
	CommonName string
	// CertStatus classifies the presented chain against the root store.
	CertStatus certs.Status
	// NotAfter is the leaf's expiry (spotting long-expired certificates).
	NotAfter time.Time
	// AnswerCorrect reports whether the resolver returned the
	// authoritative answer for the probe domain (dnsfilter-style
	// services fail this).
	AnswerCorrect bool
	// Country is the resolver's geolocation.
	Country string
}

// Result is the outcome of one Internet-wide DoT scan.
type Result struct {
	// Label identifies the scan round (the paper scans every 10 days,
	// "Feb 1" ... "May 1").
	Label string
	// ProbedAddrs is how many addresses the sweep covered.
	ProbedAddrs uint64
	// PortOpen counts hosts accepting connections on 853.
	PortOpen int
	// SkippedOptOut counts addresses excluded by the opt-out list.
	SkippedOptOut int
	// Resolvers are the verified open DoT resolvers.
	Resolvers []Resolver
	// VirtualDuration is how long the sweep would take at the configured
	// probe rate (the paper: 24 hours per scan).
	VirtualDuration time.Duration
}

// ProviderCounts groups the scan's resolvers by provider.
func (r *Result) ProviderCounts() map[string]int {
	m := make(map[string]int)
	for _, res := range r.Resolvers {
		m[res.Provider]++
	}
	return m
}

// InvalidCertProviders returns providers with at least one resolver whose
// certificate fails validation (Finding 1.2's 25%).
func (r *Result) InvalidCertProviders() []string {
	set := map[string]bool{}
	for _, res := range r.Resolvers {
		if res.CertStatus != certs.StatusValid {
			set[res.Provider] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CountryCounts groups the scan's resolvers by country.
func (r *Result) CountryCounts() map[string]int {
	m := make(map[string]int)
	for _, res := range r.Resolvers {
		m[res.Country]++
	}
	return m
}

// Space is the IPv4 range a sweep covers.
type Space struct {
	Base netip.Addr
	// Size is the number of addresses from Base.
	Size uint64
}

// Addr returns the i-th address of the space.
func (s Space) Addr(i uint64) netip.Addr {
	b := s.Base.As4()
	v := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	v += i
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Scanner performs §3.1's two-stage discovery: a port-853 sweep in
// permuted order, then DoT verification probes of responsive hosts.
type Scanner struct {
	World *netsim.World
	// Sources are the scan origins (the paper used 3 cloud addresses in
	// China and the US); the sweep alternates between them.
	Sources []netip.Addr
	// Space is the address range to cover.
	Space Space
	// OptOut excludes networks that requested exclusion.
	OptOut *netsim.OptOutList
	// ProbeDomain is a domain registered by the scanners; open resolvers
	// must answer it (via the measurement zone).
	ProbeDomain string
	// ExpectedA is the authoritative answer, used for validation.
	ExpectedA netip.Addr
	// Roots is the trust store for certificate classification.
	Roots *x509.CertPool
	// Workers bounds concurrent DoT probes.
	Workers int
	// Seed randomizes the sweep order.
	Seed uint64
	// RatePPS is the sweep's probe budget in packets per second; it
	// determines the *virtual* duration of a scan (the paper's sweeps of
	// the whole IPv4 space took 24 hours each at ZMap-conservative
	// rates). Zero disables duration accounting.
	RatePPS int
}

// Scan runs one full sweep and probe round.
func (s *Scanner) Scan(label string) (*Result, error) {
	return s.ScanContext(context.Background(), label)
}

// ScanContext is Scan with cancellation and telemetry: when ctx carries an
// obs.Recorder the round gets a "scan:<label>" span (charged with the
// sweep's virtual duration) and sweep/probe outcome counters. Per-address
// spans are deliberately not recorded — an 8k-address sweep would drown
// the trace; the round span plus counters carry the same information.
func (s *Scanner) ScanContext(ctx context.Context, label string) (*Result, error) {
	if len(s.Sources) == 0 {
		return nil, fmt.Errorf("scanner: no scan sources")
	}
	perm, err := NewPermutation(s.Space.Size, s.Seed+uint64(len(label)))
	if err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "scan:"+label)
	res := &Result{Label: label, ProbedAddrs: s.Space.Size}
	workers := s.Workers
	if workers <= 0 {
		workers = 8
	}

	// Stage 1, sweep. Drawing the permutation is cheap; the expensive part
	// is the dials, so the ordinals are materialized serially (fixing each
	// target's scan source by its position in permuted order, exactly as
	// the serial sweep alternated sources) and the dials fan out across the
	// worker pool. Open flags land at their ordinal index, so the open list
	// is identical for every worker count.
	// Counters are resolved from the worker's context inside fn, not
	// captured from the parent before MapCtx: the worker ctx carries a
	// shard registry, so outcome counts accumulate contention-free and
	// fold into the study registry when the pool joins.
	tasks := s.sweepTasks(perm, res)
	openFlags, err := runner.MapCtx(obs.WithPool(ctx, "scan-sweep"), workers, len(tasks),
		func(ctx context.Context, i int) bool {
			conn, err := s.World.Dial(tasks[i].src, tasks[i].addr, dot.Port)
			if err != nil {
				obs.Metrics(ctx).Counter("scanner_sweep_dials_total", "outcome", "closed").Add(1)
				return false
			}
			conn.Close()
			obs.Metrics(ctx).Counter("scanner_sweep_dials_total", "outcome", "open").Add(1)
			return true
		})
	if err != nil {
		return nil, fmt.Errorf("scanner: sweep %s: %w", label, err)
	}
	var open []netip.Addr
	for i, ok := range openFlags {
		if ok {
			open = append(open, tasks[i].addr)
		}
	}
	res.PortOpen = len(open)

	// Stage 2, DoT verification. Each responsive host's probe source is a
	// function of its position in the open list, so probe outcomes don't
	// depend on which worker picked the address up.
	probed, err := runner.MapCtx(obs.WithPool(ctx, "scan-probe"), workers, len(open),
		func(ctx context.Context, i int) probeOutcome {
			r, ok := s.probeDoT(s.Sources[i%len(s.Sources)], open[i])
			if ok {
				obs.Metrics(ctx).Counter("scanner_probes_total", "outcome", "resolver").Add(1)
			} else {
				obs.Metrics(ctx).Counter("scanner_probes_total", "outcome", "no-dot").Add(1)
			}
			return probeOutcome{r: r, ok: ok}
		})
	if err != nil {
		return nil, fmt.Errorf("scanner: probe %s: %w", label, err)
	}
	for _, p := range probed {
		if p.ok {
			res.Resolvers = append(res.Resolvers, p.r)
		}
	}

	sort.Slice(res.Resolvers, func(i, j int) bool {
		return res.Resolvers[i].Addr.Less(res.Resolvers[j].Addr)
	})
	if s.RatePPS > 0 {
		res.VirtualDuration = time.Duration(float64(res.ProbedAddrs)/float64(s.RatePPS)) * time.Second
	}
	span.SetInt("probed", int64(res.ProbedAddrs))
	span.SetInt("port_open", int64(res.PortOpen))
	span.SetInt("resolvers", int64(len(res.Resolvers)))
	span.Charge(res.VirtualDuration)
	return res, nil
}

// sweepTask pins one sweep target to its scan source by permuted position.
type sweepTask struct {
	addr netip.Addr
	src  netip.Addr
}

// sweepTasks materializes the permuted target list, recording opt-out skips
// into res.
func (s *Scanner) sweepTasks(perm *Permutation, res *Result) []sweepTask {
	var tasks []sweepTask
	for {
		idx, ok := perm.Next()
		if !ok {
			break
		}
		addr := s.Space.Addr(idx)
		if s.OptOut != nil && s.OptOut.Contains(addr) {
			res.SkippedOptOut++
			continue
		}
		tasks = append(tasks, sweepTask{addr: addr, src: s.Sources[len(tasks)%len(s.Sources)]})
	}
	return tasks
}

// ScanDoQ runs one full UDP/853 DoQ sweep and probe round.
func (s *Scanner) ScanDoQ(label string) (*Result, error) {
	return s.ScanDoQContext(context.Background(), label)
}

// ScanDoQContext is the DoQ counterpart of ScanContext: stage 1 sweeps the
// space with a minimal QUIC Initial datagram (any response — handshake or
// close — marks UDP/853 open, standing in for the SYN stage TCP gets for
// free), stage 2 completes RFC 9250 handshakes and verification queries
// against the responsive hosts. Sources, permutation and determinism rules
// match the DoT scan exactly.
func (s *Scanner) ScanDoQContext(ctx context.Context, label string) (*Result, error) {
	if len(s.Sources) == 0 {
		return nil, fmt.Errorf("scanner: no scan sources")
	}
	perm, err := NewPermutation(s.Space.Size, s.Seed+uint64(len(label)))
	if err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "scan-doq:"+label)
	res := &Result{Label: label, ProbedAddrs: s.Space.Size}
	workers := s.Workers
	if workers <= 0 {
		workers = 8
	}

	// As in ScanContext, outcome counters resolve from the worker ctx so
	// they land in the worker's shard registry.
	tasks := s.sweepTasks(perm, res)
	probePkt := doq.Probe()
	openFlags, err := runner.MapCtx(obs.WithPool(ctx, "scan-doq-sweep"), workers, len(tasks),
		func(ctx context.Context, i int) bool {
			resp, _, err := s.World.Exchange(tasks[i].src, tasks[i].addr, doq.Port, probePkt)
			if err != nil || len(resp) == 0 {
				obs.Metrics(ctx).Counter("scanner_doq_sweep_total", "outcome", "closed").Add(1)
				return false
			}
			obs.Metrics(ctx).Counter("scanner_doq_sweep_total", "outcome", "open").Add(1)
			return true
		})
	if err != nil {
		return nil, fmt.Errorf("scanner: doq sweep %s: %w", label, err)
	}
	var open []netip.Addr
	for i, ok := range openFlags {
		if ok {
			open = append(open, tasks[i].addr)
		}
	}
	res.PortOpen = len(open)

	probed, err := runner.MapCtx(obs.WithPool(ctx, "scan-doq-probe"), workers, len(open),
		func(ctx context.Context, i int) probeOutcome {
			r, ok := s.probeDoQ(s.Sources[i%len(s.Sources)], open[i])
			if ok {
				obs.Metrics(ctx).Counter("scanner_doq_probes_total", "outcome", "resolver").Add(1)
			} else {
				obs.Metrics(ctx).Counter("scanner_doq_probes_total", "outcome", "no-doq").Add(1)
			}
			return probeOutcome{r: r, ok: ok}
		})
	if err != nil {
		return nil, fmt.Errorf("scanner: doq probe %s: %w", label, err)
	}
	for _, p := range probed {
		if p.ok {
			res.Resolvers = append(res.Resolvers, p.r)
		}
	}

	sort.Slice(res.Resolvers, func(i, j int) bool {
		return res.Resolvers[i].Addr.Less(res.Resolvers[j].Addr)
	})
	if s.RatePPS > 0 {
		res.VirtualDuration = time.Duration(float64(res.ProbedAddrs)/float64(s.RatePPS)) * time.Second
	}
	span.SetInt("probed", int64(res.ProbedAddrs))
	span.SetInt("port_open", int64(res.PortOpen))
	span.SetInt("resolvers", int64(len(res.Resolvers)))
	span.Charge(res.VirtualDuration)
	return res, nil
}

// probeDoQ completes an RFC 9250 handshake and verification query, the DoQ
// analog of probeDoT. Opportunistic profile: discovery wants answers, not
// authentication — the chain is classified afterwards like DoT's.
func (s *Scanner) probeDoQ(src, addr netip.Addr) (Resolver, bool) {
	client := doq.NewClient(s.World, src, s.Roots, dot.Opportunistic)
	conn, err := client.Dial(addr)
	if err != nil {
		return Resolver{}, false
	}
	defer conn.Close()
	resp, err := conn.Query(s.ProbeDomain, dnswire.TypeA)
	if err != nil || resp.Rcode() != dnswire.RcodeSuccess || len(resp.Msg.Answers) == 0 {
		return Resolver{}, false
	}
	r := Resolver{Addr: addr, Country: s.World.Geo.Country(addr)}
	if a, ok := resp.FirstA(); ok && s.ExpectedA.IsValid() {
		r.AnswerCorrect = a == s.ExpectedA
	}
	chain := conn.PeerCertificates()
	if len(chain) > 0 {
		r.Provider = certs.ProviderKey(chain[0])
		r.CommonName = chain[0].Subject.CommonName
		r.NotAfter = chain[0].NotAfter
		r.CertStatus = certs.Classify(chain, s.Roots)
	} else {
		r.Provider = "(no certificate)"
		r.CertStatus = certs.StatusBadChain
	}
	return r, true
}

type probeOutcome struct {
	r  Resolver
	ok bool
}

// probeDoT issues the verification query of §3.1 ("probe the addresses with
// DoT queries of a domain registered by us"). Opportunistic profile: the
// point is to find out who answers, not to authenticate them.
func (s *Scanner) probeDoT(src, addr netip.Addr) (Resolver, bool) {
	client := dot.NewClient(s.World, src, s.Roots, dot.Opportunistic)
	client.Timeout = 2 * time.Second
	conn, err := client.Dial(addr)
	if err != nil {
		return Resolver{}, false
	}
	defer conn.Close()
	resp, err := conn.Query(s.ProbeDomain, dnswire.TypeA)
	if err != nil || resp.Rcode() != dnswire.RcodeSuccess || len(resp.Msg.Answers) == 0 {
		// Port open but "not providing DoT" — the vast majority in §3.2.
		return Resolver{}, false
	}
	r := Resolver{Addr: addr, Country: s.World.Geo.Country(addr)}
	if a, ok := resp.FirstA(); ok && s.ExpectedA.IsValid() {
		r.AnswerCorrect = a == s.ExpectedA
	}
	chain := conn.PeerCertificates()
	if len(chain) > 0 {
		r.Provider = certs.ProviderKey(chain[0])
		r.CommonName = chain[0].Subject.CommonName
		r.NotAfter = chain[0].NotAfter
		r.CertStatus = certs.Classify(chain, s.Roots)
	} else {
		r.Provider = "(no certificate)"
		r.CertStatus = certs.StatusBadChain
	}
	return r, true
}
