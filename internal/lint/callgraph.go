package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural half of doelint: a module-wide static
// call graph over the already type-checked packages, with per-function
// facts propagated transitively. The intraprocedural analyzers see one
// function at a time; walltaint, bufown's handoff rule, and hotalloc v2
// consult the graph to see across function and package boundaries.
//
// The graph is deliberately an under-approximation: only statically
// resolvable calls (package-level functions and concrete methods) become
// edges. Calls through interfaces, function values, and reflection are
// invisible, so interprocedural findings never rest on a speculative edge
// — the cost is that taint routed exclusively through an interface is not
// seen. Closure bodies are folded into their enclosing declaration: a fact
// inside a function literal charges the function that wrote it.

// Fact is one bit of behavior a function exhibits directly or — after
// propagation — transitively through its callees.
type Fact uint8

const (
	// FactWallClock: reads or schedules against the wall clock
	// (time.Now/Since/Until/After/AfterFunc/Tick/NewTicker/NewTimer/Sleep).
	FactWallClock Fact = 1 << iota
	// FactGlobalRand: draws from the global math/rand generator.
	FactGlobalRand
	// FactAlloc: allocates per call in the patterns the hotalloc contract
	// bans — make([]byte, ...) or fmt.Sprintf.
	FactAlloc
	// FactTakesContext: the signature accepts a context.Context.
	FactTakesContext
	// FactStoresContext: writes a context.Context into a struct field or
	// composite literal.
	FactStoresContext
	// FactBufGet: obtains a pooled buffer via bufpool.Get.
	FactBufGet
	// FactBufPut: returns a pooled buffer via bufpool.Put.
	FactBufPut
)

// String names the fact set for summaries and test output.
func (f Fact) String() string {
	names := []struct {
		bit  Fact
		name string
	}{
		{FactWallClock, "wallclock"},
		{FactGlobalRand, "globalrand"},
		{FactAlloc, "alloc"},
		{FactTakesContext, "takesctx"},
		{FactStoresContext, "storesctx"},
		{FactBufGet, "bufget"},
		{FactBufPut, "bufput"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// clockFacts are the facts a //doelint:clockboundary annotation absorbs.
const clockFacts = FactWallClock | FactGlobalRand

// edge is one statically resolved call site.
type edge struct {
	callee string    // symbolic ID of the called function
	pos    token.Pos // call position (valid for freshly parsed packages)
	posStr string    // rendered position, survives summary round-trips
}

// factSource records where a direct fact was introduced, for path-tailed
// finding messages ("... -> time.Now (netsim/clock.go:41)").
type factSource struct {
	what   string // e.g. "time.Now", "rand.Intn", "make([]byte)"
	posStr string
}

// funcNode is one function in the graph.
type funcNode struct {
	id     string
	pkg    string // import path of the defining package
	direct FactSet
	trans  FactSet
	edges  []edge
	// sources holds the first direct source per fact bit.
	sources map[Fact]factSource
	// hotpath: //doelint:hotpath — steady-state body must not churn the
	// allocator; alloc facts do not propagate through it (its own
	// discipline is enforced at its own declaration).
	hotpath bool
	// clockBoundary: //doelint:clockboundary — converts wall readings to
	// virtual time; clock facts do not propagate through it.
	clockBoundary bool
}

// FactSet is a bitmask of Facts.
type FactSet = Fact

// Graph is the module-wide call graph with propagated facts.
type Graph struct {
	nodes map[string]*funcNode
	// order preserves deterministic iteration (insertion order).
	order []string
}

// node returns the graph node for id, or nil.
func (g *Graph) node(id string) *funcNode {
	if g == nil {
		return nil
	}
	return g.nodes[id]
}

// Contribution is what a callee passes up to its caller: its transitive
// facts minus whatever its annotations absorb.
func (n *funcNode) contribution() FactSet {
	f := n.trans
	if n.clockBoundary {
		f &^= clockFacts
	}
	if n.hotpath {
		f &^= FactAlloc
	}
	return f
}

// TransFacts reports the propagated fact set for the function with the
// given symbolic ID (zero if unknown). Exposed for tests and summaries.
func (g *Graph) TransFacts(id string) FactSet {
	if n := g.node(id); n != nil {
		return n.trans
	}
	return 0
}

// DirectFacts reports the locally computed fact set for id.
func (g *Graph) DirectFacts(id string) FactSet {
	if n := g.node(id); n != nil {
		return n.direct
	}
	return 0
}

// funcID builds the symbolic, package-qualified identity of a function:
// "path.Func" for package-level functions, "path.Type.Method" for methods
// (pointer receivers collapse onto the type). The empty string means the
// function cannot anchor a graph node (interface method, builtin).
func funcID(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // interface or anonymous receiver: not resolvable
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return ""
		}
		return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

// graphBuilder accumulates nodes while packages are walked.
type graphBuilder struct {
	g     *Graph
	fset  *token.FileSet
	allow allowSet
}

func newGraphBuilder(fset *token.FileSet, allow allowSet) *graphBuilder {
	return &graphBuilder{
		g:     &Graph{nodes: make(map[string]*funcNode)},
		fset:  fset,
		allow: allow,
	}
}

// ensure returns the node for id, creating it on first sight.
func (b *graphBuilder) ensure(id, pkg string) *funcNode {
	if n := b.g.nodes[id]; n != nil {
		return n
	}
	n := &funcNode{id: id, pkg: pkg, sources: make(map[Fact]factSource)}
	b.g.nodes[id] = n
	b.g.order = append(b.g.order, id)
	return n
}

// addPackage walks one type-checked package and records a node per
// function declaration, with direct facts and call edges.
func (b *graphBuilder) addPackage(pkgPath string, files []*ast.File, info *types.Info) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name == "_" {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			id := funcID(obj)
			if id == "" {
				continue
			}
			node := b.ensure(id, pkgPath)
			node.hotpath = node.hotpath || hasFuncDirective(fn, "hotpath")
			node.clockBoundary = node.clockBoundary || hasFuncDirective(fn, "clockboundary")
			if sigTakesContext(obj) {
				b.mark(node, FactTakesContext, "context.Context parameter", fn.Pos())
			}
			b.walkBody(node, fn.Body, info)
		}
	}
}

// mark records a direct fact with its first source position.
func (b *graphBuilder) mark(n *funcNode, f Fact, what string, pos token.Pos) {
	if n.direct&f == 0 {
		p := b.fset.Position(pos)
		n.sources[f] = factSource{what: what, posStr: shortPos(p)}
	}
	n.direct |= f
}

// shortPos renders a position with the file path trimmed to its last two
// segments, keeping path-independent messages.
func shortPos(p token.Position) string {
	file := p.Filename
	parts := strings.Split(file, "/")
	if len(parts) > 2 {
		file = strings.Join(parts[len(parts)-2:], "/")
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// allowedAt reports whether any of the named checks is suppressed on the
// source line of pos. Fact sources under an allow directive do not taint
// callers: the justification at the source covers the whole chain.
func (b *graphBuilder) allowedAt(pos token.Pos, checks ...string) bool {
	p := b.fset.Position(pos)
	for _, c := range checks {
		if b.allow[allowKey{p.Filename, p.Line, c}] {
			return true
		}
	}
	return false
}

// walkBody collects direct facts and call edges from a function body,
// descending into function literals (their behavior charges the
// declaration that contains them).
func (b *graphBuilder) walkBody(node *funcNode, body *ast.BlockStmt, info *types.Info) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			b.recordCall(node, x, info)
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if i < len(x.Rhs) && isContextType(info.TypeOf(x.Rhs[i])) {
					b.mark(node, FactStoresContext, "context stored in field", x.Pos())
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if isContextType(info.TypeOf(val)) {
					b.mark(node, FactStoresContext, "context stored in composite literal", val.Pos())
				}
			}
		}
		return true
	})
}

// recordCall classifies one call expression: primitive fact, edge to a
// module function, or nothing (unresolvable).
func (b *graphBuilder) recordCall(node *funcNode, call *ast.CallExpr, info *types.Info) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if obj == nil {
			obj = info.Defs[fun]
		}
		switch o := obj.(type) {
		case *types.Builtin:
			if o.Name() == "make" && isByteSlice(info.TypeOf(call)) &&
				!b.allowedAt(call.Pos(), "hotalloc") {
				b.mark(node, FactAlloc, "make([]byte)", call.Pos())
			}
		case *types.Func:
			b.addEdgeOrFact(node, o, call.Pos())
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				b.addEdgeOrFact(node, fn, call.Pos())
			}
			return
		}
		// Qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			b.addEdgeOrFact(node, fn, call.Pos())
		}
	}
}

// addEdgeOrFact turns a resolved callee into a primitive fact (standard
// library sources) or a call edge (module functions).
func (b *graphBuilder) addEdgeOrFact(node *funcNode, fn *types.Func, pos token.Pos) {
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		// Package-level functions only: time.Time.After/Sub/... are pure
		// value methods, not wall-clock reads.
		if fn.Type().(*types.Signature).Recv() == nil &&
			(wallClockFuncs[fn.Name()] || fn.Name() == "Sleep") {
			if !b.allowedAt(pos, "walltaint", "determinism", "obsclock", "simsleep") {
				b.mark(node, FactWallClock, "time."+fn.Name(), pos)
			}
		}
		return
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
			if !b.allowedAt(pos, "walltaint", "determinism") {
				b.mark(node, FactGlobalRand, "rand."+fn.Name(), pos)
			}
		}
		return
	case "fmt":
		if fn.Name() == "Sprintf" && !b.allowedAt(pos, "hotalloc") {
			b.mark(node, FactAlloc, "fmt.Sprintf", pos)
		}
		return
	}
	if isBufpoolPath(pkg.Path()) {
		switch fn.Name() {
		case "Get":
			b.mark(node, FactBufGet, "bufpool.Get", pos)
		case "Put":
			b.mark(node, FactBufPut, "bufpool.Put", pos)
		}
		// bufpool's own internals still form edges so its (allow-masked)
		// allocations stay visible to the propagation machinery.
	}
	id := funcID(fn)
	if id == "" || node.id == id {
		return
	}
	for _, e := range node.edges {
		if e.callee == id {
			return // keep the first call site per callee: stable paths
		}
	}
	node.edges = append(node.edges, edge{
		callee: id,
		pos:    pos,
		posStr: shortPos(b.fset.Position(pos)),
	})
}

// isBufpoolPath reports whether path is the module's buffer pool package.
func isBufpoolPath(path string) bool {
	return path == "bufpool" || strings.HasSuffix(path, "/bufpool")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sigTakesContext reports whether the function's signature has a
// context.Context parameter.
func sigTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// finish propagates facts to a fixpoint and returns the graph. Facts flow
// callee → caller; a callee's contribution is masked by its annotations
// (clockboundary absorbs clock facts, hotpath absorbs alloc facts).
// Edges to functions outside the graph (other modules) contribute nothing.
func (b *graphBuilder) finish() *Graph {
	g := b.g
	for _, id := range g.order {
		g.nodes[id].trans = g.nodes[id].direct
	}
	for changed := true; changed; {
		changed = false
		for _, id := range g.order {
			n := g.nodes[id]
			for _, e := range n.edges {
				callee := g.nodes[e.callee]
				if callee == nil {
					continue
				}
				if add := callee.contribution() &^ n.trans; add != 0 {
					n.trans |= add
					changed = true
				}
			}
		}
	}
	return g
}

// taintStep finds the first call edge of n through which fact arrives,
// in source order — deterministic because edges are recorded in walk order.
func (n *funcNode) taintStep(g *Graph, fact Fact) (edge, *funcNode) {
	for _, e := range n.edges {
		callee := g.nodes[e.callee]
		if callee != nil && callee.contribution()&fact != 0 {
			return e, callee
		}
	}
	return edge{}, nil
}

// taintPath reconstructs a call chain from id down to the direct source of
// fact: the returned steps name successive callees, and source describes
// the primitive read at the end. The chain follows first-edge-in-source-
// order at every hop, so it is stable across runs.
func (g *Graph) taintPath(id string, fact Fact) (steps []string, callPos token.Pos, source factSource) {
	n := g.node(id)
	if n == nil {
		return nil, token.NoPos, factSource{}
	}
	steps = append(steps, displayName(n.id))
	seen := map[string]bool{n.id: true}
	for n.direct&fact == 0 {
		e, callee := n.taintStep(g, fact)
		if callee == nil || seen[callee.id] {
			break
		}
		if callPos == token.NoPos {
			callPos = e.pos
		}
		steps = append(steps, displayName(callee.id))
		seen[callee.id] = true
		n = callee
	}
	return steps, callPos, n.sources[fact]
}

// displayName trims a symbolic ID to its last package segment for
// readable path messages: "a.example/m/util.Helper" -> "util.Helper".
func displayName(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

// renderTaint builds the canonical "A -> B -> time.Now (file:line)" chain.
func renderTaint(steps []string, source factSource) string {
	chain := strings.Join(steps, " -> ")
	if source.what == "" {
		return chain
	}
	return fmt.Sprintf("%s -> %s (%s)", chain, source.what, source.posStr)
}

// hasFuncDirective reports whether the declaration's doc comment carries
// the given doelint directive verb.
func hasFuncDirective(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	want := directivePrefix + verb
	for _, c := range fn.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}
