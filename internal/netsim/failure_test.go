package netsim

import (
	"crypto/tls"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"dnsencryption.info/doe/internal/geo"
)

func TestCloseDuringTLSHandshakeFailsCleanly(t *testing.T) {
	w := newTestWorld(t)
	// Server that accepts and immediately closes: the client's TLS
	// handshake must error, not hang.
	w.RegisterStream(serverIP, 853, func(conn *Conn) { conn.Close() })
	conn, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	tc := tls.Client(conn, &tls.Config{InsecureSkipVerify: true}) //nolint:gosec // test
	if err := tc.Handshake(); err == nil {
		t.Error("handshake against closing server succeeded")
	}
}

func TestDialAfterServiceClosedRefused(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	if _, err := w.Dial(clientIP, serverIP, 80); err != nil {
		t.Fatal(err)
	}
	w.CloseService(serverIP, 80)
	if _, err := w.Dial(clientIP, serverIP, 80); err == nil {
		t.Error("dial to closed service succeeded")
	}
}

func TestPastDeadlineFailsImmediately(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, func(conn *Conn) { select {} })
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(-time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("read past deadline succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("past deadline did not fail promptly")
	}
}

func TestHalfCloseSemantics(t *testing.T) {
	w := newTestWorld(t)
	got := make(chan []byte, 1)
	w.RegisterStream(serverIP, 80, func(conn *Conn) {
		data, _ := io.ReadAll(conn)
		got <- data
		conn.Close()
	})
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("last words")) //nolint:errcheck
	conn.Close()
	select {
	case data := <-got:
		if string(data) != "last words" {
			t.Errorf("server received %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never finished reading")
	}
}

func TestQuickVirtualClockMonotone(t *testing.T) {
	// Property: any interleaving of writes, reads and AddLatency calls
	// never moves a connection's clock backwards.
	f := func(ops []uint8) bool {
		client, server := Pair(
			Addr{IP: netip.MustParseAddr("10.0.0.1"), Port: 1},
			Addr{IP: netip.MustParseAddr("10.0.0.2"), Port: 2},
			10*time.Millisecond, rand.New(rand.NewSource(1)), 0.1)
		defer client.Close()
		defer server.Close()
		last := time.Duration(0)
		buf := make([]byte, 8)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				client.Write([]byte{1}) //nolint:errcheck
			case 1:
				server.Write([]byte{2}) //nolint:errcheck
			case 2:
				client.SetReadDeadline(time.Now().Add(time.Millisecond))
				client.Read(buf) //nolint:errcheck
			case 3:
				client.AddLatency(time.Duration(op) * time.Microsecond)
			}
			now := client.Elapsed()
			if now < last {
				return false
			}
			last = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDatagramDeterministicLatency(t *testing.T) {
	// Property: datagram exchanges between fixed endpoints always report
	// the same virtual latency (RTT + handler proc), regardless of count.
	w := NewWorld(9)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "JP"})
	w.RegisterDatagram(serverIP, 53, func(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
		return req, 2 * time.Millisecond, nil
	})
	var first time.Duration
	for i := 0; i < 50; i++ {
		_, elapsed, err := w.Exchange(clientIP, serverIP, 53, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = elapsed
		} else if elapsed != first {
			t.Fatalf("exchange %d latency %v != %v", i, elapsed, first)
		}
	}
}

func TestInterceptorSkipsUnmatchedPorts(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 80, echoHandler)
	ca := mustCA(t)
	mitm := NewTLSInterceptor(ca, []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}, 853)
	w.AddPolicy(mitm)
	conn, err := w.Dial(clientIP, serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	conn.Write([]byte("plain")) //nolint:errcheck
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "plain" {
		t.Fatalf("port-80 traffic disturbed: %q, %v", buf, err)
	}
	if len(mitm.Sessions()) != 0 {
		t.Error("interceptor recorded sessions for unmatched port")
	}
}

func TestInterceptorOriginUnreachable(t *testing.T) {
	w := newTestWorld(t)
	ca := mustCA(t)
	mitm := NewTLSInterceptor(ca, []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}, 853)
	w.AddPolicy(mitm)
	// No origin service exists: the intercepted dial connects (the MITM
	// accepted) but the TLS handshake must fail, not hang.
	conn, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	tc := tls.Client(conn, &tls.Config{InsecureSkipVerify: true}) //nolint:gosec // test
	if err := tc.Handshake(); err == nil {
		t.Error("handshake through MITM with dead origin succeeded")
	}
}
