package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *listModule
	Error      *listError
}

type listModule struct {
	Path string
	Main bool
}

type listError struct {
	Err string
}

// Run loads the packages matched by patterns (resolved by the go tool from
// dir), type-checks every package of the main module from source, runs the
// enabled analyzers, applies //doelint:allow directives, and returns the
// surviving findings sorted by position. Dependencies — standard library and
// module-internal alike — are imported from compiler export data produced by
// `go list -export`, so the whole module loads in well under a second and no
// dependency outside the standard library is needed.
func Run(dir string, patterns []string, cfg *Config) ([]Finding, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	for _, c := range cfg.Checks {
		if !knownCheck(c) {
			return nil, fmt.Errorf("lint: unknown check %q (run doelint -list for the registered checks)", c)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	var analyzers []*Analyzer
	for _, a := range registry {
		if cfg.checkEnabled(a.Name) {
			analyzers = append(analyzers, a)
		}
	}

	var findings []Finding
	linted := 0
	allow := allowSet{}
	for _, lp := range pkgs {
		if lp.Standard || lp.DepOnly || lp.Module == nil || !lp.Module.Main {
			continue
		}
		linted++
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := parseFiles(fset, lp)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if typeErr == nil {
					typeErr = err
				}
			},
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if typeErr != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, typeErr)
		}
		for _, f := range files {
			bad := parseDirectives(fset, f, allow)
			findings = append(findings, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				Pkg:      tpkg,
				Info:     info,
				Config:   cfg,
				findings: &findings,
			}
			a.Run(pass)
		}
	}

	if linted == 0 {
		return nil, fmt.Errorf("lint: patterns %v matched no main-module packages in %s", patterns, dir)
	}

	findings = allow.filter(findings)
	relativize(findings, dir)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// goList shells out to the go tool for package metadata and export data.
// The go tool is the one dependency a Go build already has; -export makes it
// write compiler export data for every listed package into the build cache
// and report the file paths, which is how the driver resolves imports
// without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, lp *listPackage) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// relativize rewrites finding paths relative to dir when possible, for
// stable output independent of where the module happens to be checked out.
func relativize(findings []Finding, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(abs, findings[i].File); err == nil && !filepath.IsAbs(rel) &&
			rel != ".." && !((len(rel) > 2) && rel[:3] == ".."+string(filepath.Separator)) {
			findings[i].File = rel
		}
	}
}
