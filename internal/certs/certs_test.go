package certs

import (
	"net/netip"
	"testing"
	"time"
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("DoE Test Root", true)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestValidLeafClassifiesValid(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(LeafOptions{
		CommonName: "dns.example.com",
		DNSNames:   []string{"dns.example.com"},
		IPs:        []netip.Addr{netip.MustParseAddr("192.0.2.1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(leaf.Chain, Pool(ca)); got != StatusValid {
		t.Errorf("Classify = %v, want valid", got)
	}
}

func TestExpiredLeaf(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.IssueExpired(LeafOptions{CommonName: "old.example.com"}, 9*30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(leaf.Chain, Pool(ca)); got != StatusExpired {
		t.Errorf("Classify = %v, want expired", got)
	}
	// The paper notes certificates that expired in Jul 2018, ~9 months
	// before the May 1 2019 scan.
	if !leaf.Cert.NotAfter.Before(RefTime) {
		t.Error("expired cert NotAfter not before RefTime")
	}
}

func TestSelfSignedLeaf(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := SelfSigned(LeafOptions{CommonName: "Perfect Privacy"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(leaf.Chain, Pool(ca)); got != StatusSelfSigned {
		t.Errorf("Classify = %v, want self-signed", got)
	}
}

func TestBrokenChainLeaf(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.IssueBrokenChain(LeafOptions{CommonName: "dns.broken.example"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(leaf.Chain, Pool(ca)); got != StatusBadChain {
		t.Errorf("Classify = %v, want invalid chain", got)
	}
}

func TestUntrustedCAChain(t *testing.T) {
	trusted := newTestCA(t)
	rogue, err := NewCA("DPI Device CA", false)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := rogue.Issue(LeafOptions{CommonName: "dns.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(leaf.Chain, Pool(trusted, rogue)); got != StatusBadChain {
		t.Errorf("Classify = %v, want invalid chain (rogue CA not in pool)", got)
	}
}

func TestEmptyChain(t *testing.T) {
	if got := Classify(nil, Pool()); got != StatusBadChain {
		t.Errorf("Classify(nil) = %v, want invalid chain", got)
	}
}

func TestResignPreservesFieldsButFailsVerification(t *testing.T) {
	ca := newTestCA(t)
	orig, err := ca.Issue(LeafOptions{
		CommonName: "cloudflare-dns.com",
		DNSNames:   []string{"cloudflare-dns.com", "1dot1dot1dot1.cloudflare-dns.com"},
		IPs:        []netip.Addr{netip.MustParseAddr("1.1.1.1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	mitm, err := NewCA("SonicWall Firewall DPI-SSL", false)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := mitm.Resign(orig.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if forged.Cert.Subject.CommonName != orig.Cert.Subject.CommonName {
		t.Error("Resign changed the subject")
	}
	if len(forged.Cert.DNSNames) != 2 {
		t.Errorf("Resign lost SANs: %v", forged.Cert.DNSNames)
	}
	if got := Classify(forged.Chain, Pool(ca)); got != StatusBadChain {
		t.Errorf("forged chain = %v, want invalid chain", got)
	}
	if got := Classify(orig.Chain, Pool(ca)); got != StatusValid {
		t.Errorf("original chain = %v, want valid", got)
	}
}

func TestFortiGateDefault(t *testing.T) {
	leaf, err := FortiGateDefault()
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Cert.Subject.CommonName != FortiGateDefaultCN {
		t.Errorf("CN = %q", leaf.Cert.Subject.CommonName)
	}
	if got := Classify(leaf.Chain, Pool()); got != StatusSelfSigned {
		t.Errorf("Classify = %v, want self-signed", got)
	}
}

func TestProviderKey(t *testing.T) {
	ca := newTestCA(t)
	cases := []struct {
		cn   string
		want string
	}{
		{"dns.example.com", "example.com"},
		{"one.one.one.one", "one.one"},
		{"Perfect Privacy", "Perfect Privacy"},
		{"cleanbrowsing.org", "cleanbrowsing.org"},
		{FortiGateDefaultCN, FortiGateDefaultCN},
	}
	for _, c := range cases {
		leaf, err := ca.Issue(LeafOptions{CommonName: c.cn})
		if err != nil {
			t.Fatal(err)
		}
		if got := ProviderKey(leaf.Cert); got != c.want {
			t.Errorf("ProviderKey(%q) = %q, want %q", c.cn, got, c.want)
		}
	}
}

func TestProviderKeyNoCN(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(LeafOptions{DNSNames: []string{"dns.fallback.example.org"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ProviderKey(leaf.Cert); got != "example.org" {
		t.Errorf("ProviderKey = %q, want example.org", got)
	}
}

func TestTLSCertificate(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(LeafOptions{CommonName: "dns.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	tc := leaf.TLSCertificate()
	if len(tc.Certificate) != 2 {
		t.Errorf("chain length = %d, want 2", len(tc.Certificate))
	}
	if tc.Leaf == nil || tc.PrivateKey == nil {
		t.Error("TLSCertificate missing leaf or key")
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusValid:      "valid",
		StatusExpired:    "expired",
		StatusSelfSigned: "self-signed",
		StatusBadChain:   "invalid chain",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), w)
		}
	}
}
