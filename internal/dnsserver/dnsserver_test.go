package dnsserver

import (
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP   = netip.MustParseAddr("10.1.0.2")
	resolverIP = netip.MustParseAddr("192.0.2.53")
	authIP     = netip.MustParseAddr("198.51.100.53")
)

func newWorld() *netsim.World {
	w := netsim.NewWorld(7)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	w.Geo.Register(netip.MustParsePrefix("198.51.100.0/24"), geo.Location{Country: "US"})
	return w
}

func TestZoneAnswersAndWildcard(t *testing.T) {
	z := NewZone("measure.example.org")
	z.WildcardA = netip.MustParseAddr("203.0.113.1")
	z.Add("static.measure.example.org", 300, dnswire.A{Addr: netip.MustParseAddr("203.0.113.2")})

	q := dnswire.NewQuery(1, "static.measure.example.org", dnswire.TypeA)
	resp, _ := z.ServeDNS(clientIP, q)
	if a, ok := resp.Answers[0].Data.(dnswire.A); !ok || a.Addr != netip.MustParseAddr("203.0.113.2") {
		t.Errorf("static answer = %v", resp.Answers)
	}

	q2 := dnswire.NewQuery(2, "nonce-12345.measure.example.org", dnswire.TypeA)
	resp2, _ := z.ServeDNS(clientIP, q2)
	if a, ok := resp2.Answers[0].Data.(dnswire.A); !ok || a.Addr != z.WildcardA {
		t.Errorf("wildcard answer = %v", resp2.Answers)
	}
	names := z.QueriedNames()
	if len(names) != 2 || names[1] != "nonce-12345.measure.example.org." {
		t.Errorf("queried names = %v", names)
	}
}

func TestZoneRefusesOutOfZone(t *testing.T) {
	z := NewZone("measure.example.org")
	q := dnswire.NewQuery(1, "www.google.com", dnswire.TypeA)
	resp, _ := z.ServeDNS(clientIP, q)
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Rcode)
	}
}

func TestZoneNXDomainAndNoData(t *testing.T) {
	z := NewZone("example.org")
	z.Add("txt.example.org", 60, dnswire.TXT{Texts: []string{"x"}})
	resp, _ := z.ServeDNS(clientIP, dnswire.NewQuery(1, "missing.example.org", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("missing name rcode = %v, want NXDOMAIN", resp.Rcode)
	}
	resp2, _ := z.ServeDNS(clientIP, dnswire.NewQuery(2, "txt.example.org", dnswire.TypeA))
	if resp2.Rcode != dnswire.RcodeSuccess || len(resp2.Answers) != 0 {
		t.Errorf("NODATA response = %v / %d answers", resp2.Rcode, len(resp2.Answers))
	}
}

func TestStaticHandler(t *testing.T) {
	fixed := netip.MustParseAddr("103.247.37.37")
	s := Static{Addr: fixed}
	resp, _ := s.ServeDNS(clientIP, dnswire.NewQuery(1, "anything.example.com", dnswire.TypeA))
	if a, ok := resp.Answers[0].Data.(dnswire.A); !ok || a.Addr != fixed {
		t.Errorf("static resolver answer = %v", resp.Answers)
	}
}

func TestServFailHandler(t *testing.T) {
	resp, _ := ServFail{}.ServeDNS(clientIP, dnswire.NewQuery(1, "x.example", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v", resp.Rcode)
	}
}

// setupRecursive wires a zone behind a recursive resolver on the test world.
func setupRecursive(t *testing.T, w *netsim.World) *Resolver {
	t.Helper()
	z := NewZone("measure.example.org")
	z.WildcardA = netip.MustParseAddr("203.0.113.1")
	w.RegisterDatagram(authIP, 53, DatagramHandler(z))
	r := NewResolver(w, resolverIP, map[string]netip.Addr{"measure.example.org": authIP}, 99)
	w.RegisterDatagram(resolverIP, 53, DatagramHandler(r))
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		ServeStream(conn, r)
	})
	return r
}

func TestRecursiveResolutionOverUDP(t *testing.T) {
	w := newWorld()
	setupRecursive(t, w)
	c := dnsclient.New(w, clientIP)
	res, err := c.QueryUDP(resolverIP, "abc.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Latency <= 0 {
		t.Error("latency not accounted")
	}
}

func TestRecursiveCacheMakesSecondQueryFaster(t *testing.T) {
	w := newWorld()
	r := setupRecursive(t, w)
	c := dnsclient.New(w, clientIP)
	first, err := c.QueryUDP(resolverIP, "cached.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheLen() != 1 {
		t.Errorf("cache len = %d, want 1", r.CacheLen())
	}
	second, err := c.QueryUDP(resolverIP, "cached.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if second.Latency >= first.Latency {
		t.Errorf("cached query latency %v not below first %v", second.Latency, first.Latency)
	}
}

func TestResolverServFailOnUnknownZone(t *testing.T) {
	w := newWorld()
	r := NewResolver(w, resolverIP, map[string]netip.Addr{}, 1)
	resp, _ := r.ServeDNS(clientIP, dnswire.NewQuery(5, "unrouted.example", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Rcode)
	}
}

func TestStreamServerConnectionReuse(t *testing.T) {
	w := newWorld()
	setupRecursive(t, w)
	c := dnsclient.New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Several queries over one connection (RFC 7766 reuse).
	var latencies []time.Duration
	for i := 0; i < 5; i++ {
		res, err := conn.Query("q"+string(rune('a'+i))+".measure.example.org", dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		latencies = append(latencies, res.Latency)
	}
	// Reused-connection queries exclude the handshake; each is roughly one
	// RTT (plus resolver processing), far below setup + query.
	if latencies[1] >= conn.SetupLatency()+latencies[0] {
		t.Errorf("reused query latency %v not below setup+first %v", latencies[1], conn.SetupLatency()+latencies[0])
	}
}

func TestQueryTCPFreshConnection(t *testing.T) {
	w := newWorld()
	setupRecursive(t, w)
	c := dnsclient.New(w, clientIP)
	res, err := c.QueryTCP(resolverIP, "fresh.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.FirstA(); !ok {
		t.Error("no A answer over TCP")
	}
}

func TestDatagramHandlerRejectsGarbage(t *testing.T) {
	h := DatagramHandler(ServFail{})
	if _, _, err := h(clientIP, []byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestUDPQueryAgainstStatic(t *testing.T) {
	w := newWorld()
	fixed := netip.MustParseAddr("103.247.37.37")
	w.RegisterDatagram(resolverIP, 53, DatagramHandler(Static{Addr: fixed}))
	c := dnsclient.New(w, clientIP)
	res, err := c.QueryUDP(resolverIP, "validate.ourdomain.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := res.FirstA(); a != fixed {
		t.Errorf("got %v, want the fixed address", a)
	}
}

func TestClientRetriesUDP(t *testing.T) {
	w := newWorld()
	fails := 0
	w.RegisterDatagram(resolverIP, 53, func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		if fails == 0 {
			fails++
			return nil, 0, netsim.ErrBlackhole
		}
		return DatagramHandler(Static{Addr: netip.MustParseAddr("203.0.113.9")})(from, req)
	})
	c := dnsclient.New(w, clientIP)
	c.Retries = 1
	if _, err := c.QueryUDP(resolverIP, "retry.example", dnswire.TypeA); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
}

// TestCacheLimitCapsInsertionWithoutChangingAnswers pins the streaming-
// campaign contract: with task-private (never-repeated) names, a capped
// cache serves identical answers while heap stays O(limit).
func TestCacheLimitCapsInsertionWithoutChangingAnswers(t *testing.T) {
	w := newWorld()
	r := setupRecursive(t, w)
	r.CacheLimit = 3
	c := dnsclient.New(w, clientIP)
	for i := 0; i < 10; i++ {
		name := "n" + string(rune('a'+i)) + ".measure.example.org"
		res, err := c.QueryUDP(resolverIP, name, dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if a, ok := res.FirstA(); !ok || a != netip.MustParseAddr("203.0.113.1") {
			t.Fatalf("query %d answer = %v", i, res.Msg.Answers)
		}
	}
	if got := r.CacheLen(); got != 3 {
		t.Errorf("cache len = %d, want capped at 3", got)
	}
	// Entries inserted before the cap filled still hit; names seen after
	// the cap filled were never inserted and pay the upstream trip again.
	hit, err := c.QueryUDP(resolverIP, "na.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := c.QueryUDP(resolverIP, "nj.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Latency >= miss.Latency {
		t.Errorf("pre-cap entry latency %v not below uncached %v", hit.Latency, miss.Latency)
	}
}
