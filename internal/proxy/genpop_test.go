package proxy

import (
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"
)

// genNode synthesizes a deterministic test population on 12.0.x.y.
func genNode(i int) ExitNode {
	return ExitNode{
		ID:       fmt.Sprintf("v-%08d-US", i),
		Addr:     netip.AddrFrom4([4]byte{12, 0, byte(i >> 8), byte(i)}),
		Country:  "US",
		ASN:      30000 + i,
		ASName:   "Gen ISP",
		Lifetime: time.Hour,
	}
}

func TestGeneratedNodeTunnels(t *testing.T) {
	w := newWorld()
	echoTarget(w, 7)
	n := NewNetwork(w, "genrack", superIP, 5)
	defer n.Shutdown()
	n.SetGenerator(1000, genNode)

	if got := n.GenCount(); got != 1000 {
		t.Fatalf("GenCount = %d", got)
	}
	node, release := n.Acquire(42)
	defer release()
	if node.ID != "v-00000042-US" {
		t.Fatalf("acquired node %q", node.ID)
	}
	// The acquired node's lifetime must be visible to the platform API...
	if up, err := n.RemainingUptime(node.ID); err != nil || up != time.Hour {
		t.Fatalf("RemainingUptime = %v, %v", up, err)
	}
	// ...and the super proxy must tunnel through it by username.
	conn, err := n.Dial(measureIP, node.ID, targetIP, 7)
	if err != nil {
		t.Fatalf("Dial via generated node: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through generated node: %q, %v", buf, err)
	}
	// Tunneling consumed session lifetime on the acquired node.
	if up, _ := n.RemainingUptime(node.ID); up >= time.Hour {
		t.Fatalf("lifetime not consumed: %v", up)
	}
}

// TestAcquireReleaseKeepsWorldSmall pins the lazy-world invariant: world
// state (listeners, ledger entries) scales with acquired nodes, and release
// returns the world to its baseline — O(workers), never O(population).
func TestAcquireReleaseKeepsWorldSmall(t *testing.T) {
	w := newWorld()
	n := NewNetwork(w, "genrack", superIP, 5)
	defer n.Shutdown()
	n.SetGenerator(1_000_000, genNode)

	baseline := w.NumListeners()
	const held = 8
	releases := make([]func(), 0, held)
	for i := 0; i < held; i++ {
		_, rel := n.Acquire(i * 1000)
		releases = append(releases, rel)
	}
	if got := w.NumListeners(); got != baseline+held {
		t.Fatalf("listeners while holding %d nodes = %d, want %d", held, got, baseline+held)
	}
	if got := n.ActiveCount(); got != held {
		t.Fatalf("ActiveCount = %d, want %d", got, held)
	}
	for _, rel := range releases {
		rel()
	}
	if got := w.NumListeners(); got != baseline {
		t.Fatalf("listeners after release = %d, want baseline %d", got, baseline)
	}
	if got := n.ActiveCount(); got != 0 {
		t.Fatalf("ActiveCount after release = %d", got)
	}
	// A released node is gone: the platform no longer knows the ID.
	node := genNode(0)
	if _, err := n.RemainingUptime(node.ID); err == nil {
		t.Fatal("released node still visible to RemainingUptime")
	}
	if _, err := n.Dial(measureIP, node.ID, targetIP, 7); err == nil {
		t.Fatal("released node still dialable")
	}
}
