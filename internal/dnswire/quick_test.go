package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomLabel draws a DNS label of 1..12 lowercase characters.
func randomLabel(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet)-1)]
	}
	// Labels must not start or end with '-' in practice; keep it simple.
	if b[0] == '-' {
		b[0] = 'a'
	}
	if b[n-1] == '-' {
		b[n-1] = 'z'
	}
	return string(b)
}

func randomName(r *rand.Rand) string {
	n := 1 + r.Intn(5)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = randomLabel(r)
	}
	return strings.Join(labels, ".") + "."
}

// genName lets testing/quick produce valid names via a wrapper type.
type wireName string

// Generate implements quick.Generator.
func (wireName) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(wireName(randomName(r)))
}

func TestQuickNameRoundTrip(t *testing.T) {
	f := func(n wireName) bool {
		buf, err := appendName(nil, string(n), nil)
		if err != nil {
			return false
		}
		got, off, err := readName(buf, 0)
		return err == nil && off == len(buf) && got == CanonicalName(string(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickNameCompressionRoundTrip(t *testing.T) {
	// Packing many names sharing suffixes with one compression map must
	// decode back to the same names.
	f := func(a, b wireName) bool {
		shared := "shared." + string(a)
		names := []string{string(a), shared, string(b), shared, "x." + shared}
		cmp := &packState{off: map[string]int{}}
		var buf []byte
		var offs []int
		var err error
		for _, n := range names {
			offs = append(offs, len(buf))
			if buf, err = appendName(buf, n, cmp); err != nil {
				return false
			}
		}
		for i, n := range names {
			got, _, err := readName(buf, offs[i])
			if err != nil || got != CanonicalName(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Generate implements quick.Generator for Message, producing structurally
// valid random messages.
func (Message) Generate(r *rand.Rand, _ int) reflect.Value {
	m := Message{Header: Header{
		ID:                 uint16(r.Intn(0x10000)),
		Response:           r.Intn(2) == 0,
		Authoritative:      r.Intn(2) == 0,
		RecursionDesired:   r.Intn(2) == 0,
		RecursionAvailable: r.Intn(2) == 0,
		Rcode:              Rcode(r.Intn(6)),
	}}
	for i := 0; i < 1+r.Intn(2); i++ {
		m.Questions = append(m.Questions, Question{
			Name: randomName(r), Type: TypeA, Class: ClassINET,
		})
	}
	types := []func() RData{
		func() RData {
			var ip [4]byte
			r.Read(ip[:])
			return A{Addr: netip.AddrFrom4(ip)}
		},
		func() RData {
			var ip [16]byte
			r.Read(ip[:])
			ip[0] = 0x20 // keep it a genuine IPv6, not 4-in-6
			return AAAA{Addr: netip.AddrFrom16(ip)}
		},
		func() RData { return CNAME{Target: randomName(r)} },
		func() RData { return NS{Host: randomName(r)} },
		func() RData { return MX{Preference: uint16(r.Intn(100)), Host: randomName(r)} },
		func() RData { return TXT{Texts: []string{randomLabel(r)}} },
		func() RData { return PTR{Target: randomName(r)} },
	}
	for i := 0; i < r.Intn(4); i++ {
		m.Answers = append(m.Answers, Record{
			Name:  randomName(r),
			Class: ClassINET,
			TTL:   uint32(r.Intn(86400)),
			Data:  types[r.Intn(len(types))](),
		})
	}
	return reflect.ValueOf(m)
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(m Message) bool {
		packed, err := m.Pack()
		if err != nil {
			t.Logf("pack error: %v", err)
			return false
		}
		got, err := Unpack(packed)
		if err != nil {
			t.Logf("unpack error: %v", err)
			return false
		}
		// Canonicalize the original for comparison.
		want := m
		for i := range want.Questions {
			want.Questions[i].Name = CanonicalName(want.Questions[i].Name)
		}
		for i := range want.Answers {
			want.Answers[i].Name = CanonicalName(want.Answers[i].Name)
		}
		if got.Header != want.Header {
			t.Logf("header: got %+v want %+v", got.Header, want.Header)
			return false
		}
		if !reflect.DeepEqual(got.Questions, want.Questions) {
			return false
		}
		if len(got.Answers) != len(want.Answers) {
			return false
		}
		for i := range want.Answers {
			if got.Answers[i].Name != want.Answers[i].Name ||
				!rdataEqual(got.Answers[i].Data, want.Answers[i].Data) {
				t.Logf("answer %d: got %v want %v", i, got.Answers[i], want.Answers[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// rdataEqual compares RDATA canonicalizing embedded names.
func rdataEqual(a, b RData) bool {
	switch x := a.(type) {
	case CNAME:
		y, ok := b.(CNAME)
		return ok && x.Target == CanonicalName(y.Target)
	case NS:
		y, ok := b.(NS)
		return ok && x.Host == CanonicalName(y.Host)
	case PTR:
		y, ok := b.(PTR)
		return ok && x.Target == CanonicalName(y.Target)
	case MX:
		y, ok := b.(MX)
		return ok && x.Preference == y.Preference && x.Host == CanonicalName(y.Host)
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestQuickPaddingAlwaysBlockAligned(t *testing.T) {
	f := func(n wireName, blockSel uint8) bool {
		blocks := []int{16, 32, 128, 468}
		block := blocks[int(blockSel)%len(blocks)]
		q := NewQuery(1, string(n), TypeA)
		q.SetEDNS0(4096, false)
		if err := q.PadToBlock(block); err != nil {
			return false
		}
		packed, err := q.Pack()
		return err == nil && len(packed)%block == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnpackNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %x: %v", b, r)
				ok = false
			}
		}()
		Unpack(b) //nolint:errcheck // errors expected on random input
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
