package core

import (
	"fmt"
	"io"
	"time"
)

// Progress receives per-experiment wall-clock timing as RunAll advances.
// Timing stays out of the report body on purpose: the report is a seeded
// artifact that must be byte-for-byte identical for any worker count, while
// wall time is exactly the thing parallelism changes.
type Progress func(id, title string, elapsed time.Duration)

// RunAll executes every experiment in paper order and writes a full report.
// It returns the first error but keeps going so one failing experiment does
// not mask the rest. If s.Progress is set, it is invoked after each
// experiment with its wall-clock duration.
func (s *Study) RunAll(w io.Writer) error {
	var firstErr error
	// The "experiments" phase is the top row of the /progress endpoint;
	// pool-level phases (campaign, perf, scan-sweep, …) register beneath it
	// as runner pools launch. Phase is nil-safe, so telemetry-off runs cost
	// two no-op calls per experiment.
	phase := s.Obs.Phase("experiments")
	phase.AddTotal(int64(len(Experiments())))
	for _, exp := range Experiments() {
		start := time.Now() //doelint:allow determinism -- reports real runtime of the experiment, not simulated time
		out, err := s.RunExperiment(exp)
		phase.Done(1)
		if s.Progress != nil {
			//doelint:allow determinism -- reports real runtime of the experiment, not simulated time
			s.Progress(exp.ID, exp.Title, time.Since(start))
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", exp.ID, err)
			}
			fmt.Fprintf(w, "== %s: %s\nERROR: %v\n\n", exp.ID, exp.Title, err)
			continue
		}
		fmt.Fprintf(w, "== %s: %s\n%s\n", exp.ID, exp.Title, out)
	}
	// The recovery summary only exists under fault injection, so the
	// fault-free report stays byte-identical to its committed golden.
	if s.Faults != nil {
		fmt.Fprintf(w, "== faults: injected faults and retry recovery\n%s\n", s.faultsSummary())
	}
	// Likewise the telemetry section only exists when Config.Telemetry is
	// on; its snapshot excludes volatile families, so the report stays
	// byte-identical across worker counts even with telemetry enabled.
	if s.Obs != nil {
		fmt.Fprintf(w, "== telemetry: deterministic metrics and trace summary\n%s\n", s.telemetrySummary())
	}
	return firstErr
}

// RunExperiment executes one experiment under its own exp:<id> trace span
// (when telemetry is on), so single-experiment runs — doereport -only and
// the per-section binaries — produce the same trace shape as RunAll.
// Experiments run serially, so exp:<id> spans order by creation and the
// cached stages (scans, campaigns) nest under the experiment that first
// triggered them.
func (s *Study) RunExperiment(exp Experiment) (string, error) {
	if s.Obs != nil {
		s.setExpSpan(s.Obs.Root().Start("exp:" + exp.ID))
		defer s.setExpSpan(nil)
	}
	out, err := exp.Run(s)
	if err != nil {
		if sp := s.expSpan; sp != nil {
			sp.Fail(err)
		}
	}
	return out, err
}
