// Package scanner implements §3's service discovery: Internet-wide
// port-853 sweeps in ZMap's random-permutation order followed by DoT
// verification probes, certificate collection, answer validation, and DoH
// discovery by inspecting a URL corpus for known URI templates.
package scanner

import "fmt"

// Permutation enumerates 0..N-1 exactly once in pseudorandom order, the
// property ZMap gets from iterating a cyclic multiplicative group: probes
// spread across the address space instead of hammering one network. This
// implementation uses a full-period LCG over the next power of two
// (Hull–Dobell: a ≡ 1 mod 4, c odd), skipping out-of-range values.
type Permutation struct {
	n     uint64
	mask  uint64
	a, c  uint64
	state uint64
	count uint64
}

// NewPermutation creates a permutation of [0, n) seeded deterministically.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("scanner: empty permutation")
	}
	size := uint64(1)
	for size < n {
		size <<= 1
	}
	return &Permutation{
		n:    n,
		mask: size - 1,
		// Knuth MMIX multiplier (≡ 1 mod 4) with an odd, seed-derived
		// increment: full period over the power-of-two modulus.
		a:     6364136223846793005,
		c:     (seed << 1) | 1,
		state: seed & (size - 1),
	}, nil
}

// Next returns the next element. ok is false once all n values were
// produced.
func (p *Permutation) Next() (v uint64, ok bool) {
	for p.count < p.n {
		p.state = (p.a*p.state + p.c) & p.mask
		if p.state < p.n {
			p.count++
			return p.state, true
		}
	}
	return 0, false
}

// Remaining reports how many values are left.
func (p *Permutation) Remaining() uint64 { return p.n - p.count }
