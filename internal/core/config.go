package core

import "time"

// Config scales the study. The defaults reproduce the paper's shapes at
// roughly 1/50 of its population sizes so the full pipeline runs in seconds;
// every knob is documented with the paper's original value.
type Config struct {
	// Seed drives all stochastic choices; a fixed seed makes every table
	// bit-for-bit reproducible.
	Seed int64

	// GlobalNodes is the ProxyRack-style vantage pool (paper: 29,622
	// endpoints in 166 countries).
	GlobalNodes int
	// CensoredNodes is the Zhima-style pool, all in CN (paper: 85,112
	// endpoints in 5 ASes of two Chinese ISPs).
	CensoredNodes int

	// ScanSpaceBits sizes the swept address space at 2^bits (paper: the
	// full IPv4 space).
	ScanSpaceBits int
	// PortOpenNotDoT is the host population with TCP/853 open that fails
	// DoT verification (paper: 2–3 million per scan).
	PortOpenNotDoT int
	// ScanRounds is the number of 10-day scan rounds between Feb 1 and
	// May 1, 2019 (paper: 10).
	ScanRounds int

	// Workers bounds the parallel execution engine: scan sweeps, DoT
	// verification probes, vantage campaigns, performance sampling, port
	// forensics and the no-reuse comparison all shard across this many
	// goroutines. Results are merged deterministically, so any value
	// (including 1) produces bit-for-bit identical reports.
	Workers int
	// PerfNodes is how many global nodes run the performance test
	// (paper: 8,257).
	PerfNodes int
	// PerfQueriesReused is the per-protocol query count with connection
	// reuse (paper: 20, the proxy-session limit).
	PerfQueriesReused int
	// PerfQueriesFresh is the per-protocol query count of the
	// no-reuse test on controlled vantages (paper: 200).
	PerfQueriesFresh int
	// MuxInFlight is the per-session concurrency of the performance test's
	// multiplexed pass: DoT sessions pipeline (RFC 7766) and DoH sessions
	// multiplex HTTP/2 streams with this many queries in flight, reported
	// as Fig. 9's amortized "multiplexed" columns. Values below 2 disable
	// the pass.
	MuxInFlight int

	// TrafficScale scales the 18-month NetFlow volumes (1.0 generates
	// flow counts matching the paper's *sampled* magnitudes).
	TrafficScale float64
	// NetFlowSampleRate is the router's 1-in-N packet sampling. The
	// paper's ISP used 3,000 on the unsampled backbone; with scaled
	// volumes the default keeps the sampler exercised while retaining
	// statistical mass.
	NetFlowSampleRate int
	// NetFlowIdleExpiry matches the ISP's 15-second flow expiry.
	NetFlowIdleExpiry time.Duration

	// CorpusNoise is the number of non-DoH URLs mixed into the URL
	// corpus (paper: billions of URLs; discovery cost scales linearly).
	CorpusNoise int

	// Faults selects the network fault-injection profile; the zero value
	// leaves the simulated network fault-free.
	Faults FaultsConfig

	// Telemetry enables the internal/obs recorder: spans for every
	// pipeline stage, deterministic metrics, and the end-of-report
	// "== telemetry:" section. Off by default so fault-free reports stay
	// byte-identical to goldens produced before telemetry existed; when
	// on, the report gains the telemetry section but remains
	// byte-identical across worker counts.
	Telemetry bool
}

// FaultsConfig configures the deterministic fault-injection layer
// (internal/faults) wrapped around the simulated network.
type FaultsConfig struct {
	// Profile names a built-in fault mix: "off" (or empty), "mild",
	// "harsh", "flaky" or "regional". See BuildFaultProfile.
	Profile string
	// Seed drives fault schedules independently of the world seed, so
	// chaos tests sweep fault seeds without rebuilding populations.
	Seed int64
}

// Enabled reports whether fault injection is on.
func (f FaultsConfig) Enabled() bool { return f.Profile != "" && f.Profile != "off" }

// DefaultConfig is the full-study scale.
func DefaultConfig() Config {
	return Config{
		Seed:              20190501,
		GlobalNodes:       600,
		CensoredNodes:     300,
		ScanSpaceBits:     17, // 131,072 addresses
		PortOpenNotDoT:    1200,
		ScanRounds:        10,
		Workers:           16,
		PerfNodes:         120,
		PerfQueriesReused: 20,
		PerfQueriesFresh:  50,
		MuxInFlight:       8,
		TrafficScale:      1.0,
		NetFlowSampleRate: 3,
		NetFlowIdleExpiry: 15 * time.Second,
		CorpusNoise:       20000,
	}
}

// TestConfig is a miniature for unit tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.GlobalNodes = 80
	cfg.CensoredNodes = 40
	cfg.ScanSpaceBits = 13 // 8,192 addresses
	cfg.PortOpenNotDoT = 60
	cfg.ScanRounds = 4
	cfg.PerfNodes = 12
	cfg.PerfQueriesReused = 8
	cfg.PerfQueriesFresh = 8
	cfg.MuxInFlight = 4
	cfg.TrafficScale = 0.25
	cfg.CorpusNoise = 500
	return cfg
}

// ResolverScale shrinks the paper's per-country DoT resolver counts to fit
// the configured scan space. At the default 1/4 scale the population is
// ≈400 resolvers per scan versus the paper's 1.5K, preserving every ratio.
const ResolverScale = 4

// countryPlan is Table 2's per-country resolver population (Feb 1 and
// May 1, 2019 counts from the paper), plus a remainder bucket spread over
// other countries.
type countryPlan struct {
	CC       string
	Feb, May int
}

var resolverCountryPlan = []countryPlan{
	{"IE", 456, 951},
	{"CN", 257, 40},
	{"US", 100, 531},
	{"DE", 71, 86},
	{"FR", 59, 56},
	{"JP", 34, 27},
	{"NL", 30, 36},
	{"GB", 25, 21},
	{"BR", 22, 49},
	{"RU", 17, 40},
	// Long tail: the remaining ≈30% of resolvers across other countries.
	{"SE", 40, 44}, {"IT", 36, 38}, {"PL", 30, 32}, {"CA", 28, 30},
	{"AU", 26, 28}, {"SG", 24, 26}, {"KR", 22, 24}, {"ES", 20, 22},
	{"CH", 18, 20}, {"FI", 16, 18}, {"CZ", 16, 16}, {"RO", 14, 16},
	{"IN", 14, 14}, {"ZA", 12, 12}, {"TR", 12, 12}, {"AT", 10, 12},
	{"NO", 10, 10}, {"DK", 10, 10}, {"GR", 8, 8}, {"HU", 8, 8},
	{"TW", 8, 8}, {"HK", 8, 8}, {"TH", 6, 6}, {"MX", 6, 6},
	{"AR", 6, 6}, {"CL", 4, 4}, {"PT", 4, 4}, {"BE", 4, 4},
	{"UA", 4, 4}, {"IL", 4, 4},
}
