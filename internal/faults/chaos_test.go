package faults_test

// The chaos suite: every experiment of the study must complete under every
// fault profile and fault seed, the full report must stay byte-identical
// across worker counts for a fixed fault seed (the matrix half of that
// guarantee lives in internal/core's worker-count test), and recovery
// statistics must match hand-computed expectations on exactly-known fault
// schedules.

import (
	"context"
	"crypto/x509"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/faults"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/resolver"
)

// chaosConfig is the smallest world that still runs every experiment.
func chaosConfig() core.Config {
	cfg := core.TestConfig()
	cfg.ScanRounds = 2
	cfg.GlobalNodes = 24
	cfg.CensoredNodes = 12
	cfg.PerfNodes = 6
	cfg.PerfQueriesReused = 4
	cfg.PerfQueriesFresh = 4
	return cfg
}

// TestChaosEveryProfileEverySeedCompletes sweeps the full profile × fault
// seed matrix: under every mix the retry layer must carry every experiment
// to completion — no ERROR lines, no hard experiment failures.
func TestChaosEveryProfileEverySeedCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep builds 12 worlds")
	}
	for _, profile := range []string{"mild", "harsh", "flaky", "regional"} {
		for _, seed := range []int64{0, 1, 2} {
			profile, seed := profile, seed
			t.Run(profile+"/seed"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				cfg := chaosConfig()
				cfg.Faults = core.FaultsConfig{Profile: profile, Seed: seed}
				s, err := core.NewStudy(cfg)
				if err != nil {
					t.Fatalf("NewStudy: %v", err)
				}
				var b strings.Builder
				if err := s.RunAll(&b); err != nil {
					t.Fatalf("RunAll under %s/seed=%d: %v", profile, seed, err)
				}
				out := b.String()
				if strings.Contains(out, "ERROR") {
					idx := strings.Index(out, "ERROR")
					t.Fatalf("report has errors under %s/seed=%d: ...%s",
						profile, seed, out[idx:min(len(out), idx+300)])
				}
				if !strings.Contains(out, "== faults:") {
					t.Fatal("faults summary section missing")
				}
				// The injector must actually have done something; a chaos
				// run against a silently disabled injector proves nothing.
				if s.Faults.Stats().Faulted() == 0 && profile != "mild" {
					t.Errorf("profile %s injected no faults", profile)
				}
			})
		}
	}
}

// chaosWorld is a minimal direct netsim world (no core study) for
// hand-computed recovery accounting: one clear-text TCP DNS server, one
// client tuple, an exactly-known fault schedule.
func chaosWorld(t *testing.T) (*netsim.World, netip.Addr, netip.Addr) {
	t.Helper()
	w := netsim.NewWorld(99)
	client := netip.MustParseAddr("10.2.3.4")
	server := netip.MustParseAddr("192.0.2.10")
	z := dnsserver.NewZone("probe.example.org")
	z.WildcardA = netip.MustParseAddr("203.0.113.9")
	w.RegisterStream(server, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, z)
	})
	return w, client, server
}

// TestChaosRecoveryStatsHandComputed drives a transport through a Flaky(1)
// schedule, where every number is computable by hand: the first dial on the
// tuple is refused, everything after is clean. With a 3-attempt budget the
// first Exchange recovers on its second attempt; the remaining four are
// single-attempt successes.
func TestChaosRecoveryStatsHandComputed(t *testing.T) {
	w, client, server := chaosWorld(t)
	inj := faults.New(1, nil)
	inj.Default = faults.Flaky(1)
	w.SetFaults(inj)

	tr := resolver.New(w, client, nil,
		resolver.WithReuse(false),
		resolver.WithRetry(resolver.RetryPolicy{Attempts: 3}),
	).TCP(server)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(0, "q.probe.example.org", dnswire.TypeA)
		if _, err := tr.Exchange(ctx, q); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
	got := tr.Stats()
	want := resolver.RetryStats{Attempts: 6, Retries: 1, Recovered: 1}
	if got != want {
		t.Errorf("transport stats = %+v, want %+v", got, want)
	}
	st := inj.Stats()
	if st.StreamDials != 6 || st.FlakyFailures != 1 || st.Faulted() != 1 {
		t.Errorf("injector stats = %+v, want 6 dials / 1 flaky failure", st)
	}
}

// TestChaosNoRetryNoRecovery is the control arm: the same Flaky(1) schedule
// without a retry budget turns the first Exchange into a hard failure.
func TestChaosNoRetryNoRecovery(t *testing.T) {
	w, client, server := chaosWorld(t)
	inj := faults.New(1, nil)
	inj.Default = faults.Flaky(1)
	w.SetFaults(inj)

	tr := resolver.New(w, client, nil, resolver.WithReuse(false)).TCP(server)
	ctx := context.Background()
	q := dnswire.NewQuery(0, "q.probe.example.org", dnswire.TypeA)
	if _, err := tr.Exchange(ctx, q); err == nil {
		t.Fatal("first exchange unexpectedly survived without retries")
	}
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("second exchange: %v", err)
	}
	got := tr.Stats()
	want := resolver.RetryStats{Attempts: 2, HardFailures: 1}
	if got != want {
		t.Errorf("transport stats = %+v, want %+v", got, want)
	}
}

// chaosDoQWorld extends chaosWorld with a DoQ endpoint on UDP 853 and
// returns the trust pool its certificate verifies against.
func chaosDoQWorld(t *testing.T) (*netsim.World, netip.Addr, netip.Addr, *x509.CertPool) {
	t.Helper()
	w, client, server := chaosWorld(t)
	ca, err := certs.NewCA("Chaos Root", true)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafOptions{
		CommonName: "probe.example.org",
		DNSNames:   []string{"probe.example.org"},
		IPs:        []netip.Addr{server},
	})
	if err != nil {
		t.Fatal(err)
	}
	z := dnsserver.NewZone("probe.example.org")
	z.WildcardA = netip.MustParseAddr("203.0.113.9")
	doq.Serve(w, server, leaf, z, 0)
	return w, client, server, certs.Pool(ca)
}

// TestChaosDoQFlightLossExhaustsBudget pins the DoQ loss-handling contract
// on an exactly-known schedule: with every datagram dropped, a warm session
// dies on its next flight (the error wraps ErrSessionClosed, the retryable
// session-death signal), and each retry redials 0-RTT from the resumption
// cache — sending NO datagram and so consuming NO fault draw — before its
// own flight is dropped too. Every number below is computable by hand.
func TestChaosDoQFlightLossExhaustsBudget(t *testing.T) {
	w, client, server, roots := chaosDoQWorld(t)
	tr := resolver.New(w, client, roots,
		resolver.WithRetry(resolver.RetryPolicy{Attempts: 3})).DoQ(server)
	ctx := context.Background()

	// Warm fault-free: the 1-RTT handshake seeds the 0-RTT cache and the
	// transport retains a live session.
	if _, err := tr.Exchange(ctx, dnswire.NewQuery(0, "warm.probe.example.org", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}

	inj := faults.New(1, nil)
	inj.Default = faults.Profile{DgramDrop: 1}
	w.SetFaults(inj)

	_, err := tr.Exchange(ctx, dnswire.NewQuery(0, "lost.probe.example.org", dnswire.TypeA))
	if err == nil {
		t.Fatal("exchange survived a fully lossy path")
	}
	if !errors.Is(err, resolver.ErrSessionClosed) {
		t.Errorf("err = %v, want ErrSessionClosed", err)
	}
	got := tr.Stats()
	// Warm exchange: 1 attempt. Lossy exchange: 3 attempts (2 retries),
	// 2 0-RTT redials, budget exhausted.
	want := resolver.RetryStats{Attempts: 4, Retries: 2, Redials: 2, HardFailures: 1}
	if got != want {
		t.Errorf("transport stats = %+v, want %+v", got, want)
	}
	// Three query flights were dropped; the two 0-RTT redials put nothing
	// on the wire, so the injector saw exactly three datagrams.
	if st := inj.Stats(); st.Datagrams != 3 || st.DgramDrops != 3 {
		t.Errorf("injector stats = %+v, want 3 datagrams / 3 drops", st)
	}
}

// TestChaosDoQRecoveryStatsHandComputed drives a warm DoQ session through a
// drop-then-clean datagram schedule (injector seed 5 with DgramDrop=0.5
// draws drop, pass on this tuple — pinned by the injector's determinism
// contract): the first flight is lost, the retry redials 0-RTT and its
// flight goes through. Recovery statistics and the recovered latency are
// exactly computable.
func TestChaosDoQRecoveryStatsHandComputed(t *testing.T) {
	w, client, server, roots := chaosDoQWorld(t)
	tr := resolver.New(w, client, roots,
		resolver.WithRetry(resolver.RetryPolicy{Attempts: 3})).DoQ(server)
	ctx := context.Background()

	if _, err := tr.Exchange(ctx, dnswire.NewQuery(0, "aaaa.probe.example.org", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	warm := tr.LastLatency()

	inj := faults.New(5, nil)
	inj.Default = faults.Profile{DgramDrop: 0.5}
	w.SetFaults(inj)

	// Same-length name as the warm query, so the two flights are
	// latency-identical and the recovered cost is directly comparable.
	if _, err := tr.Exchange(ctx, dnswire.NewQuery(0, "bbbb.probe.example.org", dnswire.TypeA)); err != nil {
		t.Fatalf("exchange did not recover: %v", err)
	}
	got := tr.Stats()
	want := resolver.RetryStats{Attempts: 3, Retries: 1, Redials: 1, Recovered: 1}
	if got != want {
		t.Errorf("transport stats = %+v, want %+v", got, want)
	}
	if st := inj.Stats(); st.Datagrams != 2 || st.DgramDrops != 1 {
		t.Errorf("injector stats = %+v, want 2 datagrams / 1 drop", st)
	}
	// The lost flight cost nothing on the session clock and the 0-RTT
	// redial charges no setup, so the recovered exchange costs exactly one
	// clean flight — the honest-accounting half of the 0-RTT contract.
	if got := tr.LastLatency(); got != warm {
		t.Errorf("recovered latency = %v, want the clean flight cost %v", got, warm)
	}
}

// TestChaosDoQHarshSweepCompletes runs a retried DoQ transport through the
// Harsh datagram mix for several fault seeds: every exchange must complete
// within the budget (handshake flights lost at dial time are retried like
// refused stream dials; established-session losses surface as
// ErrSessionClosed and redial 0-RTT), and the injector must actually have
// dropped something, or the sweep proves nothing.
func TestChaosDoQHarshSweepCompletes(t *testing.T) {
	for _, seed := range []int64{0, 1, 2} {
		w, client, server, roots := chaosDoQWorld(t)
		inj := faults.New(seed, nil)
		inj.Default = faults.Harsh()
		w.SetFaults(inj)

		tr := resolver.New(w, client, roots,
			resolver.WithRetry(resolver.RetryPolicy{Attempts: 3})).DoQ(server)
		ctx := context.Background()
		for i := 0; i < 40; i++ {
			q := dnswire.NewQuery(0, "q.probe.example.org", dnswire.TypeA)
			if _, err := tr.Exchange(ctx, q); err != nil {
				t.Fatalf("seed %d: exchange %d: %v", seed, i, err)
			}
		}
		st := inj.Stats()
		if st.DgramDrops == 0 {
			t.Errorf("seed %d: harsh profile dropped no datagrams over %d flights", seed, st.Datagrams)
		}
		if s := tr.Stats(); s.HardFailures != 0 || s.Recovered == 0 {
			t.Errorf("seed %d: transport stats = %+v, want recoveries and no hard failures", seed, s)
		}
	}
}

// TestChaosBackoffChargedToVirtualClock pins the retry latency contract:
// recovery penalties land on the virtual clock (LastLatency), never on the
// wall clock, and grow with the backoff schedule.
func TestChaosBackoffChargedToVirtualClock(t *testing.T) {
	w, client, server := chaosWorld(t)

	// Clean baseline latency for the same exchange.
	base := resolver.New(w, client, nil, resolver.WithReuse(false)).TCP(server)
	q := dnswire.NewQuery(0, "q.probe.example.org", dnswire.TypeA)
	if _, err := base.Exchange(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	clean := base.LastLatency()

	inj := faults.New(1, nil)
	inj.Default = faults.Flaky(2)
	w.SetFaults(inj)
	p := resolver.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond}
	tr := resolver.New(w, client, nil,
		resolver.WithReuse(false), resolver.WithRetry(p)).TCP(server)
	if _, err := tr.Exchange(context.Background(), q); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	// Two refused dials cost no connection time, so the recovered latency
	// is the clean cost plus the two backoff sleeps (50ms + 100ms), all
	// virtual.
	want := clean + 150*time.Millisecond
	if got := tr.LastLatency(); got != want {
		t.Errorf("recovered latency = %v, want %v (clean %v + 150ms backoff)", got, want, clean)
	}
}
