package resolver

import (
	"context"
	"errors"
	"io"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
)

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Attempts: 4, Backoff: 50 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 0,
		2: 50 * time.Millisecond,
		3: 100 * time.Millisecond,
		4: 200 * time.Millisecond,
	} {
		if got := p.backoffFor(attempt); got != want {
			t.Errorf("backoffFor(%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := (RetryPolicy{Attempts: 3}).backoffFor(2); got != 0 {
		t.Errorf("zero-base backoff = %v, want 0", got)
	}
}

// dyingSession answers exchanges until its fuse runs out, then fails every
// call with dieWith, emulating a reused connection the peer tore down.
type dyingSession struct {
	fuse    int
	dieWith error
	elapsed time.Duration
	closed  bool
}

func (s *dyingSession) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	s.elapsed += time.Millisecond
	if s.fuse <= 0 {
		return nil, s.dieWith
	}
	s.fuse--
	return &dnswire.Message{}, nil
}

func (s *dyingSession) Close() error                { s.closed = true; return nil }
func (s *dyingSession) SetupLatency() time.Duration { return time.Millisecond }
func (s *dyingSession) Elapsed() time.Duration      { return s.elapsed }

// dyingTransport returns a reuse Transport whose first session dies with
// dieWith after fuse exchanges; every redial gets a fresh, immortal session.
func dyingTransport(retry RetryPolicy, fuse int, dieWith error) (*Transport, *[]*dyingSession) {
	var sessions []*dyingSession
	tr := newTransport(Options{Reuse: true, Retry: retry}, "tcp", func(ctx context.Context) (Session, error) {
		s := &dyingSession{fuse: fuse, dieWith: dieWith}
		if len(sessions) > 0 {
			s.fuse = 1 << 20
		}
		sessions = append(sessions, s)
		return s, nil
	})
	return tr, &sessions
}

func TestSessionDeathWrapsErrSessionClosed(t *testing.T) {
	tr, sessions := dyingTransport(RetryPolicy{}, 1, io.EOF)
	ctx := context.Background()
	q := query("die.measure.example.org")

	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	_, err := tr.Exchange(ctx, q)
	if !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("death err = %v, want errors.Is ErrSessionClosed", err)
	}
	if !errors.Is(err, io.EOF) {
		t.Fatalf("death err = %v, must keep wrapping the underlying io.EOF", err)
	}
	if !(*sessions)[0].closed {
		t.Error("dead session not closed")
	}
	// The transport dropped the corpse: the next Exchange redials and works.
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("exchange after death: %v", err)
	}
	got := tr.Stats()
	want := RetryStats{Attempts: 3, Redials: 1, HardFailures: 1}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
}

func TestRetryRedialsThroughSessionDeath(t *testing.T) {
	tr, sessions := dyingTransport(RetryPolicy{Attempts: 2}, 1, io.ErrUnexpectedEOF)
	ctx := context.Background()
	q := query("redial.measure.example.org")

	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	// Second exchange: attempt 1 dies with the session, attempt 2 redials
	// and succeeds — invisible to the caller.
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("exchange across session death: %v", err)
	}
	got := tr.Stats()
	want := RetryStats{Attempts: 3, Retries: 1, Redials: 1, Recovered: 1}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
	if len(*sessions) != 2 {
		t.Errorf("sessions dialed = %d, want 2", len(*sessions))
	}
}

func TestCloseResetsRedialCounting(t *testing.T) {
	tr, _ := dyingTransport(RetryPolicy{}, 1<<20, io.EOF)
	ctx := context.Background()
	q := query("close.measure.example.org")
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	// Dialing after an explicit Close is a fresh start, not a recovery.
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Redials; got != 0 {
		t.Errorf("redials after explicit Close = %d, want 0", got)
	}
}

// onceCutInjector truncates the first stream dial per tuple before any
// server data (a cut TLS handshake) and lets everything else through.
type onceCutInjector struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (i *onceCutInjector) StreamFault(from, to netip.Addr, port uint16) netsim.DialFault {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.seen == nil {
		i.seen = make(map[string]bool)
	}
	k := from.String() + "|" + to.String()
	if !i.seen[k] {
		i.seen[k] = true
		return netsim.DialFault{CutAfterSegments: 1}
	}
	return netsim.DialFault{}
}

func (i *onceCutInjector) DatagramFault(from, to netip.Addr, port uint16) netsim.DatagramFault {
	return netsim.DatagramFault{}
}

func TestRetryRecoversTruncatedTLSHandshake(t *testing.T) {
	f := newFixture(t)
	f.world.SetFaults(&onceCutInjector{})
	ctx := context.Background()

	tr := f.client(t, WithRetry(RetryPolicy{Attempts: 2})).DoT(serverIP)
	defer tr.Close()
	m, err := tr.Exchange(ctx, query("cut.measure.example.org"))
	checkAnswer(t, m, err, "dot through truncated handshake")
	got := tr.Stats()
	if got.Retries != 1 || got.Recovered != 1 || got.HardFailures != 0 {
		t.Errorf("stats = %+v, want one recovered retry", got)
	}
}

func TestFallbackDegradesAcrossExchangers(t *testing.T) {
	f := newFixture(t)
	c := f.client(t)
	ctx := context.Background()
	// No DoT service on this address: the encrypted link fails, the chain
	// falls back to clear text.
	deadIP := netip.MustParseAddr("192.0.2.200")
	fb := Fallback(c.DoT(deadIP), c.UDP(serverIP))
	m, err := fb.Exchange(ctx, query("fb.measure.example.org"))
	checkAnswer(t, m, err, "fallback")
	if got := fb.LastUsed(); got != 1 {
		t.Errorf("LastUsed = %d, want 1 (the clear-text link)", got)
	}

	// Total failure: the joined error names every link.
	dead := Fallback(c.DoT(deadIP), c.TCP(deadIP))
	if _, err := dead.Exchange(ctx, query("dead.measure.example.org")); err == nil {
		t.Fatal("all-dead chain succeeded")
	} else {
		for _, want := range []string{"chain[0]", "chain[1]"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("joined error %q missing %s", err, want)
			}
		}
	}
	if got := dead.LastUsed(); got != -1 {
		t.Errorf("LastUsed after total failure = %d, want -1", got)
	}

	if _, err := Fallback().Exchange(ctx, query("e.measure.example.org")); err == nil {
		t.Error("empty chain succeeded")
	}
}

// statlessExchanger always fails and tracks no RetryStats: chain links
// like it must contribute zero to a Fallback rollup.
type statlessExchanger struct{}

func (statlessExchanger) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	return nil, errors.New("statless: unreachable")
}

// TestFallbackStatsRollUpAcrossChain is the regression test for the chain
// rollup: RetryStats used to be accumulated per-Transport and silently
// dropped at the Fallback layer, so a chain's recovery totals never
// reached the faults summary or the metrics.
func TestFallbackStatsRollUpAcrossChain(t *testing.T) {
	retry := RetryPolicy{Attempts: 2, Backoff: 10 * time.Millisecond}
	// head: every session dies on first use, so every Exchange burns the
	// full budget and hard-fails down the chain.
	head := newTransport(Options{Reuse: true, Retry: retry}, "doh", func(ctx context.Context) (Session, error) {
		return &dyingSession{fuse: 0, dieWith: io.EOF}, nil
	})
	// tail: first session dies after one exchange, redials are immortal.
	tail, _ := dyingTransport(retry, 1, io.EOF)
	fb := Fallback(head, statlessExchanger{}, tail)
	var _ StatsProvider = fb

	q := query("fallback-stats.measure.example.org")
	for i := 0; i < 3; i++ {
		if _, err := fb.Exchange(context.Background(), q); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
	got := fb.Stats()
	if want := head.Stats().Plus(tail.Stats()); got != want {
		t.Fatalf("chain rollup = %+v, want element-wise sum %+v", got, want)
	}
	// Hand-computed: head burns 2 attempts per Exchange (1 retry, 1 hard
	// failure, redialing each attempt after the first dial); tail does
	// 1+2+1 attempts with one death recovered on its second Exchange.
	want := RetryStats{Attempts: 10, Retries: 4, Redials: 6, Recovered: 1, HardFailures: 3}
	if got != want {
		t.Fatalf("chain rollup = %+v, want %+v", got, want)
	}
}

// TestTransportTelemetry checks that an instrumented Exchange records
// spans (xchg + dial children, retry events) and per-protocol metrics
// when — and only when — the context carries a recorder.
func TestTransportTelemetry(t *testing.T) {
	rec := obs.NewRecorder("study")
	ctx := obs.WithRecorder(context.Background(), rec)
	tr, _ := dyingTransport(RetryPolicy{Attempts: 2, Backoff: 10 * time.Millisecond}, 1, io.EOF)
	q := query("telemetry.measure.example.org")
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	if _, err := tr.Exchange(ctx, q); err != nil {
		t.Fatalf("second exchange (recovered): %v", err)
	}

	m := rec.Metrics()
	checks := map[string]int64{
		"resolver_attempts_total":  3,
		"resolver_retries_total":   1,
		"resolver_recovered_total": 1,
		"resolver_redials_total":   1,
	}
	for name, want := range checks {
		if got := m.Counter(name, "proto", "tcp").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := m.Counter("resolver_exchanges_total", "proto", "tcp", "outcome", "ok").Value(); got != 2 {
		t.Errorf("ok exchanges = %d, want 2", got)
	}
	if got := m.Histogram("resolver_setup_latency", nil, "proto", "tcp").Count(); got != 2 {
		t.Errorf("setup latency observations = %d, want 2 (initial dial + redial)", got)
	}

	var paths []string
	var retryEvents int
	for _, r := range rec.Records() {
		paths = append(paths, r.Path)
		for _, ev := range r.Events {
			if ev == "retry:2" {
				retryEvents++
			}
		}
	}
	joined := strings.Join(paths, "\n")
	for _, want := range []string{"study/xchg:tcp", "study/xchg:tcp/dial", "study/xchg:tcp#2", "study/xchg:tcp#2/dial"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing span %q in:\n%s", want, joined)
		}
	}
	if retryEvents != 1 {
		t.Errorf("retry events = %d, want 1", retryEvents)
	}

	// Without a recorder nothing is recorded and nothing panics.
	tr2, _ := dyingTransport(RetryPolicy{}, 1<<20, io.EOF)
	if _, err := tr2.Exchange(context.Background(), q); err != nil {
		t.Fatalf("uninstrumented exchange: %v", err)
	}
}
