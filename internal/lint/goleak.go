package lint

import (
	"go/ast"
)

// analyzerGoleak flags goroutines that can never terminate: a `go` statement
// whose function literal contains an unconditioned `for { ... }` loop with no
// reachable exit — no return, no break bound to that loop, no Goexit/panic.
// In simulation packages every accept loop and relay copier is one of these
// shapes, and one missed error check turns it into a goroutine that outlives
// its connection. The chaos suite asserts goroutine counts at runtime; this
// check catches the same bug statically, at the loop that would leak.
var analyzerGoleak = &Analyzer{
	Name: "goleak",
	Doc:  "no exit-less infinite loops in goroutines of simulation packages",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	if !pass.Config.IsSimulation(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				// `go method()` spawns named code; its loops are checked
				// wherever that function is declared as a goroutine body
				// elsewhere, and flagging every call site would double-report.
				return true
			}
			checkGoroutineBody(pass, lit.Body)
			return true
		})
	}
}

// checkGoroutineBody reports every exit-less infinite loop in a goroutine
// body, including loops inside nested function literals (they run on the
// same goroutine unless spawned with another `go`, which Inspect visits
// separately anyway).
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond != nil {
			return true // `for cond {}` terminates when cond flips
		}
		if !loopCanExit(loop) {
			pass.Reportf(loop.Pos(),
				"infinite for loop in goroutine has no return or break; it leaks the goroutine when its work ends")
		}
		return true
	})
}

// loopCanExit reports whether an unconditioned for loop has a statement that
// leaves it: a return, an unlabeled break bound to this loop, a labeled
// break/goto (conservatively assumed to escape), or a call to panic,
// runtime.Goexit, os.Exit or (testing.T).Fatal*.
func loopCanExit(loop *ast.ForStmt) bool {
	exits := false
	// depth counts enclosing break targets between a statement and our
	// loop: nested for/range/switch/select capture unlabeled breaks.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || exits {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return // its returns/breaks don't leave our loop
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			if s.Label != nil {
				// Labeled break/continue/goto: the label may sit outside
				// the loop; assume it escapes rather than guess wrong.
				exits = true
				return
			}
			if s.Tok.String() == "break" && depth == 0 {
				exits = true
			}
			return
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && callNeverReturns(call) {
				exits = true
				return
			}
		case *ast.ForStmt:
			walkChildren(s, depth+1, walk)
			return
		case *ast.RangeStmt:
			walkChildren(s, depth+1, walk)
			return
		case *ast.SwitchStmt:
			walkChildren(s, depth+1, walk)
			return
		case *ast.TypeSwitchStmt:
			walkChildren(s, depth+1, walk)
			return
		case *ast.SelectStmt:
			walkChildren(s, depth+1, walk)
			return
		}
		walkChildren(n, depth, walk)
	}
	walkChildren(loop.Body, 0, walk)
	return exits
}

// walkChildren visits the direct children of n with the given walker.
func walkChildren(n ast.Node, depth int, walk func(ast.Node, int)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		walk(child, depth)
		return false // walk recurses itself; don't double-visit
	})
}

// callNeverReturns recognizes calls that terminate the goroutine (or the
// process) and therefore count as loop exits: panic, runtime.Goexit,
// os.Exit, log.Fatal*, and testing's t.Fatal*/t.Skip* (which call Goexit).
func callNeverReturns(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Goexit" || name == "Exit" {
			return true
		}
		if name == "Fatal" || name == "Fatalf" || name == "Skip" ||
			name == "Skipf" || name == "SkipNow" || name == "FailNow" {
			return true
		}
	}
	return false
}
