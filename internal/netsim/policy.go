package netsim

import (
	"fmt"
	"net/netip"
	"sync"
)

// Censor models national-level filtering: for clients inside Countries, it
// blocks (refuses or blackholes) connections matching the destination sets,
// and can inject spoofed answers to datagram queries (DNS injection).
type Censor struct {
	// Countries of the *clients* whose traffic is filtered.
	Countries map[string]bool
	// BlockIPs are destination addresses to block on any port.
	BlockIPs map[netip.Addr]bool
	// BlockPorts restricts blocking to these ports; empty means all ports.
	BlockPorts map[uint16]bool
	// Blackhole silently drops instead of refusing (the common behaviour).
	Blackhole bool
	// SpoofDNS, when non-nil, answers datagram port-53 queries to blocked
	// destinations with a forged payload instead of dropping them.
	SpoofDNS func(req []byte) []byte
}

// Decide implements DialPolicy.
func (c *Censor) Decide(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict {
	if len(c.Countries) > 0 && !c.Countries[w.Geo.Country(from)] {
		return Verdict{Action: ActNext}
	}
	if !c.BlockIPs[to] {
		return Verdict{Action: ActNext}
	}
	if len(c.BlockPorts) > 0 && !c.BlockPorts[port] {
		return Verdict{Action: ActNext}
	}
	if proto == Datagram && port == 53 && c.SpoofDNS != nil {
		return Verdict{Action: ActSpoof, Spoof: c.SpoofDNS}
	}
	if c.Blackhole {
		return Verdict{Action: ActBlackhole}
	}
	return Verdict{Action: ActRefuse}
}

// PortFilter models middleboxes that filter a port for specific client
// prefixes — the paper's explanation for clear-text DNS (port 53) failing
// for 16% of clients while ports 853/443 pass ("filtering policies on a
// particular port").
type PortFilter struct {
	// ClientPrefixes whose traffic is filtered.
	ClientPrefixes []netip.Prefix
	Port           uint16
	// DstIPs restricts filtering to these destinations; empty = all.
	DstIPs map[netip.Addr]bool
	// Blackhole drops instead of refusing.
	Blackhole bool
}

// Decide implements DialPolicy.
func (f *PortFilter) Decide(_ *World, from, to netip.Addr, port uint16, _ Proto) Verdict {
	if port != f.Port {
		return Verdict{Action: ActNext}
	}
	if len(f.DstIPs) > 0 && !f.DstIPs[to] {
		return Verdict{Action: ActNext}
	}
	for _, p := range f.ClientPrefixes {
		if p.Contains(from) {
			if f.Blackhole {
				return Verdict{Action: ActBlackhole}
			}
			return Verdict{Action: ActRefuse}
		}
	}
	return Verdict{Action: ActNext}
}

// DeviceKind labels the devices found squatting on 1.1.1.1 in Table 5 and
// the surrounding discussion.
type DeviceKind string

// Device kinds observed by the paper's webpage fetches.
const (
	DeviceRouter     DeviceKind = "MikroTik Router"
	DeviceModem      DeviceKind = "Powerbox Gvt Modem"
	DeviceAuthPortal DeviceKind = "Authentication System"
	DeviceMiner      DeviceKind = "Cryptojacked MikroTik Router"
)

// ConflictDevice models an in-path device that has taken over a well-known
// resolver address (e.g. 1.1.1.1 used as a router's virtual IP). Clients in
// ClientPrefixes reaching ConflictIP get the device instead of the resolver.
type ConflictDevice struct {
	ClientPrefixes []netip.Prefix
	ConflictIP     netip.Addr
	Kind           DeviceKind
	// OpenPorts maps ports the device listens on to the body of the page
	// it serves (an HTTP response is synthesized around it). Ports not in
	// the map are refused when RefuseOthers, otherwise blackholed —
	// the paper finds most conflicting destinations are silent.
	OpenPorts    map[uint16]string
	RefuseOthers bool
}

// Decide implements DialPolicy.
func (d *ConflictDevice) Decide(_ *World, from, to netip.Addr, port uint16, proto Proto) Verdict {
	if to != d.ConflictIP {
		return Verdict{Action: ActNext}
	}
	match := false
	for _, p := range d.ClientPrefixes {
		if p.Contains(from) {
			match = true
			break
		}
	}
	if !match {
		return Verdict{Action: ActNext}
	}
	if proto == Datagram {
		// Devices here do not answer DNS datagrams.
		return Verdict{Action: ActBlackhole}
	}
	body, open := d.OpenPorts[port]
	if !open {
		if d.RefuseOthers {
			return Verdict{Action: ActRefuse}
		}
		return Verdict{Action: ActBlackhole}
	}
	kind := d.Kind
	return Verdict{Action: ActRedirect, Handler: func(conn *Conn, dst Addr) {
		defer conn.Close()
		if dst.Port == 80 || dst.Port == 443 {
			serveFixedHTTP(conn, string(kind), body)
			return
		}
		// Non-HTTP ports just present a banner (SSH, telnet, ...).
		fmt.Fprintf(conn, "%s\r\n", body)
	}}
}

// serveFixedHTTP writes a minimal HTTP/1.0 response with the given body and
// a Server header, then returns. It does not parse the request beyond
// draining what is immediately available, which is all the paper's webpage
// fetch needs.
func serveFixedHTTP(conn *Conn, server, body string) {
	buf := make([]byte, 1024)
	conn.Read(buf) //nolint:errcheck // drain whatever request bytes arrived
	fmt.Fprintf(conn, "HTTP/1.0 200 OK\r\nServer: %s\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		server, len(body), body)
}

// RawTCPDevice accepts connections on arbitrary ports and immediately
// closes them after a banner; used for conflicting devices exposing SSH,
// telnet, BGP and similar ports in Table 5.
type RawTCPDevice struct {
	Banner string
}

// Handler returns a StreamHandler serving the banner.
func (d RawTCPDevice) Handler() StreamHandler {
	return func(conn *Conn) {
		defer conn.Close()
		if d.Banner != "" {
			fmt.Fprintf(conn, "%s\r\n", d.Banner)
		}
	}
}

// OptOutList tracks prefixes whose owners opted out of scanning (§3.1's
// ethics mechanism). It is concurrency-safe.
type OptOutList struct {
	mu       sync.RWMutex
	prefixes []netip.Prefix
}

// Add registers an opt-out request.
func (o *OptOutList) Add(p netip.Prefix) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.prefixes = append(o.prefixes, p)
}

// Contains reports whether ip opted out.
func (o *OptOutList) Contains(ip netip.Addr) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, p := range o.prefixes {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}

// Len returns the number of opt-out entries.
func (o *OptOutList) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.prefixes)
}
