// Package analysis provides the statistics and presentation helpers the
// study's experiments share: medians and percentiles over latency samples,
// CDFs (Fig. 4), grouped counters, and plain-text renderings of the paper's
// tables and figure series.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). Even-length inputs
// average the two middle values.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	// F is the fraction of samples <= X.
	F float64
}

// CDF computes the empirical CDF of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var pts []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to their last index.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		pts = append(pts, CDFPoint{X: sorted[i], F: float64(i+1) / n})
	}
	return pts
}

// Counter counts string-keyed events.
type Counter map[string]int

// Add increments key by n.
func (c Counter) Add(key string, n int) { c[key] += n }

// Inc increments key by one.
func (c Counter) Inc(key string) { c[key]++ }

// Total sums all counts.
func (c Counter) Total() int {
	t := 0
	for _, n := range c {
		t += n
	}
	return t
}

// TopN returns the n largest entries as (key, count) pairs, ties broken by
// key for determinism.
func (c Counter) TopN(n int) []KV {
	kvs := make([]KV, 0, len(c))
	for k, v := range c {
		kvs = append(kvs, KV{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].V != kvs[j].V {
			return kvs[i].V > kvs[j].V
		}
		return kvs[i].K < kvs[j].K
	})
	if n > len(kvs) {
		n = len(kvs)
	}
	return kvs[:n]
}

// KV is a key with a count.
type KV struct {
	K string
	V int
}

// Table is a renderable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a renderable figure series (one line of a plot).
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SeriesPoint is one (x, y) sample with a string x (months, scan dates).
type SeriesPoint struct {
	X string
	Y float64
}

// Figure is a renderable paper figure: one or more series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddPoint appends a point to the named series, creating it if necessary.
func (f *Figure) AddPoint(series, x string, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, SeriesPoint{x, y})
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []SeriesPoint{{x, y}}})
}

// Render returns the figure's data as aligned text, one block per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if f.XLabel != "" || f.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	}
	for _, s := range f.Series {
		fmt.Fprintf(&b, "[%s]\n", s.Name)
		for _, p := range s.Points {
			if p.Y == math.Trunc(p.Y) && math.Abs(p.Y) < 1e15 {
				fmt.Fprintf(&b, "  %-16s %d\n", p.X, int64(p.Y))
			} else {
				fmt.Fprintf(&b, "  %-16s %.4g\n", p.X, p.Y)
			}
		}
	}
	return b.String()
}

// RenderBars renders the figure as ASCII bar charts, one block per series,
// scaled to width characters. Meant for terminal reports.
func (f *Figure) RenderBars(width int) string {
	if width < 10 {
		width = 10
	}
	var maxY float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "[%s]\n", s.Name)
		for _, p := range s.Points {
			n := 0
			if maxY > 0 {
				n = int(p.Y / maxY * float64(width))
			}
			if p.Y > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-12s %s %.4g\n", p.X, strings.Repeat("#", n), p.Y)
		}
	}
	return b.String()
}

// GrowthPercent returns the percentage change from a to b, as the paper
// reports it ("+108%", "-84%").
func GrowthPercent(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

// FormatGrowth renders a growth percentage the way Table 2 does.
func FormatGrowth(pct float64) string {
	return fmt.Sprintf("%+.0f%%", pct)
}
