package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of the trace tree: a named stage of the pipeline with a
// virtual-time cost, ordered attributes, and fault/retry events. Spans are
// written once by the task that owns them (plus FlowEvent annotations from
// the fault injector, which the Sources gate keeps single-writer too) and
// exported after the run, so a mutex per span is plenty.
type Span struct {
	rec  *Recorder
	name string

	// key orders concurrent siblings deterministically: fan-out callers
	// pass their task index via Key(i); serial children keep -1 and sort
	// by seq (per-parent creation order) instead.
	key int
	seq int

	mu       sync.Mutex
	children []*Span
	nextSeq  int
	attrs    []attr
	events   []string
	virtual  atomic.Int64 // virtual-clock cost in nanoseconds
	errMsg   string
}

type attr struct{ k, v string }

// SpanOption configures a span at Start time.
type SpanOption func(*Span)

// Key sets the deterministic sibling sort key. Every concurrent sibling
// (spans started from different runner tasks under one parent) must carry
// its task index here, or export order would depend on scheduling.
func Key(i int) SpanOption { return func(s *Span) { s.key = i } }

// Attr attaches a key=value attribute at Start time.
func Attr(k, v string) SpanOption { return func(s *Span) { s.setAttrLocked(k, v) } }

// Start opens a child span. Nil-safe: a nil receiver returns nil.
func (s *Span) Start(name string, opts ...SpanOption) *Span {
	if s == nil {
		return nil
	}
	child := &Span{rec: s.rec, name: sanitizeName(name), key: -1}
	s.mu.Lock()
	child.seq = s.nextSeq
	s.nextSeq++
	s.children = append(s.children, child)
	s.mu.Unlock()
	for _, opt := range opts {
		opt(child)
	}
	return child
}

// SetAttr sets (or overwrites) an attribute. First-set order is kept for
// rendering; JSONL export sorts by key regardless.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.setAttrLocked(k, v)
	s.mu.Unlock()
}

func (s *Span) setAttrLocked(k, v string) {
	for i := range s.attrs {
		if s.attrs[i].k == k {
			s.attrs[i].v = v
			return
		}
	}
	s.attrs = append(s.attrs, attr{k, v})
}

// SetInt sets an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.SetAttr(k, fmt.Sprintf("%d", v)) }

// Event appends a point-in-trace annotation (e.g. "fault:syn-drop").
func (s *Span) Event(e string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Charge adds virtual duration d to the span's cost.
func (s *Span) Charge(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.virtual.Add(int64(d))
}

// Fail records err on the span. A nil err is ignored.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Virtual returns the virtual-clock cost charged so far.
func (s *Span) Virtual() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.virtual.Load())
}

// Name returns the span's sanitized name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// sortedChildren returns a copy of the children slice in deterministic
// export order: by explicit key, then per-parent creation order.
func (s *Span) sortedChildren() []*Span {
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].key != kids[j].key {
			return kids[i].key < kids[j].key
		}
		return kids[i].seq < kids[j].seq
	})
	return kids
}

func (s *Span) descendants() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	n := len(kids)
	for _, c := range kids {
		n += c.descendants()
	}
	return n
}

// sanitizeName keeps span names path- and line-safe: "/" joins paths and
// "\n" delimits JSONL records, so both are replaced.
func sanitizeName(name string) string {
	if name == "" {
		return "span"
	}
	return strings.Map(func(r rune) rune {
		if r == '/' || r == '\n' || r == '\r' {
			return '_'
		}
		return r
	}, name)
}
