package dnscrypt

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"

	"dnsencryption.info/doe/internal/bufpool"
)

// ErrDecrypt is returned when a box fails authentication.
var ErrDecrypt = errors.New("dnscrypt: message authentication failed")

// SecretboxSeal encrypts-and-authenticates msg with key and nonce
// (NaCl crypto_secretbox: XSalsa20 + Poly1305). The result is
// tag(16) || ciphertext.
func SecretboxSeal(msg []byte, nonce *[24]byte, key *[32]byte) []byte {
	return SecretboxSealAppend(nil, msg, nonce, key)
}

// SecretboxSealAppend appends tag(16) || ciphertext to dst and returns the
// extended slice. msg must not alias dst. Passing a reused buffer keeps the
// steady-state encrypted query path allocation-free.
//
//doelint:hotpath
func SecretboxSealAppend(dst, msg []byte, nonce *[24]byte, key *[32]byte) []byte {
	block0 := firstBlock(key, nonce)
	var polyKey [32]byte
	copy(polyKey[:], block0[:32])

	start := len(dst)
	dst = bufpool.Grow(dst, 16+len(msg))
	out := dst[start:]
	ct := out[16:]
	copy(ct, msg)
	// The first 32 bytes of the keystream are reserved for the Poly1305
	// key; plaintext bytes 0..31 use keystream bytes 32..63, the rest
	// continue from block one.
	n := len(ct)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		ct[i] ^= block0[32+i]
	}
	if len(ct) > 32 {
		xsalsa20XOR(key, nonce, 64, ct[32:])
	}
	tag := poly1305(ct, &polyKey) //doelint:allow hotalloc -- reference poly1305 computes in big.Int; allocation is intrinsic to it
	copy(out[:16], tag[:])
	return dst
}

// SecretboxOpen authenticates and decrypts a sealed box.
func SecretboxOpen(sealed []byte, nonce *[24]byte, key *[32]byte) ([]byte, error) {
	return SecretboxOpenAppend(nil, sealed, nonce, key)
}

// SecretboxOpenAppend authenticates sealed and appends the plaintext to
// dst, returning the extended slice. sealed must not alias dst. Passing a
// reused buffer keeps the steady-state decrypt path allocation-free.
//
//doelint:hotpath
func SecretboxOpenAppend(dst, sealed []byte, nonce *[24]byte, key *[32]byte) ([]byte, error) {
	if len(sealed) < 16 {
		return nil, ErrDecrypt
	}
	block0 := firstBlock(key, nonce)
	var polyKey [32]byte
	copy(polyKey[:], block0[:32])

	var tag [16]byte
	copy(tag[:], sealed[:16])
	ct := sealed[16:]
	want := poly1305(ct, &polyKey) //doelint:allow hotalloc -- reference poly1305 computes in big.Int; allocation is intrinsic to it
	if !constantTimeEqual16(&tag, &want) {
		return nil, ErrDecrypt
	}
	start := len(dst)
	dst = bufpool.Grow(dst, len(ct))
	msg := dst[start:]
	copy(msg, ct)
	n := len(msg)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		msg[i] ^= block0[32+i]
	}
	if len(msg) > 32 {
		xsalsa20XOR(key, nonce, 64, msg[32:])
	}
	return dst, nil
}

// KeyPair is an X25519 key pair.
type KeyPair struct {
	priv *ecdh.PrivateKey
	// Public is the 32-byte public key.
	Public [32]byte
}

// NewKeyPair generates an X25519 key pair.
func NewKeyPair() (*KeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	kp := &KeyPair{priv: priv}
	copy(kp.Public[:], priv.PublicKey().Bytes())
	return kp, nil
}

// SharedKey computes the NaCl box precomputation with a peer public key:
// HSalsa20(X25519(sk, pk), 0).
func (kp *KeyPair) SharedKey(peer *[32]byte) (*[32]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peer[:])
	if err != nil {
		return nil, fmt.Errorf("dnscrypt: bad peer key: %w", err)
	}
	raw, err := kp.priv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	var shared [32]byte
	copy(shared[:], raw)
	var zero [16]byte
	key := hSalsa20(&shared, &zero)
	return &key, nil
}
