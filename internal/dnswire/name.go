package dnswire

import (
	"errors"
	"strings"
)

// Errors returned by the name codec.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label in name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrBufferTooSmall = errors.New("dnswire: buffer too small")
)

const (
	maxNameLen  = 255
	maxLabelLen = 63
	// maxPointers bounds pointer chasing; a legitimate name can need at
	// most one pointer per label, and names have at most 127 labels.
	maxPointers = 127
)

// CanonicalName lower-cases a domain name and ensures it ends with a dot,
// the canonical form used throughout this repository for map keys.
func CanonicalName(s string) string {
	s = strings.ToLower(s)
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// IsSubdomain reports whether child equals parent or falls under it.
// Both arguments are canonicalized first.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// SLD returns the second-level domain of a name ("a.b.example.com." →
// "example.com."). Names with fewer than two labels are returned unchanged.
// The paper groups DoT providers by the SLD of certificate Common Names.
func SLD(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	labels := strings.Split(strings.TrimSuffix(name, "."), ".")
	if len(labels) <= 2 {
		return name
	}
	return strings.Join(labels[len(labels)-2:], ".") + "."
}

// validateName checks the per-label and total length restrictions of a
// canonical name without splitting it into a label slice. Per-label errors
// take precedence over the total-length error, matching the historical
// splitLabels behavior.
func validateName(name string) error {
	for pos := 0; pos < len(name); {
		dot := strings.IndexByte(name[pos:], '.')
		if dot == 0 {
			return ErrEmptyLabel
		}
		if dot > maxLabelLen {
			return ErrLabelTooLong
		}
		pos += dot + 1
	}
	// A canonical name's wire form costs len(name)+1 octets: each label's
	// length byte stands in for its trailing dot, plus the root byte.
	if len(name)+1 > maxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// appendName appends the wire encoding of name to buf. If ps is non-nil it
// performs RFC 1035 §4.1.4 compression: suffixes already emitted earlier in
// the message are replaced by a 2-byte pointer, and newly emitted suffixes
// at message-relative offsets representable in 14 bits are recorded for
// later reuse.
//
// The steady-state path allocates nothing: labels are walked in place with
// IndexByte and the compression keys are suffix substrings of the canonical
// name, which produce exactly the keys the label-joining implementation
// used, so compression decisions — and the packed bytes — are unchanged.
func appendName(buf []byte, name string, ps *packState) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	if err := validateName(name); err != nil {
		return nil, err
	}
	for pos := 0; pos < len(name); {
		suffix := name[pos:]
		if ps != nil {
			if off, ok := ps.off[suffix]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf) - ps.base; off < 0x3FFF {
				ps.off[suffix] = off
			}
		}
		n := strings.IndexByte(suffix, '.')
		buf = append(buf, byte(n))
		buf = append(buf, suffix[:n]...)
		pos += n + 1
	}
	return append(buf, 0), nil
}

// readName decodes a possibly compressed name starting at off within msg.
// It returns the canonical presentation form and the offset of the first
// byte after the name's in-place encoding (pointers are followed but do not
// advance the cursor).
func readName(msg []byte, off int) (string, int, error) {
	// Names are capped at 255 presentation octets, so the label bytes
	// accumulate in a fixed stack buffer and the only allocation is the
	// final string copy. Lower-casing happens as bytes are copied in.
	var name [maxNameLen]byte
	n := 0
	ptrCount := 0
	cursor := off
	// end tracks where parsing resumes; set the first time a pointer is taken.
	end := -1
	for {
		if cursor >= len(msg) {
			return "", 0, ErrBufferTooSmall
		}
		c := msg[cursor]
		switch {
		case c == 0:
			cursor++
			if end < 0 {
				end = cursor
			}
			if n == 0 {
				return ".", end, nil
			}
			return string(name[:n]), end, nil
		case c&0xC0 == 0xC0:
			if cursor+1 >= len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			ptr := int(c&0x3F)<<8 | int(msg[cursor+1])
			if end < 0 {
				end = cursor + 2
			}
			if ptr >= cursor || ptr >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptrCount++
			if ptrCount > maxPointers {
				return "", 0, ErrPointerLoop
			}
			cursor = ptr
		case c&0xC0 != 0:
			return "", 0, ErrBadPointer
		default:
			if cursor+1+int(c) > len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			if n+int(c)+1 > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			for _, ch := range msg[cursor+1 : cursor+1+int(c)] {
				if 'A' <= ch && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				name[n] = ch
				n++
			}
			name[n] = '.'
			n++
			cursor += 1 + int(c)
		}
	}
}
