package dnscrypt

import "math/big"

// poly1305 computes the one-time authenticator of msg under a 32-byte key
// (r || s). The implementation follows the definition directly using
// arbitrary-precision arithmetic — clarity over speed; the study's message
// rates are tiny.
func poly1305(msg []byte, key *[32]byte) [16]byte {
	// Clamp r.
	var rBytes [16]byte
	copy(rBytes[:], key[:16])
	rBytes[3] &= 15
	rBytes[7] &= 15
	rBytes[11] &= 15
	rBytes[15] &= 15
	rBytes[4] &= 252
	rBytes[8] &= 252
	rBytes[12] &= 252

	r := leBytesToBig(rBytes[:])
	s := leBytesToBig(key[16:32])
	p := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 130), big.NewInt(5))

	acc := new(big.Int)
	block := new(big.Int)
	for len(msg) > 0 {
		n := 16
		if len(msg) < n {
			n = len(msg)
		}
		chunk := make([]byte, n+1)
		copy(chunk, msg[:n])
		chunk[n] = 1 // append the 2^(8*n) bit
		block.SetBytes(reverse(chunk))
		acc.Add(acc, block)
		acc.Mul(acc, r)
		acc.Mod(acc, p)
		msg = msg[n:]
	}
	acc.Add(acc, s)
	acc.Mod(acc, new(big.Int).Lsh(big.NewInt(1), 128))

	var tag [16]byte
	out := acc.Bytes() // big endian
	for i, b := range out {
		tag[len(out)-1-i] = b
	}
	return tag
}

func leBytesToBig(b []byte) *big.Int {
	return new(big.Int).SetBytes(reverse(b))
}

func reverse(b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[len(b)-1-i] = v
	}
	return out
}

// constantTimeEqual16 compares two tags without early exit.
func constantTimeEqual16(a, b *[16]byte) bool {
	var v byte
	for i := 0; i < 16; i++ {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
