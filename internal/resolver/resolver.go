// Package resolver presents every transport the study measures — clear-text
// DNS over UDP and TCP, DoT (RFC 7858), DoH (RFC 8484) and DNSCrypt — behind
// one Exchanger interface: a single DNS transaction under a context. The
// measurement code in internal/vantage and internal/core compares protocols
// side by side; giving all of them the same call shape keeps that comparison
// honest (the harness around each query is identical, only the transport
// differs) and lets the parallel campaign engine cancel any of them the same
// way.
//
// Transports own their transaction IDs: UDP, TCP and DoT pick fresh random
// IDs per exchange, DoH always sends ID 0 (RFC 8484 §4.1 cache
// friendliness). The ID on the message passed to Exchange is therefore
// advisory, and the returned message carries whatever ID the transport used.
package resolver

import (
	"context"
	"crypto/x509"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
)

// Exchanger is the unified client API: one DNS transaction, any transport.
type Exchanger interface {
	Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error)
}

// Session is an Exchanger bound to one connection, exposing the virtual-time
// accounting the performance experiments (§4.3) need: setup cost and total
// elapsed time, so per-query latency is the Elapsed delta around an
// Exchange.
type Session interface {
	Exchanger
	Close() error
	// SetupLatency is the virtual time spent establishing the connection
	// (TCP handshake, plus TLS where the transport has one).
	SetupLatency() time.Duration
	// Elapsed is the total virtual time the connection has consumed.
	Elapsed() time.Duration
}

// ErrNoQuestion is returned when Exchange is handed a message without a
// question section.
var ErrNoQuestion = errors.New("resolver: message has no question")

// Question extracts the question a transport forwards: adapters delegate to
// the per-transport clients, which build their own wire messages.
func Question(msg *dnswire.Message) (string, dnswire.Type, error) {
	if msg == nil || len(msg.Questions) == 0 {
		return "", 0, ErrNoQuestion
	}
	return msg.Questions[0].Name, msg.Questions[0].Type, nil
}

// Options collects the cross-transport knobs. The zero value is not useful;
// construct via New, which applies defaults before the functional options.
type Options struct {
	// Timeout is the per-transaction real-time guard (virtual latency is
	// unaffected; this protects the test harness).
	Timeout time.Duration
	// Reuse keeps one session open across Exchanges on a Transport. With
	// it off, every Exchange dials, queries once and closes — the no-reuse
	// arm of the §4.3 comparison.
	Reuse bool
	// Profile selects the DoT usage profile (RFC 8310).
	Profile dot.Profile
	// Padding adds EDNS(0) padding (RFC 8467) to DoT queries.
	Padding bool
	// Retry is the Transport attempt budget; the zero value disables
	// retries (one attempt per Exchange).
	Retry RetryPolicy
}

// Option mutates Options; see WithTimeout, WithReuse, WithProfile,
// WithPadding.
type Option func(*Options)

// WithTimeout sets the per-transaction real-time guard.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// WithReuse controls connection reuse on Transports (default true).
func WithReuse(on bool) Option { return func(o *Options) { o.Reuse = on } }

// WithProfile selects the DoT usage profile (default Opportunistic, the
// paper's client-side choice).
func WithProfile(p dot.Profile) Option { return func(o *Options) { o.Profile = p } }

// WithPadding enables EDNS(0) padding on DoT queries (default off).
func WithPadding(on bool) Option { return func(o *Options) { o.Padding = on } }

func applyOptions(opts []Option) Options {
	o := Options{Timeout: 5 * time.Second, Reuse: true, Profile: dot.Opportunistic}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Client builds Exchangers over a simulated world from one vantage address.
type Client struct {
	World *netsim.World
	From  netip.Addr
	Roots *x509.CertPool
	opts  Options
}

// New returns a Client with study defaults, adjusted by opts.
func New(w *netsim.World, from netip.Addr, roots *x509.CertPool, opts ...Option) *Client {
	return &Client{World: w, From: from, Roots: roots, opts: applyOptions(opts)}
}

func (c *Client) stub() *dnsclient.Client {
	s := dnsclient.New(c.World, c.From)
	s.Timeout = c.opts.Timeout
	return s
}

// UDP returns the connectionless clear-text exchanger for server:53.
func (c *Client) UDP(server netip.Addr) Exchanger {
	return udpExchanger{client: c.stub(), server: server}
}

// DialTCP opens a clear-text DNS-over-TCP session to server:53.
func (c *Client) DialTCP(ctx context.Context, server netip.Addr) (Session, error) {
	conn, err := c.stub().DialTCPContext(ctx, server)
	if err != nil {
		return nil, err
	}
	return TCPSession(conn), nil
}

// DialDoT opens a DoT session to server:853 under the configured profile
// and padding policy.
func (c *Client) DialDoT(ctx context.Context, server netip.Addr) (Session, error) {
	dc := dot.NewClient(c.World, c.From, c.Roots, c.opts.Profile)
	dc.Timeout = c.opts.Timeout
	dc.Pad = c.opts.Padding
	conn, err := dc.DialContext(ctx, server)
	if err != nil {
		return nil, err
	}
	return DoTSession(conn), nil
}

// DialDoH opens a DoH session for template t at the pinned address.
func (c *Client) DialDoH(ctx context.Context, t doh.Template, addr netip.Addr) (Session, error) {
	dc := doh.NewClient(c.World, c.From, c.Roots)
	dc.Timeout = c.opts.Timeout
	conn, err := dc.DialContext(ctx, t, addr)
	if err != nil {
		return nil, err
	}
	return DoHSession(conn), nil
}

// TCP returns a reuse-aware Transport for clear-text DNS over TCP.
func (c *Client) TCP(server netip.Addr) *Transport {
	return newTransport(c.opts, "tcp", func(ctx context.Context) (Session, error) {
		return c.DialTCP(ctx, server)
	})
}

// DoT returns a reuse-aware Transport for DNS over TLS.
func (c *Client) DoT(server netip.Addr) *Transport {
	return newTransport(c.opts, "dot", func(ctx context.Context) (Session, error) {
		return c.DialDoT(ctx, server)
	})
}

// DoH returns a reuse-aware Transport for DNS over HTTPS.
func (c *Client) DoH(t doh.Template, addr netip.Addr) *Transport {
	return newTransport(c.opts, "doh", func(ctx context.Context) (Session, error) {
		return c.DialDoH(ctx, t, addr)
	})
}

// Transport is a connection-managing Exchanger. With reuse, the first
// Exchange dials and later ones share the session (the amortized arm of
// §4.3); without, every Exchange pays connection setup (the no-reuse arm).
// A RetryPolicy (WithRetry) gives each Exchange an attempt budget with
// exponential backoff charged to the virtual clock; a reused session that
// dies mid-exchange is dropped (the error wraps ErrSessionClosed) and the
// next attempt redials.
type Transport struct {
	dial  func(ctx context.Context) (Session, error)
	reuse bool
	retry RetryPolicy
	// label names the protocol in telemetry ("tcp", "dot", "doh");
	// spanName is the precomputed "xchg:<label>" span title.
	label    string
	spanName string

	mu   sync.Mutex
	sess Session
	// mc caches per-protocol metric handles for the registry the transport
	// last saw, so steady-state exchanges don't re-render label strings.
	mc metricSet
	// last is the virtual time the most recent Exchange consumed on its
	// connection, including setup when the session was dialed for it, and
	// — under retries — the cost of failed attempts plus backoff.
	last       time.Duration
	everDialed bool
	stats      RetryStats
}

func newTransport(o Options, label string, dial func(ctx context.Context) (Session, error)) *Transport {
	return &Transport{dial: dial, reuse: o.Reuse, retry: o.Retry, label: label, spanName: "xchg:" + label}
}

// metricSet holds the per-protocol instrument handles for one registry.
// All handles are nil-safe, so a nil registry yields a usable zero set.
type metricSet struct {
	reg       *obs.Registry
	attempts  *obs.Counter
	retries   *obs.Counter
	recovered *obs.Counter
	okTotal   *obs.Counter
	errTotal  *obs.Counter
	hard      *obs.Counter
	redials   *obs.Counter
	latency   *obs.Histogram
	setup     *obs.Histogram
}

// metricsFor returns the cached handle set for ctx's registry, rebuilding it
// only when the registry changes; callers hold t.mu.
func (t *Transport) metricsFor(ctx context.Context) *metricSet {
	m := obs.Metrics(ctx)
	if t.mc.reg != m {
		t.mc = metricSet{
			reg:       m,
			attempts:  m.Counter("resolver_attempts_total", "proto", t.label),
			retries:   m.Counter("resolver_retries_total", "proto", t.label),
			recovered: m.Counter("resolver_recovered_total", "proto", t.label),
			okTotal:   m.Counter("resolver_exchanges_total", "proto", t.label, "outcome", "ok"),
			errTotal:  m.Counter("resolver_exchanges_total", "proto", t.label, "outcome", "error"),
			hard:      m.Counter("resolver_hard_failures_total", "proto", t.label),
			redials:   m.Counter("resolver_redials_total", "proto", t.label),
			latency:   m.Histogram("resolver_exchange_latency", nil, "proto", t.label),
			setup:     m.Histogram("resolver_setup_latency", nil, "proto", t.label),
		}
	}
	return &t.mc
}

// Exchange performs one transaction, dialing per the reuse policy and
// retrying per the retry policy.
func (t *Transport) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ctx, sp := obs.Start(ctx, t.spanName)
	mc := t.metricsFor(ctx)
	budget := t.retry.Attempts
	if budget < 1 {
		budget = 1
	}
	var (
		resp *dnswire.Message
		err  error
		// penalty is the virtual time lost to failed attempts and backoff,
		// charged into last so latency accounting reflects the recovery.
		penalty  time.Duration
		attempts int
	)
	for attempt := 1; attempt <= budget; attempt++ {
		attempts = attempt
		t.stats.Attempts++
		mc.attempts.Add(1)
		if attempt > 1 {
			t.stats.Retries++
			mc.retries.Add(1)
			sp.Event(fmt.Sprintf("retry:%d", attempt))
			penalty += t.retry.backoffFor(attempt)
		}
		resp, err = t.exchangeOnce(ctx, msg)
		if err == nil {
			if attempt > 1 {
				t.stats.Recovered++
				mc.recovered.Add(1)
			}
			t.last += penalty
			mc.okTotal.Add(1)
			mc.latency.Observe(t.last)
			obs.Charge(ctx, t.last)
			sp.SetInt("attempts", int64(attempt))
			return resp, nil
		}
		penalty += t.last
		if ctx.Err() != nil {
			break
		}
	}
	t.stats.HardFailures++
	t.last = penalty
	mc.hard.Add(1)
	mc.errTotal.Add(1)
	obs.Charge(ctx, t.last)
	sp.SetInt("attempts", int64(attempts))
	sp.Fail(err)
	return nil, err
}

// exchangeOnce performs one attempt; callers hold t.mu. It leaves t.last at
// the attempt's own cost (zero for failed dials).
func (t *Transport) exchangeOnce(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	if !t.reuse {
		sess, err := t.dialSpanned(ctx)
		if err != nil {
			t.last = 0
			return nil, err
		}
		defer sess.Close()
		resp, err := sess.Exchange(ctx, msg)
		t.last = sess.Elapsed()
		return resp, err
	}
	if t.sess == nil {
		sess, err := t.dialSpanned(ctx)
		if err != nil {
			t.last = 0
			return nil, err
		}
		if t.everDialed {
			t.stats.Redials++
			t.metricsFor(ctx).redials.Add(1)
		}
		t.everDialed = true
		t.sess = sess
	}
	start := t.sess.Elapsed()
	resp, err := t.sess.Exchange(ctx, msg)
	t.last = t.sess.Elapsed() - start
	if err != nil && isConnDeath(err) {
		// The reused session is unusable: drop it so the next attempt (or
		// the next Exchange) redials, and mark the error as a session
		// death rather than a protocol failure.
		t.sess.Close()
		t.sess = nil
		err = fmt.Errorf("%w: %w", ErrSessionClosed, err)
	}
	return resp, err
}

// dialSpanned dials a session under a "dial" child span charged with the
// connection's setup latency (TCP handshake + TLS where present), feeding
// the per-protocol setup-latency histogram; callers hold t.mu.
func (t *Transport) dialSpanned(ctx context.Context) (Session, error) {
	dsp := obs.CurrentSpan(ctx).Start("dial")
	sess, err := t.dial(ctx)
	if err != nil {
		dsp.Fail(err)
		return nil, err
	}
	dsp.Charge(sess.SetupLatency())
	t.metricsFor(ctx).setup.Observe(sess.SetupLatency())
	return sess, nil
}

// Stats returns a snapshot of the attempt-level counters.
func (t *Transport) Stats() RetryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// LastLatency is the virtual time the most recent Exchange took: the
// on-connection delta when reusing, the whole dial-query-close cost when
// not.
func (t *Transport) LastLatency() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// Close releases the retained session, if any. A later Exchange dials
// fresh (not counted as a redial).
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.everDialed = false
	if t.sess == nil {
		return nil
	}
	err := t.sess.Close()
	t.sess = nil
	return err
}
