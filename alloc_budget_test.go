package doe_test

import (
	"context"
	"net/netip"
	"testing"

	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/resolver"
)

// Steady-state allocation budgets (DESIGN.md §9): hard ceilings on the
// allocations one reused-session Exchange may perform, measured with
// testing.AllocsPerRun across client and server goroutines. The ceilings
// carry slack over the measured values (sync.Pool may shed buffers under GC
// pressure) but sit at or below half the pre-pooling counts — DoT was 59
// allocs/op and DoH 130 before the buffer-reuse work — so a regression past
// 50% of the old cost fails here before it reaches a trajectory diff.
const (
	allocBudgetDoT = 25
	allocBudgetDoH = 65
	allocBudgetTCP = 22
	// DoQ measures 19 allocs/op: one pooled flight buffer in, one demuxed
	// message out, no per-query goroutine or TLS record machinery.
	allocBudgetDoQ = 24
)

// Multiplexed-session ceilings: an Exchange routed through the pipelining
// engine (TCP/DoT) or the HTTP/2 stream layer (DoH) at MaxInFlight=8 may
// cost at most 1.5× the serial budget — the demux slot, rendezvous channel
// and per-stream frames must stay pooled.
const (
	allocBudgetDoTMux = allocBudgetDoT * 3 / 2
	allocBudgetDoHMux = allocBudgetDoH * 3 / 2
	allocBudgetTCPMux = allocBudgetTCP * 3 / 2
	allocBudgetDoQMux = allocBudgetDoQ * 3 / 2
)

// exchangeAllocs measures the average allocations of one Exchange on an
// already established session.
func exchangeAllocs(t *testing.T, tr *resolver.Transport) float64 {
	t.Helper()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	// Prime: the first Exchange dials; steady state starts after it.
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(200, func() {
		if _, err := tr.Exchange(context.Background(), msg); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetDoTExchange(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.DoT(s.Targets[0].DoT)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoT {
		t.Errorf("DoT steady-state exchange: %.1f allocs/op, budget %d", got, allocBudgetDoT)
	}
}

func TestAllocBudgetDoHExchange(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tgt := s.Targets[0]
	tr := c.DoH(tgt.DoH, tgt.DoHAddr)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoH {
		t.Errorf("DoH steady-state exchange: %.1f allocs/op, budget %d", got, allocBudgetDoH)
	}
}

func TestAllocBudgetDoQExchange(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.DoQ(s.Targets[0].DoQ)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoQ {
		t.Errorf("DoQ steady-state exchange: %.1f allocs/op, budget %d", got, allocBudgetDoQ)
	}
}

func TestAllocBudgetTCPExchange(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.TCP(s.Targets[0].DNS)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetTCP {
		t.Errorf("TCP steady-state exchange: %.1f allocs/op, budget %d", got, allocBudgetTCP)
	}
}

func TestAllocBudgetDoTExchangeInflight8(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.DoT(s.Targets[0].DoT)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoTMux {
		t.Errorf("DoT pipelined exchange: %.1f allocs/op, budget %d", got, allocBudgetDoTMux)
	}
}

func TestAllocBudgetDoHExchangeInflight8(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tgt := s.Targets[0]
	tr := c.DoH(tgt.DoH, tgt.DoHAddr)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoHMux {
		t.Errorf("DoH multiplexed exchange: %.1f allocs/op, budget %d", got, allocBudgetDoHMux)
	}
}

func TestAllocBudgetDoQExchangeInflight8(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.DoQ(s.Targets[0].DoQ)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetDoQMux {
		t.Errorf("DoQ concurrent-stream exchange: %.1f allocs/op, budget %d", got, allocBudgetDoQMux)
	}
}

func TestAllocBudgetTCPExchangeInflight8(t *testing.T) {
	s := study(t)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.TCP(s.Targets[0].DNS)
	defer tr.Close()
	if got := exchangeAllocs(t, tr); got > allocBudgetTCPMux {
		t.Errorf("TCP pipelined exchange: %.1f allocs/op, budget %d", got, allocBudgetTCPMux)
	}
}
