// Package resolver presents every transport the study measures — clear-text
// DNS over UDP and TCP, DoT (RFC 7858), DoH (RFC 8484), DoQ (RFC 9250) and
// DNSCrypt — behind one Exchanger interface: a single DNS transaction under
// a context. The
// measurement code in internal/vantage and internal/core compares protocols
// side by side; giving all of them the same call shape keeps that comparison
// honest (the harness around each query is identical, only the transport
// differs) and lets the parallel campaign engine cancel any of them the same
// way.
//
// Transports own their transaction IDs: UDP, TCP and DoT pick fresh random
// IDs per exchange, DoH always sends ID 0 (RFC 8484 §4.1 cache
// friendliness). The ID on the message passed to Exchange is therefore
// advisory, and the returned message carries whatever ID the transport used.
//
// Stream sessions are dialed through one entry point, Dial, keyed by a Proto
// value; with WithMaxInFlight the session pipelines (TCP/DoT, RFC 7766 §6.2.1)
// or multiplexes streams (DoH over HTTP/2, DoQ over QUIC), and Exchange may
// then be called from many goroutines at once.
package resolver

import (
	"context"
	"crypto/x509"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
)

// Exchanger is the unified client API: one DNS transaction, any transport.
type Exchanger interface {
	Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error)
}

// Session is an Exchanger bound to one connection, exposing the virtual-time
// accounting the performance experiments (§4.3) need: setup cost and total
// elapsed time, so per-query latency is the Elapsed delta around an
// Exchange.
//
// Exchange is safe for concurrent use. On a serial session concurrent calls
// queue on the connection; on a session dialed with WithMaxInFlight(n) up to
// n exchanges proceed in flight at once (further callers block until a slot
// frees). When the connection dies mid-exchange, every in-flight call fails
// with an error wrapping ErrSessionClosed.
type Session interface {
	Exchanger
	Close() error
	// SetupLatency is the virtual time spent establishing the connection
	// (TCP handshake, plus TLS where the transport has one).
	SetupLatency() time.Duration
	// Elapsed is the total virtual time the connection has consumed.
	Elapsed() time.Duration
}

// ErrNoQuestion is returned when Exchange is handed a message without a
// question section.
var ErrNoQuestion = errors.New("resolver: message has no question")

// Question extracts the question a transport forwards: adapters delegate to
// the per-transport clients, which build their own wire messages.
func Question(msg *dnswire.Message) (string, dnswire.Type, error) {
	if msg == nil || len(msg.Questions) == 0 {
		return "", 0, ErrNoQuestion
	}
	return msg.Questions[0].Name, msg.Questions[0].Type, nil
}

// Proto selects a stream transport for Dial.
type Proto int

const (
	// ProtoTCP is clear-text DNS over TCP (server port 53).
	ProtoTCP Proto = iota
	// ProtoDoT is DNS over TLS, RFC 7858 (server port 853).
	ProtoDoT
	// ProtoDoH is DNS over HTTPS, RFC 8484 (server port 443).
	ProtoDoH
	// ProtoDoQ is DNS over Dedicated QUIC Connections, RFC 9250 (server
	// UDP port 853).
	ProtoDoQ
)

// protoNames is the single authority for protocol labels: Proto.String,
// ParseProto, telemetry labels and report column headers all read it, so a
// name can never drift between a flag and a metric.
var protoNames = [...]string{
	ProtoTCP: "tcp",
	ProtoDoT: "dot",
	ProtoDoH: "doh",
	ProtoDoQ: "doq",
}

// String names the protocol the way telemetry labels do.
func (p Proto) String() string {
	if p >= 0 && int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", int(p))
}

// ParseProto maps a protocol label ("tcp", "dot", "doh", "doq") back to its
// Proto value — the inverse of String, for cmd flag plumbing.
func ParseProto(s string) (Proto, error) {
	for p, name := range protoNames {
		if s == name {
			return Proto(p), nil
		}
	}
	return 0, fmt.Errorf("resolver: unknown protocol %q", s)
}

// Endpoint addresses a Dial target. Addr is required for every protocol;
// Template is consulted only by ProtoDoH (the URI template whose host is
// pinned to Addr).
type Endpoint struct {
	Addr     netip.Addr
	Template doh.Template
}

// Options collects the cross-transport knobs. The zero value is not useful;
// construct via New, which applies defaults before the functional options.
type Options struct {
	// Timeout is the per-transaction real-time guard (virtual latency is
	// unaffected; this protects the test harness). Zero or negative — the
	// default — means no per-transaction guard: only the context's own
	// deadline applies. A nonzero guard makes query success depend on
	// host scheduling, so deterministic campaigns must leave it unset.
	Timeout time.Duration
	// Reuse keeps one session open across Exchanges on a Transport. With
	// it off, every Exchange dials, queries once and closes — the no-reuse
	// arm of the §4.3 comparison.
	Reuse bool
	// Profile selects the DoT usage profile (RFC 8310).
	Profile dot.Profile
	// Padding adds EDNS(0) padding (RFC 8467) to DoT queries.
	Padding bool
	// Retry is the Transport attempt budget; the zero value disables
	// retries (one attempt per Exchange).
	Retry RetryPolicy
	// MaxInFlight, when positive, makes dialed sessions concurrent: TCP and
	// DoT sessions pipeline up to this many queries (RFC 7766 §6.2.1, with
	// out-of-order responses), DoH sessions negotiate HTTP/2 and multiplex
	// up to this many streams. Zero keeps the serial one-at-a-time sessions.
	MaxInFlight int
}

// Option mutates Options; see WithTimeout, WithReuse, WithProfile,
// WithPadding, WithRetry, WithMaxInFlight.
type Option func(*Options)

// WithTimeout sets the per-transaction real-time guard. Zero (or negative,
// and the default) disables the guard entirely — transactions then run until
// the context expires — which is the right setting for deterministic replays
// that must not depend on host scheduling.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// WithReuse controls connection reuse on Transports (default true). False
// selects the no-reuse arm: every Exchange dials, queries once and closes.
func WithReuse(on bool) Option { return func(o *Options) { o.Reuse = on } }

// WithProfile selects the DoT usage profile (default Opportunistic, the
// paper's client-side choice). The zero Profile value is dot.Strict; pass it
// explicitly when strict authentication is wanted.
func WithProfile(p dot.Profile) Option { return func(o *Options) { o.Profile = p } }

// WithPadding enables EDNS(0) padding on DoT queries (default off). False
// restores the default unpadded queries.
func WithPadding(on bool) Option { return func(o *Options) { o.Padding = on } }

// WithMaxInFlight allows up to n concurrent in-flight queries per dialed
// session (default 0 = serial sessions). n ≤ 0 restores serial behavior.
// See Options.MaxInFlight for what "in flight" means per protocol.
func WithMaxInFlight(n int) Option { return func(o *Options) { o.MaxInFlight = n } }

func applyOptions(opts []Option) Options {
	o := Options{Reuse: true, Profile: dot.Opportunistic}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Client builds Exchangers over a simulated world from one vantage address.
type Client struct {
	World *netsim.World
	From  netip.Addr
	Roots *x509.CertPool
	opts  Options

	// doqOnce/doqCache lazily hold the client-wide DoQ resumption cache:
	// redials within one Client (a Transport recovering from a session
	// death, or a later campaign pass) resume 0-RTT, the amortization
	// RFC 9250 inherits from TLS 1.3 session tickets.
	doqOnce  sync.Once
	doqCache *doq.SessionCache
}

// New returns a Client with study defaults, adjusted by opts.
func New(w *netsim.World, from netip.Addr, roots *x509.CertPool, opts ...Option) *Client {
	return &Client{World: w, From: from, Roots: roots, opts: applyOptions(opts)}
}

func (c *Client) stub() *dnsclient.Client {
	s := dnsclient.New(c.World, c.From)
	s.Timeout = c.opts.Timeout
	return s
}

// UDP returns the connectionless clear-text exchanger for server:53.
func (c *Client) UDP(server netip.Addr) Exchanger {
	return udpExchanger{client: c.stub(), server: server}
}

// Dial opens a stream session to ep over protocol p, applying the Client's
// options: timeout guard, DoT profile and padding, and — when MaxInFlight is
// set — query pipelining (TCP, DoT) or HTTP/2 stream multiplexing (DoH).
// The returned Session is safe for concurrent Exchange calls.
func (c *Client) Dial(ctx context.Context, p Proto, ep Endpoint) (Session, error) {
	switch p {
	case ProtoTCP:
		conn, err := c.stub().DialTCPContext(ctx, ep.Addr)
		if err != nil {
			return nil, err
		}
		if n := c.opts.MaxInFlight; n > 0 {
			conn.Pipeline(n)
		}
		return TCPSession(conn), nil
	case ProtoDoT:
		dc := dot.NewClient(c.World, c.From, c.Roots, c.opts.Profile)
		dc.Timeout = c.opts.Timeout
		dc.Pad = c.opts.Padding
		conn, err := dc.DialContext(ctx, ep.Addr)
		if err != nil {
			return nil, err
		}
		if n := c.opts.MaxInFlight; n > 0 {
			conn.Pipeline(n)
		}
		return DoTSession(conn), nil
	case ProtoDoH:
		dc := doh.NewClient(c.World, c.From, c.Roots)
		dc.Timeout = c.opts.Timeout
		if n := c.opts.MaxInFlight; n > 0 {
			dc.Mux = true
			dc.MaxInFlight = n
		}
		conn, err := dc.DialContext(ctx, ep.Template, ep.Addr)
		if err != nil {
			return nil, err
		}
		return DoHSession(conn), nil
	case ProtoDoQ:
		qc := doq.NewClient(c.World, c.From, c.Roots, c.opts.Profile)
		qc.MaxInFlight = c.opts.MaxInFlight
		qc.SessionCache = c.doqSessionCache()
		conn, err := qc.DialContext(ctx, ep.Addr)
		if err != nil {
			return nil, err
		}
		return DoQSession(conn), nil
	default:
		return nil, fmt.Errorf("resolver: unknown protocol %v", p)
	}
}

// DialTCP opens a clear-text DNS-over-TCP session to server:53.
//
// Deprecated: use Dial(ctx, ProtoTCP, Endpoint{Addr: server}).
func (c *Client) DialTCP(ctx context.Context, server netip.Addr) (Session, error) {
	return c.Dial(ctx, ProtoTCP, Endpoint{Addr: server})
}

// DialDoT opens a DoT session to server:853 under the configured profile
// and padding policy.
//
// Deprecated: use Dial(ctx, ProtoDoT, Endpoint{Addr: server}).
func (c *Client) DialDoT(ctx context.Context, server netip.Addr) (Session, error) {
	return c.Dial(ctx, ProtoDoT, Endpoint{Addr: server})
}

// DialDoH opens a DoH session for template t at the pinned address.
//
// Deprecated: use Dial(ctx, ProtoDoH, Endpoint{Addr: addr, Template: t}).
func (c *Client) DialDoH(ctx context.Context, t doh.Template, addr netip.Addr) (Session, error) {
	return c.Dial(ctx, ProtoDoH, Endpoint{Addr: addr, Template: t})
}

// TCP returns a reuse-aware Transport for clear-text DNS over TCP.
func (c *Client) TCP(server netip.Addr) *Transport {
	return c.transport(ProtoTCP, Endpoint{Addr: server})
}

// DoT returns a reuse-aware Transport for DNS over TLS.
func (c *Client) DoT(server netip.Addr) *Transport {
	return c.transport(ProtoDoT, Endpoint{Addr: server})
}

// DoH returns a reuse-aware Transport for DNS over HTTPS.
func (c *Client) DoH(t doh.Template, addr netip.Addr) *Transport {
	return c.transport(ProtoDoH, Endpoint{Addr: addr, Template: t})
}

// DoQ returns a reuse-aware Transport for DNS over QUIC.
func (c *Client) DoQ(server netip.Addr) *Transport {
	return c.transport(ProtoDoQ, Endpoint{Addr: server})
}

// doqSessionCache returns the Client's shared DoQ resumption cache.
func (c *Client) doqSessionCache() *doq.SessionCache {
	c.doqOnce.Do(func() { c.doqCache = doq.NewSessionCache() })
	return c.doqCache
}

func (c *Client) transport(p Proto, ep Endpoint) *Transport {
	return newTransport(c.opts, p.String(), func(ctx context.Context) (Session, error) {
		return c.Dial(ctx, p, ep)
	})
}

// Transport is a connection-managing Exchanger. With reuse, the first
// Exchange dials and later ones share the session (the amortized arm of
// §4.3); without, every Exchange pays connection setup (the no-reuse arm).
// A RetryPolicy (WithRetry) gives each Exchange an attempt budget with
// exponential backoff charged to the virtual clock; a reused session that
// dies mid-exchange is dropped (the error wraps ErrSessionClosed) and the
// next attempt redials.
//
// Exchange, LastLatency and Stats are safe for concurrent use. When the
// Transport was built with WithMaxInFlight, concurrent Exchanges share the
// retained session's in-flight slots; otherwise they serialize on the
// underlying connection.
type Transport struct {
	dial  func(ctx context.Context) (Session, error)
	reuse bool
	retry RetryPolicy
	// MaxInFlight echoes the dial option for callers sizing their
	// concurrency (0 = serial session).
	MaxInFlight int
	// label names the protocol in telemetry ("tcp", "dot", "doh");
	// spanName is the precomputed "xchg:<label>" span title.
	label    string
	spanName string

	// mu guards the retained session and the cached metric handles — never
	// held across an exchange, so concurrent Exchanges overlap freely.
	mu         sync.Mutex
	sess       Session
	everDialed bool
	// mc caches per-protocol metric handles for the registry the transport
	// last saw, so steady-state exchanges don't re-render label strings.
	mc metricSet

	// last is the virtual time the most recent Exchange consumed on its
	// connection (nanoseconds), including setup when the session was dialed
	// for it, and — under retries — the cost of failed attempts plus
	// backoff. Under concurrent Exchanges, "most recent" means whichever
	// call finished last.
	last  atomic.Int64
	stats transportStats
}

// transportStats is RetryStats with atomic fields, so concurrent Exchanges
// update counters without sharing the session mutex.
type transportStats struct {
	attempts     atomic.Int64
	retries      atomic.Int64
	redials      atomic.Int64
	recovered    atomic.Int64
	hardFailures atomic.Int64
}

func (s *transportStats) snapshot() RetryStats {
	return RetryStats{
		Attempts:     int(s.attempts.Load()),
		Retries:      int(s.retries.Load()),
		Redials:      int(s.redials.Load()),
		Recovered:    int(s.recovered.Load()),
		HardFailures: int(s.hardFailures.Load()),
	}
}

func newTransport(o Options, label string, dial func(ctx context.Context) (Session, error)) *Transport {
	return &Transport{
		dial: dial, reuse: o.Reuse, retry: o.Retry, MaxInFlight: o.MaxInFlight,
		label: label, spanName: "xchg:" + label,
	}
}

// metricSet holds the per-protocol instrument handles for one registry.
// All handles are nil-safe, so a nil registry yields a usable zero set.
// Handles are atomic instruments; the set is copied by value out of the
// cache so exchanges use it without holding t.mu.
type metricSet struct {
	reg       *obs.Registry
	attempts  *obs.Counter
	retries   *obs.Counter
	recovered *obs.Counter
	okTotal   *obs.Counter
	errTotal  *obs.Counter
	hard      *obs.Counter
	redials   *obs.Counter
	inflight  *obs.Gauge
	latency   *obs.Histogram
	setup     *obs.Histogram
}

// metricsFor returns the handle set for ctx's registry, rebuilding the cache
// only when the registry changes.
func (t *Transport) metricsFor(ctx context.Context) metricSet {
	m := obs.Metrics(ctx)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mc.reg != m {
		t.mc = metricSet{
			reg:       m,
			attempts:  m.Counter("resolver_attempts_total", "proto", t.label),
			retries:   m.Counter("resolver_retries_total", "proto", t.label),
			recovered: m.Counter("resolver_recovered_total", "proto", t.label),
			okTotal:   m.Counter("resolver_exchanges_total", "proto", t.label, "outcome", "ok"),
			errTotal:  m.Counter("resolver_exchanges_total", "proto", t.label, "outcome", "error"),
			hard:      m.Counter("resolver_hard_failures_total", "proto", t.label),
			redials:   m.Counter("resolver_redials_total", "proto", t.label),
			inflight:  m.VolatileGauge("resolver_inflight", "proto", t.label),
			latency:   m.Histogram("resolver_exchange_latency", nil, "proto", t.label),
			setup:     m.Histogram("resolver_setup_latency", nil, "proto", t.label),
		}
	}
	return t.mc
}

// Exchange performs one transaction, dialing per the reuse policy and
// retrying per the retry policy. It may be called concurrently; calls share
// the retained session (and its in-flight limit) rather than serializing
// here.
func (t *Transport) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	ctx, sp := obs.Start(ctx, t.spanName)
	mc := t.metricsFor(ctx)
	mc.inflight.Add(1)
	defer mc.inflight.Add(-1)
	budget := t.retry.Attempts
	if budget < 1 {
		budget = 1
	}
	var (
		resp *dnswire.Message
		err  error
		// penalty is the virtual time lost to failed attempts and backoff,
		// charged into last so latency accounting reflects the recovery.
		penalty  time.Duration
		attempts int
	)
	for attempt := 1; attempt <= budget; attempt++ {
		attempts = attempt
		t.stats.attempts.Add(1)
		mc.attempts.Add(1)
		if attempt > 1 {
			t.stats.retries.Add(1)
			mc.retries.Add(1)
			sp.Event(fmt.Sprintf("retry:%d", attempt))
			penalty += t.retry.backoffFor(attempt)
		}
		var cost time.Duration
		resp, cost, err = t.exchangeOnce(ctx, msg, mc)
		if err == nil {
			if attempt > 1 {
				t.stats.recovered.Add(1)
				mc.recovered.Add(1)
			}
			total := cost + penalty
			t.last.Store(int64(total))
			mc.okTotal.Add(1)
			mc.latency.Observe(total)
			obs.Charge(ctx, total)
			sp.SetInt("attempts", int64(attempt))
			return resp, nil
		}
		penalty += cost
		if ctx.Err() != nil {
			break
		}
	}
	t.stats.hardFailures.Add(1)
	t.last.Store(int64(penalty))
	mc.hard.Add(1)
	mc.errTotal.Add(1)
	obs.Charge(ctx, penalty)
	sp.SetInt("attempts", int64(attempts))
	sp.Fail(err)
	return nil, err
}

// exchangeOnce performs one attempt and reports its own virtual cost (zero
// for failed dials).
func (t *Transport) exchangeOnce(ctx context.Context, msg *dnswire.Message, mc metricSet) (*dnswire.Message, time.Duration, error) {
	if !t.reuse {
		sess, err := t.dialSpanned(ctx, mc)
		if err != nil {
			return nil, 0, err
		}
		defer sess.Close()
		resp, err := sess.Exchange(ctx, msg)
		return resp, sess.Elapsed(), err
	}
	sess, err := t.session(ctx, mc)
	if err != nil {
		return nil, 0, err
	}
	start := sess.Elapsed()
	resp, err := sess.Exchange(ctx, msg)
	cost := sess.Elapsed() - start
	if err != nil && isConnDeath(err) {
		// The reused session is unusable: drop it so the next attempt (or
		// the next Exchange) redials, and mark the error as a session
		// death rather than a protocol failure.
		t.dropSession(sess)
		err = fmt.Errorf("%w: %w", ErrSessionClosed, err)
	}
	return resp, cost, err
}

// session returns the retained session, dialing one under t.mu if absent.
func (t *Transport) session(ctx context.Context, mc metricSet) (Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sess != nil {
		return t.sess, nil
	}
	sess, err := t.dialSpanned(ctx, mc)
	if err != nil {
		return nil, err
	}
	if t.everDialed {
		t.stats.redials.Add(1)
		mc.redials.Add(1)
	}
	t.everDialed = true
	t.sess = sess
	return sess, nil
}

// dropSession closes and forgets sess if it is still the retained session.
// The identity guard keeps concurrent Exchanges that all saw the same dead
// session from closing its replacement.
func (t *Transport) dropSession(sess Session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sess == sess {
		sess.Close()
		t.sess = nil
	}
}

// dialSpanned dials a session under a "dial" child span charged with the
// connection's setup latency (TCP handshake + TLS where present), feeding
// the per-protocol setup-latency histogram.
func (t *Transport) dialSpanned(ctx context.Context, mc metricSet) (Session, error) {
	dsp := obs.CurrentSpan(ctx).Start("dial")
	sess, err := t.dial(ctx)
	if err != nil {
		dsp.Fail(err)
		return nil, err
	}
	dsp.Charge(sess.SetupLatency())
	mc.setup.Observe(sess.SetupLatency())
	return sess, nil
}

// Stats returns a snapshot of the attempt-level counters. Safe to call while
// Exchanges are in flight.
func (t *Transport) Stats() RetryStats {
	return t.stats.snapshot()
}

// LastLatency is the virtual time the most recent Exchange took: the
// on-connection delta when reusing, the whole dial-query-close cost when
// not. Safe to call while Exchanges are in flight; with several in flight,
// it reports whichever finished most recently.
func (t *Transport) LastLatency() time.Duration {
	return time.Duration(t.last.Load())
}

// Close releases the retained session, if any. A later Exchange dials
// fresh (not counted as a redial).
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.everDialed = false
	if t.sess == nil {
		return nil
	}
	err := t.sess.Close()
	t.sess = nil
	return err
}
