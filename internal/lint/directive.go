package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every doelint control comment.
const directivePrefix = "//doelint:"

// allowKey identifies one suppressed (file, line, check) cell.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowSet records which findings //doelint:allow directives suppress.
type allowSet map[allowKey]bool

// lineKey identifies one (file, line) cell for line-scoped directives.
type lineKey struct {
	file string
	line int
}

// directiveIndex aggregates every parsed directive of a run: allow cells,
// and the ownership-transfer cells the bufown analyzer consults.
type directiveIndex struct {
	allow    allowSet
	transfer map[lineKey]bool
}

func newDirectiveIndex() *directiveIndex {
	return &directiveIndex{
		allow:    allowSet{},
		transfer: map[lineKey]bool{},
	}
}

// transferAt reports whether an ownership-transfer directive covers the
// given position (its own line, or the line above for a standalone
// directive comment).
func (d *directiveIndex) transferAt(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return d.transfer[lineKey{p.Filename, p.Line}]
}

// parseDirectives scans a file's comments for doelint directives, records
// them into idx, and returns findings for malformed directives. The
// accepted forms are
//
//	//doelint:allow <check>[,<check>...] -- <justification>
//	//doelint:transfer -- <justification>
//	//doelint:hotpath
//	//doelint:streaming
//	//doelint:clockboundary -- <justification>
//	//doelint:ctxroot -- <justification>
//
// allow and transfer are line-scoped: they cover their own line and the
// line immediately below, so they can either trail the offending statement
// or sit on their own line above it. hotpath, streaming, clockboundary,
// and ctxroot go in a function's doc comment and mark the whole
// declaration.
// Justifications are mandatory where shown: suppressions and ownership
// claims must explain themselves to survive review.
func parseDirectives(fset *token.FileSet, f *ast.File, idx *directiveIndex) []Finding {
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		bad = append(bad, Finding{
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Check:   DirectiveCheck,
			Message: fmt.Sprintf(format, args...),
			abs:     p.Filename,
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, arg, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			switch verb {
			case "hotpath":
				// Consumed by the hotalloc analyzer and the facts engine:
				// marks the function whose doc comment carries it as an
				// allocation-free hot path. The directive takes no
				// arguments.
				if strings.TrimSpace(arg) != "" {
					report(c.Pos(), "doelint:hotpath takes no arguments")
				}
			case "streaming":
				// Consumed by the streaming analyzer: marks the function
				// whose doc comment carries it as a population-streaming
				// fold whose memory must stay O(workers·accumulator) — it
				// must not append per-item results into a slice that grows
				// with the campaign population. Takes no arguments.
				if strings.TrimSpace(arg) != "" {
					report(c.Pos(), "doelint:streaming takes no arguments")
				}
			case "clockboundary", "ctxroot":
				// Function-doc directives consumed by walltaint and
				// ctxplumb. Like suppressions, they must carry a
				// justification: a clock boundary asserts it converts wall
				// readings into virtual time, a context root asserts it is
				// a legitimate place for a context tree to start.
				if _, why, found := strings.Cut(arg, "--"); !found || strings.TrimSpace(why) == "" {
					report(c.Pos(), "doelint:%s needs a justification: //doelint:%s -- <why>", verb, verb)
				}
			case "transfer":
				// Line-scoped ownership transfer consumed by bufown: the
				// pooled buffer acquired or escaping on this line is
				// deliberately handed to another owner.
				if _, why, found := strings.Cut(arg, "--"); !found || strings.TrimSpace(why) == "" {
					report(c.Pos(), "doelint:transfer needs a justification: //doelint:transfer -- <who owns it now>")
					continue
				}
				idx.transfer[lineKey{pos.Filename, pos.Line}] = true
				idx.transfer[lineKey{pos.Filename, pos.Line + 1}] = true
			case "allow":
				checksPart, justification, found := strings.Cut(arg, "--")
				if !found || strings.TrimSpace(justification) == "" {
					report(c.Pos(), "doelint:allow needs a justification: //doelint:allow <check> -- <why>")
					continue
				}
				names := strings.Split(strings.TrimSpace(checksPart), ",")
				for _, name := range names {
					name = strings.TrimSpace(name)
					if name == "" || !knownCheck(name) {
						report(c.Pos(), "doelint:allow names unknown check %q", name)
						continue
					}
					if name == DirectiveCheck {
						report(c.Pos(), "the %q check cannot be suppressed", DirectiveCheck)
						continue
					}
					idx.allow[allowKey{pos.Filename, pos.Line, name}] = true
					idx.allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			default:
				report(c.Pos(), "unknown doelint directive %q (defined: \"allow\", \"hotpath\", \"streaming\", \"transfer\", \"clockboundary\", \"ctxroot\")", verb)
			}
		}
	}
	return bad
}

// filter drops findings covered by an allow directive. Directive findings
// themselves are never suppressible.
func (a allowSet) filter(findings []Finding) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if f.Check != DirectiveCheck && a[allowKey{f.abs, f.Line, f.Check}] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
