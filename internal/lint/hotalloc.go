package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady-state body must not churn
// the allocator. It goes on the last line of the function's doc comment,
// like a //go:noinline pragma.
const hotpathDirective = "//doelint:hotpath"

// analyzerHotalloc flags the obvious per-call allocation patterns inside
// functions annotated //doelint:hotpath: make([]byte, ...) builds a fresh
// buffer per call where a reused scratch or bufpool buffer belongs, and
// fmt.Sprintf allocates a string (plus boxed arguments) per call. The
// annotation is the static half of the performance contract (DESIGN.md §9);
// the testing.AllocsPerRun budgets enforce the same contract at runtime.
var analyzerHotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make([]byte, ...) or fmt.Sprintf in //doelint:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotBody(p, fn)
		}
	}
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// checkHotBody walks the whole body, including closures: a per-call FuncLit
// invoked on the hot path allocates just the same.
func checkHotBody(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "make" {
				return true
			}
			if _, ok := p.objectOf(fun).(*types.Builtin); !ok {
				return true
			}
			if isByteSlice(p.Info.TypeOf(call)) {
				p.Reportf(call.Pos(),
					"hot path %s allocates with make([]byte, ...); reuse a scratch buffer or bufpool", name)
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name != "Sprintf" {
				return true
			}
			id, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg, ok := p.objectOf(id).(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(),
					"hot path %s formats with fmt.Sprintf; precompute the string or append into a reused buffer", name)
			}
		}
		return true
	})
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
