// Command doeprobe reproduces §4 of the paper: client-side reachability and
// performance measurements from the proxy-network vantage points, covering
// clear-text DNS, DoT, DoH and DoQ. It prints Table 3 (datasets), Table 4
// (reachability, with a DoQ row per resolver that announces UDP/853),
// Table 5 (port forensics), Table 6 (TLS interception), Table 7 (no-reuse
// performance), Figure 9 (per-country overheads, serial and multiplexed —
// -inflight sizes the DoT pipeline, DoH HTTP/2 streams and DoQ concurrent
// QUIC streams alike) and Figure 10 (per-client scatter).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dnsencryption.info/doe/internal/cli"
	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doeprobe: ")
	seed := flag.Int64("seed", 0, "override the study seed (0 = default)")
	small := flag.Bool("small", false, "use the miniature test-scale world")
	workers := flag.Int("workers", 0, "parallel measurement workers (0 = default; output is identical for any value)")
	faults := flag.String("faults", "", "fault-injection profile: "+strings.Join(core.FaultProfileNames(), ", "))
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (independent of the study seed)")
	inflight := flag.Int("inflight", -1, "per-session in-flight queries of the multiplexed perf pass (-1 = default, <2 disables)")
	nodes := flag.Int("nodes", 0, "run the generator-fed scale campaign over this many vantages instead of the study experiments (max "+fmt.Sprint(workload.VantageCapacity)+"; oversized values are an error, never a truncation)")
	tele := cli.TelemetryFlags()
	flag.Parse()

	if *nodes != 0 {
		if err := core.ValidateScaleNodes(*nodes); err != nil {
			log.Fatalf("-nodes: %v", err)
		}
		scfg := core.DefaultScaleConfig()
		scfg.Nodes = *nodes
		scfg.AllProtos = true
		if *seed != 0 {
			scfg.Seed = *seed
		}
		if *workers > 0 {
			scfg.Workers = *workers
		}
		campaign, err := core.NewScaleCampaign(scfg)
		if err != nil {
			log.Fatalf("building scale world: %v", err)
		}
		defer campaign.Close()
		stats, err := campaign.Run(context.Background())
		if err != nil {
			log.Fatalf("scale campaign: %v", err)
		}
		fmt.Fprint(os.Stdout, campaign.Report(stats))
		return
	}

	cfg := core.DefaultConfig()
	if *small {
		cfg = core.TestConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *inflight >= 0 {
		cfg.MuxInFlight = *inflight
	}
	if *faults != "" {
		cfg.Faults = core.FaultsConfig{Profile: *faults, Seed: *faultSeed}
	}
	cfg.Telemetry = tele.Enabled()
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatalf("building study world: %v", err)
	}
	tele.Serve(study)

	for _, id := range []string{"table3", "table4", "table5", "table6", "table7", "fig9", "fig10"} {
		exp, ok := core.ExperimentByID(id)
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		out, err := study.RunExperiment(exp)
		if err != nil {
			if ferr := tele.Finish(study); ferr != nil {
				log.Printf("%v", ferr)
			}
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(os.Stdout, "== %s: %s\n%s\n", exp.ID, exp.Title, out)
	}
	if err := tele.Finish(study); err != nil {
		log.Fatalf("%v", err)
	}
}
