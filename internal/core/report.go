package core

import (
	"fmt"
	"io"
	"time"
)

// RunAll executes every experiment in paper order and writes a full report.
// It returns the first error but keeps going so one failing experiment does
// not mask the rest.
func (s *Study) RunAll(w io.Writer) error {
	var firstErr error
	for _, exp := range Experiments() {
		start := time.Now() //doelint:allow determinism -- reports real runtime of the experiment, not simulated time
		out, err := exp.Run(s)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", exp.ID, err)
			}
			fmt.Fprintf(w, "== %s: %s\nERROR: %v\n\n", exp.ID, exp.Title, err)
			continue
		}
		//doelint:allow determinism -- reports real runtime of the experiment, not simulated time
		fmt.Fprintf(w, "== %s: %s (%.1fs)\n%s\n", exp.ID, exp.Title, time.Since(start).Seconds(), out)
	}
	return firstErr
}
