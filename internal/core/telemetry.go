package core

import (
	"context"
	"fmt"
	"io"
	"strings"

	"dnsencryption.info/doe/internal/obs"
)

// obsCtx is the context pipeline stages run under: it carries the study
// recorder (when telemetry is on) and points at the span of the experiment
// currently executing in RunAll, so cached stages (scans, campaigns, perf)
// appear in the trace under the experiment that first demanded them. With
// telemetry off it is a plain background context and every obs call
// downstream is a no-op.
//
//doelint:ctxroot -- the study owns no inbound context; this is the one root the pipeline stages run under
func (s *Study) obsCtx() context.Context {
	ctx := context.Background()
	if s.Obs == nil {
		return ctx
	}
	ctx = obs.WithRecorder(ctx, s.Obs)
	s.expMu.Lock()
	sp := s.expSpan
	s.expMu.Unlock()
	return obs.WithSpan(ctx, sp)
}

// setExpSpan records the experiment span RunAll is currently inside (nil
// between experiments). Experiments run serially, so this is a simple
// handoff; the mutex only guards against stages reading it from worker
// goroutines they spawned.
func (s *Study) setExpSpan(sp *obs.Span) {
	s.expMu.Lock()
	s.expSpan = sp
	s.expMu.Unlock()
}

// telemetrySummary renders the "== telemetry:" report section: the span
// count plus the deterministic metric snapshot. Volatile families
// (per-worker shares, in-flight high-water marks, worker counts) are
// excluded so the section is byte-identical for any worker count; ask the
// CLI's -metrics flag for the full snapshot.
func (s *Study) telemetrySummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace spans: %d\n", s.Obs.SpanCount())
	b.WriteString(s.Obs.Metrics().Snapshot(false))
	return b.String()
}

// WriteTrace dumps the study's span tree as deterministic JSONL (one
// record per span, parents before children, siblings in key order). It is
// what the CLIs' -trace flag writes and what the golden-trace tests pin.
func (s *Study) WriteTrace(w io.Writer) error {
	if s.Obs == nil {
		return fmt.Errorf("core: telemetry is off (Config.Telemetry)")
	}
	return s.Obs.WriteJSONL(w)
}
