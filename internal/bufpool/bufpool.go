// Package bufpool provides size-classed free lists for the byte buffers the
// per-query hot paths churn through: packed queries, TCP frames, TLS record
// reads and simulated network segments.
//
// Pooling is deterministic-safe: a pooled buffer is either fully overwritten
// before use or sliced down to exactly the bytes just written, so reuse can
// never change bytes on the wire — only allocation counts (DESIGN.md §9).
// The traffic counters, by contrast, are scheduling-dependent and belong in
// volatile telemetry only, never in deterministic report output.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// MaxPooled is the largest pooled capacity: a maximal DNS message plus its
// 2-byte TCP length prefix. Larger buffers are allocated directly and
// dropped on Put rather than pinning worst-case memory in the pool.
const MaxPooled = 0xFFFF + 2

// classSizes are the pooled capacities: 512 covers typical queries and
// responses, 2048 covers padded answers and HTTP request heads, 16384
// covers large answers and TLS record reads, MaxPooled the worst case.
var classSizes = [...]int{512, 2048, 16384, MaxPooled}

var pools [len(classSizes)]sync.Pool

var stats struct {
	gets, puts, hits, misses, drops atomic.Uint64
}

// classStats tracks traffic per size class for the occupancy gauges;
// oversized Gets belong to no class.
var classStats [len(classSizes)]struct {
	gets, puts atomic.Uint64
}

// ClassStats counts one size class's traffic.
type ClassStats struct {
	Size       int
	Gets, Puts uint64
}

// Stats counts pool traffic since process start. Gets = Hits + Misses;
// Puts counts buffers accepted back and Drops buffers returned but
// rejected (outside every class), so InUse = Gets - Puts - Drops is the
// number of checked-out buffers the pool still expects back.
type Stats struct {
	Gets, Puts, Hits, Misses, Drops uint64
	PerClass                        [len(classSizes)]ClassStats
}

// InUse returns the current occupancy: buffers handed out and neither
// accepted back nor dropped. Counters are read independently, so a
// snapshot taken mid-flight may be off by the number of racing calls.
func (s Stats) InUse() int64 {
	return int64(s.Gets) - int64(s.Puts) - int64(s.Drops)
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	s := Stats{
		Gets:   stats.gets.Load(),
		Puts:   stats.puts.Load(),
		Hits:   stats.hits.Load(),
		Misses: stats.misses.Load(),
		Drops:  stats.drops.Load(),
	}
	for i, size := range classSizes {
		s.PerClass[i] = ClassStats{
			Size: size,
			Gets: classStats[i].gets.Load(),
			Puts: classStats[i].puts.Load(),
		}
	}
	return s
}

// Get returns a zero-length buffer with capacity at least n. The pointer
// form keeps Put from re-boxing the slice header on every return trip.
// Callers must not retain the buffer — or any slice of it — after Put.
func Get(n int) *[]byte {
	stats.gets.Add(1)
	for i, size := range classSizes {
		if n > size {
			continue
		}
		classStats[i].gets.Add(1)
		if v := pools[i].Get(); v != nil {
			stats.hits.Add(1)
			b := v.(*[]byte)
			*b = (*b)[:0]
			return b
		}
		stats.misses.Add(1)
		b := make([]byte, 0, size) //doelint:allow hotalloc -- pool miss; cost amortized across reuses
		return &b
	}
	stats.misses.Add(1)
	b := make([]byte, 0, n) //doelint:allow hotalloc -- oversized request; outside every pool class
	return &b
}

// Put returns b to the pool serving its capacity — a buffer grown past its
// original class by append is filed under the largest class it still
// satisfies. Buffers outside every class are dropped. Put(nil) is a no-op.
// The caller must not touch *b (or aliases of it) after Put.
func Put(b *[]byte) {
	if b == nil {
		return
	}
	c := cap(*b)
	if c > MaxPooled {
		stats.drops.Add(1)
		return
	}
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c >= classSizes[i] {
			*b = (*b)[:0]
			stats.puts.Add(1)
			classStats[i].puts.Add(1)
			pools[i].Put(b)
			return
		}
	}
	stats.drops.Add(1)
}

// f64ClassSizes are the pooled float64-slice capacities in element counts.
// The latency-scratch users (vantage perf passes) collect tens of samples
// per reused-session pass and a few hundred in the fresh-connection sweeps.
var f64ClassSizes = [...]int{64, 512, 4096}

var f64Pools [len(f64ClassSizes)]sync.Pool

var f64Stats struct {
	gets, puts, hits, misses, drops atomic.Uint64
}

// F64Stats counts float64-slice pool traffic since process start, with the
// same accounting identities as Stats.
type F64Stats struct {
	Gets, Puts, Hits, Misses, Drops uint64
}

// InUse returns the number of checked-out float64 slices the pool still
// expects back.
func (s F64Stats) InUse() int64 {
	return int64(s.Gets) - int64(s.Puts) - int64(s.Drops)
}

// SnapshotF64 returns the current float64-slice pool counters.
func SnapshotF64() F64Stats {
	return F64Stats{
		Gets:   f64Stats.gets.Load(),
		Puts:   f64Stats.puts.Load(),
		Hits:   f64Stats.hits.Load(),
		Misses: f64Stats.misses.Load(),
		Drops:  f64Stats.drops.Load(),
	}
}

// GetF64 returns a zero-length float64 slice with capacity at least n,
// pooled by size class. Same contract as Get: callers must not retain the
// slice — or any reslice of it — after PutF64.
func GetF64(n int) *[]float64 {
	f64Stats.gets.Add(1)
	for i, size := range f64ClassSizes {
		if n > size {
			continue
		}
		if v := f64Pools[i].Get(); v != nil {
			f64Stats.hits.Add(1)
			b := v.(*[]float64)
			*b = (*b)[:0]
			return b
		}
		f64Stats.misses.Add(1)
		b := make([]float64, 0, size)
		return &b
	}
	f64Stats.misses.Add(1)
	b := make([]float64, 0, n)
	return &b
}

// PutF64 returns b to the pool serving its capacity; slices outside every
// class are dropped. PutF64(nil) is a no-op. The caller must not touch *b
// (or aliases of it) after PutF64.
func PutF64(b *[]float64) {
	if b == nil {
		return
	}
	c := cap(*b)
	if c > f64ClassSizes[len(f64ClassSizes)-1] {
		f64Stats.drops.Add(1)
		return
	}
	for i := len(f64ClassSizes) - 1; i >= 0; i-- {
		if c >= f64ClassSizes[i] {
			*b = (*b)[:0]
			f64Stats.puts.Add(1)
			f64Pools[i].Put(b)
			return
		}
	}
	f64Stats.drops.Add(1)
}

// Grow returns b extended by n bytes of length, reallocating (with capacity
// doubling) only when needed. The added bytes are uninitialized.
func Grow(b []byte, n int) []byte {
	want := len(b) + n
	if want <= cap(b) {
		return b[:want]
	}
	nb := make([]byte, want, max(want, 2*cap(b))) //doelint:allow hotalloc -- amortized doubling; steady state reuses capacity
	copy(nb, b)
	return nb
}
