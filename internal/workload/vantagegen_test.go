package workload

import (
	"fmt"
	"strings"
	"testing"
)

// renderNodes materializes nodes [0, n) by walking the index space in
// chunks of the given size — the access pattern a sharded campaign
// produces — and renders each node to one canonical line.
func renderNodes(m *VantageModel, n, chunk int) string {
	var b strings.Builder
	for base := 0; base < n; base += chunk {
		end := base + chunk
		if end > n {
			end = n
		}
		for i := base; i < end; i++ {
			nd := m.Node(i)
			fmt.Fprintf(&b, "%s|%s|%s|%d|%s|%s\n",
				nd.ID, nd.Addr, nd.Country, nd.ASN, nd.ASName, nd.Lifetime)
		}
	}
	return b.String()
}

// TestVantageStreamChunkInvariant pins the generator-determinism contract:
// same seed ⇒ byte-identical first-N node stream no matter how the
// iterator is chunked across shards.
func TestVantageStreamChunkInvariant(t *testing.T) {
	const n = 5000
	m := NewVantageModel(20190501)
	want := renderNodes(m, n, 1)
	for _, chunk := range []int{7, 64, 4096} {
		if got := renderNodes(NewVantageModel(20190501), n, chunk); got != want {
			t.Fatalf("chunk=%d: node stream diverges from chunk=1 stream", chunk)
		}
	}
	if other := renderNodes(NewVantageModel(42), n, 1); other == want {
		t.Fatal("different seeds produced identical node streams")
	}
}

func TestVantageModelRoundTripsAddresses(t *testing.T) {
	m := NewVantageModel(1)
	for _, i := range []int{0, 1, 255, 256, 65535, 65536, VantageCapacity - 1} {
		got, ok := m.IndexOf(m.Addr(i))
		if !ok || got != i {
			t.Fatalf("IndexOf(Addr(%d)) = %d, %v", i, got, ok)
		}
	}
	if _, ok := m.IndexOf(m.Addr(0).Prev()); ok {
		t.Fatal("address outside the generated plane resolved to an index")
	}
}

// TestVantageMixShapesPopulation checks the synthesized country mix tracks
// the Table 3 weights: every listed country appears, and the heaviest
// weight is within 20% (relative) of its expected share over a large
// sample.
func TestVantageMixShapesPopulation(t *testing.T) {
	const n = 100_000
	m := NewVantageModel(7)
	counts := map[string]int{}
	lifetimes := map[string]bool{}
	for i := 0; i < n; i++ {
		nd := m.Node(i)
		counts[nd.Country]++
		lifetimes[nd.Lifetime.String()] = true
		if nd.ASN < 30000 || nd.ASN >= 30500 {
			t.Fatalf("node %d: ASN %d outside the residential block", i, nd.ASN)
		}
	}
	total := 0
	for _, w := range VantageMix() {
		total += w.Weight
		if counts[w.CC] == 0 {
			t.Fatalf("country %s never synthesized in %d nodes", w.CC, n)
		}
	}
	wantID := float64(n) * 10 / float64(total)
	if got := float64(counts["ID"]); got < 0.8*wantID || got > 1.2*wantID {
		t.Fatalf("ID share %v outside 20%% of expected %v", got, wantID)
	}
	if len(lifetimes) < 50 {
		t.Fatalf("lifetime spread too narrow: %d distinct values", len(lifetimes))
	}
}
