// Observability: run the miniature study with telemetry AND fault
// injection on, then inspect what the recorder captured — the experiment
// overview of the span tree, the full subtree of one lookup the injector
// perturbed (faults annotate the exact span they hit, retries appear as
// children), and the deterministic metric snapshot. Spans are charged
// from the simulation's virtual clock, never wall time, so every line
// printed here is byte-identical on every run and at any worker count.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/obs"
)

func main() {
	// 1. The miniature study with telemetry on and a harsh fault profile:
	// SYN drops, refusals, handshake cuts, resets. Telemetry is opt-in
	// (Config.Telemetry) and never perturbs measurements — the report with
	// telemetry is the report without it plus one appended section.
	cfg := core.TestConfig()
	cfg.Telemetry = true
	cfg.Faults = core.FaultsConfig{Profile: "harsh", Seed: 1}
	cfg.Workers = 8

	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.RunAll(io.Discard); err != nil {
		log.Fatal(err)
	}

	// 2. The trace is a tree: study → exp:<id> → campaigns / sampling →
	// per-node spans → lookups → dials, exchanges, retries. The overview is
	// just the top two levels.
	recs := study.Obs.Records()
	fmt.Printf("recorded %d spans; the experiment overview:\n\n", len(recs))
	fmt.Print(obs.RenderTree(prune(recs, 2)))

	// 3. Faults annotate the span they hit. Find the first lookup the
	// injector perturbed and render its whole subtree: the fault event, the
	// retry:<n> children the resolver burned recovering, each xchg with its
	// virtual cost, and the outcome attributes.
	for _, rec := range recs {
		if !hasFault(rec) {
			continue
		}
		fmt.Printf("first faulted lookup (%s):\n\n", rec.Path)
		fmt.Print(obs.RenderTree(subtree(recs, rec.Path)))
		break
	}

	// 4. The deterministic metric snapshot — the same text RunAll appends
	// to the report as "== telemetry:". Volatile families (per-worker
	// shares, inflight high-water) are excluded here so the bytes do not
	// depend on the worker count; pass -metrics to any binary to see them.
	fmt.Printf("\nchaos counters from the deterministic snapshot:\n\n")
	for _, line := range strings.Split(study.Obs.Metrics().Snapshot(false), "\n") {
		if strings.HasPrefix(line, "faults_injected_total") ||
			strings.HasPrefix(line, "resolver_retries_total") ||
			strings.HasPrefix(line, "resolver_recovered_total") {
			fmt.Println(line)
		}
	}

	// 5. The streaming sketches: log-spaced-bucket latency distributions
	// recorded shard-locally by every worker and folded into the study
	// registry when each pool joins. Merge is bucket-wise addition —
	// associative and order-independent — which is why these quantiles are
	// also byte-identical at any worker count.
	fmt.Printf("\nquery-latency sketches (shard-merged across %d workers):\n\n", cfg.Workers)
	for _, line := range strings.Split(study.Obs.Metrics().Snapshot(false), "\n") {
		if strings.HasPrefix(line, "vantage_query_latency_sketch") {
			fmt.Println(line)
		}
	}

	// 6. Campaign progress: the same done/total counters obs.DebugHandler
	// serves live as JSON on /progress while a run is in flight. After the
	// run every phase reads done == total.
	fmt.Printf("\nfinal phase progress (live on /progress during a run):\n\n")
	for _, ph := range study.Obs.Progress() {
		fmt.Printf("%-14s %d/%d\n", ph.Name, ph.Done, ph.Total)
	}
	fmt.Printf("\nrun this again, or with any -workers value: same bytes.\n")
}

// prune keeps records at most maxDepth levels below the root.
func prune(recs []obs.Record, maxDepth int) []obs.Record {
	var out []obs.Record
	for _, r := range recs {
		if strings.Count(r.Path, "/") <= maxDepth {
			out = append(out, r)
		}
	}
	return out
}

// subtree keeps the span at path and everything beneath it.
func subtree(recs []obs.Record, path string) []obs.Record {
	var out []obs.Record
	for _, r := range recs {
		if r.Path == path || strings.HasPrefix(r.Path, path+"/") {
			out = append(out, r)
		}
	}
	return out
}

// hasFault reports whether the injector stamped a fault event on rec.
func hasFault(rec obs.Record) bool {
	for _, ev := range rec.Events {
		if strings.HasPrefix(ev, "fault:") {
			return true
		}
	}
	return false
}
