package workload

import (
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/proxy"
)

// CountryWeight is one country's share of the synthesized vantage pool.
type CountryWeight struct {
	CC     string
	Weight int
}

// vantageMix is the ProxyRack-style residential mix of the paper's Table 3:
// skewed toward Southeast Asia and South America, the population the
// failure analysis (§4.2) encounters. core's materialized study pool draws
// from the same table, so generated and materialized campaigns sample one
// distribution.
var vantageMix = []CountryWeight{
	{"ID", 10}, {"IN", 8}, {"VN", 6}, {"BR", 9}, {"US", 9},
	{"RU", 6}, {"DE", 4}, {"GB", 3}, {"FR", 3}, {"TH", 4},
	{"MY", 3}, {"PH", 4}, {"MX", 3}, {"AR", 2}, {"CO", 2},
	{"TR", 3}, {"UA", 2}, {"PL", 2}, {"IT", 2}, {"ES", 2},
	{"EG", 2}, {"NG", 2}, {"ZA", 1}, {"KE", 1}, {"SA", 1},
	{"PK", 2}, {"BD", 2}, {"KR", 1}, {"JP", 1}, {"TW", 1},
	{"HK", 1}, {"SG", 1}, {"AU", 1}, {"NL", 1}, {"SE", 1},
	{"CA", 1}, {"CL", 1}, {"PE", 1}, {"VE", 1}, {"LA", 1},
	{"KZ", 1}, {"IL", 1}, {"AE", 1}, {"GR", 1}, {"RO", 1},
}

// VantageMix returns the Table 3 country/weight table. Callers must not
// mutate the returned slice.
func VantageMix() []CountryWeight { return vantageMix }

// VantageCapacity is the number of distinct vantages one model can
// synthesize: a full /8 of per-node /32 addresses (12.x.y.z).
const VantageCapacity = 1 << 24

// vantageBaseOctet is the first octet of the generated address plane,
// disjoint from the study's materialized pools (10.x for global, 11.x for
// censored) so a generated population can share a world with them.
const vantageBaseOctet = 12

// VantageModel synthesizes proxy exit nodes on demand. Node(i) is a pure
// function of (seed, i): no shared iterator state, no accumulation — so a
// million-node population costs nothing until a node is asked for, and the
// node stream is byte-identical however callers chunk or interleave the
// index space across shards. Country mix, AS numbering, AS naming and
// lifetime spread mirror the materialized pool in internal/core.
type VantageModel struct {
	seed  int64
	cum   []int // cumulative weights into ccs, for the weighted pick
	ccs   []string
	total int
}

// NewVantageModel builds a model over the Table 3 mix.
func NewVantageModel(seed int64) *VantageModel {
	m := &VantageModel{seed: seed}
	for _, w := range vantageMix {
		m.total += w.Weight
		m.cum = append(m.cum, m.total)
		m.ccs = append(m.ccs, w.CC)
	}
	return m
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over the
// index space, so consecutive indices draw statistically independent
// attribute streams without any sequential generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Capacity reports how many distinct nodes the model can synthesize.
func (m *VantageModel) Capacity() int { return VantageCapacity }

// Addr returns node i's /32 exit address without synthesizing the rest of
// the node.
func (m *VantageModel) Addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{vantageBaseOctet, byte(i >> 16), byte(i >> 8), byte(i)})
}

// IndexOf inverts Addr: it reports which node index owns addr, or false if
// addr is outside the generated plane. Bounds against a campaign's actual
// population are the caller's business — the model itself spans the full
// plane.
func (m *VantageModel) IndexOf(addr netip.Addr) (int, bool) {
	if !addr.Is4() {
		return 0, false
	}
	a4 := addr.As4()
	if a4[0] != vantageBaseOctet {
		return 0, false
	}
	return int(a4[1])<<16 | int(a4[2])<<8 | int(a4[3]), true
}

// Node synthesizes node i. Panics on indices outside [0, Capacity) —
// population limits are validated at campaign construction, not here.
func (m *VantageModel) Node(i int) proxy.ExitNode {
	loc := m.Location(i)
	return proxy.ExitNode{
		ID:      fmt.Sprintf("v-%08d-%s", i, loc.Country),
		Addr:    m.Addr(i),
		Country: loc.Country,
		ASN:     loc.ASN,
		ASName:  loc.ASName,
		// 2..111 minutes: mostly long-lived residential sessions with a
		// short-lifetime tail that fails the campaign's MinUptime screen,
		// like the churny end of the real pool.
		Lifetime: time.Duration(2+int(m.hash(i, 2)%110)) * time.Minute,
	}
}

// Location synthesizes node i's geography — the cheap subset of Node the
// world's geo fallback needs per dial, without the ID allocation.
func (m *VantageModel) Location(i int) geo.Location {
	if i < 0 || i >= VantageCapacity {
		panic(fmt.Sprintf("workload: vantage index %d outside [0, %d)", i, VantageCapacity))
	}
	cc := m.ccs[m.pick(int(m.hash(i, 0) % uint64(m.total)))]
	asn := 30000 + int(m.hash(i, 1)%500)
	asName := fmt.Sprintf("%s Residential ISP %d", cc, asn%37)
	// The same Table 5/6 AS names the materialized pool gives these
	// countries, so scale-campaign reports speak the paper's vocabulary.
	switch cc {
	case "BR":
		asName = "Telefnica Brazil S.A"
	case "ID":
		asName = "PT Telekomunikasi Selular"
	case "LA":
		asName = "Sinam LLC"
	case "MY":
		asName = "Speednet Telecomunicacoes Ldta"
	}
	return geo.Location{Country: cc, ASN: asn, ASName: asName}
}

// Filtered reports whether node i sits behind a port-53 filtering
// middlebox — the Finding 2.1 affliction, assigned by hash so membership is
// a pure function of the index. Base rate ≈6%, raised to ≈50% in the
// Southeast-Asian countries the paper's failure analysis dwells on,
// mirroring the materialized pool's affliction pass.
func (m *VantageModel) Filtered(i int) bool {
	p := uint64(6)
	switch m.Location(i).Country {
	case "ID", "IN", "VN":
		p = 50
	}
	return m.hash(i, 3)%100 < p
}

// hash derives attribute stream `stream` for node i.
func (m *VantageModel) hash(i int, stream uint64) uint64 {
	return splitmix64(uint64(m.seed) ^ splitmix64(uint64(i)<<8|stream))
}

// pick maps a uniform draw in [0, total) to a country index via the
// cumulative weight table.
func (m *VantageModel) pick(draw int) int {
	lo, hi := 0, len(m.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if draw < m.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
