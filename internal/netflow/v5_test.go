package netflow

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var boot = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Src:     clientA,
			Dst:     cfDoT,
			SrcPort: uint16(40000 + i),
			DstPort: 853,
			Proto:   ProtoTCP,
			Packets: uint64(3 + i),
			Bytes:   uint64(500 + i),
			Flags:   FlagSYN | FlagACK,
			First:   boot.Add(time.Duration(i) * time.Second),
			Last:    boot.Add(time.Duration(i)*time.Second + 200*time.Millisecond),
		}
	}
	return recs
}

func TestV5RoundTrip(t *testing.T) {
	recs := sampleRecords(7)
	datagrams, err := ExportV5(recs, boot, boot.Add(time.Hour), 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(datagrams) != 1 {
		t.Fatalf("datagrams = %d", len(datagrams))
	}
	rate, err := V5SampleRate(datagrams[0])
	if err != nil || rate != 3000 {
		t.Errorf("sample rate = %d, %v", rate, err)
	}
	got, err := ParseV5(datagrams[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d", len(got))
	}
	for i, rec := range got {
		want := recs[i]
		if rec.Src != want.Src || rec.Dst != want.Dst ||
			rec.SrcPort != want.SrcPort || rec.DstPort != want.DstPort ||
			rec.Proto != want.Proto || rec.Flags != want.Flags ||
			rec.Packets != want.Packets || rec.Bytes != want.Bytes ||
			!rec.First.Equal(want.First) || !rec.Last.Equal(want.Last) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, rec, want)
		}
	}
}

func TestV5SplitsAt30Records(t *testing.T) {
	recs := sampleRecords(65)
	datagrams, err := ExportV5(recs, boot, boot.Add(time.Hour), 3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(datagrams) != 3 { // 30 + 30 + 5
		t.Fatalf("datagrams = %d, want 3", len(datagrams))
	}
	total := 0
	for _, d := range datagrams {
		got, err := ParseV5(d)
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
	}
	if total != 65 {
		t.Errorf("total parsed = %d", total)
	}
}

func TestV5RejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, v5HeaderLen), // version 0
		append(make([]byte, v5HeaderLen), 1, 2, 3), // bad length
	}
	// A valid header claiming 2 records but carrying bytes for 1.
	bad := make([]byte, v5HeaderLen+v5RecordLen)
	bad[1] = v5Version
	bad[3] = 2
	cases = append(cases, bad)
	for i, c := range cases {
		if _, err := ParseV5(c); err == nil {
			t.Errorf("case %d: malformed datagram accepted", i)
		}
	}
}

func TestV5RejectsIPv6(t *testing.T) {
	rec := sampleRecords(1)[0]
	rec.Src = netip.MustParseAddr("2001:db8::1")
	if _, err := ExportV5([]Record{rec}, boot, boot, 1, 0); err == nil {
		t.Error("IPv6 flow exported in v5")
	}
}

func TestCollector(t *testing.T) {
	recs := sampleRecords(40)
	datagrams, err := ExportV5(recs, boot, boot.Add(time.Hour), 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	for _, d := range datagrams {
		if err := c.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ingest([]byte{1, 2, 3}); err == nil {
		t.Error("garbage ingested")
	}
	if c.Datagrams != 2 || c.Dropped != 1 {
		t.Errorf("counters = %d/%d", c.Datagrams, c.Dropped)
	}
	if got := c.Records(); len(got) != 40 {
		t.Errorf("collected = %d", len(got))
	}
}

func TestQuickV5RoundTrip(t *testing.T) {
	f := func(nRaw uint8, srcPort, dstPort uint16, pkts, bytes uint32, flags uint8) bool {
		n := int(nRaw%60) + 1
		recs := sampleRecords(n)
		for i := range recs {
			recs[i].SrcPort = srcPort
			recs[i].DstPort = dstPort
			recs[i].Packets = uint64(pkts)
			recs[i].Bytes = uint64(bytes)
			recs[i].Flags = flags
		}
		datagrams, err := ExportV5(recs, boot, boot.Add(time.Hour), 3000, 0)
		if err != nil {
			return false
		}
		total := 0
		for _, d := range datagrams {
			got, err := ParseV5(d)
			if err != nil {
				return false
			}
			for _, rec := range got {
				if rec.SrcPort != srcPort || rec.DstPort != dstPort ||
					rec.Packets != uint64(pkts) || rec.Bytes != uint64(bytes) || rec.Flags != flags {
					return false
				}
			}
			total += len(got)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestV5UptimeWrapRecovery(t *testing.T) {
	// A flow observed 60+ days after boot: the uptime counter has wrapped
	// (2^32 ms ≈ 49.7 days), yet absolute times must survive the
	// roundtrip because collectors subtract with uint32 arithmetic.
	rec := sampleRecords(1)[0]
	rec.First = boot.AddDate(0, 0, 60)
	rec.Last = rec.First.Add(time.Second)
	exportAt := rec.Last.Add(time.Minute)
	datagrams, err := ExportV5([]Record{rec}, boot, exportAt, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseV5(datagrams[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].First.Equal(rec.First) || !got[0].Last.Equal(rec.Last) {
		t.Errorf("wrapped timestamps: got %v..%v, want %v..%v",
			got[0].First, got[0].Last, rec.First, rec.Last)
	}
}
