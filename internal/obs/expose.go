package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// PrometheusText renders the full registry in Prometheus text exposition
// format. Durations are exported in seconds as the convention demands;
// the underlying accumulation stays integer microseconds.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		name := "doe_" + f.name
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.insts))
		for k := range f.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch m := f.insts[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(k, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(k, "", ""), m.Value())
			case *Histogram:
				counts, overflow := m.bucketCounts()
				var cum int64
				for i, bound := range f.bounds {
					cum += counts[i]
					le := fmt.Sprintf("%g", bound.Seconds())
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabels(k, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabels(k, "le", "+Inf"), cum+overflow)
				fmt.Fprintf(&b, "%s_sum%s %g\n", name, promLabels(k, "", ""),
					(time.Duration(m.SumUS()) * time.Microsecond).Seconds())
				fmt.Fprintf(&b, "%s_count%s %d\n", name, promLabels(k, "", ""), m.Count())
			}
		}
		f.mu.Unlock()
	}
	return b.String()
}

// promLabels renders {k1="v1",k2="v2"[,extraK="extraV"]} from the internal
// "k1=v1,k2=v2" label string.
func promLabels(ls, extraK, extraV string) string {
	var parts []string
	if ls != "" {
		for _, pair := range strings.Split(ls, ",") {
			k, v, _ := strings.Cut(pair, "=")
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	if extraK != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraK, extraV))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// DebugHandler serves /metrics (Prometheus exposition of r's registry)
// plus the standard net/http/pprof endpoints under /debug/pprof/. The CLI
// binaries mount it on the -pprof address; none of it runs during
// simulation, so the virtual-clock contract is untouched.
func DebugHandler(r *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, r.Metrics().PrometheusText())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
