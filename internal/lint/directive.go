package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every doelint control comment.
const directivePrefix = "//doelint:"

// allowKey identifies one suppressed (file, line, check) cell.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowSet records which findings //doelint:allow directives suppress.
type allowSet map[allowKey]bool

// parseDirectives scans a file's comments for doelint directives, records
// the allowed (line, check) cells into allow, and returns findings for
// malformed directives. The accepted form is
//
//	//doelint:allow <check>[,<check>...] -- <justification>
//
// A directive suppresses matching findings on its own line and on the line
// immediately below, so it can either trail the offending statement or sit
// on its own line above it. The justification is mandatory: suppressions
// must explain themselves to survive review.
func parseDirectives(fset *token.FileSet, f *ast.File, allow allowSet) []Finding {
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		bad = append(bad, Finding{
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Check:   DirectiveCheck,
			Message: fmt.Sprintf(format, args...),
			abs:     p.Filename,
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, arg, _ := strings.Cut(rest, " ")
			if verb == "hotpath" {
				// Consumed by the hotalloc analyzer: marks the function
				// whose doc comment carries it as an allocation-free hot
				// path. The directive takes no arguments.
				if strings.TrimSpace(arg) != "" {
					report(c.Pos(), "doelint:hotpath takes no arguments")
				}
				continue
			}
			if verb != "allow" {
				report(c.Pos(), "unknown doelint directive %q (defined: \"allow\", \"hotpath\")", verb)
				continue
			}
			checksPart, justification, found := strings.Cut(arg, "--")
			if !found || strings.TrimSpace(justification) == "" {
				report(c.Pos(), "doelint:allow needs a justification: //doelint:allow <check> -- <why>")
				continue
			}
			names := strings.Split(strings.TrimSpace(checksPart), ",")
			pos := fset.Position(c.Pos())
			for _, name := range names {
				name = strings.TrimSpace(name)
				if name == "" || !knownCheck(name) {
					report(c.Pos(), "doelint:allow names unknown check %q", name)
					continue
				}
				if name == DirectiveCheck {
					report(c.Pos(), "the %q check cannot be suppressed", DirectiveCheck)
					continue
				}
				allow[allowKey{pos.Filename, pos.Line, name}] = true
				allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return bad
}

// filter drops findings covered by an allow directive. Directive findings
// themselves are never suppressible.
func (a allowSet) filter(findings []Finding) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if f.Check != DirectiveCheck && a[allowKey{f.abs, f.Line, f.Check}] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
