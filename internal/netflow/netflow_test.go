package netflow

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	clientA  = netip.MustParseAddr("40.1.2.3")
	clientB  = netip.MustParseAddr("40.1.2.9") // same /24 as A
	clientC  = netip.MustParseAddr("40.9.9.1")
	cfDoT    = netip.MustParseAddr("1.1.1.1")
	quad9DoT = netip.MustParseAddr("9.9.9.9")
	otherSrv = netip.MustParseAddr("8.8.8.8")
)

var t0 = time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC)

func pkt(at time.Time, src, dst netip.Addr, dstPort uint16, flags uint8) Packet {
	return Packet{
		Time: at, Src: src, Dst: dst,
		SrcPort: 40000, DstPort: dstPort,
		Proto: ProtoTCP, Bytes: 120, Flags: flags,
	}
}

func TestRouterAggregatesFlows(t *testing.T) {
	r := NewRouter(1, 15*time.Second)
	r.Observe(pkt(t0, clientA, cfDoT, 853, FlagSYN))
	r.Observe(pkt(t0.Add(time.Second), clientA, cfDoT, 853, FlagACK|FlagPSH))
	r.Observe(pkt(t0.Add(2*time.Second), clientA, cfDoT, 853, FlagFIN|FlagACK))
	recs := r.Flush()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 aggregated flow", len(recs))
	}
	rec := recs[0]
	if rec.Packets != 3 || rec.Flags != FlagSYN|FlagACK|FlagPSH|FlagFIN {
		t.Errorf("record = %+v", rec)
	}
	if !rec.First.Equal(t0) || !rec.Last.Equal(t0.Add(2*time.Second)) {
		t.Errorf("timestamps = %v..%v", rec.First, rec.Last)
	}
}

func TestRouterIdleExpirySplitsFlows(t *testing.T) {
	r := NewRouter(1, 15*time.Second)
	r.Observe(pkt(t0, clientA, cfDoT, 853, FlagSYN))
	// Second packet after 20s idle: new flow record.
	r.Observe(pkt(t0.Add(20*time.Second), clientA, cfDoT, 853, FlagACK))
	recs := r.Flush()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (idle expiry)", len(recs))
	}
}

func TestRouterSampling(t *testing.T) {
	r := NewRouter(10, time.Minute)
	for i := 0; i < 1000; i++ {
		// Distinct flows so each sampled packet creates one record.
		p := pkt(t0.Add(time.Duration(i)*time.Millisecond), clientA, cfDoT, 853, FlagACK)
		p.SrcPort = uint16(10000 + i)
		r.Observe(p)
	}
	recs := r.Flush()
	if len(recs) != 100 {
		t.Errorf("sampled records = %d, want 100 (1/10 of 1000)", len(recs))
	}
}

func TestTruncate24(t *testing.T) {
	if got := Truncate24(clientA); got != netip.MustParseAddr("40.1.2.0") {
		t.Errorf("Truncate24 = %v", got)
	}
}

func selectFixture() []Record {
	return []Record{
		// Valid DoT flow to Cloudflare.
		{First: t0, Src: clientA, Dst: cfDoT, DstPort: 853, Proto: ProtoTCP, Packets: 5, Bytes: 900, Flags: FlagSYN | FlagACK | FlagPSH},
		// Same /24, next day.
		{First: t0.AddDate(0, 0, 1), Src: clientB, Dst: cfDoT, DstPort: 853, Proto: ProtoTCP, Packets: 4, Bytes: 700, Flags: FlagACK},
		// Single-SYN: excluded (incomplete handshake).
		{First: t0, Src: clientC, Dst: cfDoT, DstPort: 853, Proto: ProtoTCP, Packets: 1, Bytes: 44, Flags: FlagSYN},
		// Port 853 but unknown destination: excluded.
		{First: t0, Src: clientC, Dst: otherSrv, DstPort: 853, Proto: ProtoTCP, Packets: 3, Bytes: 500, Flags: FlagACK},
		// Known resolver, quad9.
		{First: t0, Src: clientC, Dst: quad9DoT, DstPort: 853, Proto: ProtoTCP, Packets: 3, Bytes: 500, Flags: FlagACK},
		// UDP on 853: excluded.
		{First: t0, Src: clientA, Dst: cfDoT, DstPort: 853, Proto: ProtoUDP, Packets: 2, Bytes: 200},
		// Port 443: excluded from DoT analysis.
		{First: t0, Src: clientA, Dst: cfDoT, DstPort: 443, Proto: ProtoTCP, Packets: 9, Bytes: 5000, Flags: FlagACK},
	}
}

func newAnalyzer() *Analyzer {
	return &Analyzer{Resolvers: map[netip.Addr]string{
		cfDoT:    "cloudflare",
		quad9DoT: "quad9",
	}}
}

func TestSelectDoT(t *testing.T) {
	flows := newAnalyzer().SelectDoT(selectFixture())
	if len(flows) != 3 {
		t.Fatalf("selected = %d, want 3: %+v", len(flows), flows)
	}
	if flows[0].Client24 != netip.MustParseAddr("40.1.2.0") {
		t.Errorf("client not truncated: %v", flows[0].Client24)
	}
	byProvider := map[string]int{}
	for _, f := range flows {
		byProvider[f.Provider]++
	}
	if byProvider["cloudflare"] != 2 || byProvider["quad9"] != 1 {
		t.Errorf("providers = %v", byProvider)
	}
}

func TestMonthlyCounts(t *testing.T) {
	flows := newAnalyzer().SelectDoT(selectFixture())
	counts := MonthlyCounts(flows)
	if counts["cloudflare"]["2018-07"] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestNetblockStatsAndShares(t *testing.T) {
	flows := []DoTFlow{
		{Provider: "cloudflare", Client24: netip.MustParseAddr("40.1.2.0"), Day: "2018-07-01"},
		{Provider: "cloudflare", Client24: netip.MustParseAddr("40.1.2.0"), Day: "2018-07-02"},
		{Provider: "cloudflare", Client24: netip.MustParseAddr("40.1.2.0"), Day: "2018-07-15"},
		{Provider: "cloudflare", Client24: netip.MustParseAddr("40.2.0.0"), Day: "2018-07-01"},
		{Provider: "cloudflare", Client24: netip.MustParseAddr("40.3.0.0"), Day: "2018-07-03"},
		{Provider: "quad9", Client24: netip.MustParseAddr("40.4.0.0"), Day: "2018-07-03"},
	}
	stats := NetblockStats(flows, "cloudflare")
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Flows != 3 || stats[0].ActiveDays != 3 {
		t.Errorf("top netblock = %+v", stats[0])
	}
	if got := TopShare(stats, 1); got != 0.6 {
		t.Errorf("TopShare(1) = %v, want 0.6", got)
	}
	if got := TemporaryFraction(stats, 7); got != 1.0 {
		t.Errorf("TemporaryFraction = %v (all active <7 days here)", got)
	}
	if TopShare(nil, 5) != 0 || TemporaryFraction(nil, 7) != 0 {
		t.Error("empty-input edge cases")
	}
}

func TestQuickSamplingProportion(t *testing.T) {
	// Statistical property: deterministic 1-in-N sampling keeps exactly
	// floor(P/N) of P packets (single flow, so records aggregate).
	f := func(rateSel, countSel uint8) bool {
		rate := 1 + int(rateSel%50)
		count := 100 + int(countSel)*10
		r := NewRouter(rate, time.Hour)
		for i := 0; i < count; i++ {
			r.Observe(pkt(t0.Add(time.Duration(i)*time.Millisecond), clientA, cfDoT, 853, FlagACK))
		}
		recs := r.Flush()
		var sampled uint64
		for _, rec := range recs {
			sampled += rec.Packets
		}
		return sampled == uint64(count/rate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlagUnionNeverLosesBits(t *testing.T) {
	f := func(flagSets []uint8) bool {
		r := NewRouter(1, time.Hour)
		var want uint8
		for i, fl := range flagSets {
			fl &= FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK
			want |= fl
			r.Observe(pkt(t0.Add(time.Duration(i)*time.Millisecond), clientA, cfDoT, 853, fl))
		}
		recs := r.Flush()
		if len(flagSets) == 0 {
			return len(recs) == 0
		}
		return len(recs) == 1 && recs[0].Flags == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
