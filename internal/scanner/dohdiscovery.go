package scanner

import (
	"crypto/x509"
	"net/netip"
	"sort"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/netsim"
)

// KnownDoHPaths are the common endpoint templates §3.1 uses to spot DoH
// services in the URL corpus ("the DoH RFC and large resolvers have
// specified several common path templates").
var KnownDoHPaths = []string{"/dns-query", "/resolve", "/experimental"}

// DoHCandidate is a URL from the corpus that matches a known DoH path.
type DoHCandidate struct {
	Host string
	Path string
}

// DoHResolver is a verified working DoH service.
type DoHResolver struct {
	Template doh.Template
	Addr     netip.Addr
	// InKnownList marks resolvers that already appear on the public
	// curated list; the rest are the "beyond the list" discoveries.
	InKnownList bool
}

// InspectCorpus filters a URL corpus down to de-duplicated DoH candidates.
// For ethics the corpus carries no URL parameters or user data — matching
// is purely on hostname + path.
func InspectCorpus(urls []string) []DoHCandidate {
	seen := map[string]bool{}
	var out []DoHCandidate
	for _, u := range urls {
		host, path, ok := splitURL(u)
		if !ok {
			continue
		}
		match := false
		for _, p := range KnownDoHPaths {
			if path == p {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		key := host + path
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, DoHCandidate{Host: host, Path: path})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// splitURL extracts host and path from an https URL without parsing
// query strings (the corpus strips them).
func splitURL(u string) (host, path string, ok bool) {
	const prefix = "https://"
	if !strings.HasPrefix(u, prefix) {
		return "", "", false
	}
	rest := u[len(prefix):]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return rest, "/", true
	}
	host = rest[:slash]
	path = rest[slash:]
	if q := strings.IndexByte(path, '?'); q >= 0 {
		path = path[:q]
	}
	return host, path, host != ""
}

// DoHDiscovery verifies candidates by issuing real DoH queries, the manual
// availability check of §3.2 ("we manually check its availability by adding
// DoH query parameters").
type DoHDiscovery struct {
	World *netsim.World
	From  netip.Addr
	Roots *x509.CertPool
	// Resolve maps candidate hostnames to addresses (bootstrap results).
	Resolve map[string]netip.Addr
	// ProbeDomain is the scanners' registered domain.
	ProbeDomain string
	// KnownList is the public curated resolver list (e.g. the curl wiki),
	// as template strings.
	KnownList []string
	// Attempts is the per-candidate probe budget. The availability check is
	// a single pass (unlike the repeated DoT scans, which get another shot
	// at every host next round), so on lossy paths a transport failure is
	// retried up to Attempts times. Zero or one means a single attempt.
	Attempts int
}

// Verify probes each candidate and returns the working DoH resolvers.
func (d *DoHDiscovery) Verify(candidates []DoHCandidate) []DoHResolver {
	known := map[string]bool{}
	for _, k := range d.KnownList {
		if t, err := doh.ParseTemplate(k); err == nil {
			known[t.Host+t.Path] = true
		}
	}
	var out []DoHResolver
	for _, cand := range candidates {
		addr, ok := d.Resolve[cand.Host]
		if !ok {
			continue
		}
		client := doh.NewClient(d.World, d.From, d.Roots)
		client.Timeout = 2 * time.Second
		client.Override[cand.Host] = addr
		tmpl := doh.Template{Host: cand.Host, Path: cand.Path}
		var res *dnsclient.Result
		var err error
		for attempt := 0; attempt < max(1, d.Attempts); attempt++ {
			res, err = client.Query(tmpl, d.ProbeDomain, dnswire.TypeA)
			if err == nil {
				break // retry transport failures, not DNS-level answers
			}
		}
		if err != nil || res.Rcode() != dnswire.RcodeSuccess || len(res.Msg.Answers) == 0 {
			continue
		}
		out = append(out, DoHResolver{
			Template:    tmpl,
			Addr:        addr,
			InKnownList: known[cand.Host+cand.Path],
		})
	}
	return out
}
