// Command doebench runs the repository's curated performance benchmark set
// with -benchmem and emits a machine-readable snapshot (BENCH_<pr>.json) of
// ns/op, B/op and allocs/op per benchmark, plus the heap high-water mark of
// an in-process miniature study run (mem_high_water_bytes). Given a previous
// trajectory file it diffs the two: allocs/op regressions beyond -threshold
// and memory high-water growth beyond -mem-threshold fail the run (exit 1);
// ns/op changes are advisory only — wall-clock time depends on the host,
// allocation counts and steady-state heap footprint do not (much).
//
// Usage:
//
//	go run ./cmd/doebench -o BENCH_5.json              # full measurement
//	go run ./cmd/doebench -smoke                       # 1-iteration CI gate
//	go run ./cmd/doebench -o BENCH_5.json -prev BENCH_4.json -threshold 0.10
//
// Exit status: 0 on success, 1 on allocs/op or memory regression, 2 on
// driver errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/core"
)

// suite lists the curated benchmarks: the steady-state exchange paths whose
// allocation budgets DESIGN.md §9 pins, and the wire-codec micro-benchmarks
// underneath them. One entry per package keeps `go test` invocations cheap.
var suite = []struct {
	pkg   string
	bench string
}{
	{".", "^(BenchmarkSteadyStateDoTExchange|BenchmarkSteadyStateDoHExchange|BenchmarkSteadyStateDoQExchange|BenchmarkSteadyStateTCPExchange|BenchmarkSteadyStateDoTExchangeInflight8|BenchmarkSteadyStateDoHExchangeInflight8|BenchmarkSteadyStateDoQExchangeInflight8|BenchmarkSteadyStateTCPExchangeInflight8|BenchmarkWirePack|BenchmarkWireUnpack|BenchmarkSimTunnelRoundTrip)$"},
	{"./internal/dnswire", "^(BenchmarkNewIDParallel|BenchmarkIDGenParallel|BenchmarkAppendPackTCP|BenchmarkReadTCPAppend|BenchmarkUnpackInto)$"},
}

// Result is one benchmark's measurement.
type Result struct {
	Pkg      string  `json:"pkg"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_<pr>.json schema: benchmark name (module-relative,
// GOMAXPROCS suffix stripped) to measurement, plus the study-run heap
// high-water mark. MemHighWaterBytes is 0 when -mem=false (and omitted
// from the JSON), which also disables the memory gate on diff.
type Snapshot struct {
	Benchmarks        map[string]Result `json:"benchmarks"`
	MemHighWaterBytes uint64            `json:"mem_high_water_bytes,omitempty"`
	// CampaignMemHighWaterBytes is the heap high-water of a streaming scale
	// campaign over CampaignNodes generated vantages (-campaign-nodes). The
	// diff gates it only when both snapshots ran the same population.
	CampaignMemHighWaterBytes uint64 `json:"campaign_mem_high_water_bytes,omitempty"`
	CampaignNodes             int    `json:"campaign_nodes,omitempty"`
}

// benchLine matches `BenchmarkName-8  1234  56.7 ns/op  89 B/op  10 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		out          = flag.String("o", "", "write the JSON snapshot to this file")
		prev         = flag.String("prev", "", "previous trajectory file to diff against")
		threshold    = flag.Float64("threshold", 0.10, "allowed fractional allocs/op growth before a regression fails the run")
		smoke        = flag.Bool("smoke", false, "one benchmark iteration per target: proves the harness and every curated benchmark still run")
		benchtime    = flag.String("benchtime", "", "override -benchtime for the full run")
		mem          = flag.Bool("mem", true, "measure the heap high-water mark of an in-process miniature study run")
		memThreshold = flag.Float64("mem-threshold", 0.50, "allowed fractional mem_high_water_bytes growth before a regression fails the run")
		campNodes    = flag.Int("campaign-nodes", 0, "measure the heap high-water mark of a streaming scale campaign over this many generated vantages (0 = skip)")
		noBench      = flag.Bool("no-bench", false, "skip the benchmark suite (memory measurements only)")
	)
	flag.Parse()

	snap := Snapshot{Benchmarks: make(map[string]Result)}
	if *noBench {
		suite = nil
	}
	for _, s := range suite {
		args := []string{"test", "-run", "^$", "-bench", s.bench, "-benchmem", s.pkg}
		switch {
		case *smoke:
			args = append(args, "-benchtime", "1x")
		case *benchtime != "":
			args = append(args, "-benchtime", *benchtime)
		}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "doebench: go %s: %v\n%s", strings.Join(args, " "), err, raw)
			os.Exit(2)
		}
		if err := parseInto(snap.Benchmarks, s.pkg, string(raw)); err != nil {
			fmt.Fprintf(os.Stderr, "doebench: %v\n", err)
			os.Exit(2)
		}
	}
	if len(snap.Benchmarks) == 0 && !*noBench {
		fmt.Fprintln(os.Stderr, "doebench: no benchmark results parsed")
		os.Exit(2)
	}
	for name, r := range snap.Benchmarks {
		fmt.Printf("%-40s %12.1f ns/op %8d B/op %6d allocs/op\n", name, r.NsPerOp, r.BPerOp, r.AllocsOp)
	}

	if *mem {
		hw, err := measureMemHighWater(*smoke)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doebench: memory measurement: %v\n", err)
			os.Exit(2)
		}
		snap.MemHighWaterBytes = hw
		fmt.Printf("%-40s %12d bytes heap high-water\n", "study-run", hw)
	}

	if *campNodes > 0 {
		hw, err := measureCampaignHighWater(*campNodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doebench: campaign measurement: %v\n", err)
			os.Exit(2)
		}
		snap.CampaignMemHighWaterBytes = hw
		snap.CampaignNodes = *campNodes
		fmt.Printf("%-40s %12d bytes heap high-water (%d vantages)\n", "scale-campaign", hw, *campNodes)
	}

	if *out != "" {
		enc, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "doebench: encoding snapshot: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "doebench: writing %s: %v\n", *out, err)
			os.Exit(2)
		}
	}

	if *prev != "" {
		if !diff(*prev, snap, *threshold, *memThreshold) {
			os.Exit(1)
		}
	}
}

// parseInto extracts benchmark lines from go test output. Smoke runs report
// no B/op columns when -benchmem is off; with -benchmem they are always
// present, so missing columns are a parse error.
func parseInto(dst map[string]Result, pkg, output string) error {
	found := false
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		if m[4] == "" {
			return fmt.Errorf("benchmark %s missing -benchmem columns: %q", m[1], line)
		}
		bop, _ := strconv.ParseInt(m[4], 10, 64)
		aop, _ := strconv.ParseInt(m[5], 10, 64)
		dst[m[1]] = Result{Pkg: pkg, Iters: iters, NsPerOp: ns, BPerOp: bop, AllocsOp: aop}
		found = true
	}
	if !found {
		return fmt.Errorf("no benchmark lines in output for %s", pkg)
	}
	return nil
}

// measureMemHighWater runs the miniature study in-process and tracks the
// heap high-water mark with a background MemStats sampler (the same reading
// obs.SampleMemStats exposes at run time). The smoke shrink mirrors the
// chaos matrix config, so it exercises every experiment in a few seconds;
// the full run uses the unshrunken test config — the one the trajectory
// gate compares across PRs. Absolute bytes depend on GC pacing, hence the
// generous default -mem-threshold; the gate exists to catch step changes
// (per-node result materialization, unbounded buffering), not noise.
func measureMemHighWater(smoke bool) (uint64, error) {
	cfg := core.TestConfig()
	if smoke {
		cfg.ScanRounds = 2
		cfg.GlobalNodes = 24
		cfg.CensoredNodes = 12
		cfg.PerfNodes = 6
		cfg.PerfQueriesReused = 4
		cfg.PerfQueriesFresh = 4
	}
	s, err := core.NewStudy(cfg)
	if err != nil {
		return 0, err
	}
	return trackHeapHighWater(func() error { return s.RunAll(io.Discard) })
}

// measureCampaignHighWater runs the streaming scale campaign over nodes
// generated vantages and tracks its heap high-water. This is the gate on
// the DESIGN.md §15 contract: campaign memory is O(workers·accumulator +
// cache cap), so the high-water must stay flat as -campaign-nodes grows —
// any O(population) state (per-node result slices, unbounded query logs,
// leaked per-connection timers) shows up here as a step change.
func measureCampaignHighWater(nodes int) (uint64, error) {
	cfg := core.DefaultScaleConfig()
	cfg.Nodes = nodes
	c, err := core.NewScaleCampaign(cfg)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	return trackHeapHighWater(func() error {
		_, err := c.Run(context.Background())
		return err
	})
}

// trackHeapHighWater runs fn under a background MemStats sampler (the same
// reading obs.SampleMemStats exposes at run time) and returns the peak
// HeapAlloc observed.
func trackHeapHighWater(fn func() error) (uint64, error) {
	runtime.GC()
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	runErr := fn()
	sample()
	close(stop)
	<-done
	return peak.Load(), runErr
}

// diff compares the run against a previous trajectory file. allocs/op may
// grow by the threshold fraction (plus one allocation of absolute slack, so
// single-digit counts don't flap); beyond that the run fails. The heap
// high-water mark may grow by memThreshold when both snapshots carry one.
// ns/op movement is reported but never fails the run.
func diff(prevPath string, cur Snapshot, threshold, memThreshold float64) bool {
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doebench: reading %s: %v\n", prevPath, err)
		os.Exit(2)
	}
	var prev Snapshot
	if err := json.Unmarshal(raw, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "doebench: parsing %s: %v\n", prevPath, err)
		os.Exit(2)
	}
	ok := true
	for name, p := range prev.Benchmarks {
		c, exists := cur.Benchmarks[name]
		if !exists {
			fmt.Printf("doebench: %s present in %s but not in this run (renamed or dropped)\n", name, prevPath)
			continue
		}
		limit := int64(float64(p.AllocsOp)*(1+threshold)) + 1
		if c.AllocsOp > limit {
			fmt.Printf("doebench: REGRESSION %s allocs/op %d -> %d (limit %d)\n", name, p.AllocsOp, c.AllocsOp, limit)
			ok = false
		} else if c.AllocsOp != p.AllocsOp {
			fmt.Printf("doebench: %s allocs/op %d -> %d\n", name, p.AllocsOp, c.AllocsOp)
		}
		if p.NsPerOp > 0 {
			change := (c.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
			if change > 20 || change < -20 {
				fmt.Printf("doebench: advisory: %s ns/op %.1f -> %.1f (%+.0f%%)\n", name, p.NsPerOp, c.NsPerOp, change)
			}
		}
	}
	switch {
	case prev.MemHighWaterBytes == 0 || cur.MemHighWaterBytes == 0:
		// One side has no memory column (pre-gate trajectory file, or a run
		// with -mem=false): nothing to compare.
	default:
		limit := uint64(float64(prev.MemHighWaterBytes) * (1 + memThreshold))
		if cur.MemHighWaterBytes > limit {
			fmt.Printf("doebench: REGRESSION mem_high_water_bytes %d -> %d (limit %d)\n",
				prev.MemHighWaterBytes, cur.MemHighWaterBytes, limit)
			ok = false
		} else if cur.MemHighWaterBytes != prev.MemHighWaterBytes {
			fmt.Printf("doebench: mem_high_water_bytes %d -> %d\n",
				prev.MemHighWaterBytes, cur.MemHighWaterBytes)
		}
	}
	switch {
	case prev.CampaignNodes == 0 || cur.CampaignNodes == 0:
		// One side did not run the scale campaign: nothing to compare.
	case prev.CampaignNodes != cur.CampaignNodes:
		fmt.Printf("doebench: campaign populations differ (%d vs %d vantages); campaign memory not gated\n",
			prev.CampaignNodes, cur.CampaignNodes)
	default:
		limit := uint64(float64(prev.CampaignMemHighWaterBytes) * (1 + memThreshold))
		if cur.CampaignMemHighWaterBytes > limit {
			fmt.Printf("doebench: REGRESSION campaign_mem_high_water_bytes %d -> %d (limit %d)\n",
				prev.CampaignMemHighWaterBytes, cur.CampaignMemHighWaterBytes, limit)
			ok = false
		} else if cur.CampaignMemHighWaterBytes != prev.CampaignMemHighWaterBytes {
			fmt.Printf("doebench: campaign_mem_high_water_bytes %d -> %d\n",
				prev.CampaignMemHighWaterBytes, cur.CampaignMemHighWaterBytes)
		}
	}
	return ok
}
