package proxy

import (
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	measureIP = netip.MustParseAddr("10.0.0.1") // measurement client
	superIP   = netip.MustParseAddr("172.16.0.1")
	exitUS    = netip.MustParseAddr("10.10.0.5")
	exitID    = netip.MustParseAddr("10.20.0.5") // Indonesia
	targetIP  = netip.MustParseAddr("192.0.2.80")
)

func newWorld() *netsim.World {
	w := netsim.NewWorld(21)
	w.JitterFrac = 0
	w.Geo.Register(netip.MustParsePrefix("10.0.0.0/16"), geo.Location{Country: "US", ASN: 1, ASName: "Lab"})
	w.Geo.Register(netip.MustParsePrefix("172.16.0.0/16"), geo.Location{Country: "US", ASN: 2, ASName: "Cloud"})
	w.Geo.Register(netip.MustParsePrefix("10.10.0.0/16"), geo.Location{Country: "US", ASN: 3, ASName: "US ISP"})
	w.Geo.Register(netip.MustParsePrefix("10.20.0.0/16"), geo.Location{Country: "ID", ASN: 4, ASName: "ID ISP"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL", ASN: 5, ASName: "Host"})
	return w
}

// echoTarget registers a byte-echo service at targetIP:port.
func echoTarget(w *netsim.World, port uint16) {
	w.RegisterStream(targetIP, port, func(conn *netsim.Conn) {
		defer conn.Close()
		io.Copy(conn, conn) //nolint:errcheck
	})
}

func newNetwork(w *netsim.World) *Network {
	n := NewNetwork(w, "testrack", superIP, 5)
	n.AddNode(ExitNode{ID: "us-1", Addr: exitUS, Country: "US", ASN: 3, ASName: "US ISP", Lifetime: time.Hour})
	n.AddNode(ExitNode{ID: "id-1", Addr: exitID, Country: "ID", ASN: 4, ASName: "ID ISP", Lifetime: time.Hour})
	return n
}

func TestTunnelEcho(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := newNetwork(w)
	conn, err := n.Dial(measureIP, "us-1", targetIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("echo = %q", buf)
	}
}

func TestLatencyComposesAcrossHops(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := newNetwork(w)

	measure := func(nodeID string) time.Duration {
		conn, err := n.Dial(measureIP, nodeID, targetIP, 80)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		before := conn.Elapsed()
		conn.Write([]byte("x")) //nolint:errcheck
		buf := make([]byte, 1)
		io.ReadFull(conn, buf) //nolint:errcheck
		return conn.Elapsed() - before
	}

	viaUS := measure("us-1")
	viaID := measure("id-1")
	if viaUS <= 0 || viaID <= 0 {
		t.Fatalf("latencies not accounted: US=%v ID=%v", viaUS, viaID)
	}
	// The Indonesian exit sits farther from both super proxy and target,
	// and has a slower access network: round trips must cost more.
	if viaID <= viaUS {
		t.Errorf("via-ID latency %v not above via-US %v", viaID, viaUS)
	}
}

func TestConnectRefusedTargetReported(t *testing.T) {
	w := newWorld()
	n := newNetwork(w)
	_, err := n.Dial(measureIP, "us-1", targetIP, 9999)
	if !errors.Is(err, ErrConnectFailed) {
		t.Errorf("err = %v, want ErrConnectFailed", err)
	}
}

func TestNodeSelectionByUsername(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := newNetwork(w)
	if _, err := n.Dial(measureIP, "nope", targetIP, 80); err == nil {
		t.Error("dial via unknown node succeeded")
	}
	conn, err := n.Dial(measureIP, "", targetIP, 80) // platform chooses
	if err != nil {
		t.Fatalf("random node dial: %v", err)
	}
	conn.Close()
}

func TestLifetimeExhaustion(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := NewNetwork(w, "short", superIP, 6)
	n.PerDialCost = 40 * time.Minute
	n.AddNode(ExitNode{ID: "brief", Addr: exitUS, Country: "US", Lifetime: time.Hour})

	if _, err := n.RemainingUptime("brief"); err != nil {
		t.Fatal(err)
	}
	c1, err := n.Dial(measureIP, "brief", targetIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	left, err := n.RemainingUptime("brief")
	if err != nil || left != 20*time.Minute {
		t.Errorf("remaining = %v, %v; want 20m", left, err)
	}
	c2, err := n.Dial(measureIP, "brief", targetIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if _, err := n.Dial(measureIP, "brief", targetIP, 80); err == nil {
		t.Error("dial via exhausted node succeeded")
	}
	if _, err := n.RemainingUptime("missing"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestPoliciesApplyAtExitNode(t *testing.T) {
	w := newWorld()
	echoTarget(w, 443)
	// Censor blocks the target for clients in ID only.
	w.AddPolicy(&netsim.Censor{
		Countries: map[string]bool{"ID": true},
		BlockIPs:  map[netip.Addr]bool{targetIP: true},
	})
	n := newNetwork(w)

	if conn, err := n.Dial(measureIP, "us-1", targetIP, 443); err != nil {
		t.Errorf("US exit should pass: %v", err)
	} else {
		conn.Close()
	}
	if _, err := n.Dial(measureIP, "id-1", targetIP, 443); !errors.Is(err, ErrConnectFailed) {
		t.Errorf("ID exit err = %v, want ErrConnectFailed (censored)", err)
	}
}

func TestDNSOverTunnel(t *testing.T) {
	w := newWorld()
	fixed := netip.MustParseAddr("203.0.113.3")
	w.RegisterStream(targetIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		for {
			raw, err := dnswire.ReadTCP(conn)
			if err != nil {
				return
			}
			m, err := dnswire.Unpack(raw)
			if err != nil {
				return
			}
			resp := m.Reply()
			resp.AddAnswer(m.Question1().Name, 60, dnswire.A{Addr: fixed})
			packed, _ := resp.Pack()
			if err := dnswire.WriteTCP(conn, packed); err != nil {
				return
			}
		}
	})
	n := newNetwork(w)
	conn, err := n.Dial(measureIP, "us-1", targetIP, 53)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(77, "proxied.example.org", dnswire.TypeA)
	framed, _ := dnswire.PackTCP(q)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	raw, err := dnswire.ReadTCP(conn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := m.Answers[0].Data.(dnswire.A); !ok || a.Addr != fixed {
		t.Errorf("answer = %v", m.Answers)
	}
}

func TestNodesListing(t *testing.T) {
	w := newWorld()
	n := newNetwork(w)
	nodes := n.Nodes()
	if len(nodes) != 2 || nodes[0].ID != "id-1" || nodes[1].ID != "us-1" {
		t.Errorf("nodes = %+v", nodes)
	}
	if n.NodeCount() != 2 {
		t.Errorf("count = %d", n.NodeCount())
	}
}

func TestNoAuthSuperProxy(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := NewNetwork(w, "open", superIP, 7)
	n.RequireAuth = false
	n.AddNode(ExitNode{ID: "x", Addr: exitUS, Country: "US", Lifetime: time.Hour})
	conn, err := n.Dial(measureIP, "", targetIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}
