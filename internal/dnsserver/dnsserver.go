// Package dnsserver provides the server-side DNS building blocks of the
// study: a Handler abstraction shared by clear-text DNS, DoT and DoH
// front-ends, an authoritative zone (including the wildcard measurement
// zone whose uniquely prefixed names defeat caching), a forwarding recursive
// resolver with a TTL cache, and the misbehaving "dnsfilter-style" resolver
// that answers every query with a fixed address (§3.2).
package dnsserver

import (
	"bufio"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Handler answers one DNS query. proc is the virtual processing time the
// query cost the server (charged to the client's connection by the
// transport front-ends). req is only valid for the duration of the call:
// the stream front-ends parse every request into one reused Message, so a
// handler that needs to keep question data must copy it (Reply already
// copies the question section by value).
type Handler interface {
	ServeDNS(remote netip.Addr, req *dnswire.Message) (resp *dnswire.Message, proc time.Duration)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	return f(remote, req)
}

// ServeStream runs the DNS-over-TCP framing loop on conn, answering queries
// with h until the peer closes or an error occurs. Connection reuse —
// multiple queries per connection — falls out naturally, as RFC 7766
// requires.
func ServeStream(conn *netsim.Conn, h Handler) {
	serveStreamRW(conn, conn, h)
}

// rw is the minimal surface ServeStream needs, letting the TLS front-end
// reuse the same loop with a *tls.Conn.
type rw interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}

// serveStreamRW is the per-connection answer loop. It owns one pooled read
// buffer, one pooled write buffer and one reused request Message for the
// connection's lifetime, so answering a query in steady state allocates
// only what the handler itself builds.
//
// Pipelined clients (RFC 7766 §6.2.1.1) get coalesced responses: requests
// are drained through a buffered reader, and responses accumulate in the
// write buffer until no further request is already buffered, then leave in
// one Write. For a serial client each read buffers exactly one request, so
// every response still flushes immediately and the wire behaviour — and the
// virtual-clock charging — is unchanged.
//
//doelint:hotpath
func serveStreamRW(conn rw, raw *netsim.Conn, h Handler) {
	remote := raw.RemoteAddr().(netsim.Addr).IP
	rbuf := bufpool.Get(512)
	wbuf := bufpool.Get(512)
	defer bufpool.Put(rbuf)
	defer bufpool.Put(wbuf)
	req := new(dnswire.Message)
	br := bufio.NewReaderSize(conn, 4096) //doelint:allow hotalloc -- one reader per connection, amortized over its queries
	out := (*wbuf)[:0]
	for {
		msg, err := dnswire.ReadTCPAppend(br, (*rbuf)[:0])
		if err != nil {
			return
		}
		*rbuf = msg
		if err := dnswire.UnpackInto(req, msg); err != nil {
			// RFC 7766: a server receiving garbage should close.
			return
		}
		resp, proc := h.ServeDNS(remote, req)
		if resp == nil {
			return
		}
		raw.AddLatency(proc)
		out, err = resp.AppendPackTCP(out)
		*wbuf = out
		if err != nil {
			return
		}
		if br.Buffered() == 0 {
			if _, err := conn.Write(out); err != nil {
				return
			}
			out = out[:0]
		}
	}
}

// ServeTLSStream is ServeStream for a TLS-wrapped connection whose
// underlying netsim.Conn is raw.
func ServeTLSStream(tlsConn rw, raw *netsim.Conn, h Handler) {
	serveStreamRW(tlsConn, raw, h)
}

// DatagramHandler adapts h to the netsim datagram interface (DNS over UDP).
func DatagramHandler(h Handler) netsim.DatagramHandler {
	return func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		m, err := dnswire.Unpack(req)
		if err != nil {
			return nil, 0, err
		}
		resp, proc := h.ServeDNS(from, m)
		if resp == nil {
			return nil, 0, netsim.ErrBlackhole
		}
		packed, err := resp.Pack()
		if err != nil {
			return nil, 0, err
		}
		return packed, proc, nil
	}
}

// Zone is an authoritative zone with optional wildcard synthesis for the
// measurement domain. It is safe for concurrent use.
type Zone struct {
	// Origin is the zone apex, e.g. "measure.example.org.".
	Origin string
	// WildcardA, when valid, makes the zone answer any name under Origin
	// with this address — the paper's uniquely-prefixed probe names
	// ("<nonce>.ourdomain") all resolve without pre-registration.
	WildcardA netip.Addr
	// Proc is the fixed authoritative processing time per query.
	Proc time.Duration
	// DisableQueryLog stops the zone recording answered names. The log
	// exists for measurement verification (QueriedNames); million-vantage
	// streaming campaigns disable it because retaining one string per
	// lookup is O(total queries) heap. Responses are unaffected.
	DisableQueryLog bool

	mu          sync.RWMutex
	records     map[string]map[dnswire.Type][]dnswire.Record
	queried     []string // names seen, for measurement verification
	delegations []delegation
}

// NewZone creates an authoritative zone rooted at origin.
func NewZone(origin string) *Zone {
	return &Zone{
		Origin:  dnswire.CanonicalName(origin),
		records: make(map[string]map[dnswire.Type][]dnswire.Record),
		Proc:    time.Millisecond,
	}
}

// Add installs a record.
func (z *Zone) Add(name string, ttl uint32, data dnswire.RData) *Zone {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	byType, ok := z.records[name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.Record)
		z.records[name] = byType
	}
	t := data.RType()
	byType[t] = append(byType[t], dnswire.Record{
		Name: name, Class: dnswire.ClassINET, TTL: ttl, Data: data,
	})
	return z
}

// QueriedNames returns a copy of all names the zone has answered, in order.
func (z *Zone) QueriedNames() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]string(nil), z.queried...)
}

// ServeDNS implements Handler.
func (z *Zone) ServeDNS(_ netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	resp := req.Reply()
	resp.Authoritative = true
	q := req.Question1()
	name := dnswire.CanonicalName(q.Name)

	if !dnswire.IsSubdomain(name, z.Origin) {
		resp.Rcode = dnswire.RcodeRefused
		return resp, z.Proc
	}
	z.mu.Lock()
	if !z.DisableQueryLog {
		z.queried = append(z.queried, name)
	}
	byType := z.records[name]
	deleg, delegated := z.referralFor(name)
	z.mu.Unlock()

	// Names at or below a delegation point get a referral, not an answer
	// (unless the query is for the apex itself with data we hold).
	if delegated && name != dnswire.CanonicalName(z.Origin) {
		resp.Authoritative = false
		resp.Authorities = append(resp.Authorities, deleg.ns)
		if deleg.hasGlue {
			resp.Additionals = append(resp.Additionals, deleg.glue)
		}
		return resp, z.Proc
	}

	if rrs, ok := byType[q.Type]; ok {
		resp.Answers = append(resp.Answers, rrs...)
		return resp, z.Proc
	}
	if q.Type == dnswire.TypeA && z.WildcardA.IsValid() {
		resp.AddAnswer(name, 60, dnswire.A{Addr: z.WildcardA})
		return resp, z.Proc
	}
	if len(byType) > 0 {
		// Name exists with other types: NODATA.
		return resp, z.Proc
	}
	resp.Rcode = dnswire.RcodeNXDomain
	return resp, z.Proc
}

// Static answers every A query with a fixed address, the behaviour of
// subscription filtering resolvers like dnsfilter.com toward unknown
// clients ("constantly resolve arbitrary domain queries to a fixed IP").
type Static struct {
	Addr netip.Addr
	Proc time.Duration
}

// ServeDNS implements Handler.
func (s Static) ServeDNS(_ netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	resp := req.Reply()
	q := req.Question1()
	if q.Type == dnswire.TypeA {
		resp.AddAnswer(q.Name, 300, dnswire.A{Addr: s.Addr})
	}
	return resp, s.Proc
}

// ServFail answers every query with SERVFAIL.
type ServFail struct{}

// ServeDNS implements Handler.
func (ServFail) ServeDNS(_ netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	resp := req.Reply()
	resp.Rcode = dnswire.RcodeServFail
	return resp, time.Millisecond
}

// Resolver is a caching recursive resolver that forwards to authoritative
// servers over the simulated network. Its processing time per query is the
// (virtual) upstream round trip on cache misses plus a small constant.
type Resolver struct {
	World *netsim.World
	// Addr is the resolver's own address (source of upstream queries).
	Addr netip.Addr
	// Upstreams maps zone suffixes to authoritative server addresses; the
	// longest matching suffix wins. "." routes everything else.
	Upstreams map[string]netip.Addr
	// BaseProc is charged on every query (lookup, cache bookkeeping).
	BaseProc time.Duration
	// ExtraProcDist, when non-nil, draws additional heavy-tail recursion
	// latency per cache miss (modeling faraway or slow nameservers — the
	// distribution behind Finding 2.4's timeouts).
	ExtraProcDist func(rng *rand.Rand) time.Duration
	// CacheLimit, when > 0, caps the number of cached entries: once full,
	// new answers are served but not inserted. This is only safe for
	// workloads whose query names are task-private (never re-queried) —
	// there a hit can never happen, so skipping insertion changes neither
	// answers nor latency. Million-vantage streaming campaigns set it to
	// keep resolver heap O(limit) instead of O(total queries); study
	// worlds leave it 0 (unbounded) because reused-name measurements
	// depend on hits.
	CacheLimit int

	rngMu sync.Mutex
	rng   *rand.Rand

	cacheMu sync.Mutex
	cache   map[string]cacheEntry
}

// cacheEntry is a cached answer. Entries never expire: cache behavior must
// be a function of the query history alone, and a wall-clock TTL made hit
// vs miss depend on how slowly the host ran a campaign — on a loaded
// machine an entry could lapse mid-measurement and shift a latency median,
// breaking byte-identity across worker counts. Study worlds are short-lived
// and the campaigns keep probe names task-private, so an everlasting cache
// is both deterministic and faithful to the reused-name measurements.
type cacheEntry struct {
	answers []dnswire.Record
	rcode   dnswire.Rcode
}

// NewResolver creates a recursive resolver.
func NewResolver(w *netsim.World, addr netip.Addr, upstreams map[string]netip.Addr, seed int64) *Resolver {
	canon := make(map[string]netip.Addr, len(upstreams))
	for suffix, a := range upstreams {
		canon[dnswire.CanonicalName(suffix)] = a
	}
	return &Resolver{
		World:     w,
		Addr:      addr,
		Upstreams: canon,
		BaseProc:  500 * time.Microsecond,
		rng:       rand.New(rand.NewSource(seed)),
		cache:     make(map[string]cacheEntry),
	}
}

func (r *Resolver) upstreamFor(name string) (netip.Addr, bool) {
	name = dnswire.CanonicalName(name)
	best := ""
	var addr netip.Addr
	found := false
	for suffix, a := range r.Upstreams {
		if dnswire.IsSubdomain(name, suffix) && len(suffix) >= len(best) {
			best, addr, found = suffix, a, true
		}
	}
	return addr, found
}

// ServeDNS implements Handler.
func (r *Resolver) ServeDNS(_ netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	q := req.Question1()
	key := strings.ToLower(q.Name) + "/" + q.Type.String()
	proc := r.BaseProc

	r.cacheMu.Lock()
	entry, hit := r.cache[key]
	r.cacheMu.Unlock()

	resp := req.Reply()
	if hit {
		resp.Rcode = entry.rcode
		resp.Answers = append(resp.Answers, entry.answers...)
		return resp, proc
	}

	upstream, ok := r.upstreamFor(q.Name)
	if !ok {
		resp.Rcode = dnswire.RcodeServFail
		return resp, proc
	}
	up := dnswire.NewQuery(dnswire.NewID(), q.Name, q.Type)
	packed, err := up.Pack()
	if err != nil {
		resp.Rcode = dnswire.RcodeServFail
		return resp, proc
	}
	raw, upElapsed, err := r.World.Exchange(r.Addr, upstream, 53, packed)
	if err != nil {
		resp.Rcode = dnswire.RcodeServFail
		return resp, proc + upElapsed
	}
	um, err := dnswire.Unpack(raw)
	if err != nil {
		resp.Rcode = dnswire.RcodeServFail
		return resp, proc + upElapsed
	}
	proc += upElapsed
	if r.ExtraProcDist != nil {
		r.rngMu.Lock()
		proc += r.ExtraProcDist(r.rng)
		r.rngMu.Unlock()
	}

	resp.Rcode = um.Rcode
	// Rewrite answer ownership onto our response (IDs differ upstream).
	resp.Answers = append(resp.Answers, um.Answers...)

	r.cacheMu.Lock()
	if r.CacheLimit <= 0 || len(r.cache) < r.CacheLimit {
		r.cache[key] = cacheEntry{
			answers: um.Answers,
			rcode:   um.Rcode,
		}
	}
	r.cacheMu.Unlock()
	return resp, proc
}

// CacheLen reports the number of live cache entries (for tests).
func (r *Resolver) CacheLen() int {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return len(r.cache)
}
