package proxy

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/netsim"
)

// ExitNode is one residential endpoint of a proxy network.
type ExitNode struct {
	ID      string
	Addr    netip.Addr
	Country string
	ASN     int
	ASName  string
	// Lifetime is the node's remaining session budget. Residential nodes
	// churn; the paper checks remaining uptime via the platform API and
	// discards nodes that would expire mid-measurement.
	Lifetime time.Duration
}

// Errors returned by the network.
var (
	ErrNoSuchNode  = errors.New("proxy: no such exit node")
	ErrNodeExpired = errors.New("proxy: exit node expired")
)

// Network models a commercial residential SOCKS proxy platform (ProxyRack,
// Zhima): a super proxy address plus a pool of exit nodes. Sessions select
// their exit via the SOCKS username, mirroring username-keyed sessions on
// real platforms.
type Network struct {
	Name      string
	World     *netsim.World
	SuperAddr netip.Addr
	// RequireAuth demands RFC 1929 credentials at the super proxy.
	RequireAuth bool
	// PerDialCost is how much lifetime one tunneled session consumes.
	PerDialCost time.Duration

	mu    sync.Mutex
	nodes map[string]*ExitNode
	order []string
	rng   *rand.Rand

	// Generator-fed population (see genpop.go): synthesized nodes are
	// materialized into `active` only between Acquire and its release.
	gen      func(i int) ExitNode
	genCount int
	active   map[string]*ExitNode
}

// NewNetwork creates a proxy platform and installs its super proxy and exit
// node servers into the world.
func NewNetwork(w *netsim.World, name string, superAddr netip.Addr, seed int64) *Network {
	n := &Network{
		Name:        name,
		World:       w,
		SuperAddr:   superAddr,
		RequireAuth: true,
		PerDialCost: 30 * time.Second,
		nodes:       make(map[string]*ExitNode),
		rng:         rand.New(rand.NewSource(seed)),
	}
	w.RegisterStream(superAddr, 1080, func(conn *netsim.Conn) {
		ServeConn(conn, n.RequireAuth, n.dialViaExit)
	})
	return n
}

// AddNode registers an exit node and starts its SOCKS service.
func (n *Network) AddNode(node ExitNode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := node
	n.nodes[node.ID] = &cp
	n.order = append(n.order, node.ID)
	// The exit node's own SOCKS server: dials targets from the node's
	// address, so in-path middleboxes near the node apply.
	n.World.RegisterStream(node.Addr, 1080, func(conn *netsim.Conn) {
		ServeConn(conn, false, func(req Request) (*netsim.Conn, error) {
			if !req.Target.IsValid() {
				return nil, netsim.ErrNoRoute
			}
			return n.World.Dial(cp.Addr, req.Target, req.Port)
		})
	})
}

// Nodes returns all exit nodes sorted by ID.
func (n *Network) Nodes() []ExitNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ExitNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		out = append(out, *node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeCount reports the pool size.
func (n *Network) NodeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// RemainingUptime is the platform API the paper polls before using a node
// ("we first check its remaining uptime and discard it if expiring soon").
func (n *Network) RemainingUptime(id string) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.lookupLocked(id)
	if !ok {
		return 0, ErrNoSuchNode
	}
	return node.Lifetime, nil
}

// Shutdown closes the platform's listening services — the super proxy and
// every exit node's SOCKS server — which unblocks their accept loops so the
// goroutines behind them exit. Established tunnels are unaffected; new dials
// fail with ErrRefused. Tests that build throwaway platforms call it to keep
// goroutine-leak assertions honest.
func (n *Network) Shutdown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.World.CloseService(n.SuperAddr, 1080)
	for _, id := range n.order {
		n.World.CloseService(n.nodes[id].Addr, 1080)
	}
	for _, node := range n.active {
		n.World.CloseService(node.Addr, 1080)
	}
	n.active = nil
}

// dialViaExit is the super proxy's outbound leg: pick the exit node named
// by the SOCKS username (or a random live one), tunnel through its SOCKS
// service, and complete a nested CONNECT to the real target.
func (n *Network) dialViaExit(req Request) (*netsim.Conn, error) {
	node, err := n.reserve(req.Username)
	if err != nil {
		return nil, err
	}
	conn, err := n.World.Dial(n.SuperAddr, node.Addr, 1080)
	if err != nil {
		return nil, err
	}
	if err := ClientConnect(conn, nil, req.Target, req.Port); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (n *Network) reserve(id string) (*ExitNode, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var node *ExitNode
	if id != "" {
		var ok bool
		node, ok = n.lookupLocked(id)
		if !ok {
			return nil, ErrNoSuchNode
		}
	} else {
		live := make([]*ExitNode, 0, len(n.nodes))
		for _, id := range n.order {
			if nd := n.nodes[id]; nd.Lifetime > 0 {
				live = append(live, nd)
			}
		}
		if len(live) == 0 {
			return nil, ErrNodeExpired
		}
		node = live[n.rng.Intn(len(live))]
	}
	if node.Lifetime <= 0 {
		return nil, ErrNodeExpired
	}
	node.Lifetime -= n.PerDialCost
	return node, nil
}

// DialDatagram opens a UDP-ASSOCIATE-style datagram relay from the
// measurement client at `from` through exit node nodeID to target:port.
// The returned exchange function sends one datagram and returns the
// response with the virtual latency of all three legs composed: the
// client→super and super→node round trips (a fixed property of the path)
// plus the node→target exchange, which traverses middlebox policies and
// the fault layer exactly as a datagram sent by the node itself would —
// so per-tuple fault schedules advance identically for any worker count.
// Establishing the association consumes the same session lifetime as a
// stream tunnel.
func (n *Network) DialDatagram(from netip.Addr, nodeID string, target netip.Addr, port uint16) (func(req []byte) ([]byte, time.Duration, error), error) {
	node, err := n.reserve(nodeID)
	if err != nil {
		// Surface platform churn with the same reply code the stream path
		// uses, so IsPlatformDisruption classifies both legs identically.
		return nil, fmt.Errorf("via %s node %q: %w", n.Name, nodeID, &ConnectError{Code: errorReply(err)})
	}
	relayRTT := n.World.PathRTT(from, n.SuperAddr) + n.World.PathRTT(n.SuperAddr, node.Addr)
	exit := node.Addr
	return func(req []byte) ([]byte, time.Duration, error) {
		resp, d, err := n.World.Exchange(exit, target, port, req)
		if err != nil {
			return nil, 0, err
		}
		return resp, relayRTT + d, nil
	}, nil
}

// Dial opens a tunnel from the measurement client at `from` through the
// platform to target:port, pinned to exit node nodeID ("" = platform
// chooses). The returned conn carries composed virtual latency across all
// three segments.
func (n *Network) Dial(from netip.Addr, nodeID string, target netip.Addr, port uint16) (*netsim.Conn, error) {
	conn, err := n.World.Dial(from, n.SuperAddr, 1080)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //doelint:allow walltaint -- real-time watchdog on the simulated conn; expiry aborts a hang, never results
	var creds *Credentials
	if n.RequireAuth {
		creds = &Credentials{Username: nodeID, Password: "measurement"}
	}
	if err := ClientConnect(conn, creds, target, port); err != nil {
		conn.Close()
		return nil, fmt.Errorf("via %s node %q: %w", n.Name, nodeID, err)
	}
	return conn, nil
}
