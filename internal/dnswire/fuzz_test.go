package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

// Fuzz targets for the wire codec: the parser faces attacker-controlled
// bytes in every measurement (scan probes hit arbitrary hosts; middleboxes
// inject responses), so it must never panic, loop or overrun — only return
// errors. Each target also checks the parse→pack→parse fixpoint on inputs
// the parser accepts.

// seedMessages returns valid wire messages covering every section and the
// compression pointer path.
func seedMessages(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	q := NewQuery(0x1234, "scan.example.org", TypeA)
	qb, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, qb)

	r := q.Reply()
	r.AddAnswer("scan.example.org", 300, A{Addr: netip.MustParseAddr("192.0.2.1")})
	r.AddAnswer("scan.example.org", 300, CNAME{Target: "alias.example.org"})
	r.AddAuthority("example.org", 900, SOA{MName: "ns1.example.org", RName: "hostmaster.example.org", Serial: 7})
	r.Additionals = append(r.Additionals, Record{
		Name: "ns1.example.org", Class: ClassINET, TTL: 60,
		Data: TXT{Texts: []string{"probe"}},
	})
	r.SetEDNS0(4096, true)
	rb, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, rb)

	// A hand-built message whose answer name is a compression pointer to
	// the question (0xC00C), the shape real resolvers emit.
	ptr := []byte{
		0xab, 0xcd, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0,
		3, 'd', 'n', 's', 2, 'c', 'f', 0, // dns.cf.
		0, 1, 0, 1,
		0xC0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 1, 1, 1,
	}
	seeds = append(seeds, ptr)
	return seeds
}

func FuzzParseMessage(f *testing.F) {
	for _, seed := range seedMessages(f) {
		f.Add(seed)
	}
	// Malformed shapes: truncated header, counts promising absent records,
	// a pointer loop.
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 9, 0, 9, 0, 9, 0, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Accepted messages must render and re-encode without panicking;
		// a successful re-encode must parse again (pack→parse fixpoint).
		_ = m.String()
		packed, err := m.Pack()
		if err != nil {
			return
		}
		if _, err := Unpack(packed); err != nil {
			t.Fatalf("repacked message fails to parse: %v\noriginal: %x\nrepacked: %x", err, data, packed)
		}
	})
}

func FuzzParseName(f *testing.F) {
	f.Add([]byte{3, 'd', 'n', 's', 2, 'c', 'f', 0}, uint16(0))
	f.Add([]byte{1, 'a', 0xC0, 0}, uint16(2))           // pointer to earlier name
	f.Add([]byte{0xC0, 0}, uint16(0))                   // self-pointer (loop)
	f.Add([]byte{0x40, 'x', 0}, uint16(0))              // reserved label type
	f.Add([]byte{63, 0}, uint16(0))                     // truncated label
	f.Add(bytes.Repeat([]byte{1, 'a'}, 200), uint16(0)) // unterminated chain

	f.Fuzz(func(t *testing.T, data []byte, off16 uint16) {
		off := int(off16)
		if off > len(data) {
			off = len(data)
		}
		name, next, err := readName(data, off)
		if err != nil {
			return
		}
		if !strings.HasSuffix(name, ".") {
			t.Fatalf("parsed name %q not dot-terminated", name)
		}
		if next <= off && name != "." {
			// A non-root in-place encoding consumes at least one byte.
			if next <= off {
				t.Fatalf("cursor went backwards: off %d -> next %d", off, next)
			}
		}
		if next > len(data) {
			t.Fatalf("cursor %d beyond buffer %d", next, len(data))
		}
		// Re-encoding an accepted name must be stable: if it encodes, the
		// encoded form parses back to itself and re-encodes identically.
		enc, err := appendName(nil, name, nil)
		if err != nil {
			return
		}
		again, _, err := readName(enc, 0)
		if err != nil {
			t.Fatalf("re-encoded name %q fails to parse: %v (wire %x)", name, err, enc)
		}
		enc2, err := appendName(nil, again, nil)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not a fixpoint: %q -> %x, %q -> %x (err %v)", name, enc, again, enc2, err)
		}
	})
}

func FuzzRData(f *testing.F) {
	f.Add(uint16(TypeA), []byte{192, 0, 2, 1})
	f.Add(uint16(TypeAAAA), bytes.Repeat([]byte{0x20}, 16))
	f.Add(uint16(TypeNS), []byte{2, 'n', 's', 0})
	f.Add(uint16(TypeMX), []byte{0, 10, 4, 'm', 'a', 'i', 'l', 0})
	f.Add(uint16(TypeSOA), append([]byte{1, 'm', 0, 1, 'r', 0}, make([]byte, 20)...))
	f.Add(uint16(TypeTXT), []byte{5, 'h', 'e', 'l', 'l', 'o'})
	f.Add(uint16(TypeSRV), []byte{0, 1, 0, 2, 3, 0x55, 1, 's', 0})
	f.Add(uint16(TypeOPT), []byte{0, 12, 0, 2, 0, 0})
	f.Add(uint16(0xFFFF), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, rtype uint16, data []byte) {
		rd, err := unpackRData(data, 0, len(data), Type(rtype))
		if err != nil {
			return
		}
		// Accepted RDATA must stringify and re-encode without panicking.
		_ = rd.String()
		if _, err := rd.appendTo(nil, nil); err != nil {
			// Re-encode may legitimately reject (e.g. a name with an
			// embedded empty label survives parsing but not presentation
			// round-trip); erroring is fine, panicking is not.
			return
		}
	})
}

// FuzzQUICVarint hardens the QUIC variable-length integer codec: any input
// either errors or yields a value whose canonical re-encoding parses back
// to itself (parse→append→parse fixpoint), consuming exactly its own
// length and never more bytes than the input offered.
func FuzzQUICVarint(f *testing.F) {
	f.Add([]byte{0x25})
	f.Add([]byte{0x40, 0x25}) // non-minimal two-byte form
	f.Add([]byte{0x7b, 0xbd})
	f.Add([]byte{0x9d, 0x7f, 0x3e, 0x7d})
	f.Add([]byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Truncated varints: a length prefix promising bytes that never come.
	f.Add([]byte{0x40})
	f.Add([]byte{0x80, 0x01, 0x02})
	f.Add([]byte{0xc0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := ReadQUICVarint(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if v > MaxQUICVarint {
			t.Fatalf("value %d exceeds the 62-bit range", v)
		}
		enc := AppendQUICVarint(nil, v)
		if len(enc) > n {
			t.Fatalf("canonical encoding of %d is %d bytes, input form was %d", v, len(enc), n)
		}
		v2, n2, err := ReadQUICVarint(enc)
		if err != nil || v2 != v || n2 != len(enc) {
			t.Fatalf("fixpoint broken for %d: got (%d, %d, %v) from %x", v, v2, n2, err, enc)
		}
		if !bytes.Equal(AppendQUICVarint(nil, v2), enc) {
			t.Fatalf("re-encoding %d is not stable", v2)
		}
	})
}

// FuzzDoQFrame hardens the QUIC frame codec DoQ packets are built from: any
// accepted frame must re-encode canonically, and the canonical form must
// parse back to an identical frame and re-encode byte-identically
// (parse→append→parse fixpoint). Seeds cover every supported frame type,
// truncated varints and zero-length streams.
func FuzzDoQFrame(f *testing.F) {
	for _, fr := range []QUICFrame{
		{Type: QUICFramePadding},
		{Type: QUICFramePing},
		{Type: QUICFrameAck, AckLargest: 9, AckDelay: 40, AckFirstRange: 2},
		{Type: QUICFrameCrypto, Data: []byte("hello")},
		{Type: QUICFrameStream, StreamID: 0, Fin: true, Data: []byte{0, 1, 'q'}},
		{Type: QUICFrameStream, StreamID: 4, Offset: 7, Data: []byte("mid")},
		{Type: QUICFrameStream, StreamID: 64, Fin: true}, // zero-length stream
		{Type: QUICFrameConnClose, ErrorCode: 1, FrameType: 6, Data: []byte("oops")},
		{Type: QUICFrameConnCloseApp, ErrorCode: 2, Data: []byte("DOQ_PROTOCOL_ERROR")},
	} {
		wire, err := AppendQUICFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	// Malformed shapes: truncated varints mid-frame, lengths beyond the
	// buffer, a STREAM frame with the LEN bit clear (implicit length).
	f.Add([]byte{0x06, 0x40})
	f.Add([]byte{0x0b, 0x00, 0x05, 'x'})
	f.Add([]byte{0x09, 0x08, 'p', 'a', 'y'})
	f.Add([]byte{0x1c, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseQUICFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		canon, err := AppendQUICFrame(nil, fr)
		if err != nil {
			t.Fatalf("accepted frame %+v fails to re-encode: %v", fr, err)
		}
		again, n2, err := ParseQUICFrame(canon)
		if err != nil {
			t.Fatalf("canonical form %x fails to parse: %v", canon, err)
		}
		if n2 != len(canon) {
			t.Fatalf("canonical parse consumed %d of %d bytes", n2, len(canon))
		}
		if again.Type != fr.Type || again.StreamID != fr.StreamID || again.Offset != fr.Offset ||
			again.Fin != fr.Fin || !bytes.Equal(again.Data, fr.Data) ||
			again.AckLargest != fr.AckLargest || again.AckDelay != fr.AckDelay ||
			again.AckFirstRange != fr.AckFirstRange ||
			again.ErrorCode != fr.ErrorCode || again.FrameType != fr.FrameType {
			t.Fatalf("fixpoint broken: %+v reparsed as %+v", fr, again)
		}
		canon2, err := AppendQUICFrame(nil, again)
		if err != nil || !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding not stable: %x vs %x (%v)", canon, canon2, err)
		}
	})
}

// FuzzAppendTCP pins the append-style framing path to the original
// pack-then-copy path: for every message the parser accepts, AppendPackTCP
// must produce exactly the 2-byte length prefix plus Pack()'s bytes —
// whether it starts from an empty buffer or appends after existing content
// — and the framed form must survive a ReadTCPAppend→Unpack round trip.
func FuzzAppendTCP(f *testing.F) {
	for _, seed := range seedMessages(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		packed, err := m.Pack()
		if err != nil {
			return
		}
		framed, err := m.AppendPackTCP(nil)
		if err != nil {
			t.Fatalf("AppendPackTCP failed where Pack succeeded: %v", err)
		}
		want, err := AppendTCP(nil, packed)
		if err != nil {
			t.Fatalf("AppendTCP rejected Pack output: %v", err)
		}
		if !bytes.Equal(framed, want) {
			t.Fatalf("AppendPackTCP diverges from frame(Pack):\n got %x\nwant %x", framed, want)
		}
		// Appending after a non-empty prefix must leave the prefix intact
		// and produce the same frame after it (compression offsets are
		// message-relative, not buffer-relative).
		prefix := []byte{0xde, 0xad, 0xbe, 0xef}
		out, err := m.AppendPackTCP(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("AppendPackTCP with prefix: %v", err)
		}
		if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], framed) {
			t.Fatalf("prefixed AppendPackTCP not self-contained:\n got %x\nwant %x%x", out, prefix, framed)
		}
		// Read the frame back and confirm the message bytes round-trip.
		body, err := ReadTCPAppend(bytes.NewReader(framed), nil)
		if err != nil {
			t.Fatalf("ReadTCPAppend on own frame: %v", err)
		}
		if !bytes.Equal(body, packed) {
			t.Fatalf("framed body mismatch:\n got %x\nwant %x", body, packed)
		}
		if _, err := Unpack(body); err != nil {
			t.Fatalf("framed body fails to parse: %v", err)
		}
	})
}
