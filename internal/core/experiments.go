package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/runner"
	"dnsencryption.info/doe/internal/scanner"
	"dnsencryption.info/doe/internal/vantage"
)

// ReachabilityData bundles the §4.2 campaign outputs. The campaigns run as
// streaming folds: what survives is each platform's CampaignStats
// accumulator (tallies, retained failure/interception lists, retry and
// latency aggregates), never a per-node result slice — the contract that
// lets the same pipeline sweep a million-vantage population in bounded
// memory (DESIGN.md §15).
type ReachabilityData struct {
	Global   *vantage.CampaignStats
	Censored *vantage.CampaignStats
}

// ScanResults runs (once) and returns all §3 scan rounds.
func (s *Study) ScanResults() ([]*scanner.Result, error) {
	s.scansOnce.Do(func() {
		s.scanResults, s.scanErr = s.RunScans()
	})
	return s.scanResults, s.scanErr
}

// DoHDiscovery runs (once) the §3 DoH corpus inspection and verification.
func (s *Study) DoHDiscovery() []scanner.DoHResolver {
	s.dohOnce.Do(func() {
		candidates := scanner.InspectCorpus(s.DoHCorpus)
		d := &scanner.DoHDiscovery{
			World:       s.World,
			From:        scanSources[0],
			Roots:       s.Roots,
			Resolve:     s.DoHResolve,
			ProbeDomain: "dohprobe." + ProbeZone,
			KnownList:   s.DoHKnownList,
			Attempts:    s.retryBudget(),
		}
		s.dohFound = d.Verify(candidates)
	})
	return s.dohFound
}

// Reachability runs (once) the §4.2 campaigns on both platforms.
func (s *Study) Reachability() *ReachabilityData {
	s.reachOnce.Do(func() {
		// The reachability test observes the May 1 resolver population.
		s.SetScanRound(s.ScanRounds - 1)
		ctx := s.obsCtx()
		campaign := func(name string, p *vantage.Platform) *vantage.CampaignStats {
			cctx, sp := obs.Start(ctx, "campaign:"+name)
			stats, _ := p.CampaignStream(cctx, s.Targets, s.Workers, vantage.CampaignOpts{
				// Table 5 probes the clients that failed Cloudflare DoT;
				// only that key's node list is retained.
				TrackFailed: []vantage.FailKey{{Resolver: "cloudflare", Proto: vantage.ProtoDoT}},
			})
			sp.SetInt("lookups", int64(stats.Lookups))
			return stats
		}
		s.reach = &ReachabilityData{
			Global:   campaign("global", s.GlobalPlatform),
			Censored: campaign("censored", s.CensoredPlatform),
		}
	})
	return s.reach
}

// PerfSamples runs (once) the §4.3 reused-connection performance test on up
// to PerfNodes global vantage points against Cloudflare.
func (s *Study) PerfSamples() []vantage.PerfSample {
	s.perfOnce.Do(func() {
		target := s.Targets[0] // cloudflare
		nodes := s.Global.Nodes()
		// Every node is attempted so the work list is fixed up front (a
		// serial take-first-N loop would make the attempted set depend on
		// how many predecessors failed); the sample set is then the first
		// PerfNodes successes in node order, identical for any worker
		// count. Node session budgets comfortably cover the extra
		// attempts, so no vantage point expires from the overshoot.
		type perfOutcome struct {
			sample vantage.PerfSample
			ok     bool
		}
		pctx, psp := obs.Start(obs.WithPool(s.obsCtx(), "perf"), "perf-sampling")
		outcomes, _ := runner.MapCtx(pctx, s.Workers, len(nodes), func(ctx context.Context, i int) perfOutcome {
			ctx, _ = obs.Start(ctx, "node:"+nodes[i].ID, obs.Key(i))
			sample, err := s.GlobalPlatform.MeasurePerformanceContext(ctx, nodes[i], target, s.PerfQueriesReused)
			// Afflicted vantages cannot complete all three protocols;
			// the paper's perf dataset is likewise the subset of clients
			// that can (8,257 of 29,622).
			return perfOutcome{sample: sample, ok: err == nil}
		})
		psp.SetInt("nodes", int64(len(nodes)))
		for _, o := range outcomes {
			if len(s.perfSamples) >= s.PerfNodes {
				break
			}
			if o.ok {
				s.perfSamples = append(s.perfSamples, o.sample)
			}
		}
	})
	return s.perfSamples
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Study) (string, error)
}

// Experiments returns the registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Protocol comparison matrix", func(s *Study) (string, error) {
			return Table1().Render(), nil
		}},
		{"fig1", "Timeline of DNS privacy events", func(s *Study) (string, error) {
			return Fig1().Render(), nil
		}},
		{"table2", "Top countries of open DoT resolvers", runTable2},
		{"fig3", "Open DoT resolvers identified by each scan", runFig3},
		{"fig4", "Providers of open DoT resolvers", runFig4},
		{"doh-discovery", "DoH resolver discovery from the URL corpus", runDoHDiscovery},
		{"table3", "Evaluation of client-side dataset", runTable3},
		{"table4", "Reachability test results of public resolvers", runTable4},
		{"table5", "Ports open on 1.1.1.1 probed from failed clients", runTable5},
		{"table6", "Example clients affected by TLS interception", runTable6},
		{"table7", "Performance test results w/o connection reuse", runTable7},
		{"fig9", "Query performance per country", runFig9},
		{"fig10", "Per-client query time of DNS vs DoT/DoH", runFig10},
		{"fig11", "Monthly DoT flows to Cloudflare and Quad9", runFig11},
		{"fig12", "DoT traffic per /24 network", runFig12},
		{"fig13", "Query volume of popular DoH domains", runFig13},
		{"scan-screen", "Scanner screening of DoT client networks", runScanScreen},
		{"local-dot", "DoT support on ISP local resolvers (§3.1 limitation)", runLocalDoT},
		{"dnscrypt", "DNSCrypt end-to-end deployment check", runDNSCrypt},
		{"table8", "Implementation survey", func(s *Study) (string, error) {
			return Table8().Render(), nil
		}},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable2(s *Study) (string, error) {
	scans, err := s.ScanResults()
	if err != nil {
		return "", err
	}
	first := scans[0].CountryCounts()
	last := scans[len(scans)-1].CountryCounts()
	t := &analysis.Table{
		Title:   "Table 2: Top countries of open DoT resolvers (first vs last scan)",
		Columns: []string{"CC", s.ScanLabels[0], s.ScanLabels[len(s.ScanLabels)-1], "Growth"},
	}
	// Rank by first-scan count, list the top 10.
	counter := analysis.Counter{}
	for cc, n := range first {
		counter.Add(cc, n)
	}
	for _, kv := range counter.TopN(10) {
		cc := kv.K
		t.AddRow(cc, first[cc], last[cc],
			analysis.FormatGrowth(analysis.GrowthPercent(float64(first[cc]), float64(last[cc]))))
	}
	return t.Render(), nil
}

func runFig3(s *Study) (string, error) {
	scans, err := s.ScanResults()
	if err != nil {
		return "", err
	}
	fig := &analysis.Figure{
		Title:  "Figure 3: Open DoT resolvers identified by each scan",
		XLabel: "scan date", YLabel: "resolvers",
	}
	// Total plus the five largest providers of the last scan.
	lastCounts := analysis.Counter{}
	for p, n := range scans[len(scans)-1].ProviderCounts() {
		lastCounts.Add(p, n)
	}
	var top []string
	for _, kv := range lastCounts.TopN(5) {
		top = append(top, kv.K)
	}
	for _, scan := range scans {
		fig.AddPoint("total", scan.Label, float64(len(scan.Resolvers)))
		counts := scan.ProviderCounts()
		for _, p := range top {
			fig.AddPoint(p, scan.Label, float64(counts[p]))
		}
	}
	return fig.Render(), nil
}

func runFig4(s *Study) (string, error) {
	scans, err := s.ScanResults()
	if err != nil {
		return "", err
	}
	last := scans[len(scans)-1]
	counts := last.ProviderCounts()
	providers := len(counts)
	single := 0
	for _, n := range counts {
		if n == 1 {
			single++
		}
	}
	invalid := last.InvalidCertProviders()
	var invalidResolvers int
	kindCount := analysis.Counter{}
	for _, r := range last.Resolvers {
		if r.CertStatus != certs.StatusValid {
			invalidResolvers++
			kindCount.Inc(r.CertStatus.String())
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Providers of open DoT resolvers (last scan, %s)\n", last.Label)
	fmt.Fprintf(&b, "providers: %d\n", providers)
	fmt.Fprintf(&b, "single-address providers: %d (%.0f%%)\n", single, 100*float64(single)/float64(providers))
	fmt.Fprintf(&b, "providers with invalid certificates: %d (%.0f%%)\n", len(invalid), 100*float64(len(invalid))/float64(providers))
	fmt.Fprintf(&b, "resolvers with invalid certificates: %d of %d\n", invalidResolvers, len(last.Resolvers))
	for _, kv := range kindCount.TopN(10) {
		fmt.Fprintf(&b, "  %s: %d\n", kv.K, kv.V)
	}
	// CDF of addresses per provider.
	var sizes []float64
	for _, n := range counts {
		sizes = append(sizes, float64(n))
	}
	fmt.Fprintf(&b, "addresses-per-provider CDF:\n")
	for _, p := range analysis.CDF(sizes) {
		fmt.Fprintf(&b, "  <=%3.0f addrs: %.2f\n", p.X, p.F)
	}
	return b.String(), nil
}

func runDoHDiscovery(s *Study) (string, error) {
	found := s.DoHDiscovery()
	t := &analysis.Table{
		Title:   "DoH resolvers discovered from the URL corpus (§3.2)",
		Columns: []string{"Template", "Address", "On public list"},
	}
	beyond := 0
	for _, r := range found {
		onList := "yes"
		if !r.InKnownList {
			onList = "no (new)"
			beyond++
		}
		t.AddRow(r.Template.String(), r.Addr, onList)
	}
	out := t.Render()
	out += fmt.Sprintf("total: %d public DoH resolvers (%d beyond the curated list)\n", len(found), beyond)
	return out, nil
}

func runTable3(s *Study) (string, error) {
	t := &analysis.Table{
		Title:   "Table 3: Evaluation of client-side dataset",
		Columns: []string{"Platform", "# Endpoints", "# Countries", "# ASes"},
	}
	gNodes := s.Global.Nodes()
	cNodes := s.Censored.Nodes()
	gc, ga := map[string]bool{}, map[int]bool{}
	for _, n := range gNodes {
		gc[n.Country] = true
		ga[n.ASN] = true
	}
	cc, ca := map[string]bool{}, map[int]bool{}
	for _, n := range cNodes {
		cc[n.Country] = true
		ca[n.ASN] = true
	}
	t.AddRow("proxyrack (global)", len(gNodes), len(gc), len(ga))
	t.AddRow("zhima (censored)", len(cNodes), len(cc), len(ca))
	return t.Render(), nil
}

func runTable4(s *Study) (string, error) {
	data := s.Reachability()
	t := &analysis.Table{
		Title:   "Table 4: Reachability test results of public resolvers",
		Columns: []string{"Platform", "Resolver", "Proto", "Correct", "Incorrect", "Failed"},
	}
	resolverOrder := []string{"cloudflare", "google", "quad9", "self-built"}
	protoOrder := []vantage.Proto{vantage.ProtoDNS, vantage.ProtoDoT, vantage.ProtoDoH, vantage.ProtoDoQ}
	addRows := func(platform string, stats *vantage.CampaignStats) {
		tallies := stats.ByResolverProto()
		for _, resolver := range resolverOrder {
			byProto, ok := tallies[resolver]
			if !ok {
				continue
			}
			for _, proto := range protoOrder {
				tally, ok := byProto[proto]
				if !ok {
					t.AddRow(platform, resolver, string(proto), "n/a", "n/a", "n/a")
					continue
				}
				c, i, f := tally.Rates()
				t.AddRow(platform, resolver, string(proto),
					fmt.Sprintf("%.2f%%", c*100),
					fmt.Sprintf("%.2f%%", i*100),
					fmt.Sprintf("%.2f%%", f*100))
			}
		}
	}
	addRows("proxyrack", data.Global)
	addRows("zhima", data.Censored)
	return t.Render(), nil
}

func runTable5(s *Study) (string, error) {
	data := s.Reachability()
	refs := data.Global.FailedRefs(vantage.FailKey{Resolver: "cloudflare", Proto: vantage.ProtoDoT})
	failed := make([]string, len(refs))
	for i, ref := range refs {
		failed[i] = ref.ID
	}
	nodesByID := map[string]proxy.ExitNode{}
	for _, n := range s.Global.Nodes() {
		nodesByID[n.ID] = n
	}
	// Probes fan out per failed node; the tallies are folded in
	// failed-list order so counts and example ASes match a serial pass.
	type table5Probe struct {
		probe vantage.PortProbe
		node  proxy.ExitNode
		ok    bool
	}
	probes, _ := runner.MapCtx(obs.WithPool(s.obsCtx(), "table5-probes"), s.Workers, len(failed),
		func(ctx context.Context, i int) table5Probe {
			node, ok := nodesByID[failed[i]]
			if !ok {
				return table5Probe{}
			}
			_, sp := obs.Start(ctx, "probe:"+failed[i], obs.Key(i))
			p := s.GlobalPlatform.ProbePorts(node, cloudflareDNS, vantage.Table5Ports)
			sp.SetInt("open_ports", int64(len(p.Open)))
			return table5Probe{probe: p, node: node, ok: true}
		})
	portCount := analysis.Counter{}
	deviceCount := analysis.Counter{}
	none := 0
	var exampleAS []string
	for _, p := range probes {
		if !p.ok {
			continue
		}
		if !p.probe.HasAnyOpen() {
			none++
		}
		for _, port := range p.probe.Open {
			portCount.Inc(fmt.Sprintf("%d", port))
		}
		deviceCount.Inc(vantage.IdentifyDevice(p.probe))
		if len(exampleAS) < 5 {
			exampleAS = append(exampleAS, fmt.Sprintf("AS%d %s", p.node.ASN, p.node.ASName))
		}
	}
	t := &analysis.Table{
		Title:   "Table 5: Ports open on 1.1.1.1, probed from clients failing Cloudflare DoT",
		Columns: []string{"Port", "# Clients"},
	}
	t.AddRow("none", none)
	var ports []string
	for p := range portCount {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return atoiSafe(ports[i]) < atoiSafe(ports[j]) })
	for _, p := range ports {
		t.AddRow(p, portCount[p])
	}
	out := t.Render()
	out += "device identification of conflicting hosts:\n"
	for _, kv := range deviceCount.TopN(10) {
		out += fmt.Sprintf("  %-45s %d\n", kv.K, kv.V)
	}
	if len(exampleAS) > 0 {
		out += "example affected ASes: " + strings.Join(exampleAS, "; ") + "\n"
	}
	return out, nil
}

func runTable6(s *Study) (string, error) {
	data := s.Reachability()
	intercepted := append(data.Global.Intercepted(), data.Censored.Intercepted()...)
	t := &analysis.Table{
		Title:   "Table 6: Example clients affected by TLS interception",
		Columns: []string{"Node", "Country", "AS", "Issuer CN (untrusted CA)", "Resolver", "Proto"},
	}
	for _, r := range intercepted {
		t.AddRow(r.NodeID, r.Country, fmt.Sprintf("AS%d %s", r.ASN, r.ASName), r.IssuerCN, r.Resolver, string(r.Proto))
	}
	out := t.Render()
	out += fmt.Sprintf("intercepted sessions recorded by middleboxes: %d\n", s.interceptorSessions())
	return out, nil
}

func (s *Study) interceptorSessions() int {
	n := 0
	for _, box := range s.Interceptors {
		n += len(box.Sessions())
	}
	return n
}

func runTable7(s *Study) (string, error) {
	t := &analysis.Table{
		Title:   "Table 7: Performance test results w/o connection reuse (medians, ms)",
		Columns: []string{"Vantage", "DNS/TCP", "DoT (overhead)", "DoH (overhead)", "DoQ (overhead)"},
	}
	// The four controlled vantages measure concurrently; each derives its
	// probe names from its own label, so measurements are independent and
	// the table rows stay in ControlledVantages order.
	type table7Row struct {
		sample vantage.NoReuseSample
		err    error
	}
	// Under fault injection the transports carry the retry budget; failed
	// queries are skipped inside MeasureNoReuse, so a lossy path thins the
	// sample instead of sinking the vantage.
	opts := s.transportOptions()
	rows, _ := runner.MapCtx(obs.WithPool(s.obsCtx(), "noreuse"), s.Workers, len(ControlledVantages),
		func(ctx context.Context, i int) table7Row {
			v := ControlledVantages[i]
			ctx, _ = obs.Start(ctx, "vantage:"+v.Label, obs.Key(i))
			sample, err := vantage.MeasureNoReuseContext(ctx, s.World, v.Label, v.Addr, s.Targets[0], ProbeZone, s.Roots, s.PerfQueriesFresh, opts...)
			return table7Row{sample: sample, err: err}
		})
	for i, row := range rows {
		if row.err != nil {
			return "", fmt.Errorf("vantage %s: %w", ControlledVantages[i].Label, row.err)
		}
		// DoQ's no-reuse column is softer than DoT/DoH's: only the first
		// dial pays the 1-RTT handshake, later dials resume 0-RTT from the
		// shared session cache — the overhead reflects QUIC resumption.
		t.AddRow(ControlledVantages[i].Label,
			fmt.Sprintf("%.1f", row.sample.DNSMedianMS),
			fmt.Sprintf("%.1f (+%.1f)", row.sample.DoTMedianMS, row.sample.DoTOverheadMS()),
			fmt.Sprintf("%.1f (+%.1f)", row.sample.DoHMedianMS, row.sample.DoHOverheadMS()),
			fmt.Sprintf("%.1f (%+.1f)", row.sample.DoQMedianMS, row.sample.DoQOverheadMS()))
	}
	return t.Render(), nil
}

func runFig9(s *Study) (string, error) {
	samples := s.PerfSamples()
	agg := vantage.AggregateByCountry(samples)
	t := &analysis.Table{
		Title:   "Figure 9: Query performance per country (overheads vs clear-text DNS, ms)",
		Columns: []string{"CC", "Clients", "DoT avg", "DoT median", "DoH avg", "DoH median", "DoQ avg", "DoQ median", "DoT mux", "DoH mux", "DoQ mux"},
	}
	for _, c := range agg {
		t.AddRow(c.Country, c.Clients,
			fmt.Sprintf("%+.1f", c.DoTAvgMS), fmt.Sprintf("%+.1f", c.DoTMedianMS),
			fmt.Sprintf("%+.1f", c.DoHAvgMS), fmt.Sprintf("%+.1f", c.DoHMedianMS),
			fmt.Sprintf("%+.1f", c.DoQAvgMS), fmt.Sprintf("%+.1f", c.DoQMedianMS),
			fmt.Sprintf("%+.1f", c.DoTMuxMedianMS), fmt.Sprintf("%+.1f", c.DoHMuxMedianMS),
			fmt.Sprintf("%+.1f", c.DoQMuxMedianMS))
	}
	dotAvg, dotMed, dohAvg, dohMed := vantage.GlobalOverheads(samples)
	out := t.Render()
	out += fmt.Sprintf("global overhead — DoT: %+.1f/%+.1f ms (avg/med), DoH: %+.1f/%+.1f ms (avg/med), clients: %d\n",
		dotAvg, dotMed, dohAvg, dohMed, len(samples))
	doqAvg, doqMed, doqMux := vantage.GlobalDoQOverheads(samples)
	out += fmt.Sprintf("global overhead — DoQ: %+.1f/%+.1f ms (avg/med), mux median: %+.1f ms\n",
		doqAvg, doqMed, doqMux)
	mDotAvg, mDotMed, mDohAvg, mDohMed := vantage.GlobalMuxOverheads(samples)
	out += fmt.Sprintf("multiplexed (inflight=%d) — DoT: %+.1f/%+.1f ms (avg/med), DoH: %+.1f/%+.1f ms (avg/med)\n",
		s.MuxInFlight, mDotAvg, mDotMed, mDohAvg, mDohMed)
	return out, nil
}

func runFig10(s *Study) (string, error) {
	samples := s.PerfSamples()
	var b strings.Builder
	b.WriteString("Figure 10: Per-client query time (ms): DNS vs DoT and DNS vs DoH\n")
	b.WriteString("node            cc  dns      dot      doh\n")
	for _, sm := range samples {
		fmt.Fprintf(&b, "%-15s %-3s %-8.1f %-8.1f %-8.1f\n",
			sm.NodeID, sm.Country, sm.DNSMedianMS, sm.DoTMedianMS, sm.DoHMedianMS)
	}
	near := 0
	for _, sm := range samples {
		if absF(sm.DoTOverheadMS()) <= 10 && absF(sm.DoHOverheadMS()) <= 10 {
			near++
		}
	}
	fmt.Fprintf(&b, "clients within ±10ms of the y=x line for both protocols: %d of %d (%.0f%%)\n",
		near, len(samples), 100*float64(near)/float64(max(1, len(samples))))
	return b.String(), nil
}

func runFig11(s *Study) (string, error) {
	data := s.GenerateTraffic()
	counts := netflow.MonthlyCounts(data.Flows)
	fig := &analysis.Figure{
		Title:  "Figure 11: Monthly DoT flows to Cloudflare and Quad9 (sampled NetFlow)",
		XLabel: "month", YLabel: "flows",
	}
	for _, provider := range []string{"cloudflare", "quad9"} {
		months := make([]string, 0, len(counts[provider]))
		for m := range counts[provider] {
			months = append(months, m)
		}
		sort.Strings(months)
		for _, m := range months {
			fig.AddPoint(provider, m, float64(counts[provider][m]))
		}
	}
	out := fig.Render()
	jul := counts["cloudflare"]["2018-07"]
	dec := counts["cloudflare"]["2018-12"]
	if jul > 0 {
		out += fmt.Sprintf("cloudflare Jul→Dec 2018 growth: %s (paper: +56%%)\n",
			analysis.FormatGrowth(analysis.GrowthPercent(float64(jul), float64(dec))))
	}
	return out, nil
}

func runFig12(s *Study) (string, error) {
	data := s.GenerateTraffic()
	stats := netflow.NetblockStats(data.Flows, "cloudflare")
	var b strings.Builder
	b.WriteString("Figure 12: Cloudflare DoT traffic per /24 network\n")
	fmt.Fprintf(&b, "netblocks: %d\n", len(stats))
	fmt.Fprintf(&b, "top-5 netblock share of flows: %.0f%% (paper: 44%%)\n", 100*netflow.TopShare(stats, 5))
	fmt.Fprintf(&b, "top-20 netblock share of flows: %.0f%% (paper: 60%%)\n", 100*netflow.TopShare(stats, 20))
	fmt.Fprintf(&b, "netblocks active < 1 week: %.0f%% (paper: 96%%)\n", 100*netflow.TemporaryFraction(stats, 7))
	b.WriteString("top netblocks (flows, active days):\n")
	for i, st := range stats {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&b, "  %-15s %6d flows, %3d days\n", st.Client24, st.Flows, st.ActiveDays)
	}
	return b.String(), nil
}

func runFig13(s *Study) (string, error) {
	data := s.GenerateTraffic()
	fig := &analysis.Figure{
		Title:  "Figure 13: Monthly query volume of popular DoH domains (passive DNS)",
		XLabel: "month", YLabel: "queries",
	}
	popular := []string{"dns.google", "mozilla.cloudflare-dns.com", "doh.cleanbrowsing.org", "doh.crypto.sx"}
	for _, domain := range popular {
		for _, p := range data.PDNS.MonthlyVolume(domain) {
			fig.AddPoint(domain, p.Day, float64(p.Count))
		}
	}
	out := fig.Render()
	// §5.3's threshold observation.
	over10k := 0
	for _, agg := range data.PDNS.Domains() {
		if agg.Count > 10000 {
			over10k++
		}
	}
	out += fmt.Sprintf("domains with >10K total queries: %d (paper: 4 of 17)\n", over10k)
	cb := data.PDNS.MonthlyVolume("doh.cleanbrowsing.org")
	if len(cb) >= 2 {
		first, last := cb[0], cb[len(cb)-1]
		out += fmt.Sprintf("cleanbrowsing %s→%s growth: %.1fx (paper: ~10x)\n",
			first.Day, last.Day, float64(last.Count)/float64(max(1, first.Count)))
	}
	return out, nil
}

func runScanScreen(s *Study) (string, error) {
	data := s.GenerateTraffic()
	t := &analysis.Table{
		Title:   "Scanner screening of port-853 sources (§5.2)",
		Columns: []string{"Source", "Scanner", "Reason", "Fanout", "SYN-only"},
	}
	flagged := 0
	for _, v := range data.Verdicts {
		if v.Scanner {
			flagged++
			t.AddRow(v.Source, "yes", v.Reason, v.DistinctDsts, fmt.Sprintf("%.0f%%", v.SYNOnlyFraction*100))
		}
	}
	out := t.Render()
	out += fmt.Sprintf("sources analysed: %d, flagged as scanners: %d (excluded before Figs. 11-12)\n",
		len(data.Verdicts), flagged)
	return out, nil
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 1 << 30
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
