package runner

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/obs"
)

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(1, 100, fn)
	for _, workers := range []int{2, 4, 16, 200} {
		got := Map(workers, 100, fn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapRunsEveryIndexExactlyOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	Map(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	// workers <= 0 must still complete the workload (serial fallback).
	got := Map(0, 3, func(i int) int { return i + 1 })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("workers=0: got %v", got)
	}
	got = Map(-5, 2, func(i int) int { return i })
	if len(got) != 2 {
		t.Fatalf("workers=-5: got %v", got)
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for r := 0; r < 20; r++ {
		Map(16, 64, func(i int) int { return i })
	}
	// Map joins all workers before returning; allow a little slack for
	// runtime-internal goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
}

func TestMapCtxCancellationStopsNewWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	const n = 10000
	out, err := MapCtx(ctx, 4, n, func(ctx context.Context, i int) int {
		if started.Add(1) == 8 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != n {
		t.Fatalf("partial result slice has len %d, want %d", len(out), n)
	}
	if got := started.Load(); got == n {
		t.Fatalf("cancellation did not stop work issuance (all %d tasks ran)", n)
	}
	// Every index that ran holds fn(i); the rest hold the zero value.
	for i, v := range out {
		if v != 0 && v != i+1 {
			t.Fatalf("out[%d] = %d, want 0 or %d", i, v, i+1)
		}
	}
}

func TestMapCtxCompletesWithoutCancellation(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, 50, func(ctx context.Context, i int) int {
		return i * 3
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := MapCtx(ctx, 4, 100, func(ctx context.Context, i int) int {
		ran.Add(1)
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 4 {
		t.Fatalf("pre-cancelled context still ran %d tasks", got)
	}
}

// TestMapCtxShardRegistriesFoldDeterministically drives instrumented pools
// at several worker counts and asserts the deterministic snapshot — task
// totals, busy time, and metrics the tasks themselves record through
// obs.Metrics(ctx) — is byte-identical, proving the shard registries fold
// without losing or double-counting anything.
func TestMapCtxShardRegistriesFoldDeterministically(t *testing.T) {
	run := func(workers int) (string, *obs.Recorder) {
		rec := obs.NewRecorder("test")
		ctx := obs.WithRecorder(context.Background(), rec)
		ctx = obs.WithPool(ctx, "fold")
		_, err := MapCtx(ctx, workers, 100, func(ctx context.Context, i int) int {
			m := obs.Metrics(ctx)
			m.Counter("task_outcomes_total", "outcome", []string{"a", "b", "c"}[i%3]).Add(1)
			m.Histogram("task_latency", nil).Observe(time.Duration(i) * time.Millisecond)
			m.Sketch("task_latency_sketch", obs.SketchOpts{}).Observe(time.Duration(i) * time.Millisecond)
			obs.Charge(ctx, time.Duration(i)*time.Microsecond)
			return i
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rec.Metrics().Snapshot(false), rec
	}

	want, rec1 := run(1)
	if want == "" {
		t.Fatal("instrumented pool produced an empty snapshot")
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, rec := run(workers)
		if got != want {
			t.Errorf("workers=%d snapshot diverged\ngot:\n%s\nwant:\n%s", workers, got, want)
		}
		progress := rec.Progress()
		if len(progress) != 1 || progress[0] != (obs.PhaseStatus{Name: "fold", Done: 100, Total: 100}) {
			t.Errorf("workers=%d progress = %+v", workers, progress)
		}
	}
	// Worker shards must not leak into the folded registry as extra
	// deterministic families: the serial run defines the full set.
	if got := rec1.Metrics().Snapshot(false); got != want {
		t.Errorf("serial snapshot unstable: %q", got)
	}
}
