package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Errors returned by the message codec.
var (
	ErrHeaderTooShort = errors.New("dnswire: message shorter than 12-byte header")
	ErrTrailingBytes  = errors.New("dnswire: trailing bytes after message")
)

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Record is a resource record: an owner name plus typed RDATA.
type Record struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, derived from the RDATA.
func (r Record) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.RType()
}

// String renders the record in zone-file style.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a full DNS message.
type Message struct {
	Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record
}

// NewQuery builds a recursion-desired query for (name, qtype) with the given
// transaction ID.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header: Header{ID: id, RecursionDesired: true},
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  qtype,
			Class: ClassINET,
		}},
	}
}

// Reply builds a response skeleton for m: same ID and question, QR set,
// recursion bits copied.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:                 m.ID,
			Response:           true,
			Opcode:             m.Opcode,
			RecursionDesired:   m.RecursionDesired,
			RecursionAvailable: true,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Question1 returns the first question, or a zero Question if none.
func (m *Message) Question1() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// AddAnswer appends an answer record.
func (m *Message) AddAnswer(name string, ttl uint32, data RData) *Message {
	m.Answers = append(m.Answers, Record{
		Name: CanonicalName(name), Class: ClassINET, TTL: ttl, Data: data,
	})
	return m
}

// AddAuthority appends an authority-section record.
func (m *Message) AddAuthority(name string, ttl uint32, data RData) *Message {
	m.Authorities = append(m.Authorities, Record{
		Name: CanonicalName(name), Class: ClassINET, TTL: ttl, Data: data,
	})
	return m
}

// packState carries message-scoped pack state: the RFC 1035 §4.1.4
// compression offsets and the buffer index of the message's first byte, so
// a message can be packed after framing headroom while its pointers stay
// message-relative. States are pooled — steady-state packing reuses one map
// instead of allocating a fresh one per message.
type packState struct {
	base int
	off  map[string]int
}

var packStatePool = sync.Pool{
	New: func() any { return &packState{off: make(map[string]int, 8)} },
}

func newPackState(base int) *packState {
	ps := packStatePool.Get().(*packState)
	ps.base = base
	return ps
}

func (ps *packState) release() {
	for k := range ps.off {
		delete(ps.off, k)
	}
	packStatePool.Put(ps)
}

// Pack serializes the message to wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack appends the wire form of m to buf and returns the extended
// slice. The message may start at any offset: compression pointers are
// encoded relative to len(buf) at the time of the call, so callers can
// reserve framing headroom first (see AppendPackTCP) without the historical
// pack-then-copy.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	ps := newPackState(len(buf))
	defer ps.release()
	ext := uint16(m.Rcode) >> 4
	if ext != 0 {
		if _, ok := m.OPT(); !ok {
			return nil, fmt.Errorf("dnswire: rcode %s needs an EDNS(0) OPT record", m.Rcode)
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	buf = binary.BigEndian.AppendUint16(buf, m.flags())
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authorities)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additionals)))

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, ps); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if buf, err = appendRecord(buf, rr, ps, ext); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, rr Record, ps *packState, extRcode uint16) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: record %q has nil data", rr.Name)
	}
	var err error
	name := rr.Name
	class := rr.Class
	ttl := rr.TTL
	if opt, ok := rr.Data.(OPT); ok {
		name = "."
		if opt.UDPSize != 0 {
			class = Class(opt.UDPSize)
		}
		ttl = uint32(opt.ExtendedRcode|uint8(extRcode))<<24 | uint32(opt.Version)<<16
		if opt.DO {
			ttl |= 1 << 15
		}
	}
	if buf, err = appendName(buf, name, ps); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Data.RType()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(class))
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	// Reserve the RDLENGTH slot, append RDATA, then back-patch.
	lenOff := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.appendTo(buf, ps); err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnswire: rdata of %q exceeds 65535 bytes", rr.Name)
	}
	binary.BigEndian.PutUint16(buf[lenOff:], uint16(rdlen))
	return buf, nil
}

// Unpack parses a wire-format message. Trailing bytes are an error.
func Unpack(msg []byte) (*Message, error) {
	m := &Message{}
	if err := UnpackInto(m, msg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset clears m for reuse, keeping the capacity of its section slices.
func (m *Message) Reset() {
	m.Header = Header{}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authorities = m.Authorities[:0]
	m.Additionals = m.Additionals[:0]
}

// UnpackInto parses msg into m, resetting m first and reusing its section
// slices — steady-state server loops parse every request into one
// long-lived Message without reallocating the sections. Every field of the
// result is copied out of msg, so callers may overwrite msg (e.g. a pooled
// read buffer) as soon as UnpackInto returns. On error m is left in an
// unspecified partially-parsed state.
func UnpackInto(m *Message, msg []byte) error {
	m.Reset()
	if len(msg) < 12 {
		return ErrHeaderTooShort
	}
	m.ID = binary.BigEndian.Uint16(msg)
	m.setFlags(binary.BigEndian.Uint16(msg[2:]))
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = readName(msg, off); err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return ErrBufferTooSmall
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		count int
		dst   *[]Record
		name  string
	}{
		{an, &m.Answers, "answer"},
		{ns, &m.Authorities, "authority"},
		{ar, &m.Additionals, "additional"},
	}
	for _, sec := range sections {
		for i := 0; i < sec.count; i++ {
			var rr Record
			if rr, off, err = unpackRecord(msg, off); err != nil {
				return fmt.Errorf("%s %d: %w", sec.name, i, err)
			}
			if opt, ok := rr.Data.(OPT); ok {
				// Merge the extended rcode bits into the header rcode.
				m.Rcode |= Rcode(opt.ExtendedRcode) << 4
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	if off != len(msg) {
		return ErrTrailingBytes
	}
	return nil
}

func unpackRecord(msg []byte, off int) (Record, int, error) {
	var rr Record
	name, off, err := readName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrBufferTooSmall
	}
	rtype := Type(binary.BigEndian.Uint16(msg[off:]))
	class := Class(binary.BigEndian.Uint16(msg[off+2:]))
	ttl := binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrRDataTooShort
	}
	data, err := unpackRData(msg, off, rdlen, rtype)
	if err != nil {
		return rr, 0, err
	}
	rr = Record{Name: name, Class: class, TTL: ttl, Data: data}
	if opt, ok := data.(OPT); ok {
		opt.UDPSize = uint16(class)
		opt.ExtendedRcode = uint8(ttl >> 24)
		opt.Version = uint8(ttl >> 16)
		opt.DO = ttl&(1<<15) != 0
		rr.Data = opt
		rr.Class = ClassINET
		rr.TTL = 0
	}
	return rr, off + rdlen, nil
}

// String renders the message in dig-like presentation form.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; opcode: %s, status: %s, id: %d\n", m.Opcode, m.Rcode, m.ID)
	fmt.Fprintf(&b, ";; flags:%s; QUERY: %d, ANSWER: %d, AUTHORITY: %d, ADDITIONAL: %d\n",
		m.flagString(), len(m.Questions), len(m.Answers), len(m.Authorities), len(m.Additionals))
	if len(m.Questions) > 0 {
		b.WriteString(";; QUESTION SECTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&b, ";%s\n", q)
		}
	}
	writeSection := func(title string, rrs []Record) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s SECTION:\n", title)
		for _, rr := range rrs {
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	writeSection("ANSWER", m.Answers)
	writeSection("AUTHORITY", m.Authorities)
	writeSection("ADDITIONAL", m.Additionals)
	return b.String()
}

func (m *Message) flagString() string {
	var b strings.Builder
	add := func(on bool, s string) {
		if on {
			b.WriteByte(' ')
			b.WriteString(s)
		}
	}
	add(m.Response, "qr")
	add(m.Authoritative, "aa")
	add(m.Truncated, "tc")
	add(m.RecursionDesired, "rd")
	add(m.RecursionAvailable, "ra")
	add(m.AuthenticatedData, "ad")
	add(m.CheckingDisabled, "cd")
	return b.String()
}
