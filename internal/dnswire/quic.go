package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the deterministic QUIC subset DNS-over-QUIC (RFC 9250) rides
// on: variable-length integers (RFC 9000 §16), long and short packet
// headers (§17), and the four frame types a one-connection-many-streams
// exchange over netsim's datagram path needs — CRYPTO, STREAM, ACK and
// CONNECTION_CLOSE (§19). There is no packet protection and no packet
// number: netsim already simulates TLS trust decisions with real
// certificates over fake crypto, and every flight is one self-contained
// datagram exchange, so loss detection and encryption layers would add
// state without adding measurement fidelity. The codec is append-style and
// allocation-free on the steady-state path, like the TCP framing above it.

// MaxQUICVarint is the largest value a QUIC variable-length integer can
// carry (RFC 9000 §16: 62 usable bits).
const MaxQUICVarint = (1 << 62) - 1

// Varint decode errors.
var errQUICVarintTruncated = errors.New("dnswire: truncated QUIC varint")

// AppendQUICVarint appends v in the shortest QUIC variable-length encoding
// (RFC 9000 §16) and returns the extended slice. Values above MaxQUICVarint
// cannot be encoded; callers must range-check, as the length framing they
// guard already bounds them in this codebase.
//
//doelint:hotpath
func AppendQUICVarint(buf []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(buf, byte(v))
	case v < 1<<14:
		return append(buf, 0x40|byte(v>>8), byte(v))
	case v < 1<<30:
		return append(buf, 0x80|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(buf, 0xC0|byte(v>>56), byte(v>>48), byte(v>>40),
			byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// ReadQUICVarint decodes one QUIC variable-length integer from the front of
// b, returning the value and the number of bytes consumed. Non-minimal
// encodings are accepted (RFC 9000 permits them on the wire); re-encoding
// with AppendQUICVarint canonicalizes.
//
//doelint:hotpath
func ReadQUICVarint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, errQUICVarintTruncated
	}
	n := 1 << (b[0] >> 6)
	if len(b) < n {
		return 0, 0, errQUICVarintTruncated
	}
	v := uint64(b[0] & 0x3F)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, n, nil
}

// QUICVersion is the sole version this subset speaks (QUIC v1).
const QUICVersion uint32 = 0x00000001

// QUICPacketType distinguishes the packet shapes the DoQ exchange uses.
type QUICPacketType uint8

// Packet types. Initial and Handshake ride long headers; ZeroRTT is the
// long-header resumption flight carrying early STREAM data; OneRTT is the
// short-header steady state.
const (
	QUICInitial QUICPacketType = iota
	QUICZeroRTT
	QUICHandshake
	QUICRetry
	QUICOneRTT
)

// String names the packet type for diagnostics.
func (t QUICPacketType) String() string {
	switch t {
	case QUICInitial:
		return "initial"
	case QUICZeroRTT:
		return "0rtt"
	case QUICHandshake:
		return "handshake"
	case QUICRetry:
		return "retry"
	case QUICOneRTT:
		return "1rtt"
	default:
		return fmt.Sprintf("quic-type(%d)", int(t))
	}
}

// QUICCIDLen is the fixed connection-ID length of this subset. Real QUIC
// short headers omit the DCID length and rely on the receiver knowing its
// own CID size; fixing it at 8 keeps short-header parsing self-contained.
const QUICCIDLen = 8

const (
	quicLongForm = 0x80
	quicFixedBit = 0x40
)

// Header parse/encode errors.
var (
	errQUICHeaderTruncated = errors.New("dnswire: truncated QUIC header")
	errQUICFixedBit        = errors.New("dnswire: QUIC fixed bit clear")
	errQUICCIDLen          = errors.New("dnswire: QUIC connection ID length")
)

// QUICHeader is a parsed packet header. Long headers (Initial, ZeroRTT,
// Handshake, Retry) carry Version, DCID and SCID; the short OneRTT header
// carries only the DCID, which this subset fixes at QUICCIDLen bytes.
// Parsed CIDs alias the input buffer.
type QUICHeader struct {
	Type QUICPacketType
	// Version is the wire version (long headers only; QUICVersion here).
	Version uint32
	// DCID is the destination connection ID (≤ 20 bytes in long headers,
	// exactly QUICCIDLen in short ones).
	DCID []byte
	// SCID is the source connection ID (long headers only).
	SCID []byte
}

// AppendQUICHeader appends h in wire form and returns the extended slice.
//
//doelint:hotpath
func AppendQUICHeader(buf []byte, h QUICHeader) ([]byte, error) {
	if h.Type == QUICOneRTT {
		if len(h.DCID) != QUICCIDLen {
			return nil, errQUICCIDLen
		}
		buf = append(buf, quicFixedBit)
		return append(buf, h.DCID...), nil
	}
	if len(h.DCID) > 20 || len(h.SCID) > 20 {
		return nil, errQUICCIDLen
	}
	buf = append(buf, quicLongForm|quicFixedBit|byte(h.Type)<<4)
	buf = binary.BigEndian.AppendUint32(buf, h.Version)
	buf = append(buf, byte(len(h.DCID)))
	buf = append(buf, h.DCID...)
	buf = append(buf, byte(len(h.SCID)))
	return append(buf, h.SCID...), nil
}

// ParseQUICHeader decodes one packet header from the front of b, returning
// the header and the number of bytes consumed. The returned CIDs alias b.
//
//doelint:hotpath
func ParseQUICHeader(b []byte) (QUICHeader, int, error) {
	if len(b) == 0 {
		return QUICHeader{}, 0, errQUICHeaderTruncated
	}
	first := b[0]
	if first&quicFixedBit == 0 {
		return QUICHeader{}, 0, errQUICFixedBit
	}
	if first&quicLongForm == 0 {
		// Short header: flags byte + fixed-length DCID.
		if len(b) < 1+QUICCIDLen {
			return QUICHeader{}, 0, errQUICHeaderTruncated
		}
		return QUICHeader{Type: QUICOneRTT, DCID: b[1 : 1+QUICCIDLen]}, 1 + QUICCIDLen, nil
	}
	h := QUICHeader{Type: QUICPacketType(first >> 4 & 0x3)}
	n := 1
	if len(b) < n+4 {
		return QUICHeader{}, 0, errQUICHeaderTruncated
	}
	h.Version = binary.BigEndian.Uint32(b[n:])
	n += 4
	for _, cid := range []*[]byte{&h.DCID, &h.SCID} {
		if len(b) < n+1 {
			return QUICHeader{}, 0, errQUICHeaderTruncated
		}
		l := int(b[n])
		n++
		if l > 20 {
			return QUICHeader{}, 0, errQUICCIDLen
		}
		if len(b) < n+l {
			return QUICHeader{}, 0, errQUICHeaderTruncated
		}
		*cid = b[n : n+l]
		n += l
	}
	return h, n, nil
}

// QUICFrameType is the canonical frame type of a parsed frame. STREAM
// frames normalize the OFF/LEN/FIN bit variants (0x08–0x0F) to
// QUICFrameStream with the bits unpacked into the struct.
type QUICFrameType uint8

// Frame types (RFC 9000 §19).
const (
	QUICFramePadding      QUICFrameType = 0x00
	QUICFramePing         QUICFrameType = 0x01
	QUICFrameAck          QUICFrameType = 0x02
	QUICFrameCrypto       QUICFrameType = 0x06
	QUICFrameStream       QUICFrameType = 0x08
	QUICFrameConnClose    QUICFrameType = 0x1c // transport-level close
	QUICFrameConnCloseApp QUICFrameType = 0x1d // application-level close (DoQ codes)
)

const (
	quicStreamOffBit = 0x04
	quicStreamLenBit = 0x02
	quicStreamFinBit = 0x01
)

// Frame parse/encode errors.
var (
	errQUICFrameTruncated = errors.New("dnswire: truncated QUIC frame")
	errQUICFrameType      = errors.New("dnswire: unsupported QUIC frame type")
	errQUICFrameLength    = errors.New("dnswire: QUIC frame length exceeds packet")
)

// QUICFrame is one parsed frame; which fields are meaningful depends on
// Type. Data aliases the parse input.
type QUICFrame struct {
	Type QUICFrameType

	// STREAM fields. Offset is the stream offset (emitted only when
	// non-zero); Fin marks the final frame of the stream.
	StreamID uint64
	Offset   uint64
	Fin      bool
	// Data is the STREAM or CRYPTO payload, or the CONNECTION_CLOSE
	// reason phrase.
	Data []byte

	// ACK fields: the largest packet number acknowledged, the encoded ack
	// delay, and the size of the first (and only, in this subset) range.
	AckLargest    uint64
	AckDelay      uint64
	AckFirstRange uint64

	// CONNECTION_CLOSE fields: the error code, and — for the transport
	// variant — the type of the frame that provoked the close.
	ErrorCode uint64
	FrameType uint64
}

// AppendQUICFrame appends f in canonical wire form: STREAM frames always
// carry the LEN bit, carry the OFF bit only for non-zero offsets, and ACK
// frames encode a single range. Returns the extended slice.
//
//doelint:hotpath
func AppendQUICFrame(buf []byte, f QUICFrame) ([]byte, error) {
	switch f.Type {
	case QUICFramePadding, QUICFramePing:
		return append(buf, byte(f.Type)), nil
	case QUICFrameAck:
		buf = append(buf, byte(QUICFrameAck))
		buf = AppendQUICVarint(buf, f.AckLargest)
		buf = AppendQUICVarint(buf, f.AckDelay)
		buf = AppendQUICVarint(buf, 0) // range count
		return AppendQUICVarint(buf, f.AckFirstRange), nil
	case QUICFrameCrypto:
		buf = append(buf, byte(QUICFrameCrypto))
		buf = AppendQUICVarint(buf, f.Offset)
		buf = AppendQUICVarint(buf, uint64(len(f.Data)))
		return append(buf, f.Data...), nil
	case QUICFrameStream:
		t := byte(QUICFrameStream) | quicStreamLenBit
		if f.Offset > 0 {
			t |= quicStreamOffBit
		}
		if f.Fin {
			t |= quicStreamFinBit
		}
		buf = append(buf, t)
		buf = AppendQUICVarint(buf, f.StreamID)
		if f.Offset > 0 {
			buf = AppendQUICVarint(buf, f.Offset)
		}
		buf = AppendQUICVarint(buf, uint64(len(f.Data)))
		return append(buf, f.Data...), nil
	case QUICFrameConnClose:
		buf = append(buf, byte(QUICFrameConnClose))
		buf = AppendQUICVarint(buf, f.ErrorCode)
		buf = AppendQUICVarint(buf, f.FrameType)
		buf = AppendQUICVarint(buf, uint64(len(f.Data)))
		return append(buf, f.Data...), nil
	case QUICFrameConnCloseApp:
		buf = append(buf, byte(QUICFrameConnCloseApp))
		buf = AppendQUICVarint(buf, f.ErrorCode)
		buf = AppendQUICVarint(buf, uint64(len(f.Data)))
		return append(buf, f.Data...), nil
	default:
		return nil, errQUICFrameType
	}
}

// readQUICLength decodes a varint length field and bounds-checks it against
// the remaining payload, returning the length and bytes consumed.
func readQUICLength(b []byte) (int, int, error) {
	v, n, err := ReadQUICVarint(b)
	if err != nil {
		return 0, 0, err
	}
	if v > uint64(len(b)-n) {
		return 0, 0, errQUICFrameLength
	}
	return int(v), n, nil
}

// ParseQUICFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. Packet payloads are parsed by calling
// it in a loop; Data fields alias b. STREAM frames without the LEN bit
// extend to the end of b, per RFC 9000 §19.8.
//
//doelint:hotpath
func ParseQUICFrame(b []byte) (QUICFrame, int, error) {
	if len(b) == 0 {
		return QUICFrame{}, 0, errQUICFrameTruncated
	}
	t := b[0]
	n := 1
	switch {
	case t == byte(QUICFramePadding) || t == byte(QUICFramePing):
		return QUICFrame{Type: QUICFrameType(t)}, n, nil
	case t == byte(QUICFrameAck):
		f := QUICFrame{Type: QUICFrameAck}
		var count uint64
		for _, dst := range []*uint64{&f.AckLargest, &f.AckDelay, &count, &f.AckFirstRange} {
			v, vn, err := ReadQUICVarint(b[n:])
			if err != nil {
				return QUICFrame{}, 0, err
			}
			*dst = v
			n += vn
		}
		if count != 0 {
			// Multi-range ACKs never occur in this subset's exchanges.
			return QUICFrame{}, 0, errQUICFrameType
		}
		return f, n, nil
	case t == byte(QUICFrameCrypto):
		f := QUICFrame{Type: QUICFrameCrypto}
		v, vn, err := ReadQUICVarint(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		f.Offset = v
		n += vn
		l, ln, err := readQUICLength(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		n += ln
		f.Data = b[n : n+l]
		return f, n + l, nil
	case t >= byte(QUICFrameStream) && t < byte(QUICFrameStream)+8:
		f := QUICFrame{Type: QUICFrameStream, Fin: t&quicStreamFinBit != 0}
		v, vn, err := ReadQUICVarint(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		f.StreamID = v
		n += vn
		if t&quicStreamOffBit != 0 {
			v, vn, err = ReadQUICVarint(b[n:])
			if err != nil {
				return QUICFrame{}, 0, err
			}
			f.Offset = v
			n += vn
		}
		if t&quicStreamLenBit != 0 {
			l, ln, err := readQUICLength(b[n:])
			if err != nil {
				return QUICFrame{}, 0, err
			}
			n += ln
			f.Data = b[n : n+l]
			return f, n + l, nil
		}
		f.Data = b[n:]
		return f, len(b), nil
	case t == byte(QUICFrameConnClose):
		f := QUICFrame{Type: QUICFrameConnClose}
		for _, dst := range []*uint64{&f.ErrorCode, &f.FrameType} {
			v, vn, err := ReadQUICVarint(b[n:])
			if err != nil {
				return QUICFrame{}, 0, err
			}
			*dst = v
			n += vn
		}
		l, ln, err := readQUICLength(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		n += ln
		f.Data = b[n : n+l]
		return f, n + l, nil
	case t == byte(QUICFrameConnCloseApp):
		f := QUICFrame{Type: QUICFrameConnCloseApp}
		v, vn, err := ReadQUICVarint(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		f.ErrorCode = v
		n += vn
		l, ln, err := readQUICLength(b[n:])
		if err != nil {
			return QUICFrame{}, 0, err
		}
		n += ln
		f.Data = b[n : n+l]
		return f, n + l, nil
	default:
		return QUICFrame{}, 0, errQUICFrameType
	}
}
