package lint

import (
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFixtureGraph runs the loading half of the driver — go list, export
// data, type checking, directives — over a synthetic module and returns
// the finished call graph, for asserting on fact construction and
// propagation directly.
func buildFixtureGraph(t *testing.T, files map[string]string) *Graph {
	t.Helper()
	_, g := buildFixtureBuilder(t, files, nil)
	return g
}

// buildFixtureBuilder is buildFixtureGraph with the builder exposed and an
// optional skip set of import paths to leave out of the walk (for cache
// and summary tests that absorb those packages separately).
func buildFixtureBuilder(t *testing.T, files map[string]string, skip map[string]*PackageSummary) (*graphBuilder, *Graph) {
	t.Helper()
	dir := t.TempDir()
	mod := "module fixture.example/m\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := goList(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return os.Open(byPath[path].Export)
	})
	dirs := newDirectiveIndex()
	b := newGraphBuilder(fset, dirs.allow)
	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		if ps, ok := skip[lp.ImportPath]; ok {
			b.absorb(ps)
			continue
		}
		u := &unit{lp: lp}
		if err := loadUnit(fset, imp, u); err != nil {
			t.Fatal(err)
		}
		for _, f := range u.files {
			parseDirectives(fset, f, dirs)
		}
		b.addPackage(lp.ImportPath, u.files, u.info)
	}
	return b, b.finish()
}

// chainFixture is a three-package call chain whose leaf reads the wall
// clock: a.Top -> b.Mid -> c.Leaf -> time.Now.
var chainFixture = map[string]string{
	"c/c.go": `package c

import "time"

func Leaf() int64 { return time.Now().UnixNano() }
`,
	"b/b.go": `package b

import "fixture.example/m/c"

func Mid() int64 { return c.Leaf() }
`,
	"a/a.go": `package a

import "fixture.example/m/b"

func Top() int64 { return b.Mid() }
`,
}

func TestGraphPropagation(t *testing.T) {
	g := buildFixtureGraph(t, chainFixture)

	if g.DirectFacts("fixture.example/m/c.Leaf")&FactWallClock == 0 {
		t.Error("leaf is missing its direct wall-clock fact")
	}
	if g.DirectFacts("fixture.example/m/a.Top")&FactWallClock != 0 {
		t.Error("top reads no clock directly but carries a direct fact")
	}
	for _, id := range []string{"fixture.example/m/a.Top", "fixture.example/m/b.Mid"} {
		if g.TransFacts(id)&FactWallClock == 0 {
			t.Errorf("%s is missing the propagated wall-clock fact", id)
		}
	}

	steps, callPos, source := g.taintPath("fixture.example/m/a.Top", FactWallClock)
	if got := renderTaint(steps, source); !strings.HasPrefix(got, "a.Top -> b.Mid -> c.Leaf -> time.Now") {
		t.Errorf("taint path = %q, want a.Top -> b.Mid -> c.Leaf -> time.Now (...)", got)
	}
	if !callPos.IsValid() {
		t.Error("taint path lost the first call position")
	}
}

func TestGraphClockBoundary(t *testing.T) {
	files := map[string]string{
		"c/c.go": chainFixture["c/c.go"],
		"b/b.go": `package b

import "fixture.example/m/c"

// Mid converts the reading into virtual time.
//
//doelint:clockboundary -- fixture: converts wall readings to virtual time
func Mid() int64 { return c.Leaf() }
`,
		"a/a.go": chainFixture["a/a.go"],
	}
	g := buildFixtureGraph(t, files)

	if g.TransFacts("fixture.example/m/b.Mid")&FactWallClock == 0 {
		t.Error("the boundary's own transitive facts should keep the clock visible")
	}
	if g.TransFacts("fixture.example/m/a.Top")&FactWallClock != 0 {
		t.Error("clock fact leaked through a //doelint:clockboundary function")
	}
}

func TestGraphAllowMasksSource(t *testing.T) {
	files := map[string]string{
		"c/c.go": `package c

import "time"

func Leaf() int64 {
	return time.Now().UnixNano() //doelint:allow determinism -- fixture: justified read
}
`,
		"b/b.go": chainFixture["b/b.go"],
		"a/a.go": chainFixture["a/a.go"],
	}
	g := buildFixtureGraph(t, files)
	for _, id := range []string{"fixture.example/m/c.Leaf", "fixture.example/m/a.Top"} {
		if g.TransFacts(id)&FactWallClock != 0 {
			t.Errorf("%s tainted by a source under a justified allow", id)
		}
	}
}

func TestGraphMethodIDs(t *testing.T) {
	g := buildFixtureGraph(t, map[string]string{
		"c/c.go": `package c

import "time"

type T struct{}

func (T) Value() int64 { return time.Now().UnixNano() }

func (*T) Pointer() int64 { return time.Now().UnixNano() }
`,
	})
	for _, id := range []string{"fixture.example/m/c.T.Value", "fixture.example/m/c.T.Pointer"} {
		if g.DirectFacts(id)&FactWallClock == 0 {
			t.Errorf("method node %s missing its direct fact (symbolic ID mismatch?)", id)
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	b, g := buildFixtureBuilder(t, chainFixture, nil)
	_ = b
	ps := g.summarize("fixture.example/m/c", "hash-1")
	if ps.Hash != "hash-1" || ps.Schema != summarySchema {
		t.Fatalf("summary header = %+v", ps)
	}
	if len(ps.Funcs) == 0 {
		t.Fatal("summary captured no functions")
	}

	var buf strings.Builder
	if err := g.EncodeSummaries(&buf, []string{"fixture.example/m/c"}, map[string]string{"fixture.example/m/c": "hash-1"}); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSummaries(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Package != "fixture.example/m/c" {
		t.Fatalf("decoded = %+v", decoded)
	}

	// A graph built with package c absorbed from its summary instead of
	// walked from source must propagate identical facts.
	_, g2 := buildFixtureBuilder(t, chainFixture, map[string]*PackageSummary{
		"fixture.example/m/c": decoded[0],
	})
	for _, id := range []string{"fixture.example/m/a.Top", "fixture.example/m/b.Mid", "fixture.example/m/c.Leaf"} {
		if g.TransFacts(id) != g2.TransFacts(id) {
			t.Errorf("%s: facts differ between walked (%v) and absorbed (%v) graphs",
				id, g.TransFacts(id), g2.TransFacts(id))
		}
	}
	steps, _, source := g2.taintPath("fixture.example/m/a.Top", FactWallClock)
	if got := renderTaint(steps, source); !strings.HasPrefix(got, "a.Top -> b.Mid -> c.Leaf -> time.Now") {
		t.Errorf("taint path through absorbed summary = %q", got)
	}
}

func TestFactCacheValidation(t *testing.T) {
	g := buildFixtureGraph(t, chainFixture)
	cache := &factCache{dir: t.TempDir()}
	ps := g.summarize("fixture.example/m/c", "hash-1")
	cache.store(ps)

	if got := cache.load("fixture.example/m/c", "hash-1"); got == nil {
		t.Fatal("cache miss for the stored hash")
	} else if len(got.Funcs) != len(ps.Funcs) {
		t.Fatalf("cache returned %d funcs, stored %d", len(got.Funcs), len(ps.Funcs))
	}
	if got := cache.load("fixture.example/m/c", "hash-2"); got != nil {
		t.Error("cache hit despite a hash mismatch (stale summary served)")
	}
	if got := cache.load("fixture.example/m/other", "hash-1"); got != nil {
		t.Error("cache hit for a package never stored")
	}
}
