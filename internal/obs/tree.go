package obs

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTree renders a JSONL trace (as parsed by ReadTrace) as an
// indented span tree with virtual costs, attributes and events — the
// human view cmd/doetrace and the observability example print.
func RenderTree(recs []Record) string {
	var b strings.Builder
	depthOf := func(path string) int { return strings.Count(path, "/") }
	for _, rec := range recs {
		depth := depthOf(rec.Path)
		name := rec.Path
		if i := strings.LastIndexByte(rec.Path, '/'); i >= 0 {
			name = rec.Path[i+1:]
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(name)
		if rec.VirtUS > 0 {
			fmt.Fprintf(&b, " [%s]", fmtVirt(rec.VirtUS))
		}
		if len(rec.Attrs) > 0 {
			keys := make([]string, 0, len(rec.Attrs))
			for k := range rec.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pairs := make([]string, len(keys))
			for i, k := range keys {
				pairs[i] = k + "=" + rec.Attrs[k]
			}
			fmt.Fprintf(&b, " {%s}", strings.Join(pairs, " "))
		}
		if rec.Err != "" {
			fmt.Fprintf(&b, " !err=%q", rec.Err)
		}
		b.WriteByte('\n')
		for _, ev := range rec.Events {
			b.WriteString(strings.Repeat("  ", depth+1))
			fmt.Fprintf(&b, "* %s\n", ev)
		}
	}
	return b.String()
}

// fmtVirt renders a microsecond count as a compact virtual duration.
func fmtVirt(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%d.%03ds", us/1_000_000, (us%1_000_000)/1000)
	case us >= 1000:
		return fmt.Sprintf("%d.%03dms", us/1000, us%1000)
	default:
		return fmt.Sprintf("%dus", us)
	}
}
