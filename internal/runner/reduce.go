package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"dnsencryption.info/doe/internal/obs"
)

// Reducer bundles the accumulator callbacks of one streaming fold. The pool
// gives every worker goroutine its own accumulator (New), folds each
// completed item into it in place (Fold), and merges the per-worker shards
// into a single accumulator at the join (Merge) — per-item results never
// materialize as a slice, so a campaign's memory is O(workers·accumulator),
// not O(population).
//
// Determinism contract: work is handed out through the same atomic counter
// as Map, so which worker folds which index — and the order of indices
// within one shard — depends on scheduling. The merged accumulator is
// identical at every worker count only if Fold is insensitive to fold order
// within a shard and Merge is insensitive to how indices were partitioned
// across shards. In practice that means the sum/sum/max discipline of
// obs.Registry.Merge: counters add, gauges take maxima, sketch buckets add,
// and anything order-bearing carries its input index so a final sort
// restores a canonical order. Fold laws, for the record:
//
//	Merge(New(), s)  ≡ s                      (identity)
//	Merge(Merge(a,b),c) ≡ Merge(a,Merge(b,c)) (associativity)
//	Merge(a,b) ≡ Merge(b,a)                   (commutativity, up to the
//	                                           canonicalizing sort)
type Reducer[A any] struct {
	// New allocates one empty accumulator; called once per worker shard
	// plus once for the merge destination.
	New func() A
	// Fold folds item i into acc. It runs on the worker goroutine that
	// drew i and has exclusive access to acc.
	Fold func(ctx context.Context, acc A, i int)
	// Merge folds src into dst. Called serially at the pool join, in
	// worker order, after every worker has exited.
	Merge func(dst, src A) error
}

// Reduce is the context-free streaming fold: fold every i in [0, n) through
// r on at most `workers` goroutines and return the merged accumulator. It
// is MapReduceCtx with a background context — no cancellation, no
// telemetry.
//
//doelint:ctxroot -- context-free convenience entry point, like Map
func Reduce[A any](workers, n int, r Reducer[A]) (A, error) {
	return MapReduceCtx(context.Background(), workers, n, r)
}

// MapReduceCtx is the streaming-fold counterpart of MapCtx: same bounded
// pool, same atomic work handout, same cooperative cancellation and
// telemetry discipline (task counts, phase progress, per-worker shard
// registries folded at the join), but each completed item feeds a
// per-worker accumulator instead of a positional slot in a result slice.
// After the pool joins, the worker accumulators merge into a fresh New()
// destination in worker order and that accumulator is returned.
//
// Cancellation mirrors MapCtx: once ctx is done workers stop taking new
// indices, in-flight Fold calls finish, and the partial accumulator is
// returned alongside ctx.Err(). The pool always joins every worker before
// merging, so Merge never races a Fold.
func MapReduceCtx[A any](ctx context.Context, workers, n int, r Reducer[A]) (A, error) {
	if n <= 0 {
		return r.New(), ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		meters := newPoolMeters(ctx, 1, n)
		sctx, wm := meters.workerCtx(ctx, 0, false)
		acc := r.New()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return acc, err
			}
			meters.taskStart(wm)
			r.Fold(sctx, acc, i)
			meters.taskEnd()
		}
		return acc, ctx.Err()
	}
	meters := newPoolMeters(ctx, workers, n)
	meters.shards = make([]*obs.Registry, workers)
	accs := make([]A, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, wm := meters.workerCtx(ctx, w, true)
			accs[w] = r.New()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				meters.taskStart(wm)
				r.Fold(wctx, accs[w], i)
				meters.taskEnd()
			}
		}(w)
	}
	wg.Wait()
	var errs []error
	if err := meters.fold(); err != nil {
		errs = append(errs, err)
	}
	// Merge worker accumulators in worker order — the same join-point
	// convention as the shard-registry fold above.
	dst := r.New()
	for w := 0; w < workers; w++ {
		if err := r.Merge(dst, accs[w]); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return dst, errors.Join(append([]error{ctx.Err()}, errs...)...)
	}
	return dst, ctx.Err()
}
