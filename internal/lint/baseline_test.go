package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dnsencryption.info/doe/internal/lint"
)

func finding(file, check, msg string, line int) lint.Finding {
	return lint.Finding{File: file, Line: line, Col: 1, Check: check, Message: msg}
}

func TestBaselineFilter(t *testing.T) {
	b := &lint.Baseline{
		Schema: 1,
		Entries: []lint.BaselineEntry{
			{File: "a.go", Check: "hotalloc", Message: "allocates"},
			{File: "b.go", Check: "walltaint", Message: "taints", Count: 2},
		},
	}
	findings := []lint.Finding{
		finding("a.go", "hotalloc", "allocates", 10),
		finding("a.go", "hotalloc", "allocates", 20), // over budget: entry absorbs one
		finding("a.go", "hotalloc", "other message", 30),
		finding("b.go", "walltaint", "taints", 5),
		finding("b.go", "walltaint", "taints", 6),
		finding("b.go", "walltaint", "taints", 7), // third exceeds Count: 2
	}
	kept, suppressed := b.Filter(findings)
	if len(suppressed) != 3 {
		t.Errorf("suppressed %d findings, want 3", len(suppressed))
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d findings, want 3: %v", len(kept), kept)
	}
	// Matching is on file+check+message, not line, so which duplicates
	// survive is positional; the distinct-message finding must be kept.
	if kept[0].Line != 20 || kept[1].Message != "other message" || kept[2].Line != 7 {
		t.Errorf("kept the wrong findings: %v", kept)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []lint.Finding{
		finding("b.go", "walltaint", "taints", 5),
		finding("a.go", "hotalloc", "allocates", 10),
		finding("b.go", "walltaint", "taints", 9),
	}
	b := lint.NewBaseline(findings)
	if len(b.Entries) != 2 {
		t.Fatalf("NewBaseline produced %d entries, want 2 (identical collapsed): %v", len(b.Entries), b.Entries)
	}
	if b.Entries[0].File != "a.go" || b.Entries[1].Count != 2 {
		t.Errorf("entries not sorted/counted: %+v", b.Entries)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := lint.WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := loaded.Filter(findings)
	if len(kept) != 0 || len(suppressed) != len(findings) {
		t.Errorf("round-tripped baseline kept %d / suppressed %d, want 0 / %d", len(kept), len(suppressed), len(findings))
	}
}

func TestBaselineSchemaValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Error("LoadBaseline accepted an unknown schema version")
	}
	if _, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadBaseline accepted a missing file")
	}
}

func TestSARIF(t *testing.T) {
	findings := []lint.Finding{
		finding("internal/dot/dot.go", "bufown", "bufpool.Get result leaks", 42),
	}
	data, err := lint.SARIF(findings)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "doelint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range lint.Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("rule %s missing from SARIF driver metadata", a.Name)
		}
	}
	if !ruleIDs[lint.DirectiveCheck] {
		t.Error("directive pseudo-check missing from SARIF rules")
	}
	if len(run.Results) != 1 {
		t.Fatalf("%d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "bufown" || res.Level != "error" {
		t.Errorf("result = %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/dot/dot.go" || loc.Region.StartLine != 42 {
		t.Errorf("location = %+v", loc)
	}
}
