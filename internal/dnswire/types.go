// Package dnswire implements the DNS wire format (RFC 1035) from scratch:
// message headers, domain-name compression, questions, resource records,
// EDNS(0) including the padding option (RFC 7830), and the 2-byte length
// framing used by DNS over TCP, TLS and HTTPS bodies.
//
// The package is transport-agnostic: it converts between Message values and
// byte slices. Transports live in dnsclient, dnsserver, dot and doh.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types used by the measurement pipeline.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeSRV:   "SRV",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic, or TYPEn for unknown types
// (RFC 3597 presentation style).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a mnemonic such as "A" or "AAAA" to a Type.
func ParseType(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS class. Only IN is used on the modern Internet; the OPT
// pseudo-record reuses the class field for the requestor's UDP payload size.
type Class uint16

const (
	ClassINET Class = 1
	ClassCH   Class = 3
	ClassANY  Class = 255
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the 4-bit kind-of-query field in the message header.
type Opcode uint8

const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// Rcode is a DNS response code. Values above 15 require EDNS(0) extended
// rcodes; Pack splits them automatically when an OPT record is present.
type Rcode uint16

const (
	RcodeSuccess  Rcode = 0 // NOERROR
	RcodeFormErr  Rcode = 1
	RcodeServFail Rcode = 2
	RcodeNXDomain Rcode = 3
	RcodeNotImp   Rcode = 4
	RcodeRefused  Rcode = 5
	RcodeBadVers  Rcode = 16
)

var rcodeNames = map[Rcode]string{
	RcodeSuccess:  "NOERROR",
	RcodeFormErr:  "FORMERR",
	RcodeServFail: "SERVFAIL",
	RcodeNXDomain: "NXDOMAIN",
	RcodeNotImp:   "NOTIMP",
	RcodeRefused:  "REFUSED",
	RcodeBadVers:  "BADVERS",
}

// String implements fmt.Stringer.
func (r Rcode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Header is the fixed 12-byte DNS message header, unpacked into named fields.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticatedData  bool
	CheckingDisabled   bool
	Rcode              Rcode
}

// header flag bit positions within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
	flagAD = 1 << 5
	flagCD = 1 << 4
)

func (h *Header) flags() uint16 {
	f := uint16(h.Opcode&0xF) << 11
	f |= uint16(h.Rcode & 0xF)
	if h.Response {
		f |= flagQR
	}
	if h.Authoritative {
		f |= flagAA
	}
	if h.Truncated {
		f |= flagTC
	}
	if h.RecursionDesired {
		f |= flagRD
	}
	if h.RecursionAvailable {
		f |= flagRA
	}
	if h.AuthenticatedData {
		f |= flagAD
	}
	if h.CheckingDisabled {
		f |= flagCD
	}
	return f
}

func (h *Header) setFlags(f uint16) {
	h.Response = f&flagQR != 0
	h.Opcode = Opcode(f >> 11 & 0xF)
	h.Authoritative = f&flagAA != 0
	h.Truncated = f&flagTC != 0
	h.RecursionDesired = f&flagRD != 0
	h.RecursionAvailable = f&flagRA != 0
	h.AuthenticatedData = f&flagAD != 0
	h.CheckingDisabled = f&flagCD != 0
	h.Rcode = Rcode(f & 0xF)
}
