// Resolverscan: §3 in miniature. Build a world with a mixed port-853
// population — genuine DoT resolvers with valid, expired, self-signed and
// broken-chain certificates, a FortiGate inspection device, a
// fixed-answer filtering resolver, and TLS-but-not-DNS hosts — then run a
// ZMap-style permutation sweep plus DoT verification probes and print the
// provider/certificate breakdown the paper reports in Findings 1.1/1.2.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/scanner"
)

func main() {
	world := netsim.NewWorld(7)
	world.Geo.Register(netip.MustParsePrefix("100.64.0.0/16"), geo.Location{Country: "IE", ASN: 64500, ASName: "Irish Hosting"})
	world.Geo.Register(netip.MustParsePrefix("100.64.1.0/24"), geo.Location{Country: "US", ASN: 64501, ASName: "US Cloud"})

	ca, err := certs.NewCA("Example Root", true)
	if err != nil {
		log.Fatal(err)
	}
	expected := netip.MustParseAddr("203.0.113.1")
	zone := dnsserver.NewZone("scan.example.test")
	zone.WildcardA = expected

	addr := func(s string) netip.Addr { return netip.MustParseAddr(s) }

	// A large provider with three addresses and valid certificates.
	for i, ip := range []string{"100.64.0.10", "100.64.0.11", "100.64.1.12"} {
		leaf, err := ca.Issue(certs.LeafOptions{
			CommonName: "dns.bigprovider.test",
			IPs:        []netip.Addr{addr(ip)},
		})
		if err != nil {
			log.Fatal(err)
		}
		dot.Serve(world, addr(ip), leaf, zone, time.Duration(i)*time.Millisecond)
	}
	// A small provider with an expired certificate (out of maintenance).
	expired, err := ca.IssueExpired(certs.LeafOptions{CommonName: "dot.smalldns.test"}, 9*30*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, addr("100.64.0.20"), expired, zone, 0)
	// Self-signed single-address provider.
	selfSigned, err := certs.SelfSigned(certs.LeafOptions{CommonName: "qq.dog"})
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, addr("100.64.0.21"), selfSigned, zone, 0)
	// A FortiGate firewall acting as a DoT proxy (default certificate).
	forti, err := certs.FortiGateDefault()
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, addr("100.64.0.22"), forti, zone, 0)
	// Broken chain: leaf without its intermediate.
	broken, err := ca.IssueBrokenChain(certs.LeafOptions{CommonName: "dns.chainless.test"})
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, addr("100.64.0.23"), broken, zone, 0)
	// A filtering resolver answering every query with one fixed address.
	filt, err := ca.Issue(certs.LeafOptions{CommonName: "dnsfilter.test"})
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, addr("100.64.0.30"), filt, dnsserver.Static{Addr: addr("146.112.61.106")}, 0)
	// Hosts with port 853 open that are not DNS at all.
	for _, ip := range []string{"100.64.0.40", "100.64.0.41", "100.64.0.42"} {
		dot.ServeNotDNS(world, addr(ip), nil)
	}

	s := &scanner.Scanner{
		World:       world,
		Sources:     []netip.Addr{addr("100.64.1.1"), addr("100.64.1.2")},
		Space:       scanner.Space{Base: addr("100.64.0.0"), Size: 1 << 12},
		OptOut:      &netsim.OptOutList{},
		ProbeDomain: "probe-0001.scan.example.test",
		ExpectedA:   expected,
		Roots:       certs.Pool(ca),
		Workers:     4,
		Seed:        99,
	}
	res, err := s.Scan("example")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d addresses: %d with port 853 open, %d verified DoT resolvers\n\n",
		res.ProbedAddrs, res.PortOpen, len(res.Resolvers))
	table := &analysis.Table{
		Title:   "Discovered open DoT resolvers",
		Columns: []string{"Address", "Provider", "Certificate", "Answer OK", "Country"},
	}
	for _, r := range res.Resolvers {
		table.AddRow(r.Addr, r.Provider, r.CertStatus, r.AnswerCorrect, r.Country)
	}
	fmt.Println(table.Render())
	fmt.Printf("providers with invalid certificates: %v\n", res.InvalidCertProviders())
}
