package proxy

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/netsim"
)

// waitGoroutines polls until the goroutine count drops to target or the
// window closes, returning the final count.
func waitGoroutines(target int, window time.Duration) int {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= target {
			return n
		}
		time.Sleep(10 * time.Millisecond) //doelint:allow simsleep -- real-time settle poll in a leak test
	}
	return runtime.NumGoroutine()
}

func TestShutdownStopsNewDials(t *testing.T) {
	w := newWorld()
	echoTarget(w, 80)
	n := newNetwork(w)

	conn, err := n.Dial(measureIP, "us-1", targetIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	n.Shutdown()
	// The established tunnel keeps working.
	conn.SetDeadline(time.Now().Add(time.Second))
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write on live tunnel after shutdown: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read on live tunnel after shutdown: %v", err)
	}
	conn.Close()

	// New dials hit the closed super proxy.
	if _, err := n.Dial(measureIP, "us-1", targetIP, 80); !errors.Is(err, netsim.ErrRefused) {
		t.Fatalf("dial after shutdown err = %v, want ErrRefused", err)
	}
}

// TestPlatformLifecycleLeaksNoGoroutines builds a platform, pushes traffic
// through both exit nodes, shuts it down, and asserts the goroutine count
// returns to its starting point: accept loops and relay copiers must all
// unwind.
func TestPlatformLifecycleLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	w := newWorld()
	echoTarget(w, 80)
	n := newNetwork(w)
	for i := 0; i < 10; i++ {
		for _, node := range []string{"us-1", "id-1"} {
			conn, err := n.Dial(measureIP, node, targetIP, 80)
			if err != nil {
				t.Fatalf("dial %s: %v", node, err)
			}
			conn.SetDeadline(time.Now().Add(time.Second))
			conn.Write([]byte("ping")) //nolint:errcheck
			conn.Read(make([]byte, 4)) //nolint:errcheck
			conn.Close()
		}
	}
	n.Shutdown()
	w.CloseService(targetIP, 80)

	if after := waitGoroutines(before, 2*time.Second); after > before {
		t.Errorf("goroutines: %d before platform lifecycle, %d after", before, after)
	}
}
