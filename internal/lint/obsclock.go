package lint

import (
	"go/ast"
	"go/types"
)

// analyzerObsclock keeps the telemetry layer off the wall clock. Spans and
// metrics in internal/obs are charged exclusively from netsim's virtual
// clock (Conn.Elapsed deltas); a single time.Now — say, to "timestamp" a
// span — would smuggle scheduling noise into the JSONL trace and break the
// byte-identical golden-trace contract the same way it would break
// report_full.txt. The check mirrors simsleep but covers every wall-clock
// read, schedule, and block in the time package, because an observability
// package has no legitimate use for any of them.
var analyzerObsclock = &Analyzer{
	Name: "obsclock",
	Doc:  "no wall-clock reads (time.Now etc.) or real blocking in observability packages (virtual time only)",
	Run:  runObsclock,
}

// obsClockFuncs are the time package functions that read, schedule
// against, or block on real time. time.Duration arithmetic and constants
// remain fine — obs is built on virtual durations.
var obsClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

func runObsclock(pass *Pass) {
	if !pass.Config.IsObservability(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if pkgName.Imported().Path() == "time" && obsClockFuncs[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"wall-clock time.%s in observability package %s; telemetry must be charged to the virtual clock only",
					sel.Sel.Name, pass.Pkg.Path())
			}
			return true
		})
	}
}
