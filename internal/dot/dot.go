// Package dot implements DNS over TLS (RFC 7858): a server front-end on the
// dedicated port 853 and a client supporting the two usage profiles of
// RFC 8310 — Strict Privacy (authenticate or fail) and Opportunistic
// Privacy (best effort, proceed even if the server cannot be authenticated).
// The paper's reachability test issues Opportunistic DoT queries precisely
// to observe what interception does to unauthenticated sessions (§4.2).
package dot

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Port is the dedicated DoT port (RFC 7858 §3.1: servers MUST listen here).
const Port = 853

// Profile selects the RFC 8310 usage profile.
type Profile int

// Usage profiles.
const (
	// Opportunistic proceeds without authentication (and is what the
	// paper uses client-side, to observe interception in action).
	Opportunistic Profile = iota
	// Strict requires a verifiable server certificate.
	Strict
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p == Strict {
		return "strict"
	}
	return "opportunistic"
}

// ErrAuthFailed is returned by Strict-profile dials when the server
// certificate cannot be verified.
var ErrAuthFailed = errors.New("dot: server authentication failed (strict profile)")

// ServerPadBlock is the response padding block size RFC 8467 recommends
// for DNS-over-Encryption servers.
const ServerPadBlock = 468

// Serve registers a DoT server on addr:853 of the world, terminating TLS
// with leaf and answering queries with h. extraProc is charged per query on
// top of h's own processing time (TLS record costs). Responses to queries
// that carried an EDNS(0) padding option are padded to 468-byte blocks, the
// RFC 8467 server policy.
func Serve(w *netsim.World, addr netip.Addr, leaf *certs.Leaf, h dnsserver.Handler, extraProc time.Duration) {
	cert := leaf.TLSCertificate()
	// One shared config: session-ticket keys must persist across
	// connections for TLS resumption to work.
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	w.RegisterStream(addr, Port, func(conn *netsim.Conn) {
		defer conn.Close()
		tc := tls.Server(conn, cfg)
		defer tc.Close()
		if err := tc.Handshake(); err != nil {
			return
		}
		wrapped := dnsserver.HandlerFunc(func(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
			resp, proc := h.ServeDNS(remote, req)
			if resp != nil {
				if opt, ok := req.OPT(); ok {
					if _, padded := opt.Padding(); padded {
						resp.SetEDNS0(opt.UDPSize, opt.DO)
						resp.PadToBlock(ServerPadBlock) //nolint:errcheck // best effort
					}
				}
			}
			return resp, proc + extraProc
		})
		dnsserver.ServeTLSStream(tc, conn, wrapped)
	})
}

// ServeNotDNS registers a port-853 listener that speaks TLS but errors on
// DNS queries — the vast population §3.2 finds with the port open but "not
// providing DoT" (getdns errors). If leaf is nil the listener just drops
// connections after accept, modeling non-TLS port-853 services.
func ServeNotDNS(w *netsim.World, addr netip.Addr, leaf *certs.Leaf) {
	w.RegisterStream(addr, Port, func(conn *netsim.Conn) {
		defer conn.Close()
		if leaf == nil {
			return
		}
		cert := leaf.TLSCertificate()
		tc := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{cert}})
		defer tc.Close()
		if err := tc.Handshake(); err != nil {
			return
		}
		// Read whatever arrives and close without a DNS response.
		buf := make([]byte, 512)
		tc.Read(buf) //nolint:errcheck
	})
}

// Client issues DoT queries from a vantage address.
type Client struct {
	World *netsim.World
	From  netip.Addr
	// Roots is the trust store for verification (the study's simulated
	// Mozilla CA list).
	Roots *x509.CertPool
	// Profile selects Strict or Opportunistic behaviour.
	Profile Profile
	// ServerName, when set, is additionally matched against the
	// certificate (authentication domain). The paper's scanner leaves it
	// empty: "we do not compare domain names ... only verify the
	// certificate paths", since DoT resolver names are unknown.
	ServerName string
	// Timeout is the real-time guard per operation. Zero — the default —
	// disables it; see dnsclient.Client.Timeout for why study transports
	// must not carry wall-clock deadlines.
	Timeout time.Duration
	// CryptoCost models per-query TLS record processing, charged to the
	// connection's virtual clock (the residual overhead the paper
	// observes on reused connections).
	CryptoCost time.Duration
	// Pad, when set, adds EDNS(0) padding to 128-byte blocks (RFC 8467).
	Pad bool
	// SessionCache enables TLS session resumption across Dials, the other
	// amortization lever RFC 7858 §3.4 points at alongside connection
	// reuse (Cloudflare's operational reports emphasize resumption).
	SessionCache tls.ClientSessionCache
}

// NewClient returns a Client with study defaults.
func NewClient(w *netsim.World, from netip.Addr, roots *x509.CertPool, profile Profile) *Client {
	return &Client{
		World:      w,
		From:       from,
		Roots:      roots,
		Profile:    profile,
		CryptoCost: 2500 * time.Microsecond,
	}
}

// Conn is a reusable DoT session.
type Conn struct {
	mu     sync.Mutex
	mux    *dnsclient.Mux
	raw    *netsim.Conn
	tls    *tls.Conn
	client *Client
	closed bool
	// ids generates this session's transaction IDs without touching the
	// process-wide idSource lock.
	ids dnswire.IDGen
	// wbuf/rbuf are the session's pooled write and read scratch buffers,
	// guarded by mu like the connection itself and returned on Close.
	wbuf, rbuf *[]byte
	// setup is the virtual time consumed by TCP + TLS establishment.
	setup time.Duration
	// verifyErr records why path verification failed (nil when verified).
	// Under the Opportunistic profile the session proceeds regardless.
	verifyErr error
}

// Dial establishes a DoT session with server.
func (c *Client) Dial(server netip.Addr) (*Conn, error) {
	return c.DialContext(context.Background(), server)
}

// DialContext establishes a DoT session with server, bounded by the
// context deadline if one is set.
func (c *Client) DialContext(ctx context.Context, server netip.Addr) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dot: dial: %w", err)
	}
	raw, err := c.World.Dial(c.From, server, Port)
	if err != nil {
		return nil, err
	}
	return c.DialConnContext(ctx, raw)
}

// DialConn establishes a DoT session over an already connected stream
// (e.g. a SOCKS tunnel through a proxy network vantage point).
func (c *Client) DialConn(raw *netsim.Conn) (*Conn, error) {
	return c.DialConnContext(context.Background(), raw)
}

// DialConnContext establishes a DoT session over an already connected
// stream, bounded by the context deadline if one is set.
func (c *Client) DialConnContext(ctx context.Context, raw *netsim.Conn) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("dot: dial: %w", err)
	}
	raw.SetDeadline(dnsclient.Deadline(ctx, c.Timeout))

	conn := &Conn{
		raw:    raw,
		client: c,
		ids:    dnswire.NewIDGen(),
	}
	cfg := &tls.Config{
		InsecureSkipVerify: true, //nolint:gosec // verification done below per profile
		Time:               func() time.Time { return certs.RefTime },
		ClientSessionCache: c.SessionCache,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			conn.verifyErr = c.verifyChain(rawCerts)
			if c.Profile == Strict && conn.verifyErr != nil {
				return conn.verifyErr
			}
			return nil
		},
	}
	tc := tls.Client(raw, cfg)
	if err := tc.Handshake(); err != nil {
		raw.Close()
		if conn.verifyErr != nil {
			return nil, fmt.Errorf("%w: %w", ErrAuthFailed, conn.verifyErr)
		}
		return nil, err
	}
	conn.tls = tc
	conn.setup = raw.Elapsed()
	// Acquired only after the handshake succeeds: every earlier return
	// leaves nothing to hand back to the pool.
	conn.wbuf = bufpool.Get(512) //doelint:transfer -- owned by Conn; released in Close
	conn.rbuf = bufpool.Get(512) //doelint:transfer -- owned by Conn; released in Close
	return conn, nil
}

// verifyChain performs path (and optional name) verification at RefTime.
func (c *Client) verifyChain(rawCerts [][]byte) error {
	if len(rawCerts) == 0 {
		return errors.New("dot: no certificate presented")
	}
	chain := make([]*x509.Certificate, 0, len(rawCerts))
	for _, rc := range rawCerts {
		cert, err := x509.ParseCertificate(rc)
		if err != nil {
			return err
		}
		chain = append(chain, cert)
	}
	inter := x509.NewCertPool()
	for _, ic := range chain[1:] {
		inter.AddCert(ic)
	}
	opts := x509.VerifyOptions{
		Roots:         c.Roots,
		Intermediates: inter,
		CurrentTime:   certs.RefTime,
	}
	if c.ServerName != "" {
		opts.DNSName = c.ServerName
	}
	_, err := chain[0].Verify(opts)
	return err
}

// VerifyError reports the (path) verification outcome of the session; nil
// means the certificate verified.
func (conn *Conn) VerifyError() error { return conn.verifyErr }

// PeerCertificates returns the presented chain.
func (conn *Conn) PeerCertificates() []*x509.Certificate {
	return conn.tls.ConnectionState().PeerCertificates
}

// Resumed reports whether the TLS session was resumed from a cached ticket.
func (conn *Conn) Resumed() bool {
	return conn.tls.ConnectionState().DidResume
}

// SetupLatency is the virtual time spent on TCP + TLS establishment.
func (conn *Conn) SetupLatency() time.Duration { return conn.setup }

// Elapsed is the total virtual time consumed by the session so far.
func (conn *Conn) Elapsed() time.Duration { return conn.raw.Elapsed() }

// Pipeline upgrades the session to an RFC 7766 pipelined session with the
// given in-flight limit (limit <= 0 selects dnsclient.DefaultMaxInFlight)
// and returns its Mux. After Pipeline, QueryContext routes through the mux
// and is safe for concurrent use; the mux carries the session's per-query
// CryptoCost and RFC 8467 padding policy. Pipeline is idempotent — later
// calls return the existing mux regardless of limit.
func (conn *Conn) Pipeline(limit int) *dnsclient.Mux {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.mux == nil && !conn.closed {
		m := dnsclient.NewMux(conn.tls, conn.raw, limit)
		m.PerQueryCost = conn.client.CryptoCost
		if conn.client.Pad {
			m.PadBlock = 128
		}
		conn.mux = m
	}
	return conn.mux
}

// Query performs one DNS transaction on the session.
func (conn *Conn) Query(name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return conn.QueryContext(context.Background(), name, qtype)
}

// QueryContext performs one DNS transaction on the session, checking ctx
// before the transaction starts. In steady state the transaction reuses the
// session's scratch buffers end to end: pack and frame into wbuf, one TLS
// write, read into rbuf, parse.
//
//doelint:hotpath
func (conn *Conn) QueryContext(ctx context.Context, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	conn.mu.Lock()
	if m := conn.mux; m != nil {
		conn.mu.Unlock()
		return m.Exchange(ctx, name, qtype)
	}
	defer conn.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dot: query: %w", err)
	}
	if conn.closed {
		return nil, dnsclient.ErrClosed
	}
	q := dnswire.NewQuery(conn.ids.Next(), name, qtype)
	if conn.client.Pad {
		q.SetEDNS0(4096, false)
		if err := q.PadToBlock(128); err != nil { //doelint:allow hotalloc -- padding repacks the query for sizing; one pass per query by design
			return nil, err
		}
	}
	start := conn.raw.Elapsed()
	conn.raw.AddLatency(conn.client.CryptoCost)
	out, err := dnswire.WriteMessageTCP(conn.tls, q, *conn.wbuf)
	*conn.wbuf = out
	if err != nil {
		return nil, err
	}
	raw, err := dnswire.ReadTCPAppend(conn.tls, (*conn.rbuf)[:0])
	if err != nil {
		return nil, err
	}
	*conn.rbuf = raw
	m, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, err
	}
	if m.ID != q.ID {
		return nil, dnsclient.ErrIDMismatch
	}
	return &dnsclient.Result{Msg: m, Latency: conn.raw.Elapsed() - start}, nil
}

// Close terminates the session.
func (conn *Conn) Close() error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.closed {
		return nil
	}
	conn.closed = true
	if conn.mux != nil {
		conn.mux.Close()
	}
	bufpool.Put(conn.wbuf)
	bufpool.Put(conn.rbuf)
	conn.wbuf, conn.rbuf = nil, nil
	conn.tls.Close()
	return conn.raw.Close()
}

// Query is the one-shot convenience: dial, query once, close. The reported
// latency includes connection establishment (the no-reuse case of §4.3).
func (c *Client) Query(server netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return c.QueryContext(context.Background(), server, name, qtype)
}

// QueryContext is the one-shot convenience with cancellation: dial, query
// once, close.
func (c *Client) QueryContext(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	conn, err := c.DialContext(ctx, server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	res.Latency = conn.Elapsed()
	return res, nil
}
