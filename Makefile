# Verify path for the DNS-over-Encryption measurement repo.
#
# `make verify` is what CI runs and what a PR must keep green: build, vet,
# the custom static-analysis suite (cmd/doelint), the test suite, and the
# race detector over the concurrency-heavy packages. The doelint gate also
# runs inside `go test ./...` (internal/lint.TestRepositoryIsClean), so
# plain tier-1 testing cannot drift from the lint suite.

GO ?= go

RACE_PKGS := ./internal/netsim ./internal/proxy ./internal/dnsserver \
	./internal/scanner ./internal/vantage ./internal/runner ./internal/resolver

.PHONY: verify build vet lint test race bench-smoke

verify: build vet lint test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/doelint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# One iteration of the worker-count ablation: proves the parallel scan path
# executes end to end. Speedup itself is hardware-dependent (bounded by
# GOMAXPROCS) and is read off full -benchtime runs, not this smoke pass.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkParallelScan' -benchtime=1x .
