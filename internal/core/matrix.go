// Package core is the paper's primary contribution assembled end to end:
// the default study world (a calibrated simulated Internet), the three
// measurement stages (server discovery, client-side usability, traffic
// analysis), and an experiment registry that regenerates every table and
// figure of the paper's evaluation.
package core

import (
	"dnsencryption.info/doe/internal/analysis"
)

// Grade is the three-level rating of Table 1.
type Grade int

// Grades: satisfying (●), partially satisfying (◐), not satisfying (○).
const (
	No Grade = iota
	Partial
	Yes
)

// String renders the grade the way the paper's table legend does.
func (g Grade) String() string {
	switch g {
	case Yes:
		return "●"
	case Partial:
		return "◐"
	default:
		return "○"
	}
}

// Protocol identifies one DNS-over-Encryption proposal.
type Protocol string

// The five protocols of §2.2.
const (
	DoT      Protocol = "DNS-over-TLS"
	DoH      Protocol = "DNS-over-HTTPS"
	DoDTLS   Protocol = "DNS-over-DTLS"
	DoQUIC   Protocol = "DNS-over-QUIC"
	DNSCrypt Protocol = "DNSCrypt"
)

// Protocols lists Table 1's columns in order.
var Protocols = []Protocol{DoT, DoH, DoDTLS, DoQUIC, DNSCrypt}

// Criterion is one of the ten evaluation criteria of §2.2.
type Criterion struct {
	Category string
	Name     string
	Grades   map[Protocol]Grade
}

// ComparisonMatrix is Table 1: 10 criteria under 5 categories across the
// five protocols, graded as in the paper.
var ComparisonMatrix = []Criterion{
	{
		Category: "Protocol Design", Name: "Uses other application-layer protocols",
		Grades: map[Protocol]Grade{DoT: No, DoH: Yes, DoDTLS: No, DoQUIC: No, DNSCrypt: No},
	},
	{
		Category: "Protocol Design", Name: "Provides fallback mechanism",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: No, DoDTLS: Yes, DoQUIC: Yes, DNSCrypt: No},
	},
	{
		Category: "Security", Name: "Uses standard TLS",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: Yes, DoDTLS: Partial, DoQUIC: Yes, DNSCrypt: No},
	},
	{
		Category: "Security", Name: "Resists DNS traffic analysis",
		Grades: map[Protocol]Grade{DoT: Partial, DoH: Yes, DoDTLS: Partial, DoQUIC: Partial, DNSCrypt: Partial},
	},
	{
		Category: "Usability", Name: "Minor changes for client users",
		Grades: map[Protocol]Grade{DoT: Partial, DoH: Yes, DoDTLS: No, DoQUIC: No, DNSCrypt: Partial},
	},
	{
		Category: "Usability", Name: "Minor latency above DNS-over-UDP",
		Grades: map[Protocol]Grade{DoT: Partial, DoH: Partial, DoDTLS: Yes, DoQUIC: Yes, DNSCrypt: Partial},
	},
	{
		Category: "Deployability", Name: "Runs over standard protocols",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: Yes, DoDTLS: Partial, DoQUIC: Partial, DNSCrypt: No},
	},
	{
		Category: "Deployability", Name: "Supported by mainstream DNS software",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: Partial, DoDTLS: No, DoQUIC: No, DNSCrypt: Partial},
	},
	{
		Category: "Maturity", Name: "Standardized by IETF",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: Yes, DoDTLS: Yes, DoQUIC: Partial, DNSCrypt: No},
	},
	{
		Category: "Maturity", Name: "Extensively supported by resolvers",
		Grades: map[Protocol]Grade{DoT: Yes, DoH: Partial, DoDTLS: No, DoQUIC: No, DNSCrypt: Partial},
	},
}

// Table1 renders the comparison matrix.
func Table1() *analysis.Table {
	t := &analysis.Table{
		Title:   "Table 1: Comparison of DNS-over-Encryption protocols",
		Columns: []string{"Category", "Criterion", "DoT", "DoH", "DoDTLS", "DoQUIC", "DNSCrypt"},
	}
	for _, c := range ComparisonMatrix {
		t.AddRow(c.Category, c.Name,
			c.Grades[DoT], c.Grades[DoH], c.Grades[DoDTLS], c.Grades[DoQUIC], c.Grades[DNSCrypt])
	}
	return t
}

// TimelineEvent is one milestone of Figure 1.
type TimelineEvent struct {
	Year int
	Kind string // "standard", "wg", "info"
	Name string
}

// Timeline is Figure 1's event list.
var Timeline = []TimelineEvent{
	{2009, "standard", "DNSCurve proposal (earliest DNS encryption effort)"},
	{2011, "standard", "DNSCrypt protocol and OpenDNS deployment"},
	{2014, "wg", "IETF DPRIVE working group chartered"},
	{2015, "info", "RFC 7626: DNS privacy considerations"},
	{2016, "standard", "RFC 7858: DNS over TLS"},
	{2016, "info", "RFC 7816: QNAME minimisation"},
	{2017, "standard", "RFC 8094: DNS over DTLS (backup proposal)"},
	{2018, "wg", "IETF DOH working group delivers RFC 8484"},
	{2018, "standard", "RFC 8484: DNS Queries over HTTPS"},
	{2018, "info", "RFC 8310: usage profiles for DoT/DoDTLS"},
}

// Fig1 renders the timeline.
func Fig1() *analysis.Table {
	t := &analysis.Table{
		Title:   "Figure 1: Timeline of important DNS privacy events",
		Columns: []string{"Year", "Kind", "Event"},
	}
	for _, e := range Timeline {
		t.AddRow(e.Year, e.Kind, e.Name)
	}
	return t
}

// Implementation is one row of Table 8 (Appendix A).
type Implementation struct {
	Category string // "Public DNS", "DNS Software (Server)", ...
	Name     string
	DoT      bool
	DoH      bool
	DNSCrypt bool
	DNSSEC   bool
	QNAMEMin bool
}

// Implementations is the Appendix A survey (as of May 1, 2019).
var Implementations = []Implementation{
	{"Public DNS", "Google", true, true, false, true, false},
	{"Public DNS", "Cloudflare", true, true, false, true, true},
	{"Public DNS", "Quad9", true, true, false, true, true},
	{"Public DNS", "OpenDNS", false, false, true, false, false},
	{"Public DNS", "CleanBrowsing", true, true, true, false, false},
	{"Public DNS", "Tenta", true, true, false, true, false},
	{"Public DNS", "Verisign", false, false, false, true, false},
	{"Public DNS", "SecureDNS", true, true, true, true, false},
	{"Public DNS", "DNS.WATCH", false, false, false, true, false},
	{"Public DNS", "PowerDNS", false, true, false, true, false},
	{"Public DNS", "Level3", false, false, false, false, false},
	{"Public DNS", "SafeDNS", false, false, false, false, false},
	{"Public DNS", "Dyn", false, false, false, true, false},
	{"Public DNS", "BlahDNS", true, true, true, true, false},
	{"Public DNS", "OpenNIC", false, false, true, true, false},
	{"Public DNS", "Alternate DNS", false, false, false, false, false},
	{"Public DNS", "Yandex.DNS", false, false, true, true, false},
	{"DNS Software (Server)", "Unbound", true, false, true, true, true},
	{"DNS Software (Server)", "BIND", false, false, false, true, true},
	{"DNS Software (Server)", "Knot Resolver", true, true, true, true, true},
	{"DNS Software (Server)", "dnsdist", true, true, true, true, false},
	{"DNS Software (Server)", "CoreDNS", true, true, false, false, false},
	{"DNS Software (Server)", "AnswerX", false, false, false, true, false},
	{"DNS Software (Server)", "MS DNS", false, false, false, true, false},
	{"DNS Software (Stub)", "Ldns (drill)", true, false, false, true, false},
	{"DNS Software (Stub)", "Stubby", true, true, false, true, false},
	{"DNS Software (Stub)", "BIND (dig)", true, false, false, true, false},
	{"DNS Software (Stub)", "Go DNS", true, false, false, true, false},
	{"DNS Software (Stub)", "Knot (kdig)", true, true, false, true, false},
	{"Browser", "Firefox", false, true, false, false, false},
	{"Browser", "Chrome", false, true, false, false, false},
	{"Browser", "Yandex Browser", false, false, true, false, false},
	{"Browser", "Tenta Browser", true, true, false, false, false},
	{"OS", "Android 9", true, false, false, false, false},
	{"OS", "Linux (systemd 239)", true, false, false, true, false},
}

// Table8 renders the implementation survey.
func Table8() *analysis.Table {
	t := &analysis.Table{
		Title:   "Table 8: Current implementations of DNS-over-Encryption (May 1, 2019)",
		Columns: []string{"Category", "Name", "DoT", "DoH", "DNSCrypt", "DNSSEC", "QNAME min"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, impl := range Implementations {
		t.AddRow(impl.Category, impl.Name,
			mark(impl.DoT), mark(impl.DoH), mark(impl.DNSCrypt), mark(impl.DNSSEC), mark(impl.QNAMEMin))
	}
	return t
}

// ImplementationStats summarizes Table 8 the way Appendix A's discussion
// does: how many surveyed implementations support each technology.
func ImplementationStats() analysis.Counter {
	c := analysis.Counter{}
	for _, impl := range Implementations {
		if impl.DoT {
			c.Inc("DoT")
		}
		if impl.DoH {
			c.Inc("DoH")
		}
		if impl.DNSCrypt {
			c.Inc("DNSCrypt")
		}
		if impl.DNSSEC {
			c.Inc("DNSSEC")
		}
		if impl.QNAMEMin {
			c.Inc("QNAME minimisation")
		}
	}
	return c
}
