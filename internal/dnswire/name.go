package dnswire

import (
	"errors"
	"strings"
)

// Errors returned by the name codec.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label in name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrBufferTooSmall = errors.New("dnswire: buffer too small")
)

const (
	maxNameLen  = 255
	maxLabelLen = 63
	// maxPointers bounds pointer chasing; a legitimate name can need at
	// most one pointer per label, and names have at most 127 labels.
	maxPointers = 127
)

// CanonicalName lower-cases a domain name and ensures it ends with a dot,
// the canonical form used throughout this repository for map keys.
func CanonicalName(s string) string {
	s = strings.ToLower(s)
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// IsSubdomain reports whether child equals parent or falls under it.
// Both arguments are canonicalized first.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// SLD returns the second-level domain of a name ("a.b.example.com." →
// "example.com."). Names with fewer than two labels are returned unchanged.
// The paper groups DoT providers by the SLD of certificate Common Names.
func SLD(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	labels := strings.Split(strings.TrimSuffix(name, "."), ".")
	if len(labels) <= 2 {
		return name
	}
	return strings.Join(labels[len(labels)-2:], ".") + "."
}

// splitLabels breaks a presentation-format name into labels, validating
// length restrictions. The root name yields no labels.
func splitLabels(name string) ([]string, error) {
	name = CanonicalName(name)
	if name == "." {
		return nil, nil
	}
	labels := strings.Split(strings.TrimSuffix(name, "."), ".")
	total := 0
	for _, l := range labels {
		if l == "" {
			return nil, ErrEmptyLabel
		}
		if len(l) > maxLabelLen {
			return nil, ErrLabelTooLong
		}
		total += len(l) + 1
	}
	if total+1 > maxNameLen {
		return nil, ErrNameTooLong
	}
	return labels, nil
}

// appendName appends the wire encoding of name to buf. If cmp is non-nil it
// performs RFC 1035 §4.1.4 compression: suffixes already emitted earlier in
// the message are replaced by a 2-byte pointer, and newly emitted suffixes at
// offsets representable in 14 bits are recorded for later reuse.
func appendName(buf []byte, name string, cmp map[string]int) ([]byte, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return nil, err
	}
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if cmp != nil {
			if off, ok := cmp[suffix]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if len(buf) < 0x3FFF {
				cmp[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

// readName decodes a possibly compressed name starting at off within msg.
// It returns the canonical presentation form and the offset of the first
// byte after the name's in-place encoding (pointers are followed but do not
// advance the cursor).
func readName(msg []byte, off int) (string, int, error) {
	var b strings.Builder
	ptrCount := 0
	cursor := off
	// end tracks where parsing resumes; set the first time a pointer is taken.
	end := -1
	for {
		if cursor >= len(msg) {
			return "", 0, ErrBufferTooSmall
		}
		c := msg[cursor]
		switch {
		case c == 0:
			cursor++
			if end < 0 {
				end = cursor
			}
			if b.Len() == 0 {
				return ".", end, nil
			}
			return b.String(), end, nil
		case c&0xC0 == 0xC0:
			if cursor+1 >= len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			ptr := int(c&0x3F)<<8 | int(msg[cursor+1])
			if end < 0 {
				end = cursor + 2
			}
			if ptr >= cursor || ptr >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptrCount++
			if ptrCount > maxPointers {
				return "", 0, ErrPointerLoop
			}
			cursor = ptr
		case c&0xC0 != 0:
			return "", 0, ErrBadPointer
		default:
			if cursor+1+int(c) > len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			if b.Len()+int(c)+1 > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			b.Write(toLowerASCII(msg[cursor+1 : cursor+1+int(c)]))
			b.WriteByte('.')
			cursor += 1 + int(c)
		}
	}
}

// toLowerASCII lower-cases ASCII letters without allocating for the common
// already-lowercase case.
func toLowerASCII(b []byte) []byte {
	lower := b
	copied := false
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			if !copied {
				lower = append([]byte(nil), b...)
				copied = true
			}
			lower[i] = c + 'a' - 'A'
		}
	}
	return lower
}
