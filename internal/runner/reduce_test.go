package runner

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"

	"dnsencryption.info/doe/internal/obs"
)

// sumAcc is a reducer accumulator obeying the fold laws: a commutative sum
// plus an index set that is canonicalized by sorting at read time.
type sumAcc struct {
	sum     int64
	indices []int
}

func sumReducer() Reducer[*sumAcc] {
	return Reducer[*sumAcc]{
		New: func() *sumAcc { return &sumAcc{} },
		Fold: func(_ context.Context, acc *sumAcc, i int) {
			acc.sum += int64(i * i)
			acc.indices = append(acc.indices, i)
		},
		Merge: func(dst, src *sumAcc) error {
			dst.sum += src.sum
			dst.indices = append(dst.indices, src.indices...)
			return nil
		},
	}
}

func TestReduceIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 500
	want, err := Reduce(1, n, sumReducer())
	if err != nil {
		t.Fatalf("serial reduce: %v", err)
	}
	for _, workers := range []int{2, 4, 8, 64} {
		got, err := Reduce(workers, n, sumReducer())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.sum != want.sum {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got.sum, want.sum)
		}
		sort.Ints(got.indices)
		if len(got.indices) != n {
			t.Fatalf("workers=%d: folded %d indices, want %d", workers, len(got.indices), n)
		}
		for i, idx := range got.indices {
			if idx != i {
				t.Fatalf("workers=%d: sorted indices[%d] = %d", workers, i, idx)
			}
		}
	}
}

func TestReduceFoldsEveryIndexExactlyOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	r := Reducer[*struct{}]{
		New: func() *struct{} { return &struct{}{} },
		Fold: func(_ context.Context, _ *struct{}, i int) {
			counts[i].Add(1)
		},
		Merge: func(_, _ *struct{}) error { return nil },
	}
	if _, err := Reduce(8, n, r); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d folded %d times", i, c)
		}
	}
}

func TestReduceEmptyWorkload(t *testing.T) {
	got, err := Reduce(4, 0, sumReducer())
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.sum != 0 || len(got.indices) != 0 {
		t.Fatalf("n=0: got %+v, want fresh accumulator", got)
	}
}

func TestMapReduceCtxCancellationReturnsPartialAccumulator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10_000
	var folded atomic.Int64
	r := Reducer[*sumAcc]{
		New: func() *sumAcc { return &sumAcc{} },
		Fold: func(_ context.Context, acc *sumAcc, i int) {
			if folded.Add(1) == 32 {
				cancel()
			}
			acc.sum++
		},
		Merge: func(dst, src *sumAcc) error {
			dst.sum += src.sum
			return nil
		},
	}
	got, err := MapReduceCtx(ctx, 4, n, r)
	if err == nil {
		t.Fatal("expected context error after cancellation")
	}
	if got.sum == 0 || got.sum == n {
		t.Fatalf("partial accumulator sum = %d, want in (0, %d)", got.sum, n)
	}
	if got.sum != folded.Load() {
		t.Fatalf("merged sum %d != folds observed %d", got.sum, folded.Load())
	}
}

// TestMapReduceCtxTelemetryMatchesMapCtx pins the meter discipline: the
// streaming fold must leave the same deterministic runner counters behind
// as the positional merge, so swapping a campaign from MapCtx to
// MapReduceCtx does not move a single telemetry line.
func TestMapReduceCtxTelemetryMatchesMapCtx(t *testing.T) {
	const n, workers = 120, 4
	run := func(body func(ctx context.Context)) string {
		rec := obs.NewRecorder("test")
		ctx := obs.WithPool(obs.WithRecorder(context.Background(), rec), "campaign")
		body(ctx)
		return rec.Metrics().Snapshot(false)
	}
	mapped := run(func(ctx context.Context) {
		_, err := MapCtx(ctx, workers, n, func(ctx context.Context, i int) int {
			obs.Metrics(ctx).Counter("task_side_total").Add(2)
			return i
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	reduced := run(func(ctx context.Context) {
		r := Reducer[*sumAcc]{
			New: func() *sumAcc { return &sumAcc{} },
			Fold: func(ctx context.Context, acc *sumAcc, i int) {
				obs.Metrics(ctx).Counter("task_side_total").Add(2)
				acc.sum += int64(i)
			},
			Merge: func(dst, src *sumAcc) error {
				dst.sum += src.sum
				return nil
			},
		}
		if _, err := MapReduceCtx(ctx, workers, n, r); err != nil {
			t.Fatal(err)
		}
	})
	if mapped == "" {
		t.Fatal("MapCtx run recorded no deterministic samples")
	}
	if mapped != reduced {
		t.Fatalf("deterministic snapshots diverge:\nMapCtx:\n%s\nMapReduceCtx:\n%s", mapped, reduced)
	}
}
