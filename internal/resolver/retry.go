package resolver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
)

// ErrSessionClosed is the sentinel a Transport wraps around transport-level
// errors when a reused session dies under an Exchange (peer hung up, RST,
// closed pipe). Callers distinguish it from protocol failures with
// errors.Is; the Transport drops the dead session so the next Exchange (or
// the next retry attempt) redials instead of failing forever.
var ErrSessionClosed = errors.New("resolver: session closed")

// RetryPolicy is a Transport's attempt budget. The zero value means a
// single attempt (no retries).
type RetryPolicy struct {
	// Attempts is the total attempt budget per Exchange, including the
	// first (values < 1 mean 1).
	Attempts int
	// Backoff is the virtual-clock delay charged before the first retry,
	// doubling per subsequent retry (exponential backoff). It is latency
	// accounting only — nothing sleeps in wall time.
	Backoff time.Duration
}

// backoffFor returns the virtual delay charged before the given attempt
// (attempt 2 waits Backoff, attempt 3 waits 2*Backoff, ...).
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt < 2 {
		return 0
	}
	return p.Backoff << (attempt - 2)
}

// WithRetry sets the Transport attempt budget and virtual backoff base.
func WithRetry(p RetryPolicy) Option { return func(o *Options) { o.Retry = p } }

// RetryStats counts attempt-level outcomes across every Exchange a
// Transport (or a merged set of Transports) performed.
type RetryStats struct {
	// Attempts is the total number of attempts, including first tries.
	Attempts int
	// Retries is the number of attempts beyond the first of an Exchange.
	Retries int
	// Redials is the number of times a reuse Transport re-established a
	// session after the previous one died.
	Redials int
	// Recovered counts Exchanges that failed at least once and then
	// succeeded within the budget.
	Recovered int
	// HardFailures counts Exchanges that exhausted the budget.
	HardFailures int
}

// Plus returns the element-wise sum; campaigns merge per-node stats with it.
func (s RetryStats) Plus(o RetryStats) RetryStats {
	return RetryStats{
		Attempts:     s.Attempts + o.Attempts,
		Retries:      s.Retries + o.Retries,
		Redials:      s.Redials + o.Redials,
		Recovered:    s.Recovered + o.Recovered,
		HardFailures: s.HardFailures + o.HardFailures,
	}
}

// StatsProvider is implemented by Exchangers that track attempt-level
// retry counters (Transport, FallbackExchanger).
type StatsProvider interface {
	Stats() RetryStats
}

// isConnDeath reports whether err means the underlying connection is gone
// (as opposed to a protocol-level failure worth surfacing as-is).
func isConnDeath(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, netsim.ErrReset) ||
		errors.Is(err, dnsclient.ErrClosed) ||
		errors.Is(err, doq.ErrClosed)
}

// Fallback chains Exchangers in preference order: Exchange tries each in
// turn and returns the first success. A stub configured DoH→DoT→Do53
// degrades to clear text only when both encrypted transports fail — the
// resilience shape follow-up work measures on lossy networks.
type FallbackExchanger struct {
	chain []Exchanger

	mu       sync.Mutex
	lastUsed int
}

// Fallback builds a FallbackExchanger over the given chain.
func Fallback(chain ...Exchanger) *FallbackExchanger {
	return &FallbackExchanger{chain: chain, lastUsed: -1}
}

// Exchange implements Exchanger. On total failure it returns the joined
// errors of every link in the chain.
func (f *FallbackExchanger) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	if len(f.chain) == 0 {
		return nil, errors.New("resolver: empty fallback chain")
	}
	var errs []error
	for idx, e := range f.chain {
		resp, err := e.Exchange(ctx, msg)
		if err == nil {
			if idx > 0 {
				obs.CurrentSpan(ctx).Event(fmt.Sprintf("fallback:chain[%d]", idx))
			}
			f.mu.Lock()
			f.lastUsed = idx
			f.mu.Unlock()
			return resp, nil
		}
		errs = append(errs, fmt.Errorf("chain[%d]: %w", idx, err))
		if ctx.Err() != nil {
			break
		}
	}
	f.mu.Lock()
	f.lastUsed = -1
	f.mu.Unlock()
	return nil, errors.Join(errs...)
}

// LastUsed returns the chain index that served the most recent Exchange,
// or -1 if it failed everywhere (or nothing ran yet).
func (f *FallbackExchanger) LastUsed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastUsed
}

// Stats rolls the attempt-level counters up across the whole chain: the
// element-wise sum over every link that tracks RetryStats (links without
// stats contribute zero). Before this existed each Transport accumulated
// privately and a chain's totals were silently dropped, so fault
// summaries disagreed with per-transport metrics.
func (f *FallbackExchanger) Stats() RetryStats {
	var total RetryStats
	for _, e := range f.chain {
		if sp, ok := e.(StatsProvider); ok {
			total = total.Plus(sp.Stats())
		}
	}
	return total
}
