package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// PrometheusText renders the full registry in Prometheus text exposition
// format. Durations are exported in seconds as the convention demands;
// the underlying accumulation stays integer microseconds. Sketches export
// as histograms — cumulative le buckets over the log-spaced edges.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		name := "doe_" + f.name
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		case kindHistogram, kindSketch:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.insts))
		for k := range f.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch m := f.insts[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(k, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(k, "", ""), m.Value())
			case *Histogram:
				counts, overflow := m.bucketCounts()
				promHistogram(&b, name, k, f.bounds, counts, overflow, m.SumUS(), m.Count())
			case *Sketch:
				counts, overflow := m.bucketCounts()
				promHistogram(&b, name, k, m.bounds, counts, overflow, m.SumUS(), m.Count())
			}
		}
		f.mu.Unlock()
	}
	return b.String()
}

// promHistogram renders one histogram/sketch instance as cumulative
// le-labeled buckets plus _sum and _count.
func promHistogram(b *strings.Builder, name, labels string, bounds []time.Duration,
	counts []int64, overflow, sumUS, count int64) {
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		le := fmt.Sprintf("%g", bound.Seconds())
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(labels, "le", "+Inf"), cum+overflow)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, promLabels(labels, "", ""),
		(time.Duration(sumUS) * time.Microsecond).Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(labels, "", ""), count)
}

// promLabels renders {k1="v1",k2="v2"[,extraK="extraV"]} from the internal
// escaped label string. Values pass through parseLabelString (undoing the
// registry's own escaping) and are then re-escaped per the Prometheus text
// format, where only `\`, `"` and newline are special — so values
// containing commas, equals signs or quotes survive exposition intact.
func promLabels(ls, extraK, extraV string) string {
	var parts []string
	kv := parseLabelString(ls)
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, kv[i]+`="`+promEscape(kv[i+1])+`"`)
	}
	if extraK != "" {
		parts = append(parts, extraK+`="`+promEscape(extraV)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and line feed.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// DebugHandler serves the live observability surface:
//
//   - /metrics — Prometheus exposition of r's registry; each scrape first
//     runs the samplers (MemStats, bufpool occupancy, …) so volatile
//     gauges are fresh at read time
//   - /progress — campaign progress as JSON: {"phases":[{name,done,total}]}
//   - /healthz — liveness probe, {"status":"ok"}
//   - /debug/pprof/ — the standard net/http/pprof endpoints
//
// The CLI binaries mount it on the -pprof address. Samplers run on the
// scrape goroutine, never inside the simulation, so the virtual-clock
// contract is untouched.
func DebugHandler(r *Recorder, samplers ...func(*Registry)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		for _, sample := range samplers {
			sample(r.Metrics())
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, r.Metrics().PrometheusText())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		phases := r.Progress()
		if phases == nil {
			phases = []PhaseStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Phases []PhaseStatus `json:"phases"`
		}{phases})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
