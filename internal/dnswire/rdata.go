package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// ErrRDataTooShort is returned when RDATA is truncated.
var ErrRDataTooShort = errors.New("dnswire: rdata too short")

// RData is the type-specific payload of a resource record.
//
// appendTo appends the wire form of the data to buf. ps carries the
// message-wide compression state; only record types whose RDATA names are
// compressible per RFC 3597 §4 (those defined in RFC 1035) use it.
type RData interface {
	RType() Type
	appendTo(buf []byte, ps *packState) ([]byte, error)
	String() string
}

// A is an IPv4 address record.
type A struct{ Addr netip.Addr }

// RType implements RData.
func (A) RType() Type { return TypeA }

// FirstA returns the first A answer of the message, if any.
func (m *Message) FirstA() (netip.Addr, bool) {
	for _, rr := range m.Answers {
		if a, ok := rr.Data.(A); ok {
			return a.Addr, true
		}
	}
	return netip.Addr{}, false
}

func (a A) appendTo(buf []byte, _ *packState) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record requires IPv4 address, got %v", a.Addr)
	}
	v4 := a.Addr.As4()
	return append(buf, v4[:]...), nil
}

func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct{ Addr netip.Addr }

// RType implements RData.
func (AAAA) RType() Type { return TypeAAAA }

func (a AAAA) appendTo(buf []byte, _ *packState) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("dnswire: AAAA record requires IPv6 address, got %v", a.Addr)
	}
	v6 := a.Addr.As16()
	return append(buf, v6[:]...), nil
}

func (a AAAA) String() string { return a.Addr.String() }

// NS delegates a zone to a nameserver.
type NS struct{ Host string }

// RType implements RData.
func (NS) RType() Type { return TypeNS }

func (n NS) appendTo(buf []byte, ps *packState) ([]byte, error) {
	return appendName(buf, n.Host, ps)
}

func (n NS) String() string { return CanonicalName(n.Host) }

// CNAME aliases one name to another.
type CNAME struct{ Target string }

// RType implements RData.
func (CNAME) RType() Type { return TypeCNAME }

func (c CNAME) appendTo(buf []byte, ps *packState) ([]byte, error) {
	return appendName(buf, c.Target, ps)
}

func (c CNAME) String() string { return CanonicalName(c.Target) }

// PTR maps an address back to a name (used for the scanner's reverse-DNS
// opt-out record and for SOA/PTR screening in §5.2).
type PTR struct{ Target string }

// RType implements RData.
func (PTR) RType() Type { return TypePTR }

func (p PTR) appendTo(buf []byte, ps *packState) ([]byte, error) {
	return appendName(buf, p.Target, ps)
}

func (p PTR) String() string { return CanonicalName(p.Target) }

// MX names a mail exchanger with a preference.
type MX struct {
	Preference uint16
	Host       string
}

// RType implements RData.
func (MX) RType() Type { return TypeMX }

func (m MX) appendTo(buf []byte, ps *packState) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, m.Preference)
	return appendName(buf, m.Host, ps)
}

func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, CanonicalName(m.Host)) }

// SOA is the start-of-authority record.
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// RType implements RData.
func (SOA) RType() Type { return TypeSOA }

func (s SOA) appendTo(buf []byte, ps *packState) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, s.MName, ps); err != nil {
		return nil, err
	}
	if buf, err = appendName(buf, s.RName, ps); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	return binary.BigEndian.AppendUint32(buf, s.Minimum), nil
}

func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(s.MName), CanonicalName(s.RName),
		s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT carries one or more character strings of at most 255 bytes each.
type TXT struct{ Texts []string }

// RType implements RData.
func (TXT) RType() Type { return TypeTXT }

func (t TXT) appendTo(buf []byte, _ *packState) ([]byte, error) {
	if len(t.Texts) == 0 {
		// A TXT record must carry at least one (possibly empty) string.
		return append(buf, 0), nil
	}
	for _, s := range t.Texts {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string exceeds 255 bytes (%d)", len(s))
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (t TXT) String() string {
	quoted := make([]string, len(t.Texts))
	for i, s := range t.Texts {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// SRV locates a service (RFC 2782). SRV targets are not compressed.
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

// RType implements RData.
func (SRV) RType() Type { return TypeSRV }

func (s SRV) appendTo(buf []byte, _ *packState) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, s.Priority)
	buf = binary.BigEndian.AppendUint16(buf, s.Weight)
	buf = binary.BigEndian.AppendUint16(buf, s.Port)
	return appendName(buf, s.Target, nil)
}

func (s SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", s.Priority, s.Weight, s.Port, CanonicalName(s.Target))
}

// Raw holds RDATA of a type this package does not parse (RFC 3597 handling).
type Raw struct {
	Type Type
	Data []byte
}

// RType implements RData.
func (r Raw) RType() Type { return r.Type }

func (r Raw) appendTo(buf []byte, _ *packState) ([]byte, error) {
	return append(buf, r.Data...), nil
}

func (r Raw) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }

// unpackRData decodes the RDATA of rtype occupying msg[off:off+length].
func unpackRData(msg []byte, off, length int, rtype Type) (RData, error) {
	end := off + length
	if end > len(msg) {
		return nil, ErrRDataTooShort
	}
	data := msg[off:end]
	switch rtype {
	case TypeA:
		if len(data) != 4 {
			return nil, fmt.Errorf("dnswire: A rdata has %d bytes, want 4", len(data))
		}
		return A{Addr: netip.AddrFrom4([4]byte(data))}, nil
	case TypeAAAA:
		if len(data) != 16 {
			return nil, fmt.Errorf("dnswire: AAAA rdata has %d bytes, want 16", len(data))
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(data))}, nil
	case TypeNS:
		host, _, err := readName(msg, off)
		return NS{Host: host}, err
	case TypeCNAME:
		target, _, err := readName(msg, off)
		return CNAME{Target: target}, err
	case TypePTR:
		target, _, err := readName(msg, off)
		return PTR{Target: target}, err
	case TypeMX:
		if len(data) < 3 {
			return nil, ErrRDataTooShort
		}
		host, _, err := readName(msg, off+2)
		return MX{Preference: binary.BigEndian.Uint16(data), Host: host}, err
	case TypeSOA:
		mname, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, next, err := readName(msg, next)
		if err != nil {
			return nil, err
		}
		if next+20 > len(msg) || next+20 > end {
			return nil, ErrRDataTooShort
		}
		f := msg[next:]
		return SOA{
			MName: mname, RName: rname,
			Serial:  binary.BigEndian.Uint32(f),
			Refresh: binary.BigEndian.Uint32(f[4:]),
			Retry:   binary.BigEndian.Uint32(f[8:]),
			Expire:  binary.BigEndian.Uint32(f[12:]),
			Minimum: binary.BigEndian.Uint32(f[16:]),
		}, nil
	case TypeTXT:
		var texts []string
		for i := 0; i < len(data); {
			n := int(data[i])
			i++
			if i+n > len(data) {
				return nil, ErrRDataTooShort
			}
			texts = append(texts, string(data[i:i+n]))
			i += n
		}
		return TXT{Texts: texts}, nil
	case TypeSRV:
		if len(data) < 7 {
			return nil, ErrRDataTooShort
		}
		target, _, err := readName(msg, off+6)
		return SRV{
			Priority: binary.BigEndian.Uint16(data),
			Weight:   binary.BigEndian.Uint16(data[2:]),
			Port:     binary.BigEndian.Uint16(data[4:]),
			Target:   target,
		}, err
	case TypeOPT:
		return unpackOPTData(data)
	default:
		return Raw{Type: rtype, Data: append([]byte(nil), data...)}, nil
	}
}
