package scanner

import (
	"errors"
	"net"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

func TestPermutationCoversExactlyOnce(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 64, 100, 1000} {
		p, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out-of-range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: covered %d values", n, len(seen))
		}
	}
}

func TestQuickPermutationBijective(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%2000) + 1
		p, err := NewPermutation(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermutationIsNotSequential(t *testing.T) {
	p, _ := NewPermutation(1024, 9)
	sequentialRuns := 0
	prev, _ := p.Next()
	for i := 0; i < 200; i++ {
		v, ok := p.Next()
		if !ok {
			break
		}
		if v == prev+1 {
			sequentialRuns++
		}
		prev = v
	}
	if sequentialRuns > 20 {
		t.Errorf("permutation looks sequential: %d adjacent steps of 200", sequentialRuns)
	}
}

func TestPermutationEmpty(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("accepted empty permutation")
	}
}

// scanFixture builds a small world with a mixed port-853 population.
type scanFixture struct {
	world    *netsim.World
	ca       *certs.CA
	scanner  *Scanner
	expected netip.Addr
}

func newScanFixture(t *testing.T) *scanFixture {
	t.Helper()
	w := netsim.NewWorld(31)
	w.Geo.Register(netip.MustParsePrefix("100.64.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("100.64.1.0/24"), geo.Location{Country: "IE"})
	ca, err := certs.NewCA("Root", true)
	if err != nil {
		t.Fatal(err)
	}
	expected := netip.MustParseAddr("203.0.113.10")
	zone := dnsserver.NewZone("scan.example.org")
	zone.WildcardA = expected

	mk := func(ip string, leaf *certs.Leaf, h dnsserver.Handler) {
		dot.Serve(w, netip.MustParseAddr(ip), leaf, h, 0)
	}
	valid := func(cn string) *certs.Leaf {
		leaf, err := ca.Issue(certs.LeafOptions{CommonName: cn})
		if err != nil {
			t.Fatal(err)
		}
		return leaf
	}
	// Two resolvers of one provider (valid certs), one small provider
	// (self-signed), one dnsfilter-style fixed-answer resolver, one
	// port-open-but-not-DNS host, one with an expired cert.
	mk("100.64.0.10", valid("dns.bigdns.example"), zone)
	mk("100.64.1.11", valid("dot.bigdns.example"), zone)
	selfSigned, err := certs.SelfSigned(certs.LeafOptions{CommonName: "qq.dog"})
	if err != nil {
		t.Fatal(err)
	}
	mk("100.64.0.20", selfSigned, zone)
	mk("100.64.0.30", valid("dns.dnsfilter.example"), dnsserver.Static{Addr: netip.MustParseAddr("1.2.3.4")})
	dot.ServeNotDNS(w, netip.MustParseAddr("100.64.0.40"), valid("mail.example"))
	expired, err := ca.IssueExpired(certs.LeafOptions{CommonName: "old.example"}, 9*30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mk("100.64.0.50", expired, zone)

	// DoQ population on UDP/853: the bigdns pair dual-stacks DoT+DoQ, the
	// self-signed provider is DoQ too, one host answers QUIC but not DoQ,
	// and everything else stays DoT-only.
	doq.Serve(w, netip.MustParseAddr("100.64.0.10"), valid("dns.bigdns.example"), zone, 0)
	doq.Serve(w, netip.MustParseAddr("100.64.1.11"), valid("dot.bigdns.example"), zone, 0)
	doq.Serve(w, netip.MustParseAddr("100.64.0.20"), selfSigned, zone, 0)
	doq.ServeNotDoQ(w, netip.MustParseAddr("100.64.0.60"))

	s := &Scanner{
		World:       w,
		Sources:     []netip.Addr{netip.MustParseAddr("100.64.0.1"), netip.MustParseAddr("100.64.0.2")},
		Space:       Space{Base: netip.MustParseAddr("100.64.0.0"), Size: 512},
		OptOut:      &netsim.OptOutList{},
		ProbeDomain: "probe-1.scan.example.org",
		ExpectedA:   expected,
		Roots:       certs.Pool(ca),
		Workers:     4,
		Seed:        7,
	}
	return &scanFixture{world: w, ca: ca, scanner: s, expected: expected}
}

func TestScanDiscoversResolvers(t *testing.T) {
	f := newScanFixture(t)
	res, err := f.scanner.Scan("test-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.PortOpen != 6 {
		t.Errorf("port open = %d, want 6", res.PortOpen)
	}
	// The not-DNS host must be excluded from resolvers.
	if len(res.Resolvers) != 5 {
		t.Fatalf("resolvers = %d, want 5: %+v", len(res.Resolvers), res.Resolvers)
	}
	byAddr := map[string]Resolver{}
	for _, r := range res.Resolvers {
		byAddr[r.Addr.String()] = r
	}
	if r := byAddr["100.64.0.10"]; r.Provider != "bigdns.example" || r.CertStatus != certs.StatusValid || !r.AnswerCorrect {
		t.Errorf("big provider resolver = %+v", r)
	}
	if r := byAddr["100.64.0.20"]; r.CertStatus != certs.StatusSelfSigned {
		t.Errorf("self-signed resolver = %+v", r)
	}
	if r := byAddr["100.64.0.30"]; r.AnswerCorrect {
		t.Errorf("dnsfilter-style resolver marked correct: %+v", r)
	}
	if r := byAddr["100.64.0.50"]; r.CertStatus != certs.StatusExpired {
		t.Errorf("expired resolver = %+v", r)
	}
	// Provider grouping: bigdns.example has two addresses.
	if got := res.ProviderCounts()["bigdns.example"]; got != 2 {
		t.Errorf("bigdns.example count = %d, want 2", got)
	}
	invalid := res.InvalidCertProviders()
	if len(invalid) != 2 { // qq.dog (self-signed) + old.example (expired)
		t.Errorf("invalid providers = %v", invalid)
	}
	// Country grouping: 100.64.1.11 is in IE.
	if res.CountryCounts()["IE"] != 1 {
		t.Errorf("country counts = %v", res.CountryCounts())
	}
}

func TestScanDoQDiscoversResolvers(t *testing.T) {
	f := newScanFixture(t)
	res, err := f.scanner.ScanDoQ("doq-1")
	if err != nil {
		t.Fatal(err)
	}
	// Three DoQ servers plus the QUIC-but-not-DoQ host answer the sweep.
	if res.PortOpen != 4 {
		t.Errorf("UDP/853 open = %d, want 4", res.PortOpen)
	}
	if len(res.Resolvers) != 3 {
		t.Fatalf("doq resolvers = %d, want 3: %+v", len(res.Resolvers), res.Resolvers)
	}
	byAddr := map[string]Resolver{}
	for _, r := range res.Resolvers {
		byAddr[r.Addr.String()] = r
	}
	if r := byAddr["100.64.0.10"]; r.Provider != "bigdns.example" || r.CertStatus != certs.StatusValid || !r.AnswerCorrect {
		t.Errorf("big provider doq resolver = %+v", r)
	}
	if r := byAddr["100.64.0.20"]; r.CertStatus != certs.StatusSelfSigned {
		t.Errorf("self-signed doq resolver = %+v", r)
	}
	if got := res.ProviderCounts()["bigdns.example"]; got != 2 {
		t.Errorf("bigdns.example doq count = %d, want 2", got)
	}
	if res.CountryCounts()["IE"] != 1 {
		t.Errorf("doq country counts = %v", res.CountryCounts())
	}
}

// The DoQ scan obeys the same parallel-engine contract as the DoT scan:
// identical merged results at every worker count.
func TestScanDoQDeterministicAcrossWorkerCounts(t *testing.T) {
	var want *Result
	for _, workers := range []int{1, 4, 16} {
		f := newScanFixture(t)
		f.scanner.Workers = workers
		res, err := f.scanner.ScanDoQ("det")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d: doq scan result diverged\n got: %+v\nwant: %+v", workers, res, want)
		}
	}
}

// TestScanDeterministicAcrossWorkerCounts is the scanner's half of the
// parallel-engine contract: the merged scan result must be identical for
// every worker count.
func TestScanDeterministicAcrossWorkerCounts(t *testing.T) {
	var want *Result
	for _, workers := range []int{1, 4, 16} {
		f := newScanFixture(t)
		f.scanner.Workers = workers
		res, err := f.scanner.Scan("det")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d: scan result diverged\n got: %+v\nwant: %+v", workers, res, want)
		}
	}
}

func TestScanTreatsBlackholeAsClosed(t *testing.T) {
	f := newScanFixture(t)
	// Blackhole one of the serving resolvers: probes must time out rather
	// than fail authentication, and the scan must count the port closed.
	dropped := netip.MustParseAddr("100.64.0.10")
	f.world.AddPolicy(netsim.PolicyFunc(func(_ *netsim.World, _, to netip.Addr, _ uint16, _ netsim.Proto) netsim.Verdict {
		if to == dropped {
			return netsim.Verdict{Action: netsim.ActBlackhole}
		}
		return netsim.Verdict{}
	}))

	_, err := f.world.Dial(f.scanner.Sources[0], dropped, dot.Port)
	if !errors.Is(err, netsim.ErrBlackhole) {
		t.Fatalf("dial err = %v, want ErrBlackhole", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("dial err = %v, want a net.Error with Timeout() == true", err)
	}

	res, err := f.scanner.Scan("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	if res.PortOpen != 5 {
		t.Errorf("port open = %d, want 5 (blackholed host excluded)", res.PortOpen)
	}
	for _, r := range res.Resolvers {
		if r.Addr == dropped {
			t.Errorf("blackholed host %v still listed as resolver", dropped)
		}
	}
}

func TestScanHonorsOptOut(t *testing.T) {
	f := newScanFixture(t)
	f.scanner.OptOut.Add(netip.MustParsePrefix("100.64.0.10/32"))
	res, err := f.scanner.Scan("optout")
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedOptOut != 1 {
		t.Errorf("skipped = %d, want 1", res.SkippedOptOut)
	}
	for _, r := range res.Resolvers {
		if r.Addr == netip.MustParseAddr("100.64.0.10") {
			t.Error("opted-out address was probed")
		}
	}
}

func TestScanNoSources(t *testing.T) {
	f := newScanFixture(t)
	f.scanner.Sources = nil
	if _, err := f.scanner.Scan("x"); err == nil {
		t.Error("scan without sources succeeded")
	}
}

func TestInspectCorpus(t *testing.T) {
	urls := []string{
		"https://dns.example.com/dns-query",
		"https://dns.example.com/dns-query?dns=AAAA", // params stripped, dedup
		"https://dns.google/resolve",
		"https://cdn.example.net/assets/app.js", // noise
		"https://hidden.example.org/secret-doh", // unknown path: missed
		"http://insecure.example/dns-query",     // not https
		"https://dns.233py.example/dns-query",
	}
	cands := InspectCorpus(urls)
	if len(cands) != 3 {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].Host != "dns.233py.example" {
		t.Errorf("order/dedup wrong: %+v", cands)
	}
}

func TestDoHDiscoveryVerify(t *testing.T) {
	f := newScanFixture(t)
	dohIP := netip.MustParseAddr("100.64.0.100")
	zone := dnsserver.NewZone("scan.example.org")
	zone.WildcardA = f.expected
	leaf, err := f.ca.Issue(certs.LeafOptions{CommonName: "doh.worker.example"})
	if err != nil {
		t.Fatal(err)
	}
	doh.Serve(f.world, dohIP, leaf, &doh.Server{Handler: zone})

	d := &DoHDiscovery{
		World: f.world,
		From:  netip.MustParseAddr("100.64.0.1"),
		Roots: certs.Pool(f.ca),
		Resolve: map[string]netip.Addr{
			"doh.worker.example": dohIP,
			"dead.example":       netip.MustParseAddr("100.64.0.99"),
		},
		ProbeDomain: "probe-2.scan.example.org",
		KnownList:   []string{"https://known.example/dns-query{?dns}"},
	}
	found := d.Verify([]DoHCandidate{
		{Host: "doh.worker.example", Path: "/dns-query"},
		{Host: "dead.example", Path: "/dns-query"},
		{Host: "unresolvable.example", Path: "/dns-query"},
	})
	if len(found) != 1 {
		t.Fatalf("found = %+v", found)
	}
	if found[0].InKnownList {
		t.Error("new resolver wrongly marked as known")
	}
	if found[0].Template.Host != "doh.worker.example" {
		t.Errorf("template = %+v", found[0].Template)
	}
}

func TestScanVirtualDuration(t *testing.T) {
	f := newScanFixture(t)
	// The paper's full-IPv4 sweeps take 24 hours; at this space size and
	// rate, duration scales linearly with the probed space.
	f.scanner.RatePPS = 64
	res, err := f.scanner.Scan("rated")
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * time.Second; res.VirtualDuration != want { // 512 addrs / 64 pps
		t.Errorf("virtual duration = %v, want %v", res.VirtualDuration, want)
	}
}
