package bufpool_test

import (
	"sync"
	"testing"

	"dnsencryption.info/doe/internal/bufpool"
)

func TestGetCapacityClasses(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 512},
		{1, 512},
		{512, 512},
		{513, 2048},
		{2049, 16384},
		{16385, bufpool.MaxPooled},
		{bufpool.MaxPooled, bufpool.MaxPooled},
		{bufpool.MaxPooled + 1, bufpool.MaxPooled + 1},
	}
	for _, c := range cases {
		b := bufpool.Get(c.n)
		if len(*b) != 0 {
			t.Errorf("Get(%d): len = %d, want 0", c.n, len(*b))
		}
		if cap(*b) != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, cap(*b), c.wantCap)
		}
		bufpool.Put(b)
	}
}

func TestPutResetsLength(t *testing.T) {
	b := bufpool.Get(512)
	*b = append(*b, "sensitive"...)
	bufpool.Put(b)
	// Whatever buffer the next Get hands out, it must arrive empty: a
	// previous user's bytes are only reachable by deliberate reslicing.
	nb := bufpool.Get(512)
	if len(*nb) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(*nb))
	}
	bufpool.Put(nb)
}

func TestPutDropsOversize(t *testing.T) {
	before := bufpool.Snapshot()
	huge := make([]byte, 0, bufpool.MaxPooled+1)
	bufpool.Put(&huge)
	var tiny []byte
	bufpool.Put(&tiny)
	bufpool.Put(nil)
	after := bufpool.Snapshot()
	if after.Puts != before.Puts {
		t.Fatalf("out-of-class Put was accepted: puts %d -> %d", before.Puts, after.Puts)
	}
}

func TestStatsBalance(t *testing.T) {
	for i := 0; i < 32; i++ {
		bufpool.Put(bufpool.Get(512))
	}
	s := bufpool.Snapshot()
	if s.Gets != s.Hits+s.Misses {
		t.Fatalf("gets %d != hits %d + misses %d", s.Gets, s.Hits, s.Misses)
	}
	if s.Hits == 0 {
		t.Fatal("no pool hits after 32 get/put cycles")
	}
}

func TestGrow(t *testing.T) {
	b := make([]byte, 0, 4)
	b = append(b, 1, 2)
	g := bufpool.Grow(b, 2)
	if len(g) != 4 || cap(g) != 4 {
		t.Fatalf("in-place grow: len %d cap %d, want 4/4", len(g), cap(g))
	}
	g = bufpool.Grow(g, 100)
	if len(g) != 104 || g[0] != 1 || g[1] != 2 {
		t.Fatalf("reallocating grow lost data: len %d, prefix %v", len(g), g[:2])
	}
}

// TestConcurrentOwnership is the race/leak gate: under -race it proves a
// pooled buffer is never owned by two users at once and that one user's
// writes are never observable through another's buffer.
func TestConcurrentOwnership(t *testing.T) {
	var active sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		pattern := byte(g + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := bufpool.Get(512)
				if _, loaded := active.LoadOrStore(b, pattern); loaded {
					t.Error("pool handed the same buffer to two users at once")
					return
				}
				*b = (*b)[:64]
				for j := range *b {
					(*b)[j] = pattern
				}
				for j := range *b {
					if (*b)[j] != pattern {
						t.Errorf("buffer byte %d = %d, want %d: contents leaked across users", j, (*b)[j], pattern)
						return
					}
				}
				// Release ownership before Put: after Put the pool may hand
				// this pointer to another goroutine immediately.
				active.Delete(b)
				bufpool.Put(b)
			}
		}()
	}
	wg.Wait()
}
