package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/obs"
)

// TestGoldenTraceSmall pins the telemetry trace of the miniature study to
// the committed golden, byte for byte, at two worker counts: the same
// guarantee the reports carry, extended to the span tree. The golden is
// regenerated with
//
//	go run ./cmd/doereport -small -trace internal/core/testdata/trace_small.jsonl -o /dev/null
//
// (any -workers value produces the same bytes; `make trace-smoke` diffs a
// fresh run against this file too).
func TestGoldenTraceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("two full miniature studies take ~1 min")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "trace_small.jsonl"))
	if err != nil {
		t.Fatalf("reading committed golden trace: %v", err)
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			cfg := TestConfig()
			cfg.Workers = workers
			cfg.Telemetry = true
			s, err := NewStudy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.RunAll(io.Discard); err != nil {
				t.Fatalf("RunAll: %v", err)
			}
			var b bytes.Buffer
			if err := s.WriteTrace(&b); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			recs, err := obs.ReadTrace(bytes.NewReader(b.Bytes()))
			if err != nil {
				t.Fatalf("trace does not validate: %v", err)
			}
			if len(recs) != s.Obs.SpanCount()+1 {
				t.Errorf("trace has %d records, recorder counts %d spans", len(recs), s.Obs.SpanCount())
			}
			diffReports(t, "golden", string(golden), fmt.Sprintf("workers=%d", workers), b.String())
		})
	}
}

// TestTelemetryKeepsReportsByteIdentical is the tentpole's non-interference
// guarantee on the chaos matrix: with telemetry AND fault injection on,
// the report, the trace and the deterministic metric snapshot are all
// byte-identical across worker counts — and the report is the telemetry-off
// report plus exactly the appended "== telemetry:" section.
func TestTelemetryKeepsReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix rows take ~30s")
	}
	run := func(workers int, telemetry bool) (report, trace, snap string) {
		cfg := matrixConfig()
		cfg.Workers = workers
		cfg.Faults = FaultsConfig{Profile: "harsh", Seed: 1}
		cfg.Telemetry = telemetry
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := s.RunAll(&b); err != nil {
			t.Fatalf("workers=%d telemetry=%v: %v", workers, telemetry, err)
		}
		if !telemetry {
			return b.String(), "", ""
		}
		var tb bytes.Buffer
		if err := s.WriteTrace(&tb); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return b.String(), tb.String(), s.Obs.Metrics().Snapshot(false)
	}

	r1, t1, s1 := run(1, true)
	r4, t4, s4 := run(4, true)
	r8, t8, s8 := run(8, true)
	diffReports(t, "workers=1", r1, "workers=4", r4)
	diffReports(t, "workers=1", r1, "workers=8", r8)
	diffReports(t, "trace workers=1", t1, "trace workers=4", t4)
	diffReports(t, "trace workers=1", t1, "trace workers=8", t8)
	diffReports(t, "snapshot workers=1", s1, "snapshot workers=4", s4)
	diffReports(t, "snapshot workers=1", s1, "snapshot workers=8", s8)

	if !strings.Contains(r1, "== telemetry: deterministic metrics and trace summary\n") {
		t.Fatal("telemetry-enabled report missing the telemetry section")
	}
	// Faults annotate the trace: the injector must have stamped events on
	// the lookup spans it perturbed.
	if !strings.Contains(t1, `"fault:`) {
		t.Error("chaos trace carries no fault events")
	}
	// Chaos metrics reach the snapshot deterministically — including the
	// shard-merged streaming sketch family.
	for _, want := range []string{"faults_injected_total{kind=", "resolver_retries_total",
		"vantage_lookups_total{", "vantage_query_latency_sketch{"} {
		if !strings.Contains(s1, want) {
			t.Errorf("deterministic snapshot missing %q:\n%s", want, s1)
		}
	}

	// Telemetry never perturbs the measurements: the report with telemetry
	// is the telemetry-off report with only the section appended.
	rOff, _, _ := run(4, false)
	base, _, found := strings.Cut(r1, "== telemetry:")
	if !found {
		t.Fatal("telemetry section marker not found")
	}
	diffReports(t, "telemetry-off", rOff, "telemetry-on minus section", base)
}

// TestTelemetryOffHasNoRecorder guards the default path: without
// Config.Telemetry the study carries no recorder, RunAll emits no
// telemetry section, and WriteTrace refuses.
func TestTelemetryOffHasNoRecorder(t *testing.T) {
	s := study(t)
	if s.Obs != nil {
		t.Fatal("telemetry recorder present with Config.Telemetry off")
	}
	if err := s.WriteTrace(io.Discard); err == nil {
		t.Fatal("WriteTrace succeeded with telemetry off")
	}
}
