// Quickstart: build a tiny simulated Internet, run a resolver that speaks
// clear-text DNS, DoT and DoH, and query it with all three clients —
// comparing the latency of fresh versus reused encrypted connections, the
// paper's central performance observation (§4.3).
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

func main() {
	// 1. A world: one client in Germany, one resolver in the Netherlands.
	world := netsim.NewWorld(42)
	client := netip.MustParseAddr("10.0.0.1")
	resolver := netip.MustParseAddr("192.0.2.53")
	world.Geo.Register(netip.MustParsePrefix("10.0.0.0/24"), geo.Location{Country: "DE", ASN: 3320, ASName: "DTAG"})
	world.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL", ASN: 1136, ASName: "KPN"})

	// 2. An authoritative zone answering anything under example.test.
	zone := dnsserver.NewZone("example.test")
	zone.WildcardA = netip.MustParseAddr("203.0.113.10")

	// 3. Serve it over UDP/53, TCP/53, DoT/853 and DoH/443.
	ca, err := certs.NewCA("Quickstart Root", true)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafOptions{CommonName: "dns.example.test", IPs: []netip.Addr{resolver}})
	if err != nil {
		log.Fatal(err)
	}
	world.RegisterDatagram(resolver, 53, dnsserver.DatagramHandler(zone))
	world.RegisterStream(resolver, 53, func(c *netsim.Conn) { defer c.Close(); dnsserver.ServeStream(c, zone) })
	dot.Serve(world, resolver, leaf, zone, time.Millisecond)
	doh.Serve(world, resolver, leaf, &doh.Server{Handler: zone, JSONAPI: true})

	// 4. Clear-text lookup over UDP.
	stub := dnsclient.New(world, client)
	res, err := stub.QueryUDP(resolver, "www.example.test", dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := res.FirstA()
	fmt.Printf("DNS/UDP  answer=%v  latency=%v\n", addr, res.Latency)

	// 5. DoT with the Strict profile: authenticated and encrypted.
	roots := certs.Pool(ca)
	dotClient := dot.NewClient(world, client, roots, dot.Strict)
	conn, err := dotClient.Dial(resolver)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("DoT      session setup (TCP+TLS): %v\n", conn.SetupLatency())
	for i := 1; i <= 3; i++ {
		r, err := conn.Query(fmt.Sprintf("q%d.example.test", i), dnswire.TypeA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DoT      reused-connection query %d: %v\n", i, r.Latency)
	}

	// 6. DoH: wire-format GET plus the JSON API.
	dohClient := doh.NewClient(world, client, roots)
	dohClient.Override["dns.example.test"] = resolver
	tmpl, _ := doh.ParseTemplate("https://dns.example.test/dns-query{?dns}")
	one, err := dohClient.Query(tmpl, "doh.example.test", dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DoH      one-shot query (incl. connection setup): %v\n", one.Latency)

	dohConn, err := dohClient.Dial(tmpl, resolver)
	if err != nil {
		log.Fatal(err)
	}
	defer dohConn.Close()
	jr, err := dohConn.QueryJSON("json.example.test", dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DoH JSON Status=%d Answer=%v\n", jr.Status, jr.Answer)
}
