package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Sketch is a fixed log-spaced-bucket latency sketch: the streaming
// counterpart of Histogram for distributions whose range spans several
// orders of magnitude. The bucket layout is fixed at construction from
// SketchOpts, so two sketches built from equal opts are structurally
// identical and Merge is bucket-wise integer addition — associative,
// commutative, and order-independent. That is the property that lets
// per-shard sketches fold into the study registry in any merge tree and
// still produce byte-identical snapshots at any worker count.
//
// Like every obs metric it stores integer counts and integer microsecond
// sums only; observations are virtual-clock durations, never wall time.
// All methods are nil-safe.
type Sketch struct {
	opts    SketchOpts
	bounds  []time.Duration // strictly increasing upper bucket edges
	buckets []atomic.Int64  // one per bound; +Inf overflow implied by count
	count   atomic.Int64
	sumUS   atomic.Int64
}

// SketchOpts fixes a sketch's bucket layout: bounds start at Min and grow
// by a factor of 10^(1/PerDecade) until they reach Max. The zero value
// selects DefaultSketchOpts. Layout is part of a sketch family's identity:
// merging sketches with different opts is an error.
type SketchOpts struct {
	Min       time.Duration // lowest bucket's upper edge
	Max       time.Duration // bounds stop at the first edge >= Max
	PerDecade int           // buckets per factor of 10
}

// DefaultSketchOpts covers virtual latencies from sub-millisecond LAN RTTs
// to multi-second stalled fault paths with ~30% relative quantile error.
func DefaultSketchOpts() SketchOpts {
	return SketchOpts{Min: 100 * time.Microsecond, Max: 10 * time.Second, PerDecade: 8}
}

func (o SketchOpts) orDefault() SketchOpts {
	if o == (SketchOpts{}) {
		return DefaultSketchOpts()
	}
	return o
}

func (o SketchOpts) validate() error {
	if o.Min <= 0 || o.Max < o.Min || o.PerDecade <= 0 {
		return fmt.Errorf("obs: invalid SketchOpts{Min: %v, Max: %v, PerDecade: %d}",
			o.Min, o.Max, o.PerDecade)
	}
	return nil
}

// sketchBounds derives the bucket edges from opts. Edges are rounded to
// whole microseconds (the registry's base unit) and deduplicated, so the
// layout is a pure deterministic function of opts.
func sketchBounds(o SketchOpts) []time.Duration {
	minUS := float64(o.Min / time.Microsecond)
	var bounds []time.Duration
	for i := 0; ; i++ {
		us := int64(math.Round(minUS * math.Pow(10, float64(i)/float64(o.PerDecade))))
		b := time.Duration(us) * time.Microsecond
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
		if b >= o.Max {
			return bounds
		}
	}
}

// NewSketch builds a standalone sketch (registry-less use, e.g. tests).
// It panics on invalid opts; registry accessors validate before calling.
func NewSketch(opts SketchOpts) *Sketch {
	opts = opts.orDefault()
	if err := opts.validate(); err != nil {
		panic(err.Error())
	}
	bounds := sketchBounds(opts)
	return &Sketch{opts: opts, bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
}

// Observe records one virtual duration; nil-safe. Durations above the top
// edge land in the implicit overflow bucket (counted, clamped by Quantile).
func (s *Sketch) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.count.Add(1)
	s.sumUS.Add(int64(d / time.Microsecond))
	if i := s.bucketIndex(d); i >= 0 {
		s.buckets[i].Add(1)
	}
}

// bucketIndex returns the first bucket whose edge is >= d, or -1 for
// overflow. Binary search keeps Observe O(log buckets) on the hot path.
func (s *Sketch) bucketIndex(d time.Duration) int {
	lo, hi := 0, len(s.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.bounds) {
		return -1
	}
	return lo
}

// Count returns the number of observations (0 on nil).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// SumUS returns the sum of observations in microseconds (0 on nil).
func (s *Sketch) SumUS() int64 {
	if s == nil {
		return 0
	}
	return s.sumUS.Load()
}

// Quantile estimates the q-quantile with the same contract as
// Histogram.Quantile: q clamps to [0, 1], an empty sketch returns 0, and
// overflow observations clamp to the top edge.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s == nil {
		return 0
	}
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	rank := clampQ(q) * float64(total)
	var cum int64
	lower := time.Duration(0)
	for i, b := range s.bounds {
		n := s.buckets[i].Load()
		if float64(cum+n) >= rank {
			if n == 0 {
				return b
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + time.Duration(frac*float64(b-lower))
		}
		cum += n
		lower = b
	}
	return s.bounds[len(s.bounds)-1]
}

// Merge folds o's observations into s bucket-by-bucket. It fails if the
// two sketches were built from different opts; nil receiver or argument
// is a no-op.
func (s *Sketch) Merge(o *Sketch) error {
	if s == nil || o == nil {
		return nil
	}
	if s.opts != o.opts {
		return fmt.Errorf("obs: sketch merge: opts mismatch (%+v vs %+v)", s.opts, o.opts)
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			s.buckets[i].Add(n)
		}
	}
	s.count.Add(o.count.Load())
	s.sumUS.Add(o.sumUS.Load())
	return nil
}

// bucketCounts returns per-edge counts plus the overflow count.
func (s *Sketch) bucketCounts() ([]int64, int64) {
	counts := make([]int64, len(s.bounds))
	var within int64
	for i := range s.bounds {
		counts[i] = s.buckets[i].Load()
		within += counts[i]
	}
	return counts, s.count.Load() - within
}

// Sketch returns the deterministic sketch name{labels}, creating it on
// first use. Opts are fixed by the first caller (zero opts = defaults);
// later callers inherit the registered layout regardless of what they
// pass, mirroring Histogram's bounds contract.
func (r *Registry) Sketch(name string, opts SketchOpts, labels ...string) *Sketch {
	if r == nil {
		return nil
	}
	opts = opts.orDefault()
	if err := opts.validate(); err != nil {
		panic(err.Error())
	}
	f := r.lookup(name, kindSketch, false, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sketchOpts == (SketchOpts{}) {
		f.sketchOpts = opts
	}
	ls := labelString(labels)
	if s, ok := f.insts[ls].(*Sketch); ok {
		return s
	}
	s := NewSketch(f.sketchOpts)
	f.insts[ls] = s
	return s
}
