// Command doetrace works with the JSONL span traces the other binaries
// write via -trace: it validates the schema, renders the span tree for
// humans, and byte-compares a trace against a pinned golden.
//
//	doetrace trace.jsonl                   # validate schema and structure
//	doetrace -render trace.jsonl           # print the indented span tree
//	doetrace -diff golden.jsonl trace.jsonl # validate both, then byte-compare
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"dnsencryption.info/doe/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doetrace: ")
	render := flag.Bool("render", false, "print the trace as an indented span tree")
	diff := flag.Bool("diff", false, "compare two traces byte-for-byte (args: golden actual)")
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			log.Fatalf("-diff needs exactly two arguments: golden actual")
		}
		diffTraces(flag.Arg(0), flag.Arg(1))
	case flag.NArg() == 1:
		recs := load(flag.Arg(0))
		if *render {
			fmt.Print(obs.RenderTree(recs))
			return
		}
		fmt.Printf("%s: valid trace, %d spans\n", flag.Arg(0), len(recs))
	default:
		log.Fatalf("usage: doetrace [-render] trace.jsonl | doetrace -diff golden.jsonl trace.jsonl")
	}
}

// load reads and validates one trace file, exiting on any schema or
// structure violation.
func load(path string) []obs.Record {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("%v", err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return recs
}

// diffTraces validates both files and then compares raw bytes, reporting
// the first differing line — the determinism contract is byte-level, not
// just structural.
func diffTraces(goldenPath, actualPath string) {
	load(goldenPath)
	load(actualPath)
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		log.Fatalf("%v", err)
	}
	actual, err := os.ReadFile(actualPath)
	if err != nil {
		log.Fatalf("%v", err)
	}
	if bytes.Equal(golden, actual) {
		fmt.Printf("traces identical (%d bytes)\n", len(golden))
		return
	}
	gl := bytes.Split(golden, []byte("\n"))
	al := bytes.Split(actual, []byte("\n"))
	for i := 0; i < len(gl) || i < len(al); i++ {
		var g, a []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(al) {
			a = al[i]
		}
		if !bytes.Equal(g, a) {
			log.Fatalf("traces differ at line %d:\n  golden: %s\n  actual: %s", i+1, g, a)
		}
	}
	log.Fatalf("traces differ in length: golden %d bytes, actual %d bytes", len(golden), len(actual))
}
