package resolver

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
)

// pipeAddr derives a per-name answer so the pipelining tests can prove each
// concurrent query got its own response: p<i>. -> 10.9.<i/256>.<i%256>.
func pipeAddr(name string) netip.Addr {
	var i int
	fmt.Sscanf(name, "p%d.", &i)
	return netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
}

// serveDoTReversed registers a DoT server that collects batch queries and
// answers them all in REVERSED order as one coalesced write — the worst-case
// legal reordering under RFC 7766 §7 — so the pipelined session's ID demux
// is what routes each response to its caller.
func serveDoTReversed(t *testing.T, w *netsim.World, ca *certs.CA, batch int) {
	t.Helper()
	leaf, err := ca.Issue(certs.LeafOptions{
		CommonName: "dns.provider.example",
		DNSNames:   []string{"dns.provider.example"},
		IPs:        []netip.Addr{serverIP},
	})
	if err != nil {
		t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	w.RegisterStream(serverIP, dot.Port, func(conn *netsim.Conn) {
		defer conn.Close()
		tc := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{cert}})
		if tc.Handshake() != nil {
			return
		}
		for {
			resps := make([][]byte, 0, batch)
			for i := 0; i < batch; i++ {
				msg, err := dnswire.ReadTCP(tc)
				if err != nil {
					return
				}
				m, err := dnswire.Unpack(msg)
				if err != nil {
					return
				}
				resp := m.Reply()
				resp.AddAnswer(m.Question1().Name, 60, dnswire.A{Addr: pipeAddr(m.Question1().Name)})
				packed, err := resp.Pack()
				if err != nil {
					return
				}
				resps = append(resps, packed)
			}
			var out []byte
			for i := len(resps) - 1; i >= 0; i-- {
				if out, err = dnswire.AppendTCP(out, resps[i]); err != nil {
					return
				}
			}
			if _, err := tc.Write(out); err != nil {
				return
			}
		}
	})
}

// TestPipelinedDoTTransportConcurrentExchange drives 16 concurrent Exchanges
// through one reuse Transport whose DoT session pipelines, against a server
// that answers in reversed order — per-query answers prove the demux, and
// concurrent LastLatency/Stats readers make this the race regression test
// for the atomic accounting.
func TestPipelinedDoTTransportConcurrentExchange(t *testing.T) {
	const n = 16
	w := netsim.NewWorld(17)
	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}
	serveDoTReversed(t, w, ca, n)

	c := New(w, clientIP, certs.Pool(ca), WithProfile(dot.Strict), WithMaxInFlight(n))
	tr := c.DoT(serverIP)
	defer tr.Close()
	if tr.MaxInFlight != n {
		t.Fatalf("Transport.MaxInFlight = %d, want %d", tr.MaxInFlight, n)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.LastLatency()
				_ = tr.Stats()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("p%d.measure.example.org", i)
			m, err := tr.Exchange(context.Background(), query(name))
			if err != nil {
				errs[i] = err
				return
			}
			if a, ok := m.FirstA(); !ok || a != pipeAddr(name) {
				errs[i] = fmt.Errorf("answer %v, want %v", m.Answers, pipeAddr(name))
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if tr.LastLatency() <= 0 {
		t.Error("no virtual latency recorded for concurrent exchanges")
	}
	st := tr.Stats()
	if st.Attempts != n || st.HardFailures != 0 {
		t.Errorf("stats = %+v, want %d attempts and no hard failures", st, n)
	}
}

// TestMultiplexedDoHSessionConcurrentExchange proves Dial wires MaxInFlight
// into HTTP/2 stream multiplexing for DoH sessions.
func TestMultiplexedDoHSessionConcurrentExchange(t *testing.T) {
	const n = 16
	f := newFixture(t)
	ctx := context.Background()
	c := f.client(t, WithMaxInFlight(n))
	tmpl := doh.Template{Host: "dns.provider.example", Path: "/dns-query"}
	sess, err := c.Dial(ctx, ProtoDoH, Endpoint{Addr: serverIP, Template: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	before := sess.Elapsed()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := sess.Exchange(ctx, query(fmt.Sprintf("h%d.measure.example.org", i)))
			if err != nil {
				errs[i] = err
				return
			}
			if a, ok := m.FirstA(); !ok || a != answerIP {
				errs[i] = fmt.Errorf("answer %v", m.Answers)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if sess.Elapsed() <= before {
		t.Error("concurrent exchanges consumed no virtual time")
	}
}

// cutInjector resets DoT connections in place of the Nth segment the client
// would receive; other flows are clean.
type cutInjector struct{ segments int }

func (c cutInjector) StreamFault(from, to netip.Addr, port uint16) netsim.DialFault {
	if port == dot.Port {
		return netsim.DialFault{CutAfterSegments: c.segments}
	}
	return netsim.DialFault{}
}

func (c cutInjector) DatagramFault(from, to netip.Addr, port uint16) netsim.DatagramFault {
	return netsim.DatagramFault{}
}

// TestMidStreamResetFailsAllInFlight injects a connection reset in place of
// the first post-handshake segment of a pipelined DoT session: every
// concurrent Exchange must fail, each wrapping ErrSessionClosed.
func TestMidStreamResetFailsAllInFlight(t *testing.T) {
	const n = 16
	ctx := context.Background()

	// The TLS handshake consumes a server-dependent number of inbound
	// segments; probe for the smallest cut point that lets the dial finish,
	// so the reset lands exactly on the first segment carrying DNS data.
	// Worlds are rebuilt per probe, so the fault history starts fresh.
	cutAt := -1
	for k := 2; k < 64; k++ {
		f := newFixture(t)
		f.world.SetFaults(cutInjector{segments: k})
		sess, err := f.client(t, WithMaxInFlight(n)).Dial(ctx, ProtoDoT, Endpoint{Addr: serverIP})
		if err == nil {
			sess.Close()
			cutAt = k
			break
		}
	}
	if cutAt < 0 {
		t.Fatal("no cut point lets the DoT handshake complete")
	}

	f := newFixture(t)
	f.world.SetFaults(cutInjector{segments: cutAt})
	tr := f.client(t, WithMaxInFlight(n)).DoT(serverIP)
	defer tr.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tr.Exchange(ctx, query(fmt.Sprintf("rst%d.measure.example.org", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("query %d succeeded across a mid-stream reset", i)
			continue
		}
		if !errors.Is(err, ErrSessionClosed) {
			t.Errorf("query %d: err = %v, want ErrSessionClosed", i, err)
		}
	}
	if st := tr.Stats(); st.HardFailures != n {
		t.Errorf("hard failures = %d, want %d", st.HardFailures, n)
	}
}

// A DoQ session the server has forgotten must fail concurrent in-flight
// exchanges with ErrSessionClosed (the retryable session-death signal), and
// a retrying transport must then recover by redialing — 0-RTT, since the
// client cache holds a ticket from the first dial.
func TestDoQSessionDeathSurfacesAsSessionClosed(t *testing.T) {
	const n = 8
	f := newFixture(t)
	ctx := context.Background()
	c := f.client(t, WithMaxInFlight(n))
	tr := c.DoQ(serverIP)
	if _, err := tr.Exchange(ctx, query("pre.measure.example.org")); err != nil {
		t.Fatal(err)
	}
	f.doq.Reset()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tr.Exchange(ctx, query(fmt.Sprintf("q%d.measure.example.org", i)))
		}(i)
	}
	wg.Wait()
	// Callers racing the dead session fail with ErrSessionClosed; callers
	// that arrive after the drop ride a fresh redial and succeed. At least
	// the first flight into the forgotten connection must have failed.
	failures := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failures++
		if !errors.Is(err, ErrSessionClosed) {
			t.Errorf("query %d: err = %v, want ErrSessionClosed", i, err)
		}
	}
	if failures == 0 {
		t.Error("no exchange failed across the server reset")
	}

	// With a retry budget the same failure recovers on a fresh connection.
	rc := f.client(t, WithRetry(RetryPolicy{Attempts: 2}))
	rtr := rc.DoQ(serverIP)
	if _, err := rtr.Exchange(ctx, query("warm.measure.example.org")); err != nil {
		t.Fatal(err)
	}
	f.doq.Reset()
	m, err := rtr.Exchange(ctx, query("recovered.measure.example.org"))
	checkAnswer(t, m, err, "doq-retry")
	st := rtr.Stats()
	if st.Retries != 1 || st.Recovered != 1 || st.Redials != 1 {
		t.Errorf("stats = %+v, want exactly one retry, one recovery, one redial", st)
	}
}

func TestProtoString(t *testing.T) {
	for p, want := range map[Proto]string{ProtoTCP: "tcp", ProtoDoT: "dot", ProtoDoH: "doh", ProtoDoQ: "doq", Proto(9): "proto(9)", Proto(-1): "proto(-1)"} {
		if got := p.String(); got != want {
			t.Errorf("Proto(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

// Every named protocol must round-trip String → ParseProto → String, and
// unknown labels must be rejected — the contract cmd flag plumbing leans on.
func TestParseProtoRoundTrip(t *testing.T) {
	for _, p := range []Proto{ProtoTCP, ProtoDoT, ProtoDoH, ProtoDoQ} {
		got, err := ParseProto(p.String())
		if err != nil {
			t.Errorf("ParseProto(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("ParseProto(%q) = %v, want %v", p.String(), got, p)
		}
	}
	for _, bad := range []string{"", "udp", "DoT", "doq ", "quic", "proto(9)"} {
		if p, err := ParseProto(bad); err == nil {
			t.Errorf("ParseProto(%q) = %v, want error", bad, p)
		}
	}
}

func TestDialRejectsUnknownProto(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client(t).Dial(context.Background(), Proto(9), Endpoint{Addr: serverIP}); err == nil {
		t.Error("Dial with unknown proto succeeded")
	}
}

// TestPipelinedTCPSessionViaDial covers the remaining Dial arm: a clear-text
// TCP session with pipelining enabled still answers every concurrent query.
func TestPipelinedTCPSessionViaDial(t *testing.T) {
	const n = 8
	f := newFixture(t)
	ctx := context.Background()
	sess, err := f.client(t, WithMaxInFlight(n)).Dial(ctx, ProtoTCP, Endpoint{Addr: serverIP})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := sess.Exchange(ctx, query(fmt.Sprintf("t%d.measure.example.org", i)))
			if err != nil {
				errs[i] = err
				return
			}
			if a, ok := m.FirstA(); !ok || a != answerIP {
				errs[i] = fmt.Errorf("answer %v", m.Answers)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
}
