package obs

import (
	"sync/atomic"
)

// Phase tracks done/total task counts for one named stage of a campaign —
// the event family behind the /progress endpoint. Totals and done counts
// are deterministic (they count tasks, not time), but a phase's *current*
// reading is a live view: scrape it whenever, the final values depend only
// on (seed, config). All methods are nil-safe.
type Phase struct {
	name  string
	done  atomic.Int64
	total atomic.Int64
}

// AddTotal grows the phase's expected task count; runner.MapCtx calls it
// once per pool launch, so a pool reused across calls accumulates.
func (p *Phase) AddTotal(n int64) {
	if p == nil {
		return
	}
	p.total.Add(n)
}

// Done marks n tasks complete.
func (p *Phase) Done(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// PhaseStatus is one row of a progress snapshot.
type PhaseStatus struct {
	Name  string `json:"name"`
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
}

// Phase returns the recorder's phase named name, creating it on first
// use. Phases report in registration order, which is deterministic
// because pools launch from the serial experiment loop.
func (r *Recorder) Phase(name string) *Phase {
	if r == nil {
		return nil
	}
	r.phaseMu.Lock()
	defer r.phaseMu.Unlock()
	if r.phases == nil {
		r.phases = make(map[string]*Phase)
	}
	p, ok := r.phases[name]
	if !ok {
		p = &Phase{name: name}
		r.phases[name] = p
		r.phaseOrder = append(r.phaseOrder, name)
	}
	return p
}

// Progress returns the current status of every registered phase, in
// registration order. Safe to call while phases are being updated.
func (r *Recorder) Progress() []PhaseStatus {
	if r == nil {
		return nil
	}
	r.phaseMu.Lock()
	order := make([]string, len(r.phaseOrder))
	copy(order, r.phaseOrder)
	phases := make([]*Phase, len(order))
	for i, name := range order {
		phases[i] = r.phases[name]
	}
	r.phaseMu.Unlock()
	out := make([]PhaseStatus, len(order))
	for i, p := range phases {
		out[i] = PhaseStatus{Name: p.name, Done: p.done.Load(), Total: p.total.Load()}
	}
	return out
}
