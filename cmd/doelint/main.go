// Command doelint runs the repository's static-analysis suite
// (internal/lint) over a module and reports findings.
//
// Usage:
//
//	go run ./cmd/doelint ./...             # lint the whole module
//	go run ./cmd/doelint -json ./...       # machine-readable findings
//	go run ./cmd/doelint -checks errwrap,lockbalance ./internal/...
//	go run ./cmd/doelint -checks -walltaint ./...   # everything but walltaint
//	go run ./cmd/doelint -sarif doelint.sarif ./... # SARIF 2.1.0 for CI annotation
//	go run ./cmd/doelint -baseline .doelint-baseline.json ./...
//	go run ./cmd/doelint -list             # show registered analyzers
//
// Exit status: 0 when clean (or every finding is absorbed by the
// baseline), 1 when findings were reported, 2 on driver errors (packages
// failing to load or type-check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dnsencryption.info/doe/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		checks    = flag.String("checks", "", "comma-separated checks to run, or -name exclusions (default: all)")
		list      = flag.Bool("list", false, "list registered analyzers and exit")
		dir       = flag.String("dir", ".", "directory to resolve package patterns from")
		detPkgs   = flag.String("det", "", "comma-separated import-path suffixes of deterministic packages (overrides the built-in list)")
		sarifOut  = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
		baseline  = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		updateBl  = flag.Bool("update-baseline", false, "rewrite the -baseline file to absorb the current findings and exit 0")
		factCache = flag.String("factcache", "", "directory for per-package fact summaries (speeds up repeated runs)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		cfg.Checks = splitTrim(*checks)
	}
	if *detPkgs != "" {
		cfg.DeterministicPackages = splitTrim(*detPkgs)
	}
	cfg.FactCacheDir = *factCache

	findings, err := lint.Run(*dir, flag.Args(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doelint:", err)
		os.Exit(2)
	}

	if *updateBl {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "doelint: -update-baseline requires -baseline")
			os.Exit(2)
		}
		if err := lint.WriteBaseline(*baseline, lint.NewBaseline(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "doelint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "doelint: baseline %s absorbs %d finding(s)\n", *baseline, len(findings))
		return
	}

	suppressed := 0
	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doelint:", err)
			os.Exit(2)
		}
		var absorbed []lint.Finding
		findings, absorbed = b.Filter(findings)
		suppressed = len(absorbed)
	}

	if *sarifOut != "" {
		data, err := lint.SARIF(findings)
		if err == nil {
			err = os.WriteFile(*sarifOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "doelint:", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "doelint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "doelint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "doelint: clean (%d finding(s) absorbed by baseline)\n", suppressed)
	}
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
