package scandetect

import (
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/netflow"
)

var t0 = time.Date(2018, 9, 1, 0, 0, 0, 0, time.UTC)

func synFlow(src netip.Addr, dstIdx int) netflow.Record {
	return netflow.Record{
		First: t0, Src: src,
		Dst:     netip.AddrFrom4([4]byte{60, 0, byte(dstIdx >> 8), byte(dstIdx)}),
		DstPort: 853, Proto: netflow.ProtoTCP,
		Packets: 1, Flags: netflow.FlagSYN,
	}
}

func organicFlow(src, dst netip.Addr) netflow.Record {
	return netflow.Record{
		First: t0, Src: src, Dst: dst,
		DstPort: 853, Proto: netflow.ProtoTCP,
		Packets: 8, Flags: netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH,
	}
}

func TestDetectsHighFanoutScanner(t *testing.T) {
	scanner := netip.MustParseAddr("50.0.0.1")
	var recs []netflow.Record
	for i := 0; i < 150; i++ {
		recs = append(recs, synFlow(scanner, i))
	}
	verdicts := NewDetector(853).Classify(recs)
	if len(verdicts) != 1 || !verdicts[0].Scanner {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	if verdicts[0].DistinctDsts != 150 {
		t.Errorf("fanout = %d", verdicts[0].DistinctDsts)
	}
}

func TestDetectsModerateFanoutSYNOnly(t *testing.T) {
	scanner := netip.MustParseAddr("50.0.0.2")
	var recs []netflow.Record
	for i := 0; i < 20; i++ { // above FanoutThreshold/10
		recs = append(recs, synFlow(scanner, i))
	}
	verdicts := NewDetector(853).Classify(recs)
	if !verdicts[0].Scanner || verdicts[0].SYNOnlyFraction != 1 {
		t.Errorf("verdict = %+v", verdicts[0])
	}
}

func TestOrganicClientNotFlagged(t *testing.T) {
	client := netip.MustParseAddr("40.1.2.3")
	recs := []netflow.Record{
		organicFlow(client, netip.MustParseAddr("1.1.1.1")),
		organicFlow(client, netip.MustParseAddr("9.9.9.9")),
	}
	verdicts := NewDetector(853).Classify(recs)
	if verdicts[0].Scanner {
		t.Errorf("organic client flagged: %+v", verdicts[0])
	}
}

func TestReverseNameFingerprint(t *testing.T) {
	src := netip.MustParseAddr("50.0.0.3")
	d := NewDetector(853)
	d.ReverseNames = func(ip netip.Addr) []string {
		if ip == src {
			return []string{"dot-Scanner-optout.research.example.org."}
		}
		return nil
	}
	recs := []netflow.Record{organicFlow(src, netip.MustParseAddr("1.1.1.1"))}
	verdicts := d.Classify(recs)
	if !verdicts[0].Scanner || verdicts[0].Reason != "scanner fingerprint in PTR/SOA" {
		t.Errorf("verdict = %+v", verdicts[0])
	}
}

func TestNonTargetPortIgnored(t *testing.T) {
	src := netip.MustParseAddr("50.0.0.4")
	rec := organicFlow(src, netip.MustParseAddr("1.1.1.1"))
	rec.DstPort = 443
	verdicts := NewDetector(853).Classify([]netflow.Record{rec})
	if len(verdicts) != 0 {
		t.Errorf("verdicts = %+v", verdicts)
	}
}

func TestFilterOrganic(t *testing.T) {
	scanner := netip.MustParseAddr("50.0.0.5")
	client := netip.MustParseAddr("40.1.2.3")
	var recs []netflow.Record
	for i := 0; i < 150; i++ {
		recs = append(recs, synFlow(scanner, i))
	}
	recs = append(recs, organicFlow(client, netip.MustParseAddr("1.1.1.1")))
	verdicts := NewDetector(853).Classify(recs)
	organic := FilterOrganic(recs, verdicts)
	if len(organic) != 1 || organic[0].Src != client {
		t.Errorf("organic = %d records", len(organic))
	}
}
