package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one diagnostic produced by an analyzer (or by the directive
// parser for malformed //doelint: comments).
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`

	// abs is the absolute filename as recorded in the FileSet, used to
	// match suppression directives before paths are relativized.
	abs string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one registered check. Run inspects a fully type-checked
// package via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the check name used in output and in //doelint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description shown by `doelint -list`.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer. Graph and
// Dirs are shared across the whole run: the module-wide call graph with
// propagated facts, and the parsed directive index (transfer annotations).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Config   *Config
	Graph    *Graph
	Dirs     *directiveIndex

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		abs:     position.Filename,
	})
}

// objectOf resolves an identifier whether it defines (":=") or uses ("=")
// the object.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// Config tunes the suite for a repository.
type Config struct {
	// DeterministicPackages lists import-path suffixes of packages that
	// must not consult wall-clock time or the global math/rand state.
	DeterministicPackages []string
	// SimulationPackages lists import-path suffixes of packages that run
	// on the virtual clock and therefore must never block on real time
	// (time.Sleep / time.After).
	SimulationPackages []string
	// ObservabilityPackages lists import-path suffixes of telemetry
	// packages whose recording paths must never touch the wall clock at
	// all (time.Now/Since/... as well as sleeps) — traces and metric
	// snapshots share the byte-identical report contract.
	ObservabilityPackages []string
	// Checks restricts which analyzers run; empty means all registered.
	// Either a list of names to run, or a list of "-name" exclusions.
	Checks []string
	// FactCacheDir, when set, persists per-package fact summaries for
	// dep-only packages keyed by a content hash of their sources, so
	// repeated runs skip re-parsing packages no analyzer reports on.
	FactCacheDir string
}

// DefaultConfig returns the configuration used for this repository: the
// simulation core packages are deterministic and every check runs.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPackages: []string{
			"internal/netsim",
			"internal/core",
			"internal/workload",
		},
		SimulationPackages: []string{
			"internal/netsim",
			"internal/core",
			"internal/workload",
			"internal/scanner",
			"internal/vantage",
			"internal/proxy",
			"internal/dnsserver",
			"internal/dnsclient",
			"internal/dnscrypt",
			"internal/dot",
			"internal/doh",
			"internal/resolver",
			"internal/runner",
		},
		ObservabilityPackages: []string{
			"internal/obs",
		},
	}
}

// IsDeterministic reports whether the package at pkgPath is subject to the
// determinism check. Entries match the whole path or a "/"-delimited suffix.
func (c *Config) IsDeterministic(pkgPath string) bool {
	return matchPackage(c.DeterministicPackages, pkgPath)
}

// IsSimulation reports whether the package at pkgPath is subject to the
// simsleep check. Entries match the whole path or a "/"-delimited suffix.
func (c *Config) IsSimulation(pkgPath string) bool {
	return matchPackage(c.SimulationPackages, pkgPath)
}

// IsObservability reports whether the package at pkgPath is subject to the
// obsclock check. Entries match the whole path or a "/"-delimited suffix.
func (c *Config) IsObservability(pkgPath string) bool {
	return matchPackage(c.ObservabilityPackages, pkgPath)
}

func matchPackage(suffixes []string, pkgPath string) bool {
	for _, suf := range suffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

// checkEnabled evaluates the Checks selection. An empty list runs
// everything. A list of names runs exactly those; a list of "-name"
// exclusions runs everything but those. Mixing both forms is rejected by
// validateChecks before any analyzer runs.
func (c *Config) checkEnabled(name string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	if strings.HasPrefix(c.Checks[0], "-") {
		for _, want := range c.Checks {
			if strings.TrimPrefix(want, "-") == name {
				return false
			}
		}
		return true
	}
	for _, want := range c.Checks {
		if want == name {
			return true
		}
	}
	return false
}

// validateChecks rejects unknown check names and mixed include/exclude
// selections.
func (c *Config) validateChecks() error {
	excludes, includes := 0, 0
	for _, entry := range c.Checks {
		name := entry
		if strings.HasPrefix(entry, "-") {
			name = entry[1:]
			excludes++
		} else {
			includes++
		}
		if !knownCheck(name) {
			return fmt.Errorf("lint: unknown check %q (run doelint -list for the registered checks)", name)
		}
	}
	if excludes > 0 && includes > 0 {
		return fmt.Errorf("lint: -checks cannot mix inclusions and -name exclusions: %v", c.Checks)
	}
	return nil
}

// DirectiveCheck is the pseudo-check name under which malformed
// //doelint: comments are reported. It cannot be suppressed.
const DirectiveCheck = "directive"

// registry holds every analyzer the driver runs, in execution order. The
// intraprocedural checks come first; walltaint, bufown, ctxplumb, and the
// interprocedural half of hotalloc consult the shared call graph.
var registry = []*Analyzer{
	analyzerDeterminism,
	analyzerSimsleep,
	analyzerObsclock,
	analyzerWalltaint,
	analyzerConnclose,
	analyzerErrwrap,
	analyzerLockbalance,
	analyzerGoleak,
	analyzerHotalloc,
	analyzerStreaming,
	analyzerBufown,
	analyzerCtxplumb,
}

// Analyzers returns the registered analyzers.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	return out
}

// knownCheck reports whether name is a registered analyzer name (or the
// directive pseudo-check), i.e. valid in a //doelint:allow directive.
func knownCheck(name string) bool {
	if name == DirectiveCheck {
		return true
	}
	for _, a := range registry {
		if a.Name == name {
			return true
		}
	}
	return false
}
