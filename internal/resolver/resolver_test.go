package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnscrypt"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP = netip.MustParseAddr("10.1.0.2")
	serverIP = netip.MustParseAddr("192.0.2.100")
	answerIP = netip.MustParseAddr("203.0.113.1")
)

// fixture deploys one resolver address speaking every transport the package
// adapts: UDP+TCP clear-text on 53, DoT on 853, DoH on 443, DoQ on UDP 853.
type fixture struct {
	world *netsim.World
	ca    *certs.CA
	zone  *dnsserver.Zone
	doq   *doq.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := netsim.NewWorld(17)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}
	z := dnsserver.NewZone("measure.example.org")
	z.WildcardA = answerIP

	w.RegisterDatagram(serverIP, 53, dnsserver.DatagramHandler(z))
	w.RegisterStream(serverIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, z)
	})
	leaf, err := ca.Issue(certs.LeafOptions{
		CommonName: "dns.provider.example",
		DNSNames:   []string{"dns.provider.example"},
		IPs:        []netip.Addr{serverIP},
	})
	if err != nil {
		t.Fatal(err)
	}
	dot.Serve(w, serverIP, leaf, z, 0)
	doh.Serve(w, serverIP, leaf, &doh.Server{Handler: z})
	doqSrv := doq.Serve(w, serverIP, leaf, z, 0)
	return &fixture{world: w, ca: ca, zone: z, doq: doqSrv}
}

func (f *fixture) client(t *testing.T, opts ...Option) *Client {
	t.Helper()
	return New(f.world, clientIP, certs.Pool(f.ca), opts...)
}

func query(name string) *dnswire.Message {
	return dnswire.NewQuery(0, name, dnswire.TypeA)
}

func checkAnswer(t *testing.T, m *dnswire.Message, err error, transport string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", transport, err)
	}
	if a, ok := m.FirstA(); !ok || a != answerIP {
		t.Errorf("%s answer = %v, want %v", transport, m.Answers, answerIP)
	}
}

func TestEveryTransportAnswersThroughExchange(t *testing.T) {
	f := newFixture(t)
	c := f.client(t)
	ctx := context.Background()
	tmpl := doh.Template{Host: "dns.provider.example", Path: "/dns-query"}

	m, err := c.UDP(serverIP).Exchange(ctx, query("u.measure.example.org"))
	checkAnswer(t, m, err, "udp")

	for _, tc := range []struct {
		name string
		ex   Exchanger
	}{
		{"tcp", c.TCP(serverIP)},
		{"dot", c.DoT(serverIP)},
		{"doh", c.DoH(tmpl, serverIP)},
		{"doq", c.DoQ(serverIP)},
	} {
		m, err := tc.ex.Exchange(ctx, query(tc.name+".measure.example.org"))
		checkAnswer(t, m, err, tc.name)
	}
}

func TestSessionAccountsSetupAndElapsed(t *testing.T) {
	f := newFixture(t)
	c := f.client(t, WithProfile(dot.Strict))
	ctx := context.Background()
	sess, err := c.DialDoT(ctx, serverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.SetupLatency() <= 0 {
		t.Error("setup latency not accounted")
	}
	before := sess.Elapsed()
	m, err := sess.Exchange(ctx, query("s.measure.example.org"))
	checkAnswer(t, m, err, "dot session")
	if sess.Elapsed() <= before {
		t.Error("exchange consumed no virtual time")
	}
}

func TestReuseAmortizesSetup(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	reused := f.client(t, WithReuse(true)).DoT(serverIP)
	defer reused.Close()
	for i := 0; i < 2; i++ {
		if _, err := reused.Exchange(ctx, query("r.measure.example.org")); err != nil {
			t.Fatal(err)
		}
	}
	onConn := reused.LastLatency() // second exchange: no setup in the delta

	fresh := f.client(t, WithReuse(false)).DoT(serverIP)
	for i := 0; i < 2; i++ {
		if _, err := fresh.Exchange(ctx, query("f.measure.example.org")); err != nil {
			t.Fatal(err)
		}
	}
	perDial := fresh.LastLatency() // every exchange pays TCP+TLS setup

	if perDial <= onConn {
		t.Errorf("no-reuse latency %v should exceed reused on-connection latency %v", perDial, onConn)
	}
}

func TestStrictProfileOptionRejectsUntrustedServer(t *testing.T) {
	f := newFixture(t)
	// A client whose trust store does not contain the serving CA: the
	// Strict profile must refuse, Opportunistic must proceed.
	otherCA, err := certs.NewCA("Unrelated Root", true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	strict := New(f.world, clientIP, certs.Pool(otherCA), WithProfile(dot.Strict))
	if _, err := strict.DialDoT(ctx, serverIP); !errors.Is(err, dot.ErrAuthFailed) {
		t.Errorf("strict dial err = %v, want ErrAuthFailed", err)
	}
	opp := New(f.world, clientIP, certs.Pool(otherCA), WithProfile(dot.Opportunistic))
	m, err := opp.DoT(serverIP).Exchange(ctx, query("o.measure.example.org"))
	checkAnswer(t, m, err, "opportunistic dot")
}

func TestPaddingOptionTriggersServerPadding(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	// RFC 8467 servers pad responses only to queries that carried the
	// padding option, so the response reveals whether WithPadding reached
	// the wire.
	run := func(pad bool) bool {
		sess, err := f.client(t, WithPadding(pad)).DialDoT(ctx, serverIP)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		m, err := sess.Exchange(ctx, query("p.measure.example.org"))
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := m.OPT()
		if !ok {
			return false
		}
		_, padded := opt.Padding()
		return padded
	}
	if !run(true) {
		t.Error("WithPadding(true): response not padded, option did not reach the query")
	}
	if run(false) {
		t.Error("WithPadding(false): response padded, query unexpectedly carried the option")
	}
}

func TestDNSCryptAdapter(t *testing.T) {
	f := newFixture(t)
	srv, providerPK, err := dnscrypt.NewServer("2.dnscrypt-cert.provider.example", f.zone)
	if err != nil {
		t.Fatal(err)
	}
	f.world.RegisterDatagram(serverIP, dnscrypt.Port, srv.DatagramHandler())

	client, err := dnscrypt.NewClient(f.world, clientIP, "2.dnscrypt-cert.provider.example", providerPK)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ex := DNSCrypt(client, serverIP)
	if _, err := ex.Exchange(ctx, query("dc.measure.example.org")); !errors.Is(err, dnscrypt.ErrNoCert) {
		t.Fatalf("exchange before FetchCert err = %v, want ErrNoCert", err)
	}
	if err := client.FetchCertContext(ctx, serverIP); err != nil {
		t.Fatal(err)
	}
	m, err := ex.Exchange(ctx, query("dc.measure.example.org"))
	checkAnswer(t, m, err, "dnscrypt")
	if ex.LastLatency() <= 0 {
		t.Error("latency not recorded")
	}
}

func TestExchangeHonoursCancelledContext(t *testing.T) {
	f := newFixture(t)
	c := f.client(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		ex   Exchanger
	}{
		{"udp", c.UDP(serverIP)},
		{"tcp", c.TCP(serverIP)},
		{"dot", c.DoT(serverIP)},
		{"doh", c.DoH(doh.Template{Host: "dns.provider.example", Path: "/dns-query"}, serverIP)},
	} {
		if _, err := tc.ex.Exchange(ctx, query("c.measure.example.org")); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
	}
}

func TestQuestionRejectsEmptyMessage(t *testing.T) {
	if _, _, err := Question(&dnswire.Message{}); !errors.Is(err, ErrNoQuestion) {
		t.Errorf("err = %v, want ErrNoQuestion", err)
	}
	if _, _, err := Question(nil); !errors.Is(err, ErrNoQuestion) {
		t.Errorf("nil message err = %v, want ErrNoQuestion", err)
	}
}
