// Package runner is the parallel execution engine for the measurement
// pipeline: a bounded worker pool that shards an indexed workload across N
// goroutines and merges results deterministically.
//
// Determinism contract: Map(workers, n, fn) returns exactly
// [fn(0), fn(1), ..., fn(n-1)] — each result is stored at its input index,
// so the merged slice is identical for every worker count, including
// workers=1. Callers keep reports bit-for-bit reproducible by (a) deriving
// any randomness inside fn(i) from the task's own identity (index, address,
// vantage key) rather than from call order, and (b) reducing the returned
// slice in index order. The pool itself adds no ordering of its own: work
// items are handed out through a single atomic counter (natural
// backpressure — a worker takes a new index only when it finishes the
// previous one) and the pool always joins every worker before returning, so
// no goroutines outlive the call.
package runner

import (
	"context"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines and
// returns the results in input order. workers <= 1 degenerates to a serial
// loop on the calling goroutine; workers is clamped to n so short workloads
// never spawn idle goroutines. Map returns only after every worker has
// exited.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop taking new indices and MapCtx returns ctx.Err() alongside the
// partial results (indices that never ran hold T's zero value). In-flight
// fn calls are not interrupted — fn observes ctx itself if it wants
// mid-task cancellation — but the pool still joins every worker before
// returning, so shutdown leaks no goroutines.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = fn(ctx, i)
		}
		return out, ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}
