package lint

import (
	"go/ast"
	"go/types"
)

// analyzerWalltaint is the interprocedural extension of determinism and
// obsclock: a function in a deterministic or observability package that
// transitively reaches a wall-clock read (or, for deterministic packages,
// the global math/rand state) through any chain of statically resolved
// calls is flagged — even when every frame of the chain lives in a package
// the direct-call checks never look at. The finding carries the full call
// path from the tainted entry point down to the primitive read, so the fix
// site is visible without hand-tracing the chain.
//
// Direct reads stay the business of determinism/obsclock (one finding per
// violation, not two): walltaint only fires when the read happens in a
// callee. Propagation respects the same escape hatches as the direct
// checks — a read under a justified //doelint:allow never taints its
// callers, and a function annotated //doelint:clockboundary absorbs the
// clock facts of everything below it (it asserts it converts wall readings
// into virtual time).
var analyzerWalltaint = &Analyzer{
	Name: "walltaint",
	Doc:  "no transitive wall-clock or global-rand reach from deterministic/observability packages (call-graph check)",
	Run:  runWalltaint,
}

func runWalltaint(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	pkgPath := pass.Pkg.Path()
	deterministic := pass.Config.IsDeterministic(pkgPath)
	observability := pass.Config.IsObservability(pkgPath)
	if !deterministic && !observability {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			id := funcID(obj)
			node := pass.Graph.node(id)
			if node == nil || node.clockBoundary {
				continue
			}
			reportTaint(pass, node, FactWallClock, "wall clock")
			if deterministic {
				reportTaint(pass, node, FactGlobalRand, "global math/rand state")
			}
		}
	}
}

// reportTaint emits one finding when node reaches fact through a callee
// (not through its own body — the direct checks own that case). The
// finding sits on the first call site of the taint chain, so a justified
// //doelint:allow walltaint on that line suppresses exactly this path.
func reportTaint(pass *Pass, node *funcNode, fact Fact, what string) {
	if node.trans&fact == 0 || node.direct&fact != 0 {
		return
	}
	steps, callPos, source := pass.Graph.taintPath(node.id, fact)
	if len(steps) < 2 || !callPos.IsValid() {
		return
	}
	pass.Reportf(callPos,
		"call chain from %s reaches the %s: %s; route it through the virtual clock or annotate the boundary with //doelint:clockboundary",
		displayName(node.id), what, renderTaint(steps, source))
}
