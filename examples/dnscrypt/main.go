// DNSCrypt: the fifth protocol of Table 1, end to end. A resolver publishes
// an Ed25519-signed certificate through a TXT record; the client verifies
// it against the pinned provider key, then exchanges queries protected with
// X25519-XSalsa20Poly1305 — including what happens when an attacker
// tampers with a response in flight.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/dnscrypt"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

func main() {
	world := netsim.NewWorld(2011) // the year OpenDNS deployed DNSCrypt
	client := netip.MustParseAddr("10.0.0.1")
	resolver := netip.MustParseAddr("208.67.222.222")
	world.Geo.Register(netip.MustParsePrefix("10.0.0.0/24"), geo.Location{Country: "US"})
	world.Geo.Register(netip.MustParsePrefix("208.67.222.0/24"), geo.Location{Country: "US", ASN: 36692, ASName: "OpenDNS"})

	zone := dnsserver.NewZone("crypt.example.test")
	zone.WildcardA = netip.MustParseAddr("203.0.113.11")

	srv, providerPK, err := dnscrypt.NewServer("example-provider.test", zone)
	if err != nil {
		log.Fatal(err)
	}
	world.RegisterDatagram(resolver, dnscrypt.Port, srv.DatagramHandler())
	fmt.Printf("resolver cert: serial=%d es-version=%d valid %s..%s\n",
		srv.Cert.Serial, srv.Cert.ESVersion,
		srv.Cert.NotBefore.Format("2006-01-02"), srv.Cert.NotAfter.Format("2006-01-02"))

	c, err := dnscrypt.NewClient(world, client, "example-provider.test", providerPK)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := c.FetchCert(resolver); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate bootstrapped and Ed25519-verified in %v (wall)\n", time.Since(start).Round(time.Microsecond))

	res, err := c.Query(resolver, "www.crypt.example.test", dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := res.FirstA()
	fmt.Printf("encrypted query answered: %v (virtual latency %v)\n", addr, res.Latency)

	// Demonstrate tamper resistance: a middlebox flipping one ciphertext
	// bit makes the box fail authentication.
	var key [32]byte
	var nonce [24]byte
	sealed := dnscrypt.SecretboxSeal([]byte("a DNS query"), &nonce, &key)
	sealed[20] ^= 0x01
	if _, err := dnscrypt.SecretboxOpen(sealed, &nonce, &key); err != nil {
		fmt.Printf("tampered box rejected: %v\n", err)
	}
}
