package dnscrypt

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

// TestQuarterRound checks the example from the Salsa20 specification.
func TestQuarterRound(t *testing.T) {
	z0, z1, z2, z3 := quarterRound(0x00000001, 0, 0, 0)
	want := [4]uint32{0x08008145, 0x00000080, 0x00010200, 0x20500000}
	if z0 != want[0] || z1 != want[1] || z2 != want[2] || z3 != want[3] {
		t.Errorf("quarterRound = %08x %08x %08x %08x, want %08x", z0, z1, z2, z3, want)
	}
}

// TestPoly1305RFCVector checks the RFC 8439 §2.5.2 test vector.
func TestPoly1305RFCVector(t *testing.T) {
	keyHex := "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
	msg := []byte("Cryptographic Forum Research Group")
	wantHex := "a8061dc1305136c6c22b8baf0c0127a9"
	var key [32]byte
	kb, _ := hex.DecodeString(keyHex)
	copy(key[:], kb)
	tag := poly1305(msg, &key)
	if got := hex.EncodeToString(tag[:]); got != wantHex {
		t.Errorf("poly1305 = %s, want %s", got, wantHex)
	}
}

func TestSalsa20BlockDeterministicAndCounterSensitive(t *testing.T) {
	var key [32]byte
	var nonce [8]byte
	copy(key[:], bytes.Repeat([]byte{7}, 32))
	var b0a, b0b, b1 [64]byte
	salsa20Block(&key, &nonce, 0, &b0a)
	salsa20Block(&key, &nonce, 0, &b0b)
	salsa20Block(&key, &nonce, 1, &b1)
	if b0a != b0b {
		t.Error("block not deterministic")
	}
	if b0a == b1 {
		t.Error("counter has no effect")
	}
}

func TestSecretboxRoundTrip(t *testing.T) {
	var key [32]byte
	var nonce [24]byte
	rand.Read(key[:])   //nolint:errcheck
	rand.Read(nonce[:]) //nolint:errcheck
	msg := []byte("attack at dawn — DNS query inside")
	sealed := SecretboxSeal(msg, &nonce, &key)
	if len(sealed) != len(msg)+16 {
		t.Fatalf("sealed length = %d", len(sealed))
	}
	got, err := SecretboxOpen(sealed, &nonce, &key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("roundtrip mismatch: %q", got)
	}
}

func TestSecretboxTamperDetected(t *testing.T) {
	var key [32]byte
	var nonce [24]byte
	sealed := SecretboxSeal([]byte("payload"), &nonce, &key)
	for i := range sealed {
		mutated := append([]byte{}, sealed...)
		mutated[i] ^= 0x01
		if _, err := SecretboxOpen(mutated, &nonce, &key); err == nil {
			t.Fatalf("tamper at byte %d not detected", i)
		}
	}
	if _, err := SecretboxOpen([]byte{1, 2}, &nonce, &key); err == nil {
		t.Error("short box accepted")
	}
}

func TestQuickSecretboxRoundTrip(t *testing.T) {
	f := func(msg []byte, keySeed, nonceSeed uint64) bool {
		var key [32]byte
		var nonce [24]byte
		for i := range key {
			key[i] = byte(keySeed >> (i % 8 * 8))
		}
		for i := range nonce {
			nonce[i] = byte(nonceSeed >> (i % 8 * 8))
		}
		sealed := SecretboxSeal(msg, &nonce, &key)
		got, err := SecretboxOpen(sealed, &nonce, &key)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoxSharedKeyAgreement(t *testing.T) {
	alice, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := alice.SharedKey(&bob.Public)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := bob.SharedKey(&alice.Public)
	if err != nil {
		t.Fatal(err)
	}
	if *k1 != *k2 {
		t.Error("X25519 key agreement mismatch")
	}
	eve, _ := NewKeyPair()
	k3, _ := eve.SharedKey(&bob.Public)
	if *k3 == *k1 {
		t.Error("third party derived the same key")
	}
}

func TestPadUnpad(t *testing.T) {
	f := func(msg []byte) bool {
		padded := appendPad(append([]byte(nil), msg...))
		if len(padded)%64 != 0 {
			return false
		}
		got, err := unpad(padded)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, err := unpad(bytes.Repeat([]byte{0}, 64)); err == nil {
		t.Error("all-zero padding accepted")
	}
}

func TestCertRoundTripAndValidation(t *testing.T) {
	pk, sk, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cert := Cert{
		ESVersion: esVersionXSalsa20,
		Serial:    7,
		NotBefore: certs.RefTime.AddDate(0, -1, 0),
		NotAfter:  certs.RefTime.AddDate(0, 1, 0),
	}
	rand.Read(cert.ResolverPK[:])  //nolint:errcheck
	rand.Read(cert.ClientMagic[:]) //nolint:errcheck
	wire := cert.Marshal(sk)

	got, err := ParseCert(wire, pk, certs.RefTime)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != 7 || got.ResolverPK != cert.ResolverPK || got.ClientMagic != cert.ClientMagic {
		t.Errorf("parsed cert = %+v", got)
	}

	// Wrong provider key: rejected.
	otherPK, _, _ := ed25519.GenerateKey(rand.Reader)
	if _, err := ParseCert(wire, otherPK, certs.RefTime); err == nil {
		t.Error("cert accepted under wrong provider key")
	}
	// Outside validity window: rejected.
	if _, err := ParseCert(wire, pk, certs.RefTime.AddDate(1, 0, 0)); err == nil {
		t.Error("expired cert accepted")
	}
	// Tampered content: rejected.
	wire[80] ^= 1
	if _, err := ParseCert(wire, pk, certs.RefTime); err == nil {
		t.Error("tampered cert accepted")
	}
}

// endToEnd spins a DNSCrypt server and client on a test world.
func endToEnd(t *testing.T) (*Client, netip.Addr) {
	t.Helper()
	w := netsim.NewWorld(5)
	clientIP := netip.MustParseAddr("10.0.0.2")
	resolverIP := netip.MustParseAddr("192.0.2.44")
	w.Geo.Register(netip.MustParsePrefix("10.0.0.0/24"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "FR"})

	zone := dnsserver.NewZone("crypt.example.test")
	zone.WildcardA = netip.MustParseAddr("203.0.113.44")
	srv, providerPK, err := NewServer("example-provider.test", zone)
	if err != nil {
		t.Fatal(err)
	}
	w.RegisterDatagram(resolverIP, Port, srv.DatagramHandler())

	c, err := NewClient(w, clientIP, "example-provider.test", providerPK)
	if err != nil {
		t.Fatal(err)
	}
	return c, resolverIP
}

func TestEndToEndQuery(t *testing.T) {
	c, resolver := endToEnd(t)
	if err := c.FetchCert(resolver); err != nil {
		t.Fatalf("FetchCert: %v", err)
	}
	res, err := c.Query(resolver, "host.crypt.example.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != netip.MustParseAddr("203.0.113.44") {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Latency <= 0 {
		t.Error("latency not accounted")
	}
}

func TestQueryWithoutCertFails(t *testing.T) {
	c, resolver := endToEnd(t)
	if _, err := c.Query(resolver, "x.crypt.example.test", dnswire.TypeA); err != ErrNoCert {
		t.Errorf("err = %v, want ErrNoCert", err)
	}
}

func TestWrongProviderKeyRejected(t *testing.T) {
	c, resolver := endToEnd(t)
	otherPK, _, _ := ed25519.GenerateKey(rand.Reader)
	c.ProviderPK = otherPK
	if err := c.FetchCert(resolver); err == nil {
		t.Error("cert fetched and verified under wrong provider key")
	}
}

func TestMultipleQueriesFreshNonces(t *testing.T) {
	c, resolver := endToEnd(t)
	if err := c.FetchCert(resolver); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Query(resolver, "multi.crypt.example.test", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestCertValidityAnchoredToStudyTime(t *testing.T) {
	c, resolver := endToEnd(t)
	c.Now = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := c.FetchCert(resolver); err == nil {
		t.Error("cert accepted far outside its validity window")
	}
}

func TestStampRoundTrip(t *testing.T) {
	pk, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	stamp := NewDNSCryptStamp(netip.MustParseAddr("208.67.222.222"), "opendns.example", pk, PropDNSSEC|PropNoLogs)
	uri := stamp.String()
	if !bytes.HasPrefix([]byte(uri), []byte("sdns://")) {
		t.Fatalf("uri = %q", uri)
	}
	got, err := ParseStamp(uri)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != StampDNSCrypt || got.Addr != "208.67.222.222" ||
		got.ProviderName != "opendns.example" || !bytes.Equal(got.ProviderPK, pk) ||
		got.Props != PropDNSSEC|PropNoLogs {
		t.Errorf("stamp = %+v", got)
	}
}

func TestDoHStampRoundTrip(t *testing.T) {
	stamp := &Stamp{
		Protocol: StampDoH,
		Props:    PropNoFilter,
		Addr:     "104.16.249.249:443",
		Host:     "mozilla.cloudflare-dns.com",
		Path:     "/dns-query",
	}
	got, err := ParseStamp(stamp.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != stamp.Host || got.Path != stamp.Path || got.Addr != stamp.Addr {
		t.Errorf("stamp = %+v", got)
	}
}

func TestStampRejectsMalformed(t *testing.T) {
	cases := []string{
		"https://not-a-stamp",
		"sdns://!!!",
		"sdns://",
		"sdns://AA", // too short
		(&Stamp{Protocol: 0x7F, Addr: "x"}).String(), // unknown protocol
	}
	for _, c := range cases {
		if _, err := ParseStamp(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// DNSCrypt stamp with a bad provider-key length.
	bad := &Stamp{Protocol: StampDNSCrypt, Addr: "1.2.3.4", ProviderPK: []byte{1, 2, 3}, ProviderName: "x"}
	if _, err := ParseStamp(bad.String()); err == nil {
		t.Error("accepted short provider key")
	}
}

func TestClientFromStampEndToEnd(t *testing.T) {
	c0, resolver := endToEnd(t)
	stamp := NewDNSCryptStamp(resolver, c0.ProviderName, c0.ProviderPK, PropDNSSEC)
	client, addr, err := ClientFromStamp(c0.World, c0.From, stamp)
	if err != nil {
		t.Fatal(err)
	}
	if addr != resolver {
		t.Errorf("stamp addr = %v", addr)
	}
	if err := client.FetchCert(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(addr, "stamped.crypt.example.test", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// DoH stamps are rejected by the DNSCrypt constructor.
	if _, _, err := ClientFromStamp(c0.World, c0.From, &Stamp{Protocol: StampDoH}); err == nil {
		t.Error("DoH stamp accepted by DNSCrypt client constructor")
	}
}
