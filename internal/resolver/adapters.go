package resolver

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnscrypt"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
)

// udpExchanger is the connectionless clear-text transport.
type udpExchanger struct {
	client *dnsclient.Client
	server netip.Addr
}

func (u udpExchanger) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := u.client.QueryUDPContext(ctx, u.server, name, qtype)
	if err != nil {
		return nil, err
	}
	return res.Msg, nil
}

// TCPSession adapts an established DNS-over-TCP connection (possibly riding
// a SOCKS tunnel via dnsclient.TCPFromConn) to the unified API.
func TCPSession(conn *dnsclient.TCPConn) Session { return tcpSession{conn} }

type tcpSession struct{ conn *dnsclient.TCPConn }

func (s tcpSession) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	return res.Msg, nil
}

func (s tcpSession) Close() error                { return s.conn.Close() }
func (s tcpSession) SetupLatency() time.Duration { return s.conn.SetupLatency() }
func (s tcpSession) Elapsed() time.Duration      { return s.conn.Elapsed() }

// DoTSession adapts an established DoT session to the unified API. The
// underlying conn stays available for transport-specific inspection
// (certificates, verification outcome).
func DoTSession(conn *dot.Conn) Session { return dotSession{conn} }

type dotSession struct{ conn *dot.Conn }

func (s dotSession) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	return res.Msg, nil
}

func (s dotSession) Close() error                { return s.conn.Close() }
func (s dotSession) SetupLatency() time.Duration { return s.conn.SetupLatency() }
func (s dotSession) Elapsed() time.Duration      { return s.conn.Elapsed() }

// DoHSession adapts an established DoH session to the unified API.
func DoHSession(conn *doh.Conn) Session { return dohSession{conn} }

type dohSession struct{ conn *doh.Conn }

func (s dohSession) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	return res.Msg, nil
}

func (s dohSession) Close() error                { return s.conn.Close() }
func (s dohSession) SetupLatency() time.Duration { return s.conn.SetupLatency() }
func (s dohSession) Elapsed() time.Duration      { return s.conn.Elapsed() }

// DoQSession adapts an established DoQ session to the unified API. The
// underlying conn stays available for transport-specific inspection
// (certificates, verification outcome, 0-RTT resumption).
func DoQSession(conn *doq.Conn) Session { return doqSession{conn} }

type doqSession struct{ conn *doq.Conn }

func (s doqSession) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	return res.Msg, nil
}

func (s doqSession) Close() error                { return s.conn.Close() }
func (s doqSession) SetupLatency() time.Duration { return s.conn.SetupLatency() }
func (s doqSession) Elapsed() time.Duration      { return s.conn.Elapsed() }

// DNSCrypt adapts a dnscrypt client to the unified API. The client's
// certificate must already be fetched (FetchCertContext); exchanges on an
// uncertified client surface dnscrypt.ErrNoCert.
func DNSCrypt(client *dnscrypt.Client, server netip.Addr) *DNSCryptExchanger {
	return &DNSCryptExchanger{client: client, server: server}
}

// DNSCryptExchanger is the datagram DNSCrypt transport. Like Transport, it
// records the virtual latency of the most recent exchange — datagram
// transports have no session whose Elapsed could be read instead.
type DNSCryptExchanger struct {
	client *dnscrypt.Client
	server netip.Addr

	mu   sync.Mutex
	last time.Duration
}

// Exchange performs one encrypted lookup.
func (d *DNSCryptExchanger) Exchange(ctx context.Context, msg *dnswire.Message) (*dnswire.Message, error) {
	name, qtype, err := Question(msg)
	if err != nil {
		return nil, err
	}
	res, err := d.client.QueryContext(ctx, d.server, name, qtype)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = res.Latency
	d.mu.Unlock()
	return res.Msg, nil
}

// LastLatency is the virtual time the most recent Exchange took.
func (d *DNSCryptExchanger) LastLatency() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}
