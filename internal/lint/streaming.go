package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// streamingDirective marks a function as a population-streaming fold: its
// memory must stay O(workers·accumulator) no matter how many items flow
// through it. It goes in the function's doc comment, like
// //doelint:hotpath.
const streamingDirective = "//doelint:streaming"

// analyzerStreaming is the regression guard for the streaming-campaign
// contract (DESIGN.md §15): a //doelint:streaming function must not
// accumulate per-item results, so any append inside one of its loops whose
// destination slice outlives the loop is a finding — the slice's length
// scales with the iteration count, and in a streaming fold the loop ranges
// over the campaign population. Per-iteration scratch (a slice declared
// inside the loop body) is fine; a deliberate bounded accumulation (per
// worker, per target) is justified with //doelint:allow streaming.
var analyzerStreaming = &Analyzer{
	Name: "streaming",
	Doc:  "no population-scaled slice accumulation in //doelint:streaming functions",
	Run:  runStreaming,
}

func runStreaming(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isStreaming(fn) {
				continue
			}
			checkStreamingBody(p, fn)
		}
	}
}

func isStreaming(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == streamingDirective || strings.HasPrefix(c.Text, streamingDirective+" ") {
			return true
		}
	}
	return false
}

// checkStreamingBody walks the function body, including closures — the fold
// callback handed to a reducer runs once per item, so an accumulator append
// inside it scales exactly the same way. It tracks the stack of enclosing
// loops and reports every append whose destination is declared outside the
// innermost loop containing it.
func checkStreamingBody(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	var loops []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			for _, child := range loopChildren(n) {
				ast.Inspect(child, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.AssignStmt:
			if len(loops) == 0 {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				checkStreamingAppend(p, name, loops[len(loops)-1], n.Lhs[i], call.Pos())
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// loopChildren returns a loop statement's sub-nodes so the walker can
// recurse with the loop pushed on the stack. The init/cond/post/key/value
// parts come along too — an append hiding in a post statement is still an
// append per iteration.
func loopChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	add := func(c ast.Node) {
		// Typed nils (e.g. a ForStmt with no init) must not reach
		// ast.Inspect, which panics on them.
		if c != nil && !isNilNode(c) {
			out = append(out, c)
		}
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		add(n.Init)
		add(n.Cond)
		add(n.Post)
		add(n.Body)
	case *ast.RangeStmt:
		add(n.Key)
		add(n.Value)
		add(n.X)
		add(n.Body)
	}
	return out
}

func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.BlockStmt:
		return v == nil
	case *ast.Ident:
		return v == nil
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return false
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = p.objectOf(id).(*types.Builtin)
	return ok
}

// checkStreamingAppend reports the append unless its destination is a plain
// local declared inside the given (innermost enclosing) loop. Everything
// else — outer locals, parameters, struct fields, pointer derefs, map or
// slice elements — outlives the iteration and therefore accumulates.
func checkStreamingAppend(p *Pass, fn string, loop ast.Node, dst ast.Expr, pos token.Pos) {
	if id, ok := dst.(*ast.Ident); ok {
		obj := p.objectOf(id)
		if obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			return // per-iteration scratch, reset every time around
		}
	}
	p.Reportf(pos,
		"streaming fold %s appends to %s inside a loop, so its length scales with the population; fold into a constant-size accumulator or justify with //doelint:allow streaming",
		fn, renderExpr(dst))
}

// renderExpr prints the small destination expressions this check meets:
// identifiers, field selectors, derefs, and index expressions.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(e.X)
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + renderExpr(e.X) + ")"
	}
	return "the destination slice"
}
