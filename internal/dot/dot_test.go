package dot

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP = netip.MustParseAddr("10.1.0.2")
	dotIP    = netip.MustParseAddr("192.0.2.100")
	answerIP = netip.MustParseAddr("203.0.113.1")
)

type fixture struct {
	world *netsim.World
	ca    *certs.CA
	zone  *dnsserver.Zone
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := netsim.NewWorld(11)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}
	z := dnsserver.NewZone("measure.example.org")
	z.WildcardA = answerIP
	return &fixture{world: w, ca: ca, zone: z}
}

func (f *fixture) serveDoT(t *testing.T, leaf *certs.Leaf) {
	t.Helper()
	Serve(f.world, dotIP, leaf, f.zone, 0)
}

func (f *fixture) validLeaf(t *testing.T) *certs.Leaf {
	t.Helper()
	leaf, err := f.ca.Issue(certs.LeafOptions{CommonName: "dns.provider.example", IPs: []netip.Addr{dotIP}})
	if err != nil {
		t.Fatal(err)
	}
	return leaf
}

func TestStrictQueryAgainstValidServer(t *testing.T) {
	f := newFixture(t)
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	res, err := c.Query(dotIP, "probe-1.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Latency <= 0 {
		t.Error("latency not accounted")
	}
}

func TestStrictRejectsSelfSigned(t *testing.T) {
	f := newFixture(t)
	leaf, err := certs.SelfSigned(certs.LeafOptions{CommonName: "Perfect Privacy"})
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoT(t, leaf)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	_, err = c.Query(dotIP, "probe.measure.example.org", dnswire.TypeA)
	if !errors.Is(err, ErrAuthFailed) {
		t.Errorf("err = %v, want ErrAuthFailed", err)
	}
	// The wrap exposes the verification cause: a self-signed cert fails
	// with an unknown authority, distinguishable from expiry or timeouts.
	var uae x509.UnknownAuthorityError
	if !errors.As(err, &uae) {
		t.Errorf("err = %v, want x509.UnknownAuthorityError via errors.As", err)
	}
}

func TestOpportunisticProceedsDespiteInvalidCert(t *testing.T) {
	f := newFixture(t)
	leaf, err := certs.SelfSigned(certs.LeafOptions{CommonName: "qq.dog"})
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoT(t, leaf)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Opportunistic)
	conn, err := c.Dial(dotIP)
	if err != nil {
		t.Fatalf("opportunistic dial failed: %v", err)
	}
	defer conn.Close()
	if conn.VerifyError() == nil {
		t.Error("verification unexpectedly succeeded for self-signed cert")
	}
	res, err := conn.Query("probe.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestConnectionReuseAmortizesSetup(t *testing.T) {
	f := newFixture(t)
	f.world.JitterFrac = 0
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	conn, err := c.Dial(dotIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var reused []time.Duration
	for i := 0; i < 5; i++ {
		res, err := conn.Query("reuse.measure.example.org", dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		reused = append(reused, res.Latency)
	}
	// Each reused-connection query costs roughly one RTT; the TLS session
	// setup (TCP + TLS ≈ 2 RTT) must not recur.
	if reused[2] >= conn.SetupLatency() {
		t.Errorf("reused query latency %v not below setup cost %v", reused[2], conn.SetupLatency())
	}

	// One-shot (fresh connection) latency must exceed reused latency.
	oneShot, err := c.Query(dotIP, "fresh.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Latency <= reused[2] {
		t.Errorf("fresh latency %v not above reused %v", oneShot.Latency, reused[2])
	}
}

func TestStrictWithServerNameMatch(t *testing.T) {
	f := newFixture(t)
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	c.ServerName = "dns.provider.example"
	if _, err := c.Query(dotIP, "p.measure.example.org", dnswire.TypeA); err != nil {
		t.Fatalf("matching name rejected: %v", err)
	}
	c.ServerName = "wrong.example"
	if _, err := c.Query(dotIP, "p.measure.example.org", dnswire.TypeA); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong name err = %v, want ErrAuthFailed", err)
	}
}

func TestExpiredCertFailsStrictButNotOpportunistic(t *testing.T) {
	f := newFixture(t)
	leaf, err := f.ca.IssueExpired(certs.LeafOptions{CommonName: "old.example"}, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoT(t, leaf)

	strict := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	_, strictErr := strict.Query(dotIP, "x.measure.example.org", dnswire.TypeA)
	if !errors.Is(strictErr, ErrAuthFailed) {
		t.Errorf("strict err = %v, want ErrAuthFailed", strictErr)
	}
	var cie x509.CertificateInvalidError
	if !errors.As(strictErr, &cie) || cie.Reason != x509.Expired {
		t.Errorf("strict err = %v, want x509.CertificateInvalidError{Reason: Expired} via errors.As", strictErr)
	}
	opp := NewClient(f.world, clientIP, certs.Pool(f.ca), Opportunistic)
	if _, err := opp.Query(dotIP, "x.measure.example.org", dnswire.TypeA); err != nil {
		t.Errorf("opportunistic err = %v, want success", err)
	}
}

func TestPeerCertificatesExposed(t *testing.T) {
	f := newFixture(t)
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Opportunistic)
	conn, err := c.Dial(dotIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chain := conn.PeerCertificates()
	if len(chain) == 0 || chain[0].Subject.CommonName != "dns.provider.example" {
		t.Errorf("peer chain = %v", chain)
	}
	if got := certs.ProviderKey(chain[0]); got != "provider.example" {
		t.Errorf("provider key = %q", got)
	}
}

func TestPaddingOption(t *testing.T) {
	f := newFixture(t)
	// Zone handler that checks for the padding option.
	sawPadding := make(chan bool, 1)
	h := dnsserver.HandlerFunc(func(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
		if opt, ok := req.OPT(); ok {
			if _, padded := opt.Padding(); padded {
				select {
				case sawPadding <- true:
				default:
				}
			}
		}
		return f.zone.ServeDNS(remote, req)
	})
	leaf := f.validLeaf(t)
	Serve(f.world, dotIP, leaf, h, 0)

	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	c.Pad = true
	if _, err := c.Query(dotIP, "padded.measure.example.org", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sawPadding:
	default:
		t.Error("server did not observe EDNS(0) padding")
	}
}

func TestNotDNSServerFailsQueries(t *testing.T) {
	f := newFixture(t)
	leaf := f.validLeaf(t)
	ServeNotDNS(f.world, dotIP, leaf)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Opportunistic)
	c.Timeout = 300 * time.Millisecond
	if _, err := c.Query(dotIP, "probe.measure.example.org", dnswire.TypeA); err == nil {
		t.Error("query against not-DNS port-853 service succeeded")
	}
}

func TestDialRefusedHost(t *testing.T) {
	f := newFixture(t)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	if _, err := c.Dial(dotIP); !errors.Is(err, netsim.ErrRefused) {
		t.Errorf("err = %v, want refused", err)
	}
}

func TestDialBlackholedHostIsTimeout(t *testing.T) {
	f := newFixture(t)
	f.world.AddPolicy(netsim.PolicyFunc(func(_ *netsim.World, _, to netip.Addr, _ uint16, _ netsim.Proto) netsim.Verdict {
		if to == dotIP {
			return netsim.Verdict{Action: netsim.ActBlackhole}
		}
		return netsim.Verdict{}
	}))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	_, err := c.Dial(dotIP)
	if !errors.Is(err, netsim.ErrBlackhole) {
		t.Fatalf("err = %v, want ErrBlackhole", err)
	}
	// Timeouts must be classifiable as net.Error timeouts, distinct from
	// authentication failures.
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want a net.Error with Timeout() == true", err)
	}
	if errors.Is(err, ErrAuthFailed) {
		t.Errorf("timeout misclassified as authentication failure")
	}
}

func TestProfileString(t *testing.T) {
	if Strict.String() != "strict" || Opportunistic.String() != "opportunistic" {
		t.Error("Profile.String mismatch")
	}
}

func TestServerPadsResponsesWhenClientPads(t *testing.T) {
	f := newFixture(t)
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	c.Pad = true
	conn, err := c.Dial(dotIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query("padded-resp.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := res.Msg.OPT()
	if !ok {
		t.Fatal("response lacks OPT record")
	}
	if _, padded := opt.Padding(); !padded {
		t.Error("response not padded (RFC 8467 server policy)")
	}
	packed, err := res.Msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(packed)%ServerPadBlock != 0 {
		t.Errorf("response length %d not a multiple of %d", len(packed), ServerPadBlock)
	}
	// Unpadded clients get unpadded responses.
	c2 := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	res2, err := c2.Query(dotIP, "plain-resp.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res2.Msg.OPT(); ok {
		t.Error("unpadded query got an OPT response")
	}
}

func TestSessionResumption(t *testing.T) {
	f := newFixture(t)
	f.serveDoT(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), Strict)
	c.ServerName = "dns.provider.example"
	c.SessionCache = tls.NewLRUClientSessionCache(8)

	first, err := c.Dial(dotIP)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed() {
		t.Error("first session claims resumption")
	}
	// Complete a transaction so the client processes the session tickets.
	if _, err := first.Query("resume-1.measure.example.org", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := c.Dial(dotIP)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if !second.Resumed() {
		t.Error("second session not resumed despite session cache")
	}
	if _, err := second.Query("resume-2.measure.example.org", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}
