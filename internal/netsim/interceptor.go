package netsim

import (
	"crypto/tls"
	"crypto/x509"
	"io"
	"net/netip"
	"sync"

	"dnsencryption.info/doe/internal/certs"
)

// InterceptedSession records one TLS session proxied by an interceptor.
// Finding 2.3 derives Table 6 from exactly this information: which client,
// which resolver, which port, and what the re-signing CA's name was.
type InterceptedSession struct {
	Client   netip.Addr
	Target   netip.Addr
	Port     uint16
	IssuerCN string
	// RelayedToOrigin reports whether the proxied session reached the
	// genuine resolver (the paper observes interceptors forwarding
	// queries to the original resolvers).
	RelayedToOrigin bool
}

// TLSInterceptor is a middlebox that terminates TLS toward matched clients
// with certificates re-signed by its own (untrusted) CA, and proxies the
// plaintext to the genuine destination over a fresh TLS session. This is
// the behaviour the paper attributes to DPI devices such as "SonicWall
// Firewall DPI-SSL" in Table 6.
type TLSInterceptor struct {
	// CA re-signs origin certificates; it must not be in the root store.
	CA *certs.CA
	// ClientPrefixes selects whose traffic is intercepted.
	ClientPrefixes []netip.Prefix
	// Ports lists intercepted ports (853 and/or 443). Table 6 notes three
	// devices that "only listen on port 443".
	Ports map[uint16]bool

	mu       sync.Mutex
	forged   map[netip.Addr]*certs.Leaf // per-origin forged cert cache
	sessions []InterceptedSession
}

// NewTLSInterceptor builds an interceptor for the given client prefixes.
func NewTLSInterceptor(ca *certs.CA, prefixes []netip.Prefix, ports ...uint16) *TLSInterceptor {
	pm := make(map[uint16]bool, len(ports))
	for _, p := range ports {
		pm[p] = true
	}
	return &TLSInterceptor{
		CA:             ca,
		ClientPrefixes: prefixes,
		Ports:          pm,
		forged:         make(map[netip.Addr]*certs.Leaf),
	}
}

// Sessions returns a copy of the recorded sessions.
func (t *TLSInterceptor) Sessions() []InterceptedSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]InterceptedSession(nil), t.sessions...)
}

// Decide implements DialPolicy.
func (t *TLSInterceptor) Decide(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict {
	if proto != Stream || !t.Ports[port] {
		return Verdict{Action: ActNext}
	}
	matched := false
	for _, p := range t.ClientPrefixes {
		if p.Contains(from) {
			matched = true
			break
		}
	}
	if !matched {
		return Verdict{Action: ActNext}
	}
	client := from
	return Verdict{Action: ActRedirect, Handler: func(conn *Conn, dst Addr) {
		t.proxy(w, conn, client, dst)
	}}
}

// proxy MITMs one connection: TLS toward the client with a forged
// certificate, TLS toward the origin, plaintext relayed in both directions.
func (t *TLSInterceptor) proxy(w *World, clientConn *Conn, client netip.Addr, dst Addr) {
	defer clientConn.Close()

	// Reach the genuine origin first (bypassing ourselves: the redirect
	// already consumed this policy's verdict for the client; our own dial
	// originates from the destination-side path, so use the client
	// address to preserve any further-path policies).
	origin, err := w.dialDirect(client, dst.IP, dst.Port)
	if err != nil {
		return
	}
	defer origin.Close()

	originTLS := tls.Client(origin, &tls.Config{InsecureSkipVerify: true}) //nolint:gosec // interceptors do not validate
	if err := originTLS.Handshake(); err != nil {
		return
	}
	leaf, err := t.forgedFor(dst.IP, originTLS.ConnectionState().PeerCertificates)
	if err != nil {
		return
	}
	cert := leaf.TLSCertificate()
	clientTLS := tls.Server(clientConn, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err := clientTLS.Handshake(); err != nil {
		// Strict clients (DoH) abort on the forged certificate.
		t.record(client, dst, false)
		return
	}
	t.record(client, dst, true)

	done := make(chan struct{}, 2)
	go func() { io.Copy(originTLS, clientTLS); done <- struct{}{} }() //nolint:errcheck
	go func() { io.Copy(clientTLS, originTLS); done <- struct{}{} }() //nolint:errcheck
	<-done
}

func (t *TLSInterceptor) record(client netip.Addr, dst Addr, relayed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = append(t.sessions, InterceptedSession{
		Client:          client,
		Target:          dst.IP,
		Port:            dst.Port,
		IssuerCN:        t.CA.Cert.Subject.CommonName,
		RelayedToOrigin: relayed,
	})
}

func (t *TLSInterceptor) forgedFor(origin netip.Addr, peerCerts []*x509.Certificate) (*certs.Leaf, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf, ok := t.forged[origin]; ok {
		return leaf, nil
	}
	var leaf *certs.Leaf
	var err error
	if len(peerCerts) > 0 {
		leaf, err = t.CA.Resign(peerCerts[0])
	} else {
		leaf, err = t.CA.Issue(certs.LeafOptions{CommonName: origin.String()})
	}
	if err != nil {
		return nil, err
	}
	t.forged[origin] = leaf
	return leaf, nil
}

// dialDirect connects bypassing all policies — used by middleboxes sitting
// past the policy evaluation point.
func (w *World) dialDirect(from, to netip.Addr, port uint16) (*Conn, error) {
	w.mu.RLock()
	l, ok := w.listeners[Addr{IP: to, Port: port}]
	w.mu.RUnlock()
	if !ok {
		return nil, ErrRefused
	}
	return w.connect(from, to, port, func(server *Conn) {
		if err := l.deliver(server); err != nil {
			server.Close()
		}
	})
}
