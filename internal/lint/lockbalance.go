package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// analyzerLockbalance flags a mutex Lock (or RLock) with no matching
// Unlock (RUnlock) anywhere in the same top-level function — the shape of
// bug that deadlocks a concurrent scanner only under load. Receivers are
// matched textually (m.mu, s.cacheMu, ...), and unlocks inside nested
// closures count for the enclosing function, so `defer func() {
// mu.Unlock() }()` and handler literals that lock and unlock inline are
// both fine. Lock/Unlock pairs split across function boundaries need a
// //doelint:allow with the reason.
var analyzerLockbalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "a sync Lock()/RLock() must have a matching Unlock in the same function",
	Run:  runLockbalance,
}

func runLockbalance(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockFunc(pass, fn.Body)
		}
	}
}

// lockTally tracks lock/unlock calls against one receiver expression.
type lockTally struct {
	locks    []token.Pos
	unlocks  int
	rlocks   []token.Pos
	runlocks int
}

func checkLockFunc(pass *Pass, body *ast.BlockStmt) {
	tallies := map[string]*lockTally{}
	var order []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || method.Pkg() == nil || method.Pkg().Path() != "sync" {
			return true
		}
		key := exprString(pass.Fset, sel.X)
		tally := tallies[key]
		if tally == nil {
			tally = &lockTally{}
			tallies[key] = tally
			order = append(order, key)
		}
		switch sel.Sel.Name {
		case "Lock":
			tally.locks = append(tally.locks, call.Pos())
		case "Unlock":
			tally.unlocks++
		case "RLock":
			tally.rlocks = append(tally.rlocks, call.Pos())
		case "RUnlock":
			tally.runlocks++
		}
		return true
	})
	for _, key := range order {
		tally := tallies[key]
		if len(tally.locks) > 0 && tally.unlocks == 0 {
			pass.Reportf(tally.locks[0],
				"%s.Lock() with no %s.Unlock() in this function; defer the unlock or annotate the handoff",
				key, key)
		}
		if len(tally.rlocks) > 0 && tally.runlocks == 0 {
			pass.Reportf(tally.rlocks[0],
				"%s.RLock() with no %s.RUnlock() in this function; defer the unlock or annotate the handoff",
				key, key)
		}
	}
}

// exprString renders a receiver expression for keying and messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
