package vantage

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/proxy"
)

// Table5Ports are the ports probed on conflicted resolver addresses from
// clients that failed to use DoT (Table 5).
var Table5Ports = []uint16{22, 23, 53, 67, 80, 123, 139, 161, 179, 443, 853}

// PortProbe is one node's view of which probed ports were open on an
// address.
type PortProbe struct {
	NodeID  string
	Country string
	ASN     int
	ASName  string
	Target  netip.Addr
	// Open lists responsive ports, in probe order.
	Open []uint16
	// Page is the body fetched from port 80, when available — the
	// paper's webpage check identifying routers, modems and coin miners.
	Page string
	// Server is the HTTP Server header from the page fetch.
	Server string
}

// HasAnyOpen reports whether any probed port accepted a connection.
func (p PortProbe) HasAnyOpen() bool { return len(p.Open) > 0 }

// ProbePorts connects to each port of target through the node and fetches
// the port-80 webpage when it is open.
func (p *Platform) ProbePorts(node proxy.ExitNode, target netip.Addr, ports []uint16) PortProbe {
	probe := PortProbe{
		NodeID:  node.ID,
		Country: node.Country,
		ASN:     node.ASN,
		ASName:  node.ASName,
		Target:  target,
	}
	for _, port := range ports {
		conn, err := p.Network.Dial(p.From, node.ID, target, port)
		if err != nil {
			continue
		}
		probe.Open = append(probe.Open, port)
		if port == 80 {
			if page, server, err := fetchPage(conn, target); err == nil {
				probe.Page, probe.Server = page, server
			}
		}
		conn.Close()
	}
	return probe
}

// fetchPage issues a minimal GET / and parses the response leniently: the
// devices squatting on resolver addresses speak various HTTP dialects.
func fetchPage(conn io.ReadWriteCloser, host netip.Addr) (body, server string, err error) {
	fmt.Fprintf(conn, "GET / HTTP/1.0\r\nHost: %s\r\n\r\n", host)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		// Not HTTP: return the raw banner.
		raw, _ := io.ReadAll(io.LimitReader(br, 4096))
		if len(raw) == 0 {
			return "", "", err
		}
		return string(raw), "", nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return "", "", err
	}
	return string(b), resp.Header.Get("Server"), nil
}

// IdentifyDevice matches a fetched page against the device signatures the
// paper reports: routers, modems, authentication systems, coin-mining
// injections on hijacked routers.
func IdentifyDevice(probe PortProbe) string {
	page := strings.ToLower(probe.Page + " " + probe.Server)
	switch {
	case strings.Contains(page, "coinhive") || strings.Contains(page, "miner"):
		return "cryptojacked router"
	case strings.Contains(page, "routeros") || strings.Contains(page, "mikrotik"):
		return "router"
	case strings.Contains(page, "modem") || strings.Contains(page, "powerbox"):
		return "modem"
	case strings.Contains(page, "login") || strings.Contains(page, "authentication"):
		return "authentication system"
	case probe.Page != "":
		return "unknown web device"
	case probe.HasAnyOpen():
		return "unidentified host"
	default:
		return "silent (blackhole or internal routing)"
	}
}

// GenuineProfile describes the real resolver's externally visible surface,
// used as the comparison baseline ("comparing our probing results with open
// ports and webpages of the genuine resolvers").
type GenuineProfile struct {
	OpenPorts []uint16
	PageMark  string
}

// MatchesGenuine reports whether a probe looks like the real resolver.
func MatchesGenuine(probe PortProbe, genuine GenuineProfile) bool {
	open := map[uint16]bool{}
	for _, p := range probe.Open {
		open[p] = true
	}
	for _, p := range genuine.OpenPorts {
		if !open[p] {
			return false
		}
	}
	if genuine.PageMark != "" && !strings.Contains(probe.Page, genuine.PageMark) {
		return false
	}
	return true
}

// ProbeDeadline bounds one forensic pass in real time.
const ProbeDeadline = 10 * time.Second
