package doh

import (
	"bufio"
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Method selects the RFC 8484 HTTP binding.
type Method int

// HTTP bindings.
const (
	GET Method = iota
	POST
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == POST {
		return "POST"
	}
	return "GET"
}

// Errors surfaced by the client.
var (
	ErrAuthFailed = errors.New("doh: server authentication failed")
	ErrHTTPStatus = errors.New("doh: non-200 HTTP status")

	errMalformedResponse = errors.New("doh: malformed HTTP response")
)

// Template is a parsed DoH URI template, e.g.
// "https://dns.example.com/dns-query{?dns}".
type Template struct {
	Host string // hostname to resolve and authenticate
	Path string // endpoint path
}

// ParseTemplate parses the subset of RFC 6570 templates DoH services use.
func ParseTemplate(s string) (Template, error) {
	s = strings.TrimSuffix(s, "{?dns}")
	u, err := url.Parse(s)
	if err != nil {
		return Template{}, err
	}
	if u.Scheme != "https" {
		return Template{}, fmt.Errorf("doh: template scheme %q, want https", u.Scheme)
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	return Template{Host: u.Hostname(), Path: path}, nil
}

// String renders the template back in {?dns} form.
func (t Template) String() string {
	return "https://" + t.Host + t.Path + "{?dns}"
}

// Client issues DoH queries. DoH is Strict-Privacy-only: certificate
// verification failures abort the lookup.
type Client struct {
	World *netsim.World
	From  netip.Addr
	Roots *x509.CertPool
	// Method selects GET (the cache-friendly default) or POST.
	Method Method
	// Timeout is the real-time guard per operation. Zero — the default —
	// disables it; see dnsclient.Client.Timeout for why study transports
	// must not carry wall-clock deadlines.
	Timeout time.Duration
	// CryptoCost models per-query TLS+HTTP processing on the client.
	CryptoCost time.Duration
	// Bootstrap resolves template hostnames when no override is given:
	// the address of a clear-text resolver used for bootstrapping (§2.2:
	// "the hostname in the template should be resolved to bootstrap DoH
	// lookups, e.g. via clear-text DNS").
	Bootstrap netip.Addr
	// Override maps hostnames directly to addresses (measurement configs
	// pin resolver IPs).
	Override map[string]netip.Addr
	// Mux selects the multiplexed HTTP/2 path: sessions dialed with it set
	// offer ALPN "h2" and their QueryContext is safe for concurrent use up
	// to MaxInFlight streams. Unset, sessions speak serial HTTP/1.1
	// keep-alive exactly as before.
	Mux bool
	// MaxInFlight bounds concurrent streams per multiplexed session;
	// 0 selects dnsclient.DefaultMaxInFlight. Ignored unless Mux is set.
	MaxInFlight int
}

// NewClient returns a Client with study defaults.
func NewClient(w *netsim.World, from netip.Addr, roots *x509.CertPool) *Client {
	return &Client{
		World:      w,
		From:       from,
		Roots:      roots,
		CryptoCost: 3 * time.Millisecond,
		Override:   make(map[string]netip.Addr),
	}
}

// Resolve maps a template hostname to an address using the override table
// or the bootstrap resolver.
//
// Deprecated: use ResolveContext; this delegates with context.Background().
func (c *Client) Resolve(host string) (netip.Addr, error) {
	return c.ResolveContext(context.Background(), host)
}

// ResolveContext maps a template hostname to an address using the override
// table or the bootstrap resolver, honouring ctx on the bootstrap lookup.
func (c *Client) ResolveContext(ctx context.Context, host string) (netip.Addr, error) {
	if addr, ok := c.Override[dnswire.CanonicalName(host)]; ok {
		return addr, nil
	}
	if addr, ok := c.Override[host]; ok {
		return addr, nil
	}
	if !c.Bootstrap.IsValid() {
		return netip.Addr{}, fmt.Errorf("doh: no override for %q and no bootstrap resolver", host)
	}
	stub := dnsclient.New(c.World, c.From)
	res, err := stub.QueryUDPContext(ctx, c.Bootstrap, host, dnswire.TypeA)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("doh: bootstrap resolution of %q: %w", host, err)
	}
	addr, ok := res.FirstA()
	if !ok {
		return netip.Addr{}, fmt.Errorf("doh: bootstrap resolution of %q returned no address", host)
	}
	return addr, nil
}

// Conn is a reusable DoH session: one TLS connection speaking either serial
// HTTP/1.1 keep-alive (the default) or, when dialed by a Client with Mux
// set, multiplexed HTTP/2 — many concurrent streams whose QueryContext is
// safe for concurrent use.
type Conn struct {
	mu       sync.Mutex
	h2       *h2session // non-nil when the session negotiated HTTP/2
	raw      *netsim.Conn
	tls      *tls.Conn
	br       *bufio.Reader
	client   *Client
	template Template
	setup    time.Duration
	closed   bool
	// pbuf/wbuf/rbuf are the session's pooled scratch buffers — packed DNS
	// message, rendered HTTP request, and response body — guarded by mu
	// like the connection itself and returned on Close.
	pbuf, wbuf, rbuf *[]byte
}

// Dial establishes a DoH session for the template, connecting to addr
// (resolved by the caller or via Resolve).
func (c *Client) Dial(t Template, addr netip.Addr) (*Conn, error) {
	return c.DialContext(context.Background(), t, addr)
}

// DialContext establishes a DoH session for the template, bounded by the
// context deadline if one is set.
func (c *Client) DialContext(ctx context.Context, t Template, addr netip.Addr) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: dial: %w", err)
	}
	raw, err := c.World.Dial(c.From, addr, Port)
	if err != nil {
		return nil, err
	}
	return c.DialConnContext(ctx, t, raw)
}

// DialConn establishes a DoH session over an already connected stream
// (e.g. a SOCKS tunnel through a proxy network vantage point).
func (c *Client) DialConn(t Template, raw *netsim.Conn) (*Conn, error) {
	return c.DialConnContext(context.Background(), t, raw)
}

// DialConnContext establishes a DoH session over an already connected
// stream, bounded by the context deadline if one is set.
func (c *Client) DialConnContext(ctx context.Context, t Template, raw *netsim.Conn) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("doh: dial: %w", err)
	}
	raw.SetDeadline(dnsclient.Deadline(ctx, c.Timeout))
	cfg := &tls.Config{
		RootCAs:    c.Roots,
		ServerName: t.Host,
		Time:       func() time.Time { return certs.RefTime },
	}
	if c.Mux {
		cfg.NextProtos = []string{"h2"}
	}
	tc := tls.Client(raw, cfg)
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("%w: %w", ErrAuthFailed, err)
	}
	conn := &Conn{
		raw:      raw,
		tls:      tc,
		br:       bufio.NewReader(tc),
		client:   c,
		template: t,
		setup:    raw.Elapsed(),
		pbuf:     bufpool.Get(512),  //doelint:transfer -- owned by Conn; released in Close
		wbuf:     bufpool.Get(2048), //doelint:transfer -- owned by Conn; released in Close
		rbuf:     bufpool.Get(512),  //doelint:transfer -- owned by Conn; released in Close
	}
	if c.Mux {
		if err := conn.startH2(); err != nil {
			conn.Close()
			return nil, err
		}
		// The preface/SETTINGS round trip is connection establishment.
		conn.setup = raw.Elapsed()
	}
	return conn, nil
}

// SetupLatency is the virtual time spent on TCP + TLS establishment.
func (conn *Conn) SetupLatency() time.Duration { return conn.setup }

// Elapsed is the total virtual time consumed so far.
func (conn *Conn) Elapsed() time.Duration { return conn.raw.Elapsed() }

// Query performs one wire-format DoH transaction on the session.
func (conn *Conn) Query(name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return conn.QueryContext(context.Background(), name, qtype)
}

// QueryContext performs one wire-format DoH transaction on the session,
// checking ctx before the transaction starts.
//
// The HTTP/1.1 exchange is hand-rolled: the request is rendered into a
// reused scratch buffer and sent in one Write (the same single TLS record
// net/http's buffered request writer produced, so virtual-clock accounting
// is unchanged), and the response head is parsed in place from the session's
// bufio.Reader. net/http's per-request Request/Response/textproto machinery
// is what dominated this path's allocation profile.
//
//doelint:hotpath
func (conn *Conn) QueryContext(ctx context.Context, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	conn.mu.Lock()
	if h := conn.h2; h != nil {
		conn.mu.Unlock()
		return h.exchange(ctx, name, qtype)
	}
	defer conn.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: query: %w", err)
	}
	if conn.closed {
		return nil, dnsclient.ErrClosed
	}
	// RFC 8484 recommends ID 0 for cache friendliness.
	q := dnswire.NewQuery(0, name, qtype)
	packed, err := q.AppendPack((*conn.pbuf)[:0])
	if err != nil {
		return nil, err
	}
	*conn.pbuf = packed
	wb := conn.appendRequest((*conn.wbuf)[:0], packed)
	*conn.wbuf = wb
	start := conn.raw.Elapsed()
	conn.raw.AddLatency(conn.client.CryptoCost)
	if _, err := conn.tls.Write(wb); err != nil {
		return nil, err
	}
	status, body, err := conn.readResponse()
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("%w: %d", ErrHTTPStatus, status)
	}
	m, err := dnswire.Unpack(body)
	if err != nil {
		return nil, err
	}
	return &dnsclient.Result{Msg: m, Latency: conn.raw.Elapsed() - start}, nil
}

// appendRequest renders the RFC 8484 request for packed into buf and
// returns the extended slice. The emitted request line and headers carry
// exactly what the server binding needs (Host, Accept, and the POST body
// headers); incidental net/http headers like User-Agent are omitted.
func (conn *Conn) appendRequest(buf, packed []byte) []byte {
	if conn.client.Method == POST {
		buf = append(buf, "POST "...)
		buf = append(buf, conn.template.Path...)
		buf = append(buf, " HTTP/1.1\r\nHost: "...)
		buf = append(buf, conn.template.Host...)
		buf = append(buf, "\r\nContent-Type: "...)
		buf = append(buf, ContentType...)
		buf = append(buf, "\r\nAccept: "...)
		buf = append(buf, ContentType...)
		buf = append(buf, "\r\nContent-Length: "...)
		buf = strconv.AppendInt(buf, int64(len(packed)), 10)
		buf = append(buf, "\r\n\r\n"...)
		return append(buf, packed...)
	}
	buf = append(buf, "GET "...)
	buf = append(buf, conn.template.Path...)
	buf = append(buf, "?dns="...)
	n := base64.RawURLEncoding.EncodedLen(len(packed))
	off := len(buf)
	buf = bufpool.Grow(buf, n)
	base64.RawURLEncoding.Encode(buf[off:], packed)
	buf = append(buf, " HTTP/1.1\r\nHost: "...)
	buf = append(buf, conn.template.Host...)
	buf = append(buf, "\r\nAccept: "...)
	buf = append(buf, ContentType...)
	return append(buf, "\r\n\r\n"...)
}

// readLine reads one CRLF-terminated line from the response, returning it
// without the terminator. The slice aliases the bufio buffer and is only
// valid until the next read.
func (conn *Conn) readLine() ([]byte, error) {
	line, err := conn.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// readResponse parses one HTTP/1.1 response from the session, handling the
// body framings net/http servers emit: Content-Length, chunked, and
// close-delimited. Like the http.ReadResponse path it replaces, the body is
// always drained — even for non-200 statuses — so the keep-alive stream
// stays in sync. The returned body aliases the session's read scratch.
func (conn *Conn) readResponse() (int, []byte, error) {
	line, err := conn.readLine()
	if err != nil {
		return 0, nil, err
	}
	status, err := parseStatusLine(line)
	if err != nil {
		return 0, nil, err
	}
	contentLen := -1
	chunked := false
	for {
		line, err := conn.readLine()
		if err != nil {
			return 0, nil, err
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			return 0, nil, errMalformedResponse
		}
		key, val := line[:colon], trimSpace(line[colon+1:])
		switch {
		case headerIs(key, "content-length"):
			n, err := strconv.Atoi(string(val))
			if err != nil || n < 0 {
				return 0, nil, errMalformedResponse
			}
			contentLen = n
		case headerIs(key, "transfer-encoding"):
			chunked = headerIs(val, "chunked")
		}
	}
	body := (*conn.rbuf)[:0]
	switch {
	case chunked:
		for {
			line, err := conn.readLine()
			if err != nil {
				return 0, nil, err
			}
			n, err := strconv.ParseUint(string(line), 16, 31)
			if err != nil {
				return 0, nil, errMalformedResponse
			}
			if n == 0 {
				// Zero chunk then the terminating empty line (trailers
				// are not emitted by the servers this client speaks to).
				if _, err := conn.readLine(); err != nil {
					return 0, nil, err
				}
				break
			}
			off := len(body)
			body = bufpool.Grow(body, int(n))
			if _, err := io.ReadFull(conn.br, body[off:]); err != nil {
				return 0, nil, err
			}
			// Chunk-terminating CRLF.
			if _, err := conn.readLine(); err != nil {
				return 0, nil, err
			}
		}
	case contentLen >= 0:
		body = bufpool.Grow(body, contentLen)
		if _, err := io.ReadFull(conn.br, body); err != nil {
			return 0, nil, err
		}
	default:
		// Close-delimited: the server ends the body by closing.
		for {
			off := len(body)
			body = bufpool.Grow(body, 512)
			n, err := conn.br.Read(body[off:])
			body = body[:off+n]
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, nil, err
			}
		}
	}
	*conn.rbuf = body
	return status, body, nil
}

// parseStatusLine extracts the status code from "HTTP/1.1 200 OK".
func parseStatusLine(line []byte) (int, error) {
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 || len(line) < sp+4 {
		return 0, errMalformedResponse
	}
	status := 0
	for _, c := range line[sp+1 : sp+4] {
		if c < '0' || c > '9' {
			return 0, errMalformedResponse
		}
		status = status*10 + int(c-'0')
	}
	return status, nil
}

// headerIs compares a header token to an all-lowercase name, ASCII
// case-insensitively, without allocating.
func headerIs(tok []byte, name string) bool {
	if len(tok) != len(name) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// BatchContext issues len(names) queries as one coalesced HTTP/2 burst on a
// multiplexed session and returns the results in query order; see
// dnsclient.Mux.Batch for the burst semantics. It fails on serial sessions.
func (conn *Conn) BatchContext(ctx context.Context, names []string, qtype dnswire.Type, out []dnsclient.Result) ([]dnsclient.Result, error) {
	conn.mu.Lock()
	h := conn.h2
	conn.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("doh: batch requires a multiplexed (HTTP/2) session")
	}
	return h.batch(ctx, names, qtype, out)
}

// QueryJSON performs one Google-style JSON API lookup on the session.
func (conn *Conn) QueryJSON(name string, qtype dnswire.Type) (*JSONResponse, error) {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.closed {
		return nil, dnsclient.ErrClosed
	}
	if conn.h2 != nil {
		return nil, fmt.Errorf("doh: JSON API not supported on a multiplexed session")
	}
	u := &url.URL{
		Scheme:   "https",
		Host:     conn.template.Host,
		Path:     JSONPath,
		RawQuery: "name=" + url.QueryEscape(name) + "&type=" + fmt.Sprint(uint16(qtype)),
	}
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	if err := req.Write(conn.tls); err != nil {
		return nil, err
	}
	resp, err := http.ReadResponse(conn.br, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.StatusCode)
	}
	var jr JSONResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Close terminates the session.
func (conn *Conn) Close() error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.closed {
		return nil
	}
	conn.closed = true
	if conn.h2 != nil {
		conn.h2.close()
	}
	bufpool.Put(conn.pbuf)
	bufpool.Put(conn.wbuf)
	bufpool.Put(conn.rbuf)
	conn.pbuf, conn.wbuf, conn.rbuf = nil, nil, nil
	conn.tls.Close()
	return conn.raw.Close()
}

// Query is the one-shot convenience: resolve, dial, query once, close. The
// latency includes bootstrap-free connection establishment (no-reuse case).
func (c *Client) Query(t Template, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return c.QueryContext(context.Background(), t, name, qtype)
}

// QueryContext is the one-shot convenience, bounded by ctx: resolve, dial,
// query once, close.
func (c *Client) QueryContext(ctx context.Context, t Template, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	addr, err := c.ResolveContext(ctx, t.Host)
	if err != nil {
		return nil, err
	}
	conn, err := c.DialContext(ctx, t, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	res.Latency = conn.Elapsed()
	return res, nil
}
