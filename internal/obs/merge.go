package obs

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Merge folds src's metric families into r. Merge semantics per kind:
//
//   - counters: values add
//   - gauges: the destination keeps the maximum — the only associative,
//     commutative, idempotent fold, so high-water marks survive any merge
//     tree (point-in-time gauges should be Set after merging, not sharded)
//   - histograms and sketches: bucket-wise addition (Histogram.Merge /
//     Sketch.Merge)
//
// Every operation is associative and commutative, so folding N shard
// registries in any order or tree shape yields a byte-identical
// Snapshot. Families present in src but not in r are created with src's
// kind, volatility and layout; families present in both must agree on
// all three or Merge reports an error (and keeps going, merging what it
// can — partial telemetry beats none). src must be quiescent for the
// merged values to be exact; r may be read, recorded into, and merged
// into concurrently. Nil receiver or source is a no-op.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil || r == src {
		return nil
	}
	src.mu.Lock()
	fams := make([]*family, 0, len(src.fams))
	for _, f := range src.fams {
		fams = append(fams, f)
	}
	src.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var errs []error
	for _, sf := range fams {
		if err := r.mergeFamily(sf); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("obs: registry merge: %w", joinErrors(errs))
}

func (r *Registry) mergeFamily(sf *family) error {
	r.mu.Lock()
	df, ok := r.fams[sf.name]
	if !ok {
		df = &family{name: sf.name, kind: sf.kind, volatile: sf.volatile,
			bounds: sf.bounds, sketchOpts: sf.sketchOpts, insts: make(map[string]any)}
		r.fams[sf.name] = df
	}
	r.mu.Unlock()
	if df.kind != sf.kind {
		return fmt.Errorf("family %q: kind mismatch (%s vs %s)", sf.name, kindName(df.kind), kindName(sf.kind))
	}
	if df.volatile != sf.volatile {
		return fmt.Errorf("family %q: volatility mismatch", sf.name)
	}
	if df.kind == kindHistogram && !equalBounds(df.bounds, sf.bounds) {
		return fmt.Errorf("family %q: histogram bounds mismatch", sf.name)
	}
	if df.kind == kindSketch {
		// sketchOpts is set lazily under the family lock by Registry.Sketch,
		// so adopt-or-compare must hold it too.
		df.mu.Lock()
		if df.sketchOpts == (SketchOpts{}) {
			df.sketchOpts = sf.sketchOpts
		}
		optsOK := df.sketchOpts == sf.sketchOpts
		df.mu.Unlock()
		if !optsOK {
			return fmt.Errorf("family %q: sketch opts mismatch", sf.name)
		}
	}

	// Copy the source instances before touching the destination lock so the
	// two family mutexes are never held together.
	sf.mu.Lock()
	keys := make([]string, 0, len(sf.insts))
	for k := range sf.insts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	insts := make([]any, len(keys))
	for i, k := range keys {
		insts[i] = sf.insts[k]
	}
	sf.mu.Unlock()

	var errs []error
	for i, k := range keys {
		if err := df.mergeInst(k, insts[i]); err != nil {
			errs = append(errs, fmt.Errorf("family %q instance {%s}: %w", sf.name, k, err))
		}
	}
	return joinErrors(errs)
}

// mergeInst folds one source instance into the family, creating the
// destination instance on first merge.
func (f *family) mergeInst(label string, src any) error {
	f.mu.Lock()
	dst, ok := f.insts[label]
	if !ok {
		switch src.(type) {
		case *Counter:
			dst = &Counter{}
		case *Gauge:
			dst = &Gauge{}
		case *Histogram:
			dst = &Histogram{bounds: f.bounds, buckets: make([]atomic.Int64, len(f.bounds))}
		case *Sketch:
			dst = NewSketch(f.sketchOpts)
		default:
			f.mu.Unlock()
			return fmt.Errorf("unknown metric type %T", src)
		}
		f.insts[label] = dst
	}
	f.mu.Unlock()

	switch s := src.(type) {
	case *Counter:
		d, ok := dst.(*Counter)
		if !ok {
			return fmt.Errorf("kind mismatch (%T vs *obs.Counter)", dst)
		}
		d.Add(s.Value())
	case *Gauge:
		d, ok := dst.(*Gauge)
		if !ok {
			return fmt.Errorf("kind mismatch (%T vs *obs.Gauge)", dst)
		}
		d.Max(s.Value())
	case *Histogram:
		d, ok := dst.(*Histogram)
		if !ok {
			return fmt.Errorf("kind mismatch (%T vs *obs.Histogram)", dst)
		}
		return d.Merge(s)
	case *Sketch:
		d, ok := dst.(*Sketch)
		if !ok {
			return fmt.Errorf("kind mismatch (%T vs *obs.Sketch)", dst)
		}
		return d.Merge(s)
	}
	return nil
}

func kindName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSketch:
		return "sketch"
	}
	return "unknown"
}

// joinErrors collapses a slice into nil, the single error, or errors.Join.
func joinErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	return errors.Join(errs...)
}
