package doh

import (
	"crypto/x509"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP = netip.MustParseAddr("10.1.0.2")
	dohIP    = netip.MustParseAddr("192.0.2.200")
	answerIP = netip.MustParseAddr("203.0.113.1")
)

type fixture struct {
	world *netsim.World
	ca    *certs.CA
	zone  *dnsserver.Zone
	tmpl  Template
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := netsim.NewWorld(13)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}
	z := dnsserver.NewZone("measure.example.org")
	z.WildcardA = answerIP
	return &fixture{world: w, ca: ca, zone: z, tmpl: Template{Host: "dns.provider.example", Path: DefaultPath}}
}

func (f *fixture) serve(t *testing.T, srv *Server) {
	t.Helper()
	leaf, err := f.ca.Issue(certs.LeafOptions{
		CommonName: f.tmpl.Host,
		IPs:        []netip.Addr{dohIP},
	})
	if err != nil {
		t.Fatal(err)
	}
	Serve(f.world, dohIP, leaf, srv)
}

func (f *fixture) client() *Client {
	c := NewClient(f.world, clientIP, certs.Pool(f.ca))
	c.Override[f.tmpl.Host] = dohIP
	return c
}

func TestParseTemplate(t *testing.T) {
	tmpl, err := ParseTemplate("https://dns.example.com/dns-query{?dns}")
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Host != "dns.example.com" || tmpl.Path != "/dns-query" {
		t.Errorf("template = %+v", tmpl)
	}
	if tmpl.String() != "https://dns.example.com/dns-query{?dns}" {
		t.Errorf("String = %q", tmpl.String())
	}
	if _, err := ParseTemplate("http://insecure.example/dns-query"); err == nil {
		t.Error("accepted http scheme")
	}
}

func TestGETQuery(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.client()
	res, err := c.Query(f.tmpl, "probe-g.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestPOSTQuery(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	c := f.client()
	c.Method = POST
	res, err := c.Query(f.tmpl, "probe-p.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestConnectionReuse(t *testing.T) {
	f := newFixture(t)
	f.world.JitterFrac = 0
	f.serve(t, &Server{Handler: f.zone})
	c := f.client()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var last time.Duration
	for i := 0; i < 4; i++ {
		res, err := conn.Query("reuse.measure.example.org", dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		last = res.Latency
	}
	if last >= conn.SetupLatency() {
		t.Errorf("reused query latency %v not below setup %v", last, conn.SetupLatency())
	}
}

func TestStrictOnlyRejectsUntrustedCert(t *testing.T) {
	f := newFixture(t)
	rogue, err := certs.NewCA("Rogue CA", false)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := rogue.Issue(certs.LeafOptions{CommonName: f.tmpl.Host, IPs: []netip.Addr{dohIP}})
	if err != nil {
		t.Fatal(err)
	}
	Serve(f.world, dohIP, leaf, &Server{Handler: f.zone})
	c := f.client()
	_, err = c.Query(f.tmpl, "x.measure.example.org", dnswire.TypeA)
	if !errors.Is(err, ErrAuthFailed) {
		t.Errorf("err = %v, want ErrAuthFailed (DoH is strict-only)", err)
	}
	// The wrap preserves the TLS cause so callers can tell an untrusted
	// issuer apart from expiry or a timeout.
	var uae x509.UnknownAuthorityError
	if !errors.As(err, &uae) {
		t.Errorf("err = %v, want x509.UnknownAuthorityError via errors.As", err)
	}
}

func TestJSONAPI(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone, JSONAPI: true})
	c := f.client()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	jr, err := conn.QueryJSON("json.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status != 0 || len(jr.Answer) != 1 || jr.Answer[0].Data != answerIP.String() {
		t.Errorf("json response = %+v", jr)
	}
}

func TestWebpageAndUnknownPath(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone, Webpage: "<title>Public DoH resolver</title>"})
	c := f.client()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Query against a wrong path yields an HTTP error, not a DNS answer.
	badTmpl := Template{Host: f.tmpl.Host, Path: "/not-the-endpoint"}
	conn2, err := c.Dial(badTmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Query("x.measure.example.org", dnswire.TypeA); !errors.Is(err, ErrHTTPStatus) {
		t.Errorf("wrong-path err = %v, want ErrHTTPStatus", err)
	}
}

func TestBootstrapResolution(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})

	// A clear-text bootstrap resolver that knows the DoH hostname.
	bootIP := netip.MustParseAddr("192.0.2.5")
	bootZone := dnsserver.NewZone("provider.example")
	bootZone.Add(f.tmpl.Host, 300, dnswire.A{Addr: dohIP})
	f.world.RegisterDatagram(bootIP, 53, dnsserver.DatagramHandler(bootZone))

	c := NewClient(f.world, clientIP, certs.Pool(f.ca))
	c.Bootstrap = bootIP
	res, err := c.Query(f.tmpl, "boot.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestResolveFailsWithoutPath(t *testing.T) {
	f := newFixture(t)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca))
	if _, err := c.Resolve("unknown.example"); err == nil {
		t.Error("Resolve succeeded with no override and no bootstrap")
	}
}

func TestQuad9MisconfigurationTimeouts(t *testing.T) {
	f := newFixture(t)
	backendIP := netip.MustParseAddr("192.0.2.9")

	// Backend whose processing time alternates fast/slow around the 2 s
	// front-end timeout.
	slow := false
	f.world.RegisterDatagram(backendIP, 53, func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		resp, proc, err := dnsserver.DatagramHandler(f.zone)(from, req)
		if slow {
			proc += 3 * time.Second
		}
		slow = !slow
		return resp, proc, err
	})
	f.serve(t, &Server{Handler: &UDPBackendForwarder{
		World:   f.world,
		From:    dohIP,
		Backend: backendIP,
		Timeout: 2 * time.Second,
	}})

	c := f.client()
	conn, err := c.Dial(f.tmpl, dohIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var servfails, successes int
	for i := 0; i < 10; i++ {
		res, err := conn.Query("q9.measure.example.org", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rcode() == dnswire.RcodeServFail {
			servfails++
		} else {
			successes++
		}
	}
	if servfails == 0 || successes == 0 {
		t.Errorf("servfails=%d successes=%d, want both > 0 (Finding 2.4)", servfails, successes)
	}
}

func TestMethodString(t *testing.T) {
	if GET.String() != "GET" || POST.String() != "POST" {
		t.Error("Method.String mismatch")
	}
}

func TestGETURLEncodesBase64URL(t *testing.T) {
	f := newFixture(t)
	conn := &Conn{client: &Client{Method: GET}, template: f.tmpl}
	raw := string(conn.appendRequest(nil, []byte{0xfb, 0xff, 0xfe}))
	i := strings.Index(raw, "?dns=")
	j := strings.Index(raw, " HTTP/1.1")
	if i < 0 || j < i {
		t.Fatalf("rendered request %q missing dns query", raw)
	}
	q := raw[i+len("?dns=") : j]
	if strings.ContainsAny(q, "+/=") {
		t.Errorf("dns param %q not base64url-unpadded", q)
	}
}
