package dnsserver

import (
	"net/netip"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	rootIP = netip.MustParseAddr("198.41.0.4")   // root server
	tldIP  = netip.MustParseAddr("192.5.6.30")   // org. server
	sldIP  = netip.MustParseAddr("198.51.100.1") // example.org. server
	iterIP = netip.MustParseAddr("192.0.2.77")   // the iterative resolver
)

// buildHierarchy installs root → org. → example.org. authorities.
func buildHierarchy(t *testing.T) *netsim.World {
	t.Helper()
	w := netsim.NewWorld(17)
	w.Geo.Register(netip.MustParsePrefix("0.0.0.0/0"), geo.Location{Country: "US"})

	root := NewZone(".")
	root.Delegate("org.", "a.org-servers.example.", tldIP)
	w.RegisterDatagram(rootIP, 53, DatagramHandler(root))

	org := NewZone("org.")
	org.Delegate("example.org.", "ns1.example.org.", sldIP)
	w.RegisterDatagram(tldIP, 53, DatagramHandler(org))

	example := NewZone("example.org.")
	example.Add("example.org.", 3600, dnswire.NS{Host: "ns1.example.org."})
	example.Add("ns1.example.org.", 3600, dnswire.A{Addr: sldIP})
	example.Add("www.example.org.", 300, dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")})
	example.Add("txt.example.org.", 300, dnswire.TXT{Texts: []string{"hello"}})
	w.RegisterDatagram(sldIP, 53, DatagramHandler(example))
	return w
}

func resolveA(t *testing.T, r *Iterative, name string) *dnswire.Message {
	t.Helper()
	resp, _ := r.ServeDNS(iterIP, dnswire.NewQuery(1, name, dnswire.TypeA))
	return resp
}

func TestIterativeResolution(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, []netip.Addr{rootIP})
	resp := resolveA(t, r, "www.example.org")
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("resolution failed: %v", resp)
	}
	if a, ok := resp.Answers[0].Data.(dnswire.A); !ok || a.Addr != netip.MustParseAddr("203.0.113.80") {
		t.Errorf("answer = %v", resp.Answers)
	}
	// Without QM, the full name leaks to every server on the path.
	for _, q := range r.SentQueries() {
		if q.Name != "www.example.org." {
			t.Errorf("non-QM resolver sent %q, want full name everywhere", q.Name)
		}
	}
	// Three servers: root, org, example.org.
	if n := len(r.SentQueries()); n != 3 {
		t.Errorf("queries sent = %d, want 3", n)
	}
}

func TestQNAMEMinimisationHidesFullName(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, []netip.Addr{rootIP})
	r.QNAMEMinimisation = true
	resp := resolveA(t, r, "www.example.org")
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("QM resolution failed: %+v", resp)
	}
	// RFC 7816's property: only the final authoritative server sees the
	// full name; root and TLD see one-label-at-a-time NS queries.
	for _, q := range r.SentQueries() {
		switch q.Server {
		case rootIP:
			if q.Name != "org." {
				t.Errorf("root saw %q, want org.", q.Name)
			}
			if q.Type != dnswire.TypeNS {
				t.Errorf("root saw type %v, want NS", q.Type)
			}
		case tldIP:
			if q.Name != "example.org." {
				t.Errorf("TLD saw %q, want example.org.", q.Name)
			}
		case sldIP:
			if strings.Count(q.Name, ".") > strings.Count("www.example.org.", ".") {
				t.Errorf("SLD saw %q", q.Name)
			}
		}
	}
	// The full name must never reach the root.
	for _, q := range r.SentQueries() {
		if q.Server == rootIP && q.Name == "www.example.org." {
			t.Error("full qname leaked to the root server despite QM")
		}
	}
}

func TestIterativeNXDomain(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, []netip.Addr{rootIP})
	resp := resolveA(t, r, "missing.example.org")
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.Rcode)
	}
}

func TestIterativeQMNXDomain(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, []netip.Addr{rootIP})
	r.QNAMEMinimisation = true
	resp := resolveA(t, r, "missing.example.org")
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.Rcode)
	}
}

func TestIterativeNoRootsFails(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, nil)
	resp := resolveA(t, r, "www.example.org")
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Rcode)
	}
}

func TestIterativeDeadRootFails(t *testing.T) {
	w := buildHierarchy(t)
	r := NewIterative(w, iterIP, []netip.Addr{netip.MustParseAddr("198.41.0.99")})
	resp := resolveA(t, r, "www.example.org")
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Rcode)
	}
}

func TestDelegationReferral(t *testing.T) {
	z := NewZone("org.")
	z.Delegate("example.org.", "ns1.example.org.", sldIP)
	resp, _ := z.ServeDNS(iterIP, dnswire.NewQuery(1, "deep.www.example.org", dnswire.TypeA))
	if resp.Authoritative {
		t.Error("referral marked authoritative")
	}
	if len(resp.Answers) != 0 || len(resp.Authorities) != 1 || len(resp.Additionals) != 1 {
		t.Fatalf("referral sections = %d/%d/%d", len(resp.Answers), len(resp.Authorities), len(resp.Additionals))
	}
	if ns, ok := resp.Authorities[0].Data.(dnswire.NS); !ok || ns.Host != "ns1.example.org." {
		t.Errorf("referral NS = %v", resp.Authorities[0])
	}
}

func TestLoadZone(t *testing.T) {
	zoneText := `
; the example.org zone
$ORIGIN example.org.
$TTL 300
@       IN SOA ns1 hostmaster 2019050101 7200 3600 1209600 300
@       IN NS  ns1
ns1     IN A   198.51.100.1
www     600 IN A 203.0.113.80
txt     IN TXT "v=spf1 -all" "second ; not a comment"
mail    IN MX  10 mx.example.org.
alias   IN CNAME www
v6      IN AAAA 2001:db8::80
`
	z, err := LoadZone("example.org.", strings.NewReader(zoneText))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, qtype dnswire.Type, wantRcode dnswire.Rcode, wantAnswers int) *dnswire.Message {
		t.Helper()
		resp, _ := z.ServeDNS(iterIP, dnswire.NewQuery(1, name, qtype))
		if resp.Rcode != wantRcode || len(resp.Answers) != wantAnswers {
			t.Fatalf("%s %v: rcode=%v answers=%d", name, qtype, resp.Rcode, len(resp.Answers))
		}
		return resp
	}
	resp := check("www.example.org", dnswire.TypeA, dnswire.RcodeSuccess, 1)
	if resp.Answers[0].TTL != 600 {
		t.Errorf("www TTL = %d, want explicit 600", resp.Answers[0].TTL)
	}
	resp = check("txt.example.org", dnswire.TypeTXT, dnswire.RcodeSuccess, 1)
	txt := resp.Answers[0].Data.(dnswire.TXT)
	if len(txt.Texts) != 2 || txt.Texts[0] != "v=spf1 -all" || txt.Texts[1] != "second ; not a comment" {
		t.Errorf("TXT = %q", txt.Texts)
	}
	resp = check("mail.example.org", dnswire.TypeMX, dnswire.RcodeSuccess, 1)
	if mx := resp.Answers[0].Data.(dnswire.MX); mx.Preference != 10 || mx.Host != "mx.example.org." {
		t.Errorf("MX = %v", mx)
	}
	resp = check("alias.example.org", dnswire.TypeCNAME, dnswire.RcodeSuccess, 1)
	if cn := resp.Answers[0].Data.(dnswire.CNAME); cn.Target != "www.example.org." {
		t.Errorf("CNAME = %v", cn)
	}
	check("v6.example.org", dnswire.TypeAAAA, dnswire.RcodeSuccess, 1)
	resp = check("example.org", dnswire.TypeSOA, dnswire.RcodeSuccess, 1)
	soa := resp.Answers[0].Data.(dnswire.SOA)
	if soa.MName != "ns1.example.org." || soa.Serial != 2019050101 || soa.Minimum != 300 {
		t.Errorf("SOA = %+v", soa)
	}
	// Default TTL applies where no explicit TTL is given.
	resp = check("ns1.example.org", dnswire.TypeA, dnswire.RcodeSuccess, 1)
	if resp.Answers[0].TTL != 300 {
		t.Errorf("ns1 TTL = %d, want $TTL 300", resp.Answers[0].TTL)
	}
}

func TestLoadZoneRejectsOutOfZone(t *testing.T) {
	if _, err := LoadZone("example.org.", strings.NewReader("www.other.net. IN A 192.0.2.1\n")); err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestLoadZoneRejectsBadSyntax(t *testing.T) {
	cases := []string{
		"$ORIGIN\n",
		"$TTL abc\n",
		"www IN A not-an-ip\n",
		"www IN WEIRD data\n",
		"www IN MX ten mx.example.org.\n",
	}
	for _, c := range cases {
		if _, err := LoadZone("example.org.", strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestParseRecordForms(t *testing.T) {
	rec, err := dnswire.ParseRecord("@ 3600 IN NS ns1", "example.org.", 300)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "example.org." || rec.Data.(dnswire.NS).Host != "ns1.example.org." {
		t.Errorf("rec = %+v", rec)
	}
	rec, err = dnswire.ParseRecord("srv.example.org. IN SRV 1 2 853 dot", "example.org.", 300)
	if err != nil {
		t.Fatal(err)
	}
	srv := rec.Data.(dnswire.SRV)
	if srv.Port != 853 || srv.Target != "dot.example.org." {
		t.Errorf("srv = %+v", srv)
	}
	if _, err := dnswire.ParseRecord("x", "example.org.", 300); err == nil {
		t.Error("short record accepted")
	}
	if _, err := dnswire.ParseRecord(`t IN TXT "unterminated`, "example.org.", 300); err == nil {
		t.Error("unterminated quote accepted")
	}
}
