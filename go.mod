module dnsencryption.info/doe

go 1.22
