package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a study's metrics. All values are int64 (counts, or
// virtual microseconds) because integer addition is commutative — float
// accumulation would make snapshots depend on worker interleaving.
//
// Metrics are deterministic by default: their end-of-run values depend
// only on (seed, config), never on scheduling, and they appear in the
// `== telemetry:` report section and the golden snapshot. Metrics whose
// values are inherently schedule-dependent (per-worker shares, inflight
// high-water marks) must be registered as volatile; they show up only in
// full snapshots (-metrics output, /metrics endpoint).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSketch
)

// family groups every labeled instance of one metric name.
type family struct {
	name       string
	kind       metricKind
	volatile   bool
	bounds     []time.Duration // histograms only
	sketchOpts SketchOpts      // sketches only
	mu         sync.Mutex
	insts      map[string]any // label string → *Counter | *Gauge | *Histogram | *Sketch
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) lookup(name string, kind metricKind, volatile bool, bounds []time.Duration) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, kind: kind, volatile: volatile, bounds: bounds,
			insts: make(map[string]any)}
		r.fams[name] = f
	}
	return f
}

// labelString renders "k1=v1,k2=v2" from alternating key/value pairs.
// Instrumentation sites pass labels in a fixed order, so no sorting is
// needed for identity; snapshots sort families and instances anyway.
//
// Values are escaped (`\` `,` `=` and newline) so the rendered string
// parses back unambiguously; keys must not contain structural characters
// at all — checkLabelKey rejects them at registration.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		checkLabelKey(labels[i])
		b.WriteString(labels[i])
		b.WriteByte('=')
		escapeLabelValue(&b, labels[i+1])
	}
	return b.String()
}

// checkLabelKey panics on label keys containing structural characters.
// Keys are string literals at instrumentation sites, so a bad key is a
// programming error, caught at first registration.
func checkLabelKey(k string) {
	if strings.ContainsAny(k, ",=\"\\\n") {
		panic("obs: label key " + strconv.Quote(k) + ` must not contain ',' '=' '"' '\' or newline`)
	}
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\', ',', '=':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// parseLabelString inverts labelString: it splits on unescaped separators
// and unescapes values, returning alternating key/value pairs.
func parseLabelString(ls string) []string {
	if ls == "" {
		return nil
	}
	var out []string
	var cur strings.Builder
	inValue, escaped := false, false
	flush := func() { out = append(out, cur.String()); cur.Reset() }
	for i := 0; i < len(ls); i++ {
		c := ls[i]
		switch {
		case escaped:
			if c == 'n' {
				cur.WriteByte('\n')
			} else {
				cur.WriteByte(c)
			}
			escaped = false
		case c == '\\':
			escaped = true
		case c == '=' && !inValue:
			flush()
			inValue = true
		case c == ',' && inValue:
			flush()
			inValue = false
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 with a Max helper for high-water marks.
type Gauge struct{ v atomic.Int64 }

// Set stores n; nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative); nil-safe.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Max raises the gauge to n if n is greater; nil-safe.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound distribution of virtual durations. Buckets
// are cumulative-at-snapshot, stored per-bound; sum is in microseconds.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Int64 // one per bound, +Inf implied by count
	count   atomic.Int64
	sumUS   atomic.Int64
}

// DefaultLatencyBuckets covers the virtual latencies the simulation
// produces, from LAN RTTs to stalled fault paths.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2 * time.Second, 5 * time.Second,
	}
}

// Observe records one virtual duration; nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumUS.Add(int64(d / time.Microsecond))
	for i, b := range h.bounds {
		if d <= b {
			h.buckets[i].Add(1)
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumUS returns the sum of observations in microseconds (0 on nil).
func (h *Histogram) SumUS() int64 {
	if h == nil {
		return 0
	}
	return h.sumUS.Load()
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket that crosses the target rank; observations above the highest
// bound clamp to it.
//
// Edge behavior (pinned by tests): an empty histogram returns 0 for every
// q; q is clamped to [0, 1], so q <= 0 behaves like the minimum rank and
// q >= 1 like the maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := clampQ(q) * float64(total)
	var cum int64
	lower := time.Duration(0)
	for i, b := range h.bounds {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank {
			if n == 0 {
				return b
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + time.Duration(frac*float64(b-lower))
		}
		cum += n
		lower = b
	}
	// Target rank lives in the implicit +Inf bucket: clamp to the top bound.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge folds o's observations into h bucket-by-bucket. Bucket addition
// is associative and commutative, so merging shard histograms in any
// order or tree shape yields identical totals. It fails if the bucket
// bounds differ; nil receiver or argument is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if !equalBounds(h.bounds, o.bounds) {
		return fmt.Errorf("obs: histogram merge: bounds mismatch (%d vs %d buckets)",
			len(h.bounds), len(o.bounds))
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sumUS.Add(o.sumUS.Load())
	return nil
}

func equalBounds(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clampQ pins a quantile request to [0, 1] so out-of-range q degrades to
// the distribution's min/max instead of extrapolating.
func clampQ(q float64) float64 {
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// bucketCounts returns per-bound counts plus the overflow count.
func (h *Histogram) bucketCounts() ([]int64, int64) {
	counts := make([]int64, len(h.bounds))
	var within int64
	for i := range h.bounds {
		counts[i] = h.buckets[i].Load()
		within += counts[i]
	}
	return counts, h.count.Load() - within
}

// ── registry accessors ────────────────────────────────────────────────────

func (r *Registry) counter(name string, volatile bool, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, kindCounter, volatile, nil)
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.insts[ls].(*Counter); ok {
		return c
	}
	c := &Counter{}
	f.insts[ls] = c
	return c
}

// Counter returns the deterministic counter name{labels}, creating it on
// first use. labels alternate key, value.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.counter(name, false, labels...)
}

// VolatileCounter is Counter for schedule-dependent values (per-worker
// shares); excluded from deterministic snapshots.
func (r *Registry) VolatileCounter(name string, labels ...string) *Counter {
	return r.counter(name, true, labels...)
}

func (r *Registry) gauge(name string, volatile bool, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, kindGauge, volatile, nil)
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.insts[ls].(*Gauge); ok {
		return g
	}
	g := &Gauge{}
	f.insts[ls] = g
	return g
}

// Gauge returns the deterministic gauge name{labels}.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.gauge(name, false, labels...)
}

// VolatileGauge is Gauge for schedule-dependent values (queue depth
// high-water marks, worker counts).
func (r *Registry) VolatileGauge(name string, labels ...string) *Gauge {
	return r.gauge(name, true, labels...)
}

// Histogram returns the deterministic histogram name{labels} with the
// given bucket bounds (DefaultLatencyBuckets if nil). Bounds are fixed by
// the first caller.
func (r *Registry) Histogram(name string, bounds []time.Duration, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	f := r.lookup(name, kindHistogram, false, bounds)
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.insts[ls].(*Histogram); ok {
		return h
	}
	h := &Histogram{bounds: f.bounds, buckets: make([]atomic.Int64, len(f.bounds))}
	f.insts[ls] = h
	return h
}

// ── snapshots ─────────────────────────────────────────────────────────────

// Snapshot renders a deterministic text snapshot: families sorted by name,
// instances by label string. With includeVolatile false (the report
// section and golden tests) only schedule-independent metrics appear.
func (r *Registry) Snapshot(includeVolatile bool) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.volatile && !includeVolatile {
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.insts))
		for k := range f.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			label := ""
			if k != "" {
				label = "{" + k + "}"
			}
			switch m := f.insts[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, label, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, label, m.Value())
			case *Histogram:
				fmt.Fprintf(&b, "%s%s count=%d sum_us=%d p50=%s p90=%s p99=%s\n",
					f.name, label, m.Count(), m.SumUS(),
					fmtQuantile(m, 0.50), fmtQuantile(m, 0.90), fmtQuantile(m, 0.99))
			case *Sketch:
				fmt.Fprintf(&b, "%s%s count=%d sum_us=%d p50=%s p90=%s p99=%s\n",
					f.name, label, m.Count(), m.SumUS(),
					fmtQuantile(m, 0.50), fmtQuantile(m, 0.90), fmtQuantile(m, 0.99))
			}
		}
		f.mu.Unlock()
	}
	return b.String()
}

// fmtQuantile renders a quantile with fixed microsecond precision so the
// snapshot never depends on float formatting of derived values.
func fmtQuantile(m interface{ Quantile(float64) time.Duration }, q float64) string {
	return fmt.Sprintf("%dus", int64(m.Quantile(q)/time.Microsecond))
}
