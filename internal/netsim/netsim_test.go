package netsim

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/geo"
)

var (
	clientIP = netip.MustParseAddr("10.1.0.2")
	serverIP = netip.MustParseAddr("192.0.2.10")
)

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w := NewWorld(1)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US", ASN: 100, ASName: "Client ISP"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL", ASN: 200, ASName: "Hosting"})
	return w
}

// echoHandler echoes everything back.
func echoHandler(conn *Conn) {
	defer conn.Close()
	io.Copy(conn, conn) //nolint:errcheck
}

func TestDialAndEcho(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 7, echoHandler)

	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("echo = %q", buf)
	}
}

func TestDialUnknownHostRefused(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.Dial(clientIP, serverIP, 853); !errors.Is(err, ErrRefused) {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestVirtualLatencyAccounting(t *testing.T) {
	w := newTestWorld(t)
	w.JitterFrac = 0 // deterministic
	w.RegisterStream(serverIP, 7, echoHandler)

	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))

	rtt := w.pathRTT(clientIP, serverIP)
	if got := conn.Elapsed(); got != rtt {
		t.Errorf("post-dial elapsed = %v, want 1 RTT (%v)", got, rtt)
	}
	// One request/response adds one more RTT (half on the server's read
	// wait, half on ours).
	conn.Write([]byte("x")) //nolint:errcheck
	buf := make([]byte, 1)
	io.ReadFull(conn, buf) //nolint:errcheck
	want := 2 * rtt
	if got := conn.Elapsed(); got < want*9/10 || got > want*11/10 {
		t.Errorf("post-exchange elapsed = %v, want ≈%v", got, want)
	}
}

func TestAddLatency(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 7, func(conn *Conn) {
		conn.AddLatency(42 * time.Millisecond)
		conn.Close()
	})
	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	io.ReadAll(conn) //nolint:errcheck // wait for close
	base := w.pathRTT(clientIP, serverIP)
	if got := conn.Elapsed(); got < base+42*time.Millisecond {
		t.Errorf("elapsed = %v, want at least %v", got, base+42*time.Millisecond)
	}
}

func TestReadDeadline(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 7, func(conn *Conn) {
		// Never respond.
		buf := make([]byte, 16)
		conn.Read(buf) //nolint:errcheck
	})
	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err = conn.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("read err = %v, want timeout", err)
	}
}

func TestCloseUnblocksPeer(t *testing.T) {
	w := newTestWorld(t)
	done := make(chan error, 1)
	w.RegisterStream(serverIP, 7, func(conn *Conn) {
		_, err := conn.Read(make([]byte, 1))
		done <- err
	})
	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Errorf("peer read err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read did not unblock")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 7, echoHandler)
	conn, err := w.Dial(clientIP, serverIP, 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestTLSOverSimulatedNetwork(t *testing.T) {
	w := newTestWorld(t)
	w.JitterFrac = 0
	ca, err := certs.NewCA("Root", true)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafOptions{CommonName: "dns.example", IPs: []netip.Addr{serverIP}})
	if err != nil {
		t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	w.RegisterStream(serverIP, 853, func(conn *Conn) {
		tc := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{cert}})
		defer tc.Close()
		if err := tc.Handshake(); err != nil {
			return
		}
		io.Copy(tc, tc) //nolint:errcheck
	})

	conn, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	roots := x509.NewCertPool()
	roots.AddCert(ca.Cert)
	tc := tls.Client(conn, &tls.Config{RootCAs: roots, ServerName: "dns.example", Time: func() time.Time { return certs.RefTime }})
	if err := tc.Handshake(); err != nil {
		t.Fatalf("TLS handshake: %v", err)
	}
	if _, err := tc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(tc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo over TLS = %q", buf)
	}
	// TLS 1.3 handshake costs about one extra virtual RTT over the dial.
	rtt := w.pathRTT(clientIP, serverIP)
	elapsed := conn.Elapsed()
	if elapsed < 2*rtt || elapsed > 5*rtt {
		t.Errorf("TLS session elapsed = %v, want within [2,5] RTT (%v)", elapsed, rtt)
	}
}

func TestExchange(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterDatagram(serverIP, 53, func(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
		return append([]byte("re:"), req...), 3 * time.Millisecond, nil
	})
	resp, elapsed, err := w.Exchange(clientIP, serverIP, 53, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:q" {
		t.Errorf("resp = %q", resp)
	}
	if want := w.pathRTT(clientIP, serverIP) + 3*time.Millisecond; elapsed != want {
		t.Errorf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestExchangeNoService(t *testing.T) {
	w := newTestWorld(t)
	if _, _, err := w.Exchange(clientIP, serverIP, 53, []byte("q")); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestCensorRefusesAndSpoofs(t *testing.T) {
	w := newTestWorld(t)
	blocked := netip.MustParseAddr("192.0.2.99")
	w.RegisterStream(blocked, 443, echoHandler)
	w.RegisterDatagram(blocked, 53, func(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
		return []byte("real"), 0, nil
	})
	w.AddPolicy(&Censor{
		Countries: map[string]bool{"US": true},
		BlockIPs:  map[netip.Addr]bool{blocked: true},
		Blackhole: true,
		SpoofDNS:  func(req []byte) []byte { return []byte("forged") },
	})

	if _, err := w.Dial(clientIP, blocked, 443); !errors.Is(err, ErrBlackhole) {
		t.Errorf("dial err = %v, want blackhole", err)
	}
	resp, _, err := w.Exchange(clientIP, blocked, 53, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "forged" {
		t.Errorf("spoofed resp = %q", resp)
	}
	// A client outside the censored country is unaffected.
	otherClient := netip.MustParseAddr("192.0.2.200")
	if _, err := w.Dial(otherClient, blocked, 443); err != nil {
		t.Errorf("uncensored dial failed: %v", err)
	}
}

func TestPortFilter(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 53, echoHandler)
	w.RegisterStream(serverIP, 853, echoHandler)
	w.AddPolicy(&PortFilter{
		ClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
		Port:           53,
	})
	if _, err := w.Dial(clientIP, serverIP, 53); !errors.Is(err, ErrRefused) {
		t.Errorf("port 53 err = %v, want refused", err)
	}
	if _, err := w.Dial(clientIP, serverIP, 853); err != nil {
		t.Errorf("port 853 should pass, got %v", err)
	}
}

func TestConflictDevice(t *testing.T) {
	w := newTestWorld(t)
	oneone := netip.MustParseAddr("1.1.1.1")
	w.RegisterStream(oneone, 853, echoHandler) // the real resolver
	w.AddPolicy(&ConflictDevice{
		ClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
		ConflictIP:     oneone,
		Kind:           DeviceRouter,
		OpenPorts:      map[uint16]string{80: "<title>RouterOS admin</title>"},
	})

	// Port 80 serves the device's page.
	conn, err := w.Dial(clientIP, oneone, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprint(conn, "GET / HTTP/1.0\r\n\r\n")
	page, _ := io.ReadAll(conn)
	if !strings.Contains(string(page), "RouterOS") {
		t.Errorf("page = %q", page)
	}
	// Port 853 is blackholed by the device for affected clients.
	if _, err := w.Dial(clientIP, oneone, 853); !errors.Is(err, ErrBlackhole) {
		t.Errorf("853 err = %v, want blackhole", err)
	}
	// Unaffected clients reach the real resolver.
	other := netip.MustParseAddr("192.0.2.77")
	if _, err := w.Dial(other, oneone, 853); err != nil {
		t.Errorf("unaffected client: %v", err)
	}
}

func TestTLSInterceptorMITM(t *testing.T) {
	w := newTestWorld(t)
	w.JitterFrac = 0
	rootCA, err := certs.NewCA("Trusted Root", true)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := rootCA.Issue(certs.LeafOptions{CommonName: "dns.example", IPs: []netip.Addr{serverIP}})
	if err != nil {
		t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	w.RegisterStream(serverIP, 853, func(conn *Conn) {
		tc := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{cert}})
		defer tc.Close()
		if tc.Handshake() != nil {
			return
		}
		// Echo one message.
		buf := make([]byte, 64)
		n, err := tc.Read(buf)
		if err != nil {
			return
		}
		tc.Write(buf[:n]) //nolint:errcheck
	})

	dpiCA, err := certs.NewCA("SonicWall Firewall DPI-SSL", false)
	if err != nil {
		t.Fatal(err)
	}
	mitm := NewTLSInterceptor(dpiCA, []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}, 853)
	w.AddPolicy(mitm)

	conn, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Opportunistic client: no verification. The session works end to end
	// but the presented certificate is the forged one.
	tc := tls.Client(conn, &tls.Config{InsecureSkipVerify: true}) //nolint:gosec // opportunistic profile
	if err := tc.Handshake(); err != nil {
		t.Fatalf("handshake through MITM: %v", err)
	}
	got := tc.ConnectionState().PeerCertificates[0]
	if got.Issuer.CommonName != "SonicWall Firewall DPI-SSL" {
		t.Errorf("issuer = %q, want DPI CA", got.Issuer.CommonName)
	}
	if got.Subject.CommonName != "dns.example" {
		t.Errorf("subject = %q, want original CN preserved", got.Subject.CommonName)
	}
	if _, err := tc.Write([]byte("query")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(tc, buf); err != nil {
		t.Fatalf("read through MITM: %v", err)
	}
	if string(buf) != "query" {
		t.Errorf("relayed data = %q", buf)
	}

	// Strict client: verification fails, handshake aborts.
	conn2, err := w.Dial(clientIP, serverIP, 853)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	roots := x509.NewCertPool()
	roots.AddCert(rootCA.Cert)
	strict := tls.Client(conn2, &tls.Config{RootCAs: roots, ServerName: "dns.example", Time: func() time.Time { return certs.RefTime }})
	if err := strict.Handshake(); err == nil {
		t.Error("strict handshake through MITM unexpectedly succeeded")
	}

	// The proxy records the failed strict handshake asynchronously.
	var sessions []InterceptedSession
	for deadline := time.Now().Add(3 * time.Second); ; {
		sessions = mitm.Sessions()
		if len(sessions) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sessions) < 2 {
		t.Fatalf("sessions = %d, want >= 2", len(sessions))
	}
	if !sessions[0].RelayedToOrigin {
		t.Error("opportunistic session not marked relayed")
	}
}

func TestOptOutList(t *testing.T) {
	var o OptOutList
	o.Add(netip.MustParsePrefix("203.0.113.0/24"))
	if !o.Contains(netip.MustParseAddr("203.0.113.7")) {
		t.Error("opt-out address not matched")
	}
	if o.Contains(netip.MustParseAddr("203.0.114.7")) {
		t.Error("non-opted address matched")
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestListenerCloseStopsAccept(t *testing.T) {
	w := newTestWorld(t)
	l, err := w.Listen(serverIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Accept(); err == nil {
		t.Error("Accept on closed listener succeeded")
	}
}

func TestStreamAddrs(t *testing.T) {
	w := newTestWorld(t)
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	w.RegisterStream(a, 853, echoHandler)
	w.RegisterStream(b, 853, echoHandler)
	w.RegisterStream(b, 443, echoHandler)
	if got := len(w.StreamAddrs(853)); got != 2 {
		t.Errorf("StreamAddrs(853) = %d, want 2", got)
	}
	if !w.HasStream(a, 853) || w.HasStream(a, 443) {
		t.Error("HasStream mismatch")
	}
}

// mustCA builds an untrusted CA for interception tests.
func mustCA(t *testing.T) *certs.CA {
	t.Helper()
	ca, err := certs.NewCA("Test DPI CA", false)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}
