package vantage

import (
	"context"
	"crypto/x509"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/resolver"
)

// PerfSample is one vantage point's relative-performance measurement with
// reused connections (§4.3): per-protocol medians of T_R over N queries.
type PerfSample struct {
	NodeID  string
	Country string
	// Medians of observed per-query latency, milliseconds.
	DNSMedianMS float64
	DoTMedianMS float64
	DoHMedianMS float64
	DoQMedianMS float64
	// MuxInFlight is the per-session concurrency of the multiplexed pass
	// (0 when the platform ran serial sessions only).
	MuxInFlight int
	// Medians of amortized per-query latency with MuxInFlight queries in
	// flight per session: the session's Elapsed delta around each batch
	// divided by the batch size.
	DoTMuxMedianMS float64
	DoHMuxMedianMS float64
	DoQMuxMedianMS float64
}

// DoTOverheadMS is the per-client DoT extra latency over clear-text DNS.
func (s PerfSample) DoTOverheadMS() float64 { return s.DoTMedianMS - s.DNSMedianMS }

// DoHOverheadMS is the per-client DoH extra latency over clear-text DNS.
func (s PerfSample) DoHOverheadMS() float64 { return s.DoHMedianMS - s.DNSMedianMS }

// DoQOverheadMS is the per-client DoQ extra latency over clear-text DNS.
func (s PerfSample) DoQOverheadMS() float64 { return s.DoQMedianMS - s.DNSMedianMS }

// DoTMuxOverheadMS is the multiplexed DoT extra latency over serial
// clear-text DNS.
func (s PerfSample) DoTMuxOverheadMS() float64 { return s.DoTMuxMedianMS - s.DNSMedianMS }

// DoHMuxOverheadMS is the multiplexed DoH extra latency over serial
// clear-text DNS.
func (s PerfSample) DoHMuxOverheadMS() float64 { return s.DoHMuxMedianMS - s.DNSMedianMS }

// DoQMuxOverheadMS is the multiplexed DoQ extra latency over serial
// clear-text DNS.
func (s PerfSample) DoQMuxOverheadMS() float64 { return s.DoQMuxMedianMS - s.DNSMedianMS }

// MeasurePerformance runs the reused-connection test from one node: N
// DNS/TCP, N DoT and N DoH queries each on a single connection, reporting
// per-protocol medians. The comparison of T_R differences is valid because
// the client→proxy leg adds the same latency to every protocol (§4.1).
func (p *Platform) MeasurePerformance(node proxy.ExitNode, tgt Target, n int) (PerfSample, error) {
	return p.MeasurePerformanceContext(context.Background(), node, tgt, n)
}

// MeasurePerformanceContext is MeasurePerformance with telemetry: each
// protocol's timing pass gets a perf:<proto> span (retry attempts nested
// under it) and its successful pass's latencies feed the
// vantage_query_latency{mode=reused} histogram.
func (p *Platform) MeasurePerformanceContext(ctx context.Context, node proxy.ExitNode, tgt Target, n int) (PerfSample, error) {
	sample := PerfSample{NodeID: node.ID, Country: node.Country}

	// medianRelease reduces one pass's latency scratch to its median and
	// returns the slice to the pool immediately: across a campaign only
	// O(1) scratch is live per worker, not one slice per (node, protocol)
	// accumulating until the sample is assembled.
	medianRelease := func(lat *[]float64) float64 {
		m := analysis.Median(*lat)
		bufpool.PutF64(lat)
		return m
	}

	dnsLat, err := p.retryLatencies(ctx, ProtoDNS, func(ctx context.Context) (*[]float64, error) {
		return p.timeDNSQueries(ctx, node, tgt.DNS, n)
	})
	if err != nil {
		return sample, err
	}
	sample.DNSMedianMS = medianRelease(dnsLat)

	dotLat, err := p.retryLatencies(ctx, ProtoDoT, func(ctx context.Context) (*[]float64, error) {
		return p.timeDoTQueries(ctx, node, tgt.DoT, n)
	})
	if err != nil {
		return sample, err
	}
	sample.DoTMedianMS = medianRelease(dotLat)

	dohLat, err := p.retryLatencies(ctx, ProtoDoH, func(ctx context.Context) (*[]float64, error) {
		return p.timeDoHQueries(ctx, node, tgt.DoH, tgt.DoHAddr, n)
	})
	if err != nil {
		return sample, err
	}
	sample.DoHMedianMS = medianRelease(dohLat)

	if tgt.DoQ.IsValid() {
		doqLat, err := p.retryLatencies(ctx, ProtoDoQ, func(ctx context.Context) (*[]float64, error) {
			return p.timeDoQQueries(ctx, node, tgt.DoQ, n)
		})
		if err != nil {
			return sample, err
		}
		sample.DoQMedianMS = medianRelease(doqLat)
	}

	// The multiplexed pass re-runs the encrypted transports with
	// MuxInFlight queries in flight per session, amortizing each batch's
	// round trip over its queries — the Fig. 9 "multiplexed" column.
	if p.MuxInFlight > 1 {
		sample.MuxInFlight = p.MuxInFlight
		dotMux, err := p.retryLatenciesMode(ctx, ProtoDoT, "mux", func(ctx context.Context) (*[]float64, error) {
			return p.timeDoTMuxQueries(ctx, node, tgt.DoT, n)
		})
		if err != nil {
			return sample, err
		}
		sample.DoTMuxMedianMS = medianRelease(dotMux)
		dohMux, err := p.retryLatenciesMode(ctx, ProtoDoH, "mux", func(ctx context.Context) (*[]float64, error) {
			return p.timeDoHMuxQueries(ctx, node, tgt.DoH, tgt.DoHAddr, n)
		})
		if err != nil {
			return sample, err
		}
		sample.DoHMuxMedianMS = medianRelease(dohMux)
		if tgt.DoQ.IsValid() {
			doqMux, err := p.retryLatenciesMode(ctx, ProtoDoQ, "mux", func(ctx context.Context) (*[]float64, error) {
				return p.timeDoQMuxQueries(ctx, node, tgt.DoQ, n)
			})
			if err != nil {
				return sample, err
			}
			sample.DoQMuxMedianMS = medianRelease(doqMux)
		}
	}
	return sample, nil
}

// retryLatencies re-runs one protocol's whole timing pass (fresh tunnel,
// fresh session) while it fails and the platform retry budget allows: a
// connection killed mid-pass would otherwise discard the node. The
// successful pass's latencies are reported unpolluted by earlier attempts
// and observed into the reused-connection latency histogram. The returned
// slice is pool-owned (bufpool.GetF64); the caller must PutF64 it once
// reduced.
func (p *Platform) retryLatencies(ctx context.Context, proto Proto, measure func(ctx context.Context) (*[]float64, error)) (*[]float64, error) {
	return p.retryLatenciesMode(ctx, proto, "reused", measure)
}

// retryLatenciesMode is retryLatencies with an explicit histogram mode
// ("reused" for the serial passes, "mux" for the multiplexed ones).
func (p *Platform) retryLatenciesMode(ctx context.Context, proto Proto, mode string, measure func(ctx context.Context) (*[]float64, error)) (*[]float64, error) {
	span := "perf:" + string(proto)
	if mode != "reused" {
		span += "-" + mode
	}
	ctx, sp := obs.Start(ctx, span)
	budget := p.attempts()
	var lat *[]float64
	var err error
	for attempt := 1; attempt <= budget; attempt++ {
		actx := ctx
		if attempt > 1 {
			actx, _ = obs.Start(ctx, fmt.Sprintf("retry:%d", attempt))
		}
		lat, err = measure(actx)
		if err == nil {
			sp.SetInt("attempts", int64(attempt))
			sp.SetInt("queries", int64(len(*lat)))
			h := obs.Metrics(ctx).Histogram("vantage_query_latency", nil,
				"mode", mode, "proto", string(proto))
			// The sketch is the streaming counterpart: log-spaced buckets
			// whose shard merges stay byte-identical at any worker count.
			sk := obs.Metrics(ctx).Sketch("vantage_query_latency_sketch", obs.SketchOpts{},
				"mode", mode, "proto", string(proto))
			for _, l := range *lat {
				d := time.Duration(l * float64(time.Millisecond))
				h.Observe(d)
				sk.Observe(d)
			}
			return lat, nil //doelint:transfer -- pool-owned scratch; the caller reduces and PutF64s it
		}
	}
	sp.Fail(err)
	return nil, err
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// timeQueries issues n uniquely-named A lookups on one session and returns
// the per-query latencies in milliseconds — the session's Elapsed delta
// around each Exchange, the one clock every transport shares. This is the
// point of the unified API for §4.3: the timing harness is literally the
// same code for DNS/TCP, DoT and DoH. The returned slice comes from
// bufpool.GetF64 and travels up through retryLatencies to the reducer that
// PutF64s it; a failed pass releases it here.
func (p *Platform) timeQueries(ctx context.Context, sess resolver.Session, tag string, n int) (*[]float64, error) {
	lat := bufpool.GetF64(n)
	for i := 0; i < n; i++ {
		q := dnswire.NewQuery(0, p.UniqueName(tag), dnswire.TypeA)
		start := sess.Elapsed()
		if _, err := sess.Exchange(ctx, q); err != nil {
			bufpool.PutF64(lat)
			return nil, err
		}
		d := sess.Elapsed() - start
		obs.Charge(ctx, d)
		*lat = append(*lat, ms(d))
	}
	return lat, nil //doelint:transfer -- pool-owned scratch; released by the median reducer
}

func (p *Platform) timeDNSQueries(ctx context.Context, node proxy.ExitNode, target netip.Addr, n int) (*[]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, target, 53)
	if err != nil {
		return nil, err
	}
	sess := resolver.TCPSession(dnsclient.TCPFromConn(tunnel))
	defer sess.Close()
	p.observeSetup(ctx, ProtoDNS, sess)
	return p.timeQueries(ctx, sess, node.ID+"-perf-dns", n)
}

func (p *Platform) timeDoTQueries(ctx context.Context, node proxy.ExitNode, target netip.Addr, n int) (*[]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, target, dot.Port)
	if err != nil {
		return nil, err
	}
	client := dot.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialConnContext(ctx, tunnel)
	if err != nil {
		return nil, err
	}
	sess := resolver.DoTSession(conn)
	defer sess.Close()
	p.observeSetup(ctx, ProtoDoT, sess)
	return p.timeQueries(ctx, sess, node.ID+"-perf-dot", n)
}

func (p *Platform) timeDoHQueries(ctx context.Context, node proxy.ExitNode, tmpl doh.Template, addr netip.Addr, n int) (*[]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, addr, doh.Port)
	if err != nil {
		return nil, err
	}
	client := doh.NewClient(nil, p.From, p.Roots)
	conn, err := client.DialConnContext(ctx, tmpl, tunnel)
	if err != nil {
		return nil, err
	}
	sess := resolver.DoHSession(conn)
	defer sess.Close()
	p.observeSetup(ctx, ProtoDoH, sess)
	return p.timeQueries(ctx, sess, node.ID+"-perf-doh", n)
}

// timeDoQQueries times DoQ on one reused session through the platform's
// datagram relay. The fresh 1-RTT handshake is charged to setup (observed,
// not mixed into per-query latencies), matching the other transports.
func (p *Platform) timeDoQQueries(ctx context.Context, node proxy.ExitNode, target netip.Addr, n int) (*[]float64, error) {
	relay, err := p.Network.DialDatagram(p.From, node.ID, target, doq.Port)
	if err != nil {
		return nil, err
	}
	client := doq.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialVia(ctx, target, relay)
	if err != nil {
		return nil, err
	}
	sess := resolver.DoQSession(conn)
	defer sess.Close()
	p.observeSetup(ctx, ProtoDoQ, sess)
	return p.timeQueries(ctx, sess, node.ID+"-perf-doq", n)
}

// timeBatchQueries issues n uniquely-named lookups in batches of up to
// p.MuxInFlight concurrent in-flight queries and returns per-query AMORTIZED
// latencies in milliseconds: each batch's Elapsed delta divided by its size.
// A pipelined batch shares one request segment and one coalesced response
// segment, so the whole batch costs about one round trip — the amortization
// is what the multiplexed column of Fig. 9 reports.
func (p *Platform) timeBatchQueries(ctx context.Context, elapsed func() time.Duration,
	batch func(ctx context.Context, names []string) error, tag string, n int) (*[]float64, error) {
	lat := bufpool.GetF64(n)
	names := make([]string, 0, p.MuxInFlight)
	for done := 0; done < n; {
		b := p.MuxInFlight
		if n-done < b {
			b = n - done
		}
		names = names[:0]
		for i := 0; i < b; i++ {
			names = append(names, p.UniqueName(tag))
		}
		start := elapsed()
		if err := batch(ctx, names); err != nil {
			bufpool.PutF64(lat)
			return nil, err
		}
		d := elapsed() - start
		obs.Charge(ctx, d)
		per := ms(d) / float64(b)
		for i := 0; i < b; i++ {
			*lat = append(*lat, per)
		}
		done += b
	}
	return lat, nil //doelint:transfer -- pool-owned scratch; released by the median reducer
}

func (p *Platform) timeDoTMuxQueries(ctx context.Context, node proxy.ExitNode, target netip.Addr, n int) (*[]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, target, dot.Port)
	if err != nil {
		return nil, err
	}
	client := dot.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialConnContext(ctx, tunnel)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	p.observeSetup(ctx, ProtoDoT, resolver.DoTSession(conn))
	m := conn.Pipeline(p.MuxInFlight)
	return p.timeBatchQueries(ctx, conn.Elapsed, func(ctx context.Context, names []string) error {
		_, err := m.Batch(ctx, names, dnswire.TypeA, nil)
		return err
	}, node.ID+"-perf-dot-mux", n)
}

func (p *Platform) timeDoHMuxQueries(ctx context.Context, node proxy.ExitNode, tmpl doh.Template, addr netip.Addr, n int) (*[]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, addr, doh.Port)
	if err != nil {
		return nil, err
	}
	client := doh.NewClient(nil, p.From, p.Roots)
	client.Mux = true
	client.MaxInFlight = p.MuxInFlight
	conn, err := client.DialConnContext(ctx, tmpl, tunnel)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	p.observeSetup(ctx, ProtoDoH, resolver.DoHSession(conn))
	return p.timeBatchQueries(ctx, conn.Elapsed, func(ctx context.Context, names []string) error {
		_, err := conn.BatchContext(ctx, names, dnswire.TypeA, nil)
		return err
	}, node.ID+"-perf-doh-mux", n)
}

// timeDoQMuxQueries is the DoQ arm of the multiplexed pass: each batch
// packs MuxInFlight queries as concurrent QUIC streams into one flight, so
// the batch shares a single round trip — the same amortization the DoT
// pipeline and DoH HTTP/2 arms measure.
func (p *Platform) timeDoQMuxQueries(ctx context.Context, node proxy.ExitNode, target netip.Addr, n int) (*[]float64, error) {
	relay, err := p.Network.DialDatagram(p.From, node.ID, target, doq.Port)
	if err != nil {
		return nil, err
	}
	client := doq.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	client.MaxInFlight = p.MuxInFlight
	conn, err := client.DialVia(ctx, target, relay)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	p.observeSetup(ctx, ProtoDoQ, resolver.DoQSession(conn))
	return p.timeBatchQueries(ctx, conn.Elapsed, func(ctx context.Context, names []string) error {
		_, err := conn.BatchContext(ctx, names, dnswire.TypeA, nil)
		return err
	}, node.ID+"-perf-doq-mux", n)
}

// CountryPerf aggregates per-client overheads per country (Fig. 9).
type CountryPerf struct {
	Country string
	Clients int
	// Overheads in milliseconds relative to clear-text DNS. DoQ columns are
	// zero when no sample in the country reached a DoQ endpoint.
	DoTAvgMS, DoTMedianMS float64
	DoHAvgMS, DoHMedianMS float64
	DoQAvgMS, DoQMedianMS float64
	// Multiplexed-pass overheads (amortized per-query latency minus serial
	// clear-text DNS); zero when the samples carry no multiplexed pass.
	DoTMuxMedianMS float64
	DoHMuxMedianMS float64
	DoQMuxMedianMS float64
}

// AggregateByCountry computes Fig. 9's per-country series.
func AggregateByCountry(samples []PerfSample) []CountryPerf {
	byCountry := map[string][]PerfSample{}
	for _, s := range samples {
		byCountry[s.Country] = append(byCountry[s.Country], s)
	}
	var out []CountryPerf
	for cc, ss := range byCountry {
		var dotOH, dohOH, doqOH, dotMux, dohMux, doqMux []float64
		for _, s := range ss {
			dotOH = append(dotOH, s.DoTOverheadMS())
			dohOH = append(dohOH, s.DoHOverheadMS())
			if s.DoQMedianMS > 0 {
				doqOH = append(doqOH, s.DoQOverheadMS())
			}
			if s.MuxInFlight > 0 {
				dotMux = append(dotMux, s.DoTMuxOverheadMS())
				dohMux = append(dohMux, s.DoHMuxOverheadMS())
				if s.DoQMuxMedianMS > 0 {
					doqMux = append(doqMux, s.DoQMuxOverheadMS())
				}
			}
		}
		out = append(out, CountryPerf{
			Country:        cc,
			Clients:        len(ss),
			DoTAvgMS:       analysis.Mean(dotOH),
			DoTMedianMS:    analysis.Median(dotOH),
			DoHAvgMS:       analysis.Mean(dohOH),
			DoHMedianMS:    analysis.Median(dohOH),
			DoQAvgMS:       analysis.Mean(doqOH),
			DoQMedianMS:    analysis.Median(doqOH),
			DoTMuxMedianMS: analysis.Median(dotMux),
			DoHMuxMedianMS: analysis.Median(dohMux),
			DoQMuxMedianMS: analysis.Median(doqMux),
		})
	}
	sortCountryPerf(out)
	return out
}

func sortCountryPerf(s []CountryPerf) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Clients > s[j-1].Clients ||
			(s[j].Clients == s[j-1].Clients && s[j].Country < s[j-1].Country)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GlobalOverheads computes the paper's headline averages/medians over all
// per-client overheads ("5ms/9ms for DoT, 8ms/6ms for DoH").
func GlobalOverheads(samples []PerfSample) (dotAvg, dotMed, dohAvg, dohMed float64) {
	var dotOH, dohOH []float64
	for _, s := range samples {
		dotOH = append(dotOH, s.DoTOverheadMS())
		dohOH = append(dohOH, s.DoHOverheadMS())
	}
	return analysis.Mean(dotOH), analysis.Median(dotOH), analysis.Mean(dohOH), analysis.Median(dohOH)
}

// GlobalDoQOverheads is the DoQ analogue of GlobalOverheads, over the
// samples whose target exposed a DoQ endpoint: serial avg/median overheads
// plus the multiplexed median (zero when no sample ran a mux pass).
func GlobalDoQOverheads(samples []PerfSample) (avg, med, muxMed float64) {
	var oh, mux []float64
	for _, s := range samples {
		if s.DoQMedianMS > 0 {
			oh = append(oh, s.DoQOverheadMS())
		}
		if s.MuxInFlight > 0 && s.DoQMuxMedianMS > 0 {
			mux = append(mux, s.DoQMuxOverheadMS())
		}
	}
	return analysis.Mean(oh), analysis.Median(oh), analysis.Median(mux)
}

// GlobalMuxOverheads is GlobalOverheads for the multiplexed pass, over the
// samples that ran one.
func GlobalMuxOverheads(samples []PerfSample) (dotAvg, dotMed, dohAvg, dohMed float64) {
	var dotOH, dohOH []float64
	for _, s := range samples {
		if s.MuxInFlight > 0 {
			dotOH = append(dotOH, s.DoTMuxOverheadMS())
			dohOH = append(dohOH, s.DoHMuxOverheadMS())
		}
	}
	return analysis.Mean(dotOH), analysis.Median(dotOH), analysis.Mean(dohOH), analysis.Median(dohOH)
}

// NoReuseSample is one controlled vantage's fresh-connection comparison
// (Table 7): medians over n queries, each on a brand-new connection.
type NoReuseSample struct {
	Vantage     string
	DNSMedianMS float64
	DoTMedianMS float64
	DoHMedianMS float64
	// DoQMedianMS is zero when the target has no DoQ endpoint. Note the
	// "fresh connection" condition is softer for DoQ: the resolver's shared
	// session cache means the first dial pays the 1-RTT handshake and later
	// dials resume 0-RTT — honest QUIC resumption rather than a full
	// handshake per query.
	DoQMedianMS float64
}

// DoTOverheadMS is the no-reuse DoT penalty.
func (s NoReuseSample) DoTOverheadMS() float64 { return s.DoTMedianMS - s.DNSMedianMS }

// DoHOverheadMS is the no-reuse DoH penalty.
func (s NoReuseSample) DoHOverheadMS() float64 { return s.DoHMedianMS - s.DNSMedianMS }

// DoQOverheadMS is the no-reuse DoQ penalty (0-RTT resumption included).
func (s NoReuseSample) DoQOverheadMS() float64 { return s.DoQMedianMS - s.DNSMedianMS }

// MeasureNoReuse runs Table 7's controlled-vantage test: n queries per
// protocol, every one on a fresh connection (TCP+TLS each time), directly
// from a controlled address (no proxy hop). Extra opts (e.g. WithRetry
// under fault injection) are applied on top of the no-reuse defaults. A
// query that still fails after its budget is skipped rather than sinking
// the vantage; the per-protocol median is over the queries that answered,
// and only a protocol with zero answers is an error.
func MeasureNoReuse(w *netsim.World, label string, from netip.Addr, tgt Target, probeZone string, roots *x509.CertPool, n int, opts ...resolver.Option) (NoReuseSample, error) {
	return MeasureNoReuseContext(context.Background(), w, label, from, tgt, probeZone, roots, n, opts...)
}

// MeasureNoReuseContext is MeasureNoReuse with telemetry: each protocol
// pass gets a noreuse:<proto> span and the answered queries feed the
// vantage_query_latency{mode=fresh} histogram. The resolver transports
// underneath contribute their own xchg/dial spans per query.
func MeasureNoReuseContext(ctx context.Context, w *netsim.World, label string, from netip.Addr, tgt Target, probeZone string, roots *x509.CertPool, n int, opts ...resolver.Option) (NoReuseSample, error) {
	sample := NoReuseSample{Vantage: label}
	// Probe names carry the vantage label so concurrent vantages never
	// share a name: a shared name would let one vantage's query warm the
	// resolver cache for another's, making observed latency depend on
	// which vantage asked first.
	uniq := 0
	name := func(tag string) string {
		uniq++
		return fmt.Sprintf("nr%d-%s-%s.%s", uniq, strings.ToLower(label), tag, probeZone)
	}

	// WithReuse(false) makes every Exchange pay TCP+TLS setup afresh —
	// exactly the no-reuse condition Table 7 measures. DoT runs Strict
	// here: the controlled vantages authenticate the public resolvers.
	rc := resolver.New(w, from, roots,
		append([]resolver.Option{resolver.WithReuse(false), resolver.WithProfile(dot.Strict)}, opts...)...)
	// medianFresh runs one protocol's pass on pooled scratch and reduces it
	// to the median immediately, so a vantage's four passes reuse one
	// buffer instead of retaining four until the sample is assembled.
	medianFresh := func(t *resolver.Transport, tag string) (float64, error) {
		sctx, sp := obs.Start(ctx, "noreuse:"+tag)
		h := obs.Metrics(sctx).Histogram("vantage_query_latency", nil, "mode", "fresh", "proto", tag)
		sk := obs.Metrics(sctx).Sketch("vantage_query_latency_sketch", obs.SketchOpts{},
			"mode", "fresh", "proto", tag)
		lat := bufpool.GetF64(n)
		defer bufpool.PutF64(lat)
		var lastErr error
		for i := 0; i < n; i++ {
			q := dnswire.NewQuery(0, name(tag), dnswire.TypeA)
			if _, err := t.Exchange(sctx, q); err != nil {
				lastErr = err
				continue
			}
			h.Observe(t.LastLatency())
			sk.Observe(t.LastLatency())
			*lat = append(*lat, ms(t.LastLatency()))
		}
		sp.SetInt("answered", int64(len(*lat)))
		if len(*lat) == 0 {
			err := fmt.Errorf("vantage: no-reuse %s/%s: every query failed: %w", label, tag, lastErr)
			sp.Fail(err)
			return 0, err
		}
		return analysis.Median(*lat), nil
	}
	var err error
	if sample.DNSMedianMS, err = medianFresh(rc.TCP(tgt.DNS), string(ProtoDNS)); err != nil {
		return sample, err
	}
	if sample.DoTMedianMS, err = medianFresh(rc.DoT(tgt.DoT), resolver.ProtoDoT.String()); err != nil {
		return sample, err
	}
	if sample.DoHMedianMS, err = medianFresh(rc.DoH(tgt.DoH, tgt.DoHAddr), resolver.ProtoDoH.String()); err != nil {
		return sample, err
	}
	if tgt.DoQ.IsValid() {
		if sample.DoQMedianMS, err = medianFresh(rc.DoQ(tgt.DoQ), resolver.ProtoDoQ.String()); err != nil {
			return sample, err
		}
	}
	return sample, nil
}
