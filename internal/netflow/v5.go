package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// NetFlow v5 wire format (the export format of the paper's backbone
// routers): a 24-byte header followed by up to 30 fixed 48-byte records.
// Only IPv4 is expressible — one reason the paper's dataset is IPv4-only.
const (
	v5Version        = 5
	v5HeaderLen      = 24
	v5RecordLen      = 48
	v5MaxPerDatagram = 30
)

// ErrBadDatagram is returned for malformed v5 export datagrams.
var ErrBadDatagram = errors.New("netflow: malformed v5 datagram")

// ExportV5 serializes records into NetFlow v5 export datagrams. Flow
// timestamps are encoded, as on real routers, as a uint32 of uptime
// milliseconds — a counter that wraps every ~49.7 days. Collectors recover
// absolute times from the header's (SysUptime, unix seconds) pair, which
// only works when flows are exported within one wrap of their observation;
// exportTime must therefore be within ~49 days of every record (real
// exporters flush within seconds). sysBoot anchors the uptime counter.
func ExportV5(records []Record, sysBoot, exportTime time.Time, sampleRate int, seqStart uint32) ([][]byte, error) {
	var out [][]byte
	seq := seqStart
	for off := 0; off < len(records); off += v5MaxPerDatagram {
		end := off + v5MaxPerDatagram
		if end > len(records) {
			end = len(records)
		}
		chunk := records[off:end]
		buf := make([]byte, v5HeaderLen+len(chunk)*v5RecordLen)

		binary.BigEndian.PutUint16(buf[0:], v5Version)
		binary.BigEndian.PutUint16(buf[2:], uint16(len(chunk)))
		headerUptime := uint32(exportTime.Sub(sysBoot).Milliseconds()) // wraps, as on real routers
		binary.BigEndian.PutUint32(buf[4:], headerUptime)
		binary.BigEndian.PutUint32(buf[8:], uint32(exportTime.Unix()))        // unix secs
		binary.BigEndian.PutUint32(buf[12:], uint32(exportTime.Nanosecond())) // unix nsecs
		binary.BigEndian.PutUint32(buf[16:], seq)
		// engine type/id zero; sampling: mode 01 (packet interval) in the
		// top 2 bits, interval in the low 14.
		binary.BigEndian.PutUint16(buf[22:], uint16(1)<<14|uint16(sampleRate)&0x3FFF)

		for i, rec := range chunk {
			if !rec.Src.Is4() || !rec.Dst.Is4() {
				return nil, fmt.Errorf("netflow: v5 cannot express non-IPv4 flow %v->%v", rec.Src, rec.Dst)
			}
			p := buf[v5HeaderLen+i*v5RecordLen:]
			src, dst := rec.Src.As4(), rec.Dst.As4()
			copy(p[0:4], src[:])
			copy(p[4:8], dst[:])
			// nexthop, input/output ifIndex left zero.
			binary.BigEndian.PutUint32(p[16:], uint32(rec.Packets))
			binary.BigEndian.PutUint32(p[20:], uint32(rec.Bytes))
			binary.BigEndian.PutUint32(p[24:], uint32(rec.First.Sub(sysBoot).Milliseconds()))
			binary.BigEndian.PutUint32(p[28:], uint32(rec.Last.Sub(sysBoot).Milliseconds()))
			binary.BigEndian.PutUint16(p[32:], rec.SrcPort)
			binary.BigEndian.PutUint16(p[34:], rec.DstPort)
			p[37] = rec.Flags
			p[38] = rec.Proto
			// tos, AS numbers, masks left zero.
		}
		out = append(out, buf)
		seq += uint32(len(chunk))
	}
	return out, nil
}

// ParseV5 decodes one export datagram back into records, recovering
// absolute timestamps the way real collectors do: the header pairs a
// (wrapping) SysUptime with the export wall-clock time, and each record's
// uptime is subtracted with uint32 wraparound arithmetic. Flows older than
// one uptime wrap (~49.7 days) at export time cannot be represented — an
// inherent NetFlow v5 limit.
func ParseV5(datagram []byte) ([]Record, error) {
	if len(datagram) < v5HeaderLen {
		return nil, ErrBadDatagram
	}
	if binary.BigEndian.Uint16(datagram) != v5Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadDatagram, binary.BigEndian.Uint16(datagram))
	}
	count := int(binary.BigEndian.Uint16(datagram[2:]))
	if count > v5MaxPerDatagram || len(datagram) != v5HeaderLen+count*v5RecordLen {
		return nil, fmt.Errorf("%w: count %d for %d bytes", ErrBadDatagram, count, len(datagram))
	}
	headerUptime := binary.BigEndian.Uint32(datagram[4:])
	exportTime := time.Unix(int64(binary.BigEndian.Uint32(datagram[8:])), 0).UTC()
	abs := func(recUptime uint32) time.Time {
		// uint32 subtraction handles wraps between record and header.
		age := headerUptime - recUptime
		return exportTime.Add(-time.Duration(age) * time.Millisecond)
	}
	records := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		p := datagram[v5HeaderLen+i*v5RecordLen:]
		rec := Record{
			Src:     netip.AddrFrom4([4]byte(p[0:4])),
			Dst:     netip.AddrFrom4([4]byte(p[4:8])),
			Packets: uint64(binary.BigEndian.Uint32(p[16:])),
			Bytes:   uint64(binary.BigEndian.Uint32(p[20:])),
			First:   abs(binary.BigEndian.Uint32(p[24:])),
			Last:    abs(binary.BigEndian.Uint32(p[28:])),
			SrcPort: binary.BigEndian.Uint16(p[32:]),
			DstPort: binary.BigEndian.Uint16(p[34:]),
			Flags:   p[37],
			Proto:   p[38],
		}
		records = append(records, rec)
	}
	return records, nil
}

// V5SampleRate extracts the sampling interval from an export header.
func V5SampleRate(datagram []byte) (int, error) {
	if len(datagram) < v5HeaderLen {
		return 0, ErrBadDatagram
	}
	return int(binary.BigEndian.Uint16(datagram[22:]) & 0x3FFF), nil
}

// Collector accumulates records parsed from export datagrams, the role of
// the ISP's NetFlow collector in §5.1.
type Collector struct {
	records []Record
	// Datagrams counts accepted exports; Dropped counts malformed ones.
	Datagrams, Dropped int
}

// NewCollector creates a collector.
func NewCollector() *Collector {
	return &Collector{}
}

// Ingest parses one datagram and stores its records.
func (c *Collector) Ingest(datagram []byte) error {
	recs, err := ParseV5(datagram)
	if err != nil {
		c.Dropped++
		return err
	}
	c.Datagrams++
	c.records = append(c.records, recs...)
	return nil
}

// Records returns everything collected so far.
func (c *Collector) Records() []Record {
	return append([]Record(nil), c.records...)
}
