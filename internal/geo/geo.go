// Package geo models the geography of the simulated Internet: which country
// and autonomous system an IPv4 address belongs to, and the round-trip time
// between any two locations.
//
// The paper's client-side study aggregates results per country (Fig. 9) and
// per AS (Tables 5 and 6); this package provides the lookup tables those
// aggregations need, and the latency model that internal/netsim uses to
// convert protocol round trips into simulated milliseconds.
package geo

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"sync"
)

// Location is the registration data for an address.
type Location struct {
	Country string // ISO 3166-1 alpha-2
	ASN     int
	ASName  string
}

// Country describes one country in the synthetic world. Coordinates are in
// an abstract plane; inter-country RTT grows with Euclidean distance.
type Country struct {
	Code string
	Name string
	// X, Y place the country on the latency plane (arbitrary units where
	// one unit of distance adds DistanceRTTPerUnit of round-trip time).
	X, Y float64
	// LastMileMS is the typical access-network latency added to every
	// round trip originating in this country. Residential networks in the
	// paper's high-overhead countries (e.g. Indonesia) have larger values.
	LastMileMS float64
}

// DistanceRTTPerUnit converts latency-plane distance into milliseconds.
const DistanceRTTPerUnit = 0.9

// Countries used by the default world. Codes cover every country the paper's
// tables name, plus enough others to populate 166-country vantage sets.
var builtinCountries = []Country{
	{"US", "United States", 10, 40, 8},
	{"CA", "Canada", 12, 48, 9},
	{"BR", "Brazil", 28, 0, 18},
	{"MX", "Mexico", 8, 30, 14},
	{"AR", "Argentina", 27, -12, 20},
	{"CO", "Colombia", 22, 12, 18},
	{"GB", "United Kingdom", 48, 52, 7},
	{"IE", "Ireland", 46, 53, 7},
	{"DE", "Germany", 53, 50, 6},
	{"FR", "France", 50, 47, 7},
	{"NL", "Netherlands", 52, 52, 6},
	{"IT", "Italy", 54, 43, 9},
	{"ES", "Spain", 47, 41, 9},
	{"SE", "Sweden", 55, 60, 7},
	{"PL", "Poland", 57, 51, 8},
	{"RU", "Russia", 70, 55, 12},
	{"UA", "Ukraine", 62, 49, 11},
	{"TR", "Turkey", 60, 40, 12},
	{"CN", "China", 95, 35, 12},
	{"JP", "Japan", 105, 37, 8},
	{"KR", "South Korea", 102, 36, 7},
	{"HK", "Hong Kong", 96, 25, 8},
	{"TW", "Taiwan", 99, 26, 8},
	{"SG", "Singapore", 92, 8, 8},
	{"IN", "India", 80, 25, 16},
	{"ID", "Indonesia", 94, 2, 24},
	{"VN", "Vietnam", 92, 20, 20},
	{"TH", "Thailand", 90, 18, 16},
	{"MY", "Malaysia", 91, 10, 16},
	{"PH", "Philippines", 100, 15, 20},
	{"LA", "Laos", 91, 21, 22},
	{"AU", "Australia", 105, -20, 10},
	{"NZ", "New Zealand", 115, -28, 11},
	{"ZA", "South Africa", 55, -15, 18},
	{"NG", "Nigeria", 48, 10, 22},
	{"EG", "Egypt", 58, 32, 16},
	{"KE", "Kenya", 60, 2, 20},
	{"SA", "Saudi Arabia", 64, 30, 13},
	{"AE", "United Arab Emirates", 68, 28, 11},
	{"IL", "Israel", 59, 36, 10},
	{"PK", "Pakistan", 76, 30, 18},
	{"BD", "Bangladesh", 84, 26, 20},
	{"IR", "Iran", 68, 34, 16},
	{"KZ", "Kazakhstan", 74, 46, 14},
	{"CL", "Chile", 24, -15, 16},
	{"PE", "Peru", 21, 2, 18},
	{"VE", "Venezuela", 23, 14, 20},
	{"PT", "Portugal", 45, 40, 9},
	{"CH", "Switzerland", 52, 47, 6},
	{"AT", "Austria", 55, 48, 7},
	{"BE", "Belgium", 51, 51, 6},
	{"DK", "Denmark", 53, 56, 6},
	{"NO", "Norway", 52, 61, 7},
	{"FI", "Finland", 59, 61, 7},
	{"CZ", "Czechia", 55, 50, 7},
	{"RO", "Romania", 60, 45, 9},
	{"GR", "Greece", 57, 40, 10},
	{"HU", "Hungary", 57, 47, 8},
	{"BG", "Bulgaria", 59, 43, 9},
}

// CountryByCode returns the built-in country table entry for code.
func CountryByCode(code string) (Country, bool) {
	for _, c := range builtinCountries {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// Countries returns a copy of the built-in country table.
func Countries() []Country {
	return append([]Country(nil), builtinCountries...)
}

// CountryCodes returns all built-in country codes in table order.
func CountryCodes() []string {
	codes := make([]string, len(builtinCountries))
	for i, c := range builtinCountries {
		codes[i] = c.Code
	}
	return codes
}

// RTTModel computes simulated round-trip times between countries.
type RTTModel struct {
	countries map[string]Country
}

// NewRTTModel builds a model from the built-in country table plus extras.
func NewRTTModel(extra ...Country) *RTTModel {
	m := &RTTModel{countries: make(map[string]Country, len(builtinCountries)+len(extra))}
	for _, c := range builtinCountries {
		m.countries[c.Code] = c
	}
	for _, c := range extra {
		m.countries[c.Code] = c
	}
	return m
}

// RTTMillis returns the modeled round-trip time in milliseconds between two
// countries: last-mile latency of both ends plus distance on the plane.
// Unknown countries get a generous default.
func (m *RTTModel) RTTMillis(from, to string) float64 {
	a, okA := m.countries[from]
	b, okB := m.countries[to]
	if !okA || !okB {
		return 150
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	dist := math.Sqrt(dx*dx + dy*dy)
	rtt := a.LastMileMS + b.LastMileMS + dist*DistanceRTTPerUnit
	if from == to {
		// Domestic paths still traverse the access networks.
		rtt = a.LastMileMS * 2
	}
	return rtt
}

// Registry maps IPv4 prefixes to Locations, longest prefix first.
type Registry struct {
	mu       sync.RWMutex
	prefixes []prefixEntry
	sorted   bool
	fallback func(netip.Addr) (Location, bool)
}

type prefixEntry struct {
	prefix netip.Prefix
	loc    Location
}

// Register associates every address in prefix with loc. Later registrations
// of longer prefixes override shorter ones.
func (r *Registry) Register(prefix netip.Prefix, loc Location) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prefixes = append(r.prefixes, prefixEntry{prefix.Masked(), loc})
	r.sorted = false
}

// Lookup returns the most specific registration covering ip.
func (r *Registry) Lookup(ip netip.Addr) (Location, bool) {
	r.mu.Lock()
	if !r.sorted {
		sort.SliceStable(r.prefixes, func(i, j int) bool {
			return r.prefixes[i].prefix.Bits() > r.prefixes[j].prefix.Bits()
		})
		r.sorted = true
	}
	entries := r.prefixes
	r.mu.Unlock()
	for _, e := range entries {
		if e.prefix.Contains(ip) {
			return e.loc, true
		}
	}
	if fb := r.fallbackFn(); fb != nil {
		return fb(ip)
	}
	return Location{}, false
}

// SetFallback installs fn, consulted when no registered prefix covers an
// address. Generator-fed vantage populations use this to answer geography
// for millions of per-node /32s as a pure function of the address —
// constant memory instead of one prefix registration per node. Registered
// prefixes always win; install the fallback at world-build time, before
// lookups start.
func (r *Registry) SetFallback(fn func(netip.Addr) (Location, bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = fn
}

func (r *Registry) fallbackFn() func(netip.Addr) (Location, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fallback
}

// Country is a convenience wrapper around Lookup returning only the country
// code, with "ZZ" (unknown) for unregistered space.
func (r *Registry) Country(ip netip.Addr) string {
	if loc, ok := r.Lookup(ip); ok {
		return loc.Country
	}
	return "ZZ"
}

// ASNameString renders an AS the way the paper's tables do, e.g.
// "AS44725 Sinam LLC".
func ASNameString(asn int, name string) string {
	return fmt.Sprintf("AS%d %s", asn, name)
}
