// Package faults is a deterministic, seeded fault-injection layer for the
// simulated Internet. It implements netsim.FaultInjector: per flow tuple
// (src, dst, port) it derives an FNV-seeded fault schedule that decides —
// independently of goroutine scheduling and wall-clock time — whether a
// given dial attempt loses its SYN, is refused, stalls, has its TLS
// handshake truncated, or is reset mid-stream, and whether a backend is
// "flaky" (fails the first N attempts on a tuple, then recovers).
//
// Determinism contract: the fault decision for attempt k on a tuple is a
// pure function of (injector seed, tuple, k). Each attempt consumes a fixed
// number of RNG draws, so the schedule for attempt k+1 never depends on
// which faults fired before it. Report byte-identity across worker counts
// additionally requires that every faulted tuple is dialed by exactly one
// worker task at a time; the Sources gate (restricting faults to flows
// originating from vantage-edge prefixes) is how the core study guarantees
// that — shared infrastructure legs stay fault-free.
package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
)

// Profile is the fault mix applied to flows from one region (or, as the
// Default, to all gated flows). Probabilities are per dial attempt; the
// zero value injects nothing.
type Profile struct {
	// SYNDrop is the probability a stream dial's SYN is lost (timeout).
	SYNDrop float64
	// Refuse is the probability a stream dial is actively refused.
	Refuse float64
	// HandshakeCut is the probability the connection resets before the
	// client receives any server data — a truncated TLS handshake.
	HandshakeCut float64
	// Reset is the probability of a mid-stream RST after the handshake.
	Reset float64
	// ResetWindow spreads mid-stream resets over segments 2..2+ResetWindow-1
	// of the server's response stream (0 means a fixed cut at segment 2).
	ResetWindow int
	// Stall is the probability a dial is charged extra virtual latency
	// (a loss/retransmission episode on an otherwise surviving flow).
	Stall float64
	// StallBase scales stalls: a stalled flow is charged a latency in
	// [StallBase, 2*StallBase).
	StallBase time.Duration
	// DgramDrop is the probability a datagram exchange is lost.
	DgramDrop float64
	// DgramStall is the probability a datagram exchange is charged extra
	// latency (same [StallBase, 2*StallBase) range).
	DgramStall float64
	// FlakyFirstN refuses the first N stream dials on every tuple before
	// letting any through — the "cold backend" that needs retries to reach.
	FlakyFirstN int
}

// zero reports whether the profile can never inject anything.
func (p Profile) zero() bool {
	return p.SYNDrop == 0 && p.Refuse == 0 && p.HandshakeCut == 0 &&
		p.Reset == 0 && p.Stall == 0 && p.DgramDrop == 0 &&
		p.DgramStall == 0 && p.FlakyFirstN == 0
}

// Stats is a snapshot of injected-fault counters.
type Stats struct {
	StreamDials   uint64 // gated stream dials consulted
	SYNDrops      uint64
	Refusals      uint64
	HandshakeCuts uint64
	Resets        uint64
	Stalls        uint64
	FlakyFailures uint64
	Datagrams     uint64 // gated datagram exchanges consulted
	DgramDrops    uint64
	DgramStalls   uint64
}

// Faulted returns the total number of faulted stream dials (excluding
// stalls, which delay but do not fail the flow).
func (s Stats) Faulted() uint64 {
	return s.SYNDrops + s.Refusals + s.HandshakeCuts + s.Resets + s.FlakyFailures
}

// Injector implements netsim.FaultInjector with per-tuple seeded schedules.
// Configure (Default, Regions, Sources) before installing it with
// World.SetFaults; the fields must not be mutated afterwards.
type Injector struct {
	// Default applies to gated flows whose origin country has no entry in
	// Regions.
	Default Profile
	// Regions overrides the profile per origin country (geo code), making
	// e.g. Southeast-Asian residential paths lossier than EU ones.
	Regions map[string]Profile
	// Sources, when non-empty, restricts faults to flows originating from
	// these prefixes. The core study sets it to the vantage-edge prefixes
	// so that infrastructure legs shared between concurrent worker tasks
	// stay deterministic (see the package comment).
	Sources []netip.Prefix
	// Obs, when set, receives per-kind fault counters and annotates the
	// span watching the faulted flow (obs.Recorder.WatchFlow) with a
	// fault:<kind> event. The Sources gate doubles as the determinism
	// argument: a watched tuple is task-private, so the annotation lands
	// on exactly one span regardless of worker count. Nil disables both.
	Obs *obs.Recorder

	seed int64
	geo  *geo.Registry

	mu    sync.Mutex
	flows map[flowKey]*flowState

	streamDials   atomic.Uint64
	synDrops      atomic.Uint64
	refusals      atomic.Uint64
	handshakeCuts atomic.Uint64
	resets        atomic.Uint64
	stalls        atomic.Uint64
	flakyFailures atomic.Uint64
	datagrams     atomic.Uint64
	dgramDrops    atomic.Uint64
	dgramStalls   atomic.Uint64
}

type flowKey struct {
	from, to netip.Addr
	port     uint16
	proto    netsim.Proto
}

type flowState struct {
	rng      *rand.Rand
	attempts int
}

// New creates an injector. g resolves origin countries for Regions lookups
// and may be nil when only Default is used.
func New(seed int64, g *geo.Registry) *Injector {
	return &Injector{seed: seed, geo: g, flows: make(map[flowKey]*flowState)}
}

// Seed returns the injector's seed (reports echo it).
func (i *Injector) Seed() int64 { return i.seed }

// profileFor returns the profile applying to flows from the given origin,
// and whether the origin passes the Sources gate at all.
func (i *Injector) profileFor(from netip.Addr) (Profile, bool) {
	if len(i.Sources) > 0 {
		gated := false
		for _, p := range i.Sources {
			if p.Contains(from) {
				gated = true
				break
			}
		}
		if !gated {
			return Profile{}, false
		}
	}
	p := i.Default
	if i.geo != nil && len(i.Regions) > 0 {
		if rp, ok := i.Regions[i.geo.Country(from)]; ok {
			p = rp
		}
	}
	return p, true
}

// draws advances the tuple's attempt counter and consumes exactly n RNG
// draws from its schedule, atomically: concurrent attempts on a shared
// tuple cannot interleave their draws. (Shared tuples are still
// schedule-dependent in *which* attempt each dialer observes — the Sources
// gate is what keeps faulted tuples task-private.)
func (i *Injector) draws(k flowKey, n int) ([]float64, int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	st, ok := i.flows[k]
	if !ok {
		st = &flowState{rng: rand.New(rand.NewSource(i.tupleSeed(k)))}
		i.flows[k] = st
	}
	st.attempts++
	d := make([]float64, n)
	for j := range d {
		d[j] = st.rng.Float64()
	}
	return d, st.attempts
}

// tupleSeed derives the per-tuple RNG seed: FNV-64a over the injector seed
// and the flow tuple, mirroring netsim's flowRNG discipline.
func (i *Injector) tupleSeed(k flowKey) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i.seed))
	h.Write(buf[:])
	h.Write([]byte{byte(k.proto)})
	b, _ := k.from.MarshalBinary()
	h.Write(b)
	b, _ = k.to.MarshalBinary()
	h.Write(b)
	binary.BigEndian.PutUint64(buf[:], uint64(k.port))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// inject records one injected fault in the telemetry layer, if one is
// attached: a per-kind counter plus a fault:<kind> event on whichever span
// is watching the (from, to) flow.
func (i *Injector) inject(from, to netip.Addr, kind string) {
	if i.Obs == nil {
		return
	}
	i.Obs.Metrics().Counter("faults_injected_total", "kind", kind).Add(1)
	i.Obs.FlowEvent(from, to, "fault:"+kind)
}

// StreamFault implements netsim.FaultInjector. Exactly five RNG draws are
// consumed per attempt regardless of which faults fire, so the schedule
// for attempt k is independent of the outcomes of attempts < k.
func (i *Injector) StreamFault(from, to netip.Addr, port uint16) netsim.DialFault {
	p, gated := i.profileFor(from)
	if !gated || p.zero() {
		return netsim.DialFault{}
	}
	d, attempt := i.draws(flowKey{from: from, to: to, port: port, proto: netsim.Stream}, 5)
	dDrop, dRefuse, dCut, dCutSeg, dStall := d[0], d[1], d[2], d[3], d[4]

	i.streamDials.Add(1)
	var f netsim.DialFault
	switch {
	case attempt <= p.FlakyFirstN:
		f.Refuse = true
		i.flakyFailures.Add(1)
		i.inject(from, to, "flaky-failure")
	case dDrop < p.SYNDrop:
		f.Drop = true
		i.synDrops.Add(1)
		i.inject(from, to, "syn-drop")
	case dRefuse < p.Refuse:
		f.Refuse = true
		i.refusals.Add(1)
		i.inject(from, to, "refusal")
	case dCut < p.HandshakeCut:
		f.CutAfterSegments = 1
		i.handshakeCuts.Add(1)
		i.inject(from, to, "handshake-cut")
	case dCut < p.HandshakeCut+p.Reset:
		f.CutAfterSegments = 2
		if p.ResetWindow > 0 {
			f.CutAfterSegments += int(dCutSeg * float64(p.ResetWindow))
		}
		i.resets.Add(1)
		i.inject(from, to, "reset")
	}
	if !f.Drop && !f.Refuse && dStall < p.Stall && p.StallBase > 0 {
		f.ExtraLatency = p.StallBase + time.Duration(dStall/p.Stall*float64(p.StallBase))
		i.stalls.Add(1)
		i.inject(from, to, "stall")
	}
	return f
}

// DatagramFault implements netsim.FaultInjector. Two draws per exchange.
func (i *Injector) DatagramFault(from, to netip.Addr, port uint16) netsim.DatagramFault {
	p, gated := i.profileFor(from)
	if !gated || p.zero() {
		return netsim.DatagramFault{}
	}
	d, _ := i.draws(flowKey{from: from, to: to, port: port, proto: netsim.Datagram}, 2)
	dDrop, dStall := d[0], d[1]

	i.datagrams.Add(1)
	var f netsim.DatagramFault
	if dDrop < p.DgramDrop {
		f.Drop = true
		i.dgramDrops.Add(1)
		i.inject(from, to, "dgram-drop")
		return f
	}
	if dStall < p.DgramStall && p.StallBase > 0 {
		f.ExtraLatency = p.StallBase + time.Duration(dStall/p.DgramStall*float64(p.StallBase))
		i.dgramStalls.Add(1)
		i.inject(from, to, "dgram-stall")
	}
	return f
}

// Stats returns a snapshot of the fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		StreamDials:   i.streamDials.Load(),
		SYNDrops:      i.synDrops.Load(),
		Refusals:      i.refusals.Load(),
		HandshakeCuts: i.handshakeCuts.Load(),
		Resets:        i.resets.Load(),
		Stalls:        i.stalls.Load(),
		FlakyFailures: i.flakyFailures.Load(),
		Datagrams:     i.datagrams.Load(),
		DgramDrops:    i.dgramDrops.Load(),
		DgramStalls:   i.dgramStalls.Load(),
	}
}

// Built-in profile mixes. Probabilities are tuned so that retried clients
// (resolver.WithRetry's default budget of 3 attempts) recover the large
// majority of faulted flows: the chaos suite asserts every experiment
// still completes under them.

// Mild is light residential packet loss: rare SYN drops and stalls.
func Mild() Profile {
	return Profile{
		SYNDrop:    0.02,
		Stall:      0.05,
		StallBase:  40 * time.Millisecond,
		DgramDrop:  0.02,
		DgramStall: 0.04,
	}
}

// Harsh is a badly lossy path: every fault class fires, including flaky
// backends that need one retry to reach.
func Harsh() Profile {
	return Profile{
		SYNDrop:      0.06,
		Refuse:       0.03,
		HandshakeCut: 0.03,
		Reset:        0.02,
		ResetWindow:  6,
		Stall:        0.10,
		StallBase:    80 * time.Millisecond,
		DgramDrop:    0.06,
		DgramStall:   0.08,
	}
}

// Flaky models cold backends: the first dial on every tuple is refused,
// after which the path is clean. Recovery statistics under it are exactly
// computable, which the chaos suite exploits.
func Flaky(n int) Profile {
	return Profile{FlakyFirstN: n}
}
