// Package doq implements DNS over Dedicated QUIC Connections (RFC 9250): a
// server front-end on the dedicated UDP port 853 and a client that carries
// one query per client-initiated bidirectional stream, each message framed
// by the same 2-byte length prefix DNS-over-TCP uses (RFC 9250 §4.2).
//
// The transport rides netsim's datagram path: every QUIC flight — the
// Initial/Handshake exchange, a 0-RTT resumption flight, or a short-header
// packet carrying one or more STREAM frames — is one World.Exchange round
// trip. That mapping is what keeps the virtual-clock accounting honest and
// schedule-independent:
//
//   - a fresh connection pays exactly one round trip of setup (QUIC's 1-RTT
//     handshake, versus two for TCP+TLS DoT), charged to SetupLatency;
//   - a resumed connection pays zero setup — the handshake rides the first
//     query flight as 0-RTT early data at that flight's ordinary cost;
//   - N concurrent streams packed into one flight (Batch) amortize one
//     round trip across N queries, the DoQ analog of DoT pipelining;
//   - concurrent flights accumulate elapsed time commutatively, so totals
//     are identical under any goroutine schedule.
//
// There is no real packet protection: like the rest of the study's TLS
// simulation, the handshake carries genuine X.509 chains over fake crypto,
// so certificate verification (and its RFC 8310 strict/opportunistic
// split) behaves exactly as it does for DoT while the bytes stay
// deterministic.
package doq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Port is the dedicated DoQ port (RFC 9250 §3.1: UDP 853).
const Port = 853

// DoQ application error codes (RFC 9250 §8.4), carried in the application
// variant of CONNECTION_CLOSE.
const (
	// NoError is the graceful-shutdown code.
	NoError uint64 = 0x0
	// InternalError signals a processing failure unrelated to the peer.
	InternalError uint64 = 0x1
	// ProtocolError signals a peer protocol violation (non-zero message
	// ID, malformed length framing, a non-client-bidi stream).
	ProtocolError uint64 = 0x2
)

// Errors surfaced to measurement code.
var (
	// ErrClosed means the connection is gone — closed locally, torn down
	// by a CONNECTION_CLOSE from the peer, or dead because a flight was
	// lost in transit (one lost datagram desynchronizes the simulated
	// connection state, so the session is abandoned rather than repaired;
	// the resolver layer redials). It plays the role dnsclient.ErrClosed
	// plays for stream transports and is recognized by the resolver's
	// session-death detection.
	ErrClosed = errors.New("doq: connection closed")
	// ErrAuthFailed is returned by strict-profile dials when the server
	// certificate cannot be verified (RFC 8310 Strict Privacy).
	ErrAuthFailed = errors.New("doq: server authentication failed (strict profile)")
	// ErrProtocol means the peer violated RFC 9250 framing.
	ErrProtocol = errors.New("doq: protocol error")
)

// connKeyLen is an address key (16 bytes, v4-mapped) plus a connection ID.
const connKeyLen = 16 + dnswire.QUICCIDLen

// cidFor derives the server-side connection ID from the client's: this
// subset has no Retry flight to negotiate CIDs, so both ends compute the
// server CID as a hash of the client's, keeping 0-RTT flights addressable
// without a round trip.
func cidFor(clientCID []byte) [dnswire.QUICCIDLen]byte {
	h := fnv.New64a()
	h.Write([]byte("doq-server-cid"))
	h.Write(clientCID)
	var out [dnswire.QUICCIDLen]byte
	binary.BigEndian.PutUint64(out[:], h.Sum64())
	return out
}

// ticketFor derives a server's stateless resumption ticket. Tickets are a
// pure function of the server address, so resumption survives server-side
// population churn and never needs server state — and a given client's
// cache hit/miss pattern is a deterministic function of its own dial
// history alone.
func ticketFor(server netip.Addr) [8]byte {
	h := fnv.New64a()
	h.Write([]byte("doq-resumption-ticket"))
	b, _ := server.MarshalBinary()
	h.Write(b)
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], h.Sum64())
	return out
}

// --- Handshake payload codecs -------------------------------------------
//
// The CRYPTO frames carry a miniature of the TLS 1.3 flights: the client
// hello names the ALPN and offers a resumption ticket; the server hello
// carries the certificate chain (real DER, verified with real X.509 path
// building) and a fresh ticket.

const helloALPN = "doq"

type clientHello struct {
	alpn       string
	serverName string
	ticket     []byte
}

func appendClientHello(buf []byte, ch clientHello) []byte {
	buf = dnswire.AppendQUICVarint(buf, uint64(len(ch.alpn)))
	buf = append(buf, ch.alpn...)
	buf = dnswire.AppendQUICVarint(buf, uint64(len(ch.serverName)))
	buf = append(buf, ch.serverName...)
	buf = dnswire.AppendQUICVarint(buf, uint64(len(ch.ticket)))
	return append(buf, ch.ticket...)
}

func readHelloField(b []byte) ([]byte, int, error) {
	l, n, err := dnswire.ReadQUICVarint(b)
	if err != nil {
		return nil, 0, err
	}
	if l > uint64(len(b)-n) {
		return nil, 0, fmt.Errorf("%w: hello field overruns frame", ErrProtocol)
	}
	return b[n : n+int(l)], n + int(l), nil
}

func parseClientHello(b []byte) (clientHello, error) {
	var ch clientHello
	for _, dst := range []*string{&ch.alpn, &ch.serverName} {
		field, n, err := readHelloField(b)
		if err != nil {
			return clientHello{}, err
		}
		*dst = string(field)
		b = b[n:]
	}
	ticket, _, err := readHelloField(b)
	if err != nil {
		return clientHello{}, err
	}
	if len(ticket) > 0 {
		ch.ticket = ticket
	}
	return ch, nil
}

type serverHello struct {
	chain  [][]byte // DER certificates, leaf first
	ticket []byte
}

func appendServerHello(buf []byte, sh serverHello) []byte {
	buf = dnswire.AppendQUICVarint(buf, uint64(len(sh.chain)))
	for _, der := range sh.chain {
		buf = dnswire.AppendQUICVarint(buf, uint64(len(der)))
		buf = append(buf, der...)
	}
	buf = dnswire.AppendQUICVarint(buf, uint64(len(sh.ticket)))
	return append(buf, sh.ticket...)
}

func parseServerHello(b []byte) (serverHello, error) {
	count, n, err := dnswire.ReadQUICVarint(b)
	if err != nil {
		return serverHello{}, err
	}
	b = b[n:]
	if count > 16 {
		return serverHello{}, fmt.Errorf("%w: absurd certificate count %d", ErrProtocol, count)
	}
	var sh serverHello
	for i := uint64(0); i < count; i++ {
		der, adv, err := readHelloField(b)
		if err != nil {
			return serverHello{}, err
		}
		sh.chain = append(sh.chain, der)
		b = b[adv:]
	}
	ticket, _, err := readHelloField(b)
	if err != nil {
		return serverHello{}, err
	}
	sh.ticket = ticket
	return sh, nil
}

// Probe returns a minimal QUIC Initial packet (client hello, no ticket)
// suitable for UDP/853 liveness sweeps: any response — a handshake or a
// CONNECTION_CLOSE — proves something QUIC-shaped listens on the port,
// the datagram analog of the scanner's TCP SYN stage.
func Probe() []byte {
	scid := [dnswire.QUICCIDLen]byte{'d', 'o', 'q', 'p', 'r', 'o', 'b', 'e'}
	pkt, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{
		Type: dnswire.QUICInitial, Version: dnswire.QUICVersion,
		DCID: scid[:], SCID: scid[:],
	})
	if err != nil {
		panic("doq: probe header: " + err.Error())
	}
	hello := appendClientHello(nil, clientHello{alpn: helloALPN})
	pkt, err = dnswire.AppendQUICFrame(pkt, dnswire.QUICFrame{Type: dnswire.QUICFrameCrypto, Data: hello})
	if err != nil {
		panic("doq: probe frame: " + err.Error())
	}
	return pkt
}

// --- Server --------------------------------------------------------------

// Server is the per-address DoQ front-end state: the connection table that
// maps short-header packets back to their handshakes.
type Server struct {
	leaf      *certs.Leaf
	handler   dnsserver.Handler
	extraProc time.Duration
	addr      netip.Addr

	mu    sync.Mutex
	conns map[[connKeyLen]byte]*serverConn
}

type serverConn struct {
	clientCID [dnswire.QUICCIDLen]byte
}

// Serve registers a DoQ server on addr:853 of the world, answering queries
// with h. The handshake presents leaf's chain; extraProc is charged per
// flight on top of the handler's own processing time (QUIC record costs),
// mirroring dot.Serve's per-query TLS cost.
func Serve(w *netsim.World, addr netip.Addr, leaf *certs.Leaf, h dnsserver.Handler, extraProc time.Duration) *Server {
	s := &Server{
		leaf: leaf, handler: h, extraProc: extraProc, addr: addr,
		conns: make(map[[connKeyLen]byte]*serverConn),
	}
	w.RegisterDatagram(addr, Port, s.handlePacket)
	return s
}

// ServeNotDoQ registers a UDP/853 service that answers QUIC flights with a
// transport-level CONNECTION_CLOSE instead of completing a handshake — the
// port-open-but-not-DoQ population the scanner must tell apart from real
// resolvers, the DoQ analog of dot.ServeNotDNS.
func ServeNotDoQ(w *netsim.World, addr netip.Addr) {
	w.RegisterDatagram(addr, Port, func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		h, _, err := dnswire.ParseQUICHeader(req)
		if err != nil {
			return nil, 0, netsim.ErrBlackhole
		}
		resp, err := appendConnClose(nil, dnswire.QUICHeader{Type: dnswire.QUICHandshake,
			Version: dnswire.QUICVersion, DCID: h.SCID}, dnswire.QUICFrameConnClose, 0, "not doq")
		if err != nil {
			return nil, 0, netsim.ErrBlackhole
		}
		return resp, 0, nil
	})
}

// Reset drops all connection state, as a server restart (or population
// churn re-provisioning the address) would. Established clients see a
// CONNECTION_CLOSE on their next flight and redial; stateless resumption
// tickets remain valid.
func (s *Server) Reset() {
	s.mu.Lock()
	s.conns = make(map[[connKeyLen]byte]*serverConn)
	s.mu.Unlock()
}

func (s *Server) connKey(from netip.Addr, cid []byte) [connKeyLen]byte {
	var key [connKeyLen]byte
	b16 := netip.AddrFrom16(from.As16())
	raw, _ := b16.MarshalBinary()
	copy(key[:16], raw)
	copy(key[16:], cid)
	return key
}

// appendConnClose builds a one-frame close packet under the given header.
func appendConnClose(buf []byte, h dnswire.QUICHeader, typ dnswire.QUICFrameType, code uint64, reason string) ([]byte, error) {
	out, err := dnswire.AppendQUICHeader(buf, h)
	if err != nil {
		return nil, err
	}
	return dnswire.AppendQUICFrame(out, dnswire.QUICFrame{
		Type: typ, ErrorCode: code, Data: []byte(reason),
	})
}

// handlePacket is the datagram service: one request packet in, exactly one
// response packet out. Handshake flights answer with the certificate chain
// and a resumption ticket; query flights answer every STREAM frame the
// packet carried, in an order shuffled deterministically per flow.
func (s *Server) handlePacket(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
	h, n, err := dnswire.ParseQUICHeader(req)
	if err != nil {
		// Not QUIC at all: silence, like any UDP service dropping noise.
		return nil, 0, netsim.ErrBlackhole
	}
	payload := req[n:]
	switch h.Type {
	case dnswire.QUICInitial:
		return s.handleInitial(from, h, payload)
	case dnswire.QUICZeroRTT:
		return s.handleZeroRTT(from, h, payload)
	case dnswire.QUICOneRTT:
		return s.handleShort(from, h, payload)
	default:
		return nil, 0, netsim.ErrBlackhole
	}
}

// findCrypto returns the first CRYPTO frame's payload and the offset past
// the frames it scanned.
func findCrypto(payload []byte) ([]byte, bool) {
	n := 0
	for n < len(payload) {
		f, adv, err := dnswire.ParseQUICFrame(payload[n:])
		if err != nil {
			return nil, false
		}
		if f.Type == dnswire.QUICFrameCrypto {
			return f.Data, true
		}
		n += adv
	}
	return nil, false
}

func (s *Server) register(from netip.Addr, clientCID []byte) [dnswire.QUICCIDLen]byte {
	srvCID := cidFor(clientCID)
	sc := &serverConn{}
	copy(sc.clientCID[:], clientCID)
	s.mu.Lock()
	s.conns[s.connKey(from, srvCID[:])] = sc
	s.mu.Unlock()
	return srvCID
}

func (s *Server) handleInitial(from netip.Addr, h dnswire.QUICHeader, payload []byte) ([]byte, time.Duration, error) {
	raw, ok := findCrypto(payload)
	if !ok {
		return nil, 0, netsim.ErrBlackhole
	}
	ch, err := parseClientHello(raw)
	if err != nil || ch.alpn != helloALPN {
		resp, cerr := appendConnClose(nil, dnswire.QUICHeader{Type: dnswire.QUICHandshake,
			Version: dnswire.QUICVersion, DCID: h.SCID}, dnswire.QUICFrameConnClose, 0, "bad hello")
		if cerr != nil {
			return nil, 0, netsim.ErrBlackhole
		}
		return resp, s.extraProc, nil
	}
	srvCID := s.register(from, h.SCID)
	ticket := ticketFor(s.addr)
	tlsCert := s.leaf.TLSCertificate()
	out, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{
		Type: dnswire.QUICHandshake, Version: dnswire.QUICVersion,
		DCID: h.SCID, SCID: srvCID[:],
	})
	if err != nil {
		return nil, 0, netsim.ErrBlackhole
	}
	out, err = dnswire.AppendQUICFrame(out, dnswire.QUICFrame{Type: dnswire.QUICFrameAck})
	if err != nil {
		return nil, 0, netsim.ErrBlackhole
	}
	out, err = dnswire.AppendQUICFrame(out, dnswire.QUICFrame{
		Type: dnswire.QUICFrameCrypto,
		Data: appendServerHello(nil, serverHello{chain: tlsCert.Certificate, ticket: ticket[:]}),
	})
	if err != nil {
		return nil, 0, netsim.ErrBlackhole
	}
	return out, s.extraProc, nil
}

func (s *Server) handleZeroRTT(from netip.Addr, h dnswire.QUICHeader, payload []byte) ([]byte, time.Duration, error) {
	raw, ok := findCrypto(payload)
	if !ok {
		return s.close(h.SCID, ProtocolError, "0-rtt without hello")
	}
	ch, err := parseClientHello(raw)
	want := ticketFor(s.addr)
	if err != nil || ch.alpn != helloALPN || string(ch.ticket) != string(want[:]) {
		return s.close(h.SCID, ProtocolError, "bad resumption ticket")
	}
	s.register(from, h.SCID)
	var clientCID [dnswire.QUICCIDLen]byte
	copy(clientCID[:], h.SCID)
	return s.answerStreams(from, clientCID, payload)
}

func (s *Server) handleShort(from netip.Addr, h dnswire.QUICHeader, payload []byte) ([]byte, time.Duration, error) {
	s.mu.Lock()
	sc, ok := s.conns[s.connKey(from, h.DCID)]
	s.mu.Unlock()
	if !ok {
		// Unknown connection (server restarted, population churned): the
		// close tells the client to redial rather than time out.
		var zero [dnswire.QUICCIDLen]byte
		resp, err := appendConnClose(nil, dnswire.QUICHeader{Type: dnswire.QUICOneRTT, DCID: zero[:]},
			dnswire.QUICFrameConnClose, 0, "unknown connection")
		if err != nil {
			return nil, 0, netsim.ErrBlackhole
		}
		return resp, 0, nil
	}
	return s.answerStreams(from, sc.clientCID, payload)
}

// close builds an application CONNECTION_CLOSE addressed to clientCID.
func (s *Server) close(clientCID []byte, code uint64, reason string) ([]byte, time.Duration, error) {
	var cid [dnswire.QUICCIDLen]byte
	copy(cid[:], clientCID)
	resp, err := appendConnClose(nil, dnswire.QUICHeader{Type: dnswire.QUICOneRTT, DCID: cid[:]},
		dnswire.QUICFrameConnCloseApp, code, reason)
	if err != nil {
		return nil, 0, netsim.ErrBlackhole
	}
	return resp, s.extraProc, nil
}

// answerStreams serves every STREAM frame in the packet and responds with
// one short-header packet carrying one response frame per request stream.
// The flight's processing charge is the maximum of the per-query handler
// times (queries in one packet are resolved concurrently server-side) plus
// the per-flight extraProc; response frames are emitted in an order
// shuffled deterministically from the flow tuple, exercising the client's
// by-stream-ID demux without breaking report byte-identity.
func (s *Server) answerStreams(from netip.Addr, clientCID [dnswire.QUICCIDLen]byte, payload []byte) ([]byte, time.Duration, error) {
	type answer struct {
		streamID uint64
		msg      *dnswire.Message
	}
	var answers []answer
	var maxProc time.Duration
	n := 0
	for n < len(payload) {
		f, adv, err := dnswire.ParseQUICFrame(payload[n:])
		if err != nil {
			return s.close(clientCID[:], ProtocolError, "malformed frame")
		}
		n += adv
		switch f.Type {
		case dnswire.QUICFrameStream:
			// RFC 9250 §4.2: queries ride client-initiated bidirectional
			// streams (IDs ≡ 0 mod 4), one message per stream, with the
			// 2-byte length prefix and message ID zero.
			if f.StreamID%4 != 0 {
				return s.close(clientCID[:], ProtocolError, "not a client bidi stream")
			}
			if len(f.Data) < 2 || int(binary.BigEndian.Uint16(f.Data)) != len(f.Data)-2 {
				return s.close(clientCID[:], ProtocolError, "bad message framing")
			}
			msg, err := dnswire.Unpack(f.Data[2:])
			if err != nil {
				return s.close(clientCID[:], ProtocolError, "unparseable query")
			}
			if msg.ID != 0 {
				return s.close(clientCID[:], ProtocolError, "non-zero message ID")
			}
			resp, proc := s.handler.ServeDNS(from, msg)
			if resp == nil {
				return nil, 0, netsim.ErrBlackhole
			}
			resp.ID = 0
			if proc > maxProc {
				maxProc = proc
			}
			answers = append(answers, answer{streamID: f.StreamID, msg: resp})
		case dnswire.QUICFrameConnClose, dnswire.QUICFrameConnCloseApp:
			srvCID := cidFor(clientCID[:])
			s.mu.Lock()
			delete(s.conns, s.connKey(from, srvCID[:]))
			s.mu.Unlock()
			return nil, 0, netsim.ErrBlackhole
		default:
			// PADDING, PING, ACK, CRYPTO (the 0-RTT hello): no response
			// frame of their own.
		}
	}
	if len(answers) == 0 {
		return s.close(clientCID[:], ProtocolError, "no stream data")
	}
	// Deterministic shuffle: a pure function of the flow and the packet's
	// lowest stream ID, never of arrival order.
	if len(answers) > 1 {
		seed := fnv.New64a()
		seed.Write(clientCID[:])
		var sid [8]byte
		binary.BigEndian.PutUint64(sid[:], answers[0].streamID)
		seed.Write(sid[:])
		rng := rand.New(rand.NewSource(int64(seed.Sum64()))) //nolint:gosec // deterministic shuffle, not security
		rng.Shuffle(len(answers), func(i, j int) { answers[i], answers[j] = answers[j], answers[i] })
	}
	out, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{Type: dnswire.QUICOneRTT, DCID: clientCID[:]})
	if err != nil {
		return nil, 0, netsim.ErrBlackhole
	}
	scratch := bufpool.Get(512)
	defer bufpool.Put(scratch)
	for _, a := range answers {
		framed, err := a.msg.AppendPackTCP((*scratch)[:0])
		if err != nil {
			return s.close(clientCID[:], InternalError, "unpackable response")
		}
		*scratch = framed
		out, err = dnswire.AppendQUICFrame(out, dnswire.QUICFrame{
			Type: dnswire.QUICFrameStream, StreamID: a.streamID, Fin: true, Data: framed,
		})
		if err != nil {
			return nil, 0, netsim.ErrBlackhole
		}
	}
	return out, maxProc + s.extraProc, nil
}
