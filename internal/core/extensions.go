package core

import (
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnscrypt"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/resolver"
	"dnsencryption.info/doe/internal/runner"
)

// opendnsAddr hosts the study's DNSCrypt deployment (OpenDNS has offered
// DNSCrypt since 2011, §2.2).
var opendnsAddr = netip.MustParseAddr("208.67.222.222")

// buildDNSCrypt deploys the OpenDNS-style DNSCrypt resolver backing
// Table 1's fifth column with a working implementation.
func (s *Study) buildDNSCrypt() error {
	s.World.Geo.Register(netip.MustParsePrefix("208.67.222.0/24"),
		geo.Location{Country: "US", ASN: 36692, ASName: "OpenDNS, LLC"})
	resolver := s.resolverFor(opendnsAddr, s.Seed+107)
	srv, providerPK, err := dnscrypt.NewServer("opendns."+ProbeZone, resolver)
	if err != nil {
		return err
	}
	s.World.RegisterDatagram(opendnsAddr, dnscrypt.Port, srv.DatagramHandler())
	s.DNSCryptProvider = "opendns." + ProbeZone
	s.DNSCryptPK = providerPK
	s.DNSCryptAddr = opendnsAddr
	return nil
}

// buildLocalResolvers gives every global vantage /24 an ISP local resolver
// on its .53 address (clear-text only); a handful additionally accept DoT,
// reproducing §3.1's RIPE-Atlas finding that "only 24 of 6,655 probes
// (0.3%) succeed" at DoT against local resolvers.
func (s *Study) buildLocalResolvers() error {
	s.LocalResolvers = make(map[netip.Prefix]netip.Addr)
	s.LocalDoTCapable = make(map[netip.Addr]bool)
	nodes := s.Global.Nodes()
	for i, node := range nodes {
		b := node.Addr.As4()
		b[3] = 53
		lr := netip.AddrFrom4(b)
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], b[2], 0}), 24)
		s.LocalResolvers[prefix] = lr

		resolver := s.resolverFor(lr, s.Seed+200+int64(i))
		s.World.RegisterDatagram(lr, 53, dnsserver.DatagramHandler(resolver))
		// Roughly 1 in 200 ISP resolvers speaks DoT (at miniature
		// scale, guarantee one so the experiment has a witness).
		if i%200 == 100 || (len(nodes) < 200 && i == 37) {
			leaf, err := s.RootCA.Issue(certs.LeafOptions{
				CommonName: "local-resolver-" + lr.String(),
				IPs:        []netip.Addr{lr},
			})
			if err != nil {
				return err
			}
			dot.Serve(s.World, lr, leaf, resolver, time.Millisecond)
			s.LocalDoTCapable[lr] = true
		}
	}
	return nil
}

// runDNSCrypt exercises the DNSCrypt deployment end to end: certificate
// bootstrap over clear-text TXT, Ed25519 verification, then encrypted
// queries under X25519-XSalsa20Poly1305.
func runDNSCrypt(s *Study) (string, error) {
	ctx := s.obsCtx()
	client, err := dnscrypt.NewClient(s.World, ControlledVantages[0].Addr, s.DNSCryptProvider, s.DNSCryptPK)
	if err != nil {
		return "", err
	}
	// The DNSCrypt client has no Transport underneath it, so under fault
	// injection the attempt budget is applied here, around the certificate
	// bootstrap and each encrypted exchange.
	budget := s.retryBudget()
	if err := retrying(budget, func() error {
		return client.FetchCertContext(ctx, s.DNSCryptAddr)
	}); err != nil {
		return "", fmt.Errorf("certificate bootstrap: %w", err)
	}
	ex := resolver.DNSCrypt(client, s.DNSCryptAddr)
	var lat []float64
	for i := 0; i < 10; i++ {
		q := dnswire.NewQuery(0, fmt.Sprintf("dc-%d.%s", i, ProbeZone), dnswire.TypeA)
		var m *dnswire.Message
		err := retrying(budget, func() error {
			var exErr error
			m, exErr = ex.Exchange(ctx, q)
			return exErr
		})
		if err != nil {
			return "", err
		}
		if a, ok := m.FirstA(); !ok || a != s.ExpectedA {
			return "", fmt.Errorf("wrong answer: %v", m.Answers)
		}
		lat = append(lat, float64(ex.LastLatency())/float64(time.Millisecond))
	}
	var b analysis.Table
	b.Title = "DNSCrypt deployment check (Table 1's fifth protocol, working end to end)"
	b.Columns = []string{"Property", "Value"}
	b.AddRow("provider", s.DNSCryptProvider)
	b.AddRow("resolver", s.DNSCryptAddr)
	b.AddRow("construction", "X25519-XSalsa20Poly1305 (es-version 1)")
	b.AddRow("cert bootstrap", "TXT 2.dnscrypt-cert.<provider>, Ed25519-verified")
	b.AddRow("queries", len(lat))
	b.AddRow("median latency (ms)", fmt.Sprintf("%.1f", analysis.Median(lat)))
	return b.Render(), nil
}

// runLocalDoT reproduces the §3.1 limitation check: DoT probes against the
// vantage points' own ISP resolvers, RIPE-Atlas style.
func runLocalDoT(s *Study) (string, error) {
	nodes := s.Global.Nodes()
	// One probe per vantage point, fanned out; successes fold in node
	// order so the counters and the example list stay deterministic.
	type localProbe struct {
		example string
		ok      bool
	}
	results := runner.Map(s.Workers, len(nodes), func(i int) localProbe {
		node := nodes[i]
		b := node.Addr.As4()
		b[3] = 53
		lr := netip.AddrFrom4(b)
		tunnel, err := s.Global.Dial(s.GlobalPlatform.From, node.ID, lr, dot.Port)
		if err != nil {
			return localProbe{}
		}
		client := dot.NewClient(nil, s.GlobalPlatform.From, s.Roots, dot.Opportunistic)
		conn, err := client.DialConn(tunnel)
		if err != nil {
			return localProbe{}
		}
		sess := resolver.DoTSession(conn)
		q := dnswire.NewQuery(0, s.GlobalPlatform.UniqueName(node.ID+"-local"), dnswire.TypeA)
		m, err := sess.Exchange(s.obsCtx(), q)
		sess.Close()
		if err != nil || m.Rcode != dnswire.RcodeSuccess {
			return localProbe{}
		}
		return localProbe{
			example: fmt.Sprintf("%s (AS%d %s)", lr, node.ASN, node.ASName),
			ok:      true,
		}
	})
	probed, succeeded := len(nodes), 0
	var capable []string
	for _, r := range results {
		if !r.ok {
			continue
		}
		succeeded++
		if len(capable) < 5 {
			capable = append(capable, r.example)
		}
	}
	out := "Local (ISP) resolver DoT deployment, RIPE-Atlas-style probes (§3.1)\n"
	out += fmt.Sprintf("probes: %d, DoT-capable local resolvers: %d (%.1f%%)\n",
		probed, succeeded, 100*float64(succeeded)/float64(max(1, probed)))
	out += fmt.Sprintf("paper: 24 of 6,655 probes (0.3%%) succeeded\n")
	for _, c := range capable {
		out += "  example: " + c + "\n"
	}
	return out, nil
}
