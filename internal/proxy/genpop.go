package proxy

import (
	"fmt"

	"dnsencryption.info/doe/internal/netsim"
)

// Generator-fed population: instead of materializing every exit node up
// front with AddNode (one map entry + one live SOCKS listener per node,
// O(population) memory), a network can carry a synthesis function and
// bring nodes into the world lazily. Acquire(i) synthesizes node i,
// installs its SOCKS service and lifetime ledger entry, and hands back a
// release func that tears both down — so a million-node campaign keeps
// world state O(simultaneously acquired nodes), i.e. O(workers).

// SetGenerator installs a synthesized population of count nodes, node i
// produced by gen(i). gen must be a pure function of i (the streaming
// campaign contract: any shard may ask for any index, in any order, and
// byte-identity across worker counts needs the same node every time).
// Generated nodes do not appear in Nodes()/NodeCount() — they have no
// existence until acquired.
func (n *Network) SetGenerator(count int, gen func(i int) ExitNode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.genCount = count
	n.gen = gen
	if n.active == nil {
		n.active = make(map[string]*ExitNode)
	}
}

// GenCount reports the generator population size (0 when no generator is
// installed).
func (n *Network) GenCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.genCount
}

// NodeAt synthesizes node i without installing it into the world — the
// peek the campaign's uptime screen uses before paying for a listener.
func (n *Network) NodeAt(i int) ExitNode {
	n.mu.Lock()
	gen, count := n.gen, n.genCount
	n.mu.Unlock()
	if gen == nil || i < 0 || i >= count {
		panic(fmt.Sprintf("proxy: NodeAt(%d) outside generated population [0, %d)", i, count))
	}
	return gen(i)
}

// Acquire materializes generated node i: its SOCKS service starts
// listening on the node's address and its session-lifetime ledger entry
// becomes visible to reserve (so super-proxy dials keyed by the node's ID
// work exactly as for AddNode nodes). The release func closes the service
// and drops the ledger entry. Each index must be held by at most one
// caller at a time — the runner's work handout gives every index to
// exactly one worker, which is the intended discipline.
func (n *Network) Acquire(i int) (ExitNode, func()) {
	node := n.NodeAt(i)
	cp := node
	n.mu.Lock()
	n.active[node.ID] = &cp
	n.mu.Unlock()
	n.World.RegisterStream(node.Addr, 1080, func(conn *netsim.Conn) {
		ServeConn(conn, false, func(req Request) (*netsim.Conn, error) {
			if !req.Target.IsValid() {
				return nil, netsim.ErrNoRoute
			}
			return n.World.Dial(cp.Addr, req.Target, req.Port)
		})
	})
	released := false
	return node, func() {
		if released {
			return
		}
		released = true
		n.World.CloseService(node.Addr, 1080)
		n.mu.Lock()
		delete(n.active, node.ID)
		n.mu.Unlock()
	}
}

// ActiveCount reports how many generated nodes are currently materialized
// (tests assert the lazy-world invariant: O(workers), not O(population)).
func (n *Network) ActiveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.active)
}

// lookupLocked finds a node by ID across the materialized pool and the
// currently acquired generated nodes. Callers hold n.mu.
func (n *Network) lookupLocked(id string) (*ExitNode, bool) {
	if node, ok := n.nodes[id]; ok {
		return node, true
	}
	if node, ok := n.active[id]; ok {
		return node, true
	}
	return nil, false
}
