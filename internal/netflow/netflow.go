// Package netflow models the §5.1 passive DoT measurement: NetFlow-style
// flow records produced by a sampling backbone router (the paper's ISP used
// 1/3,000 packet sampling and a 15-second idle timeout), and the analysis
// that selects DoT traffic — TCP port 853 toward known resolvers, excluding
// single-SYN flows — with /24 client truncation for ethics.
package netflow

import (
	"net/netip"
	"sort"
	"time"
)

// TCP flag bits, as unioned into NetFlow records.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Packet is one observed packet at the router.
type Packet struct {
	Time    time.Time
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Bytes   int
	Flags   uint8
}

// Record is one exported flow record.
type Record struct {
	First   time.Time
	Last    time.Time
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Packets uint64
	Bytes   uint64
	// Flags is the union of TCP flags over all sampled packets of the
	// flow (footnote 5: a single SYN flag indicates an incomplete
	// handshake and cannot contain DoT queries).
	Flags uint8
}

// flowKey identifies a flow: same 5-tuple.
type flowKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
	proto            uint8
}

// Router aggregates sampled packets into flow records.
type Router struct {
	// SampleRate is the deterministic 1-in-N packet sampling rate.
	SampleRate int
	// IdleExpiry closes a flow unseen for this long.
	IdleExpiry time.Duration

	counter uint64
	cache   map[flowKey]*Record
	export  []Record
}

// NewRouter creates a router with the paper's parameters (1/3000, 15 s).
func NewRouter(sampleRate int, idleExpiry time.Duration) *Router {
	if sampleRate < 1 {
		sampleRate = 1
	}
	return &Router{
		SampleRate: sampleRate,
		IdleExpiry: idleExpiry,
		cache:      make(map[flowKey]*Record),
	}
}

// Observe feeds one packet through the sampler. Packets must arrive in
// non-decreasing time order.
func (r *Router) Observe(p Packet) {
	r.expire(p.Time)
	r.counter++
	if r.counter%uint64(r.SampleRate) != 0 {
		return
	}
	key := flowKey{p.Src, p.Dst, p.SrcPort, p.DstPort, p.Proto}
	rec, ok := r.cache[key]
	if !ok {
		rec = &Record{
			First: p.Time, Last: p.Time,
			Src: p.Src, Dst: p.Dst,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Proto: p.Proto,
		}
		r.cache[key] = rec
	}
	rec.Last = p.Time
	rec.Packets++
	rec.Bytes += uint64(p.Bytes)
	rec.Flags |= p.Flags
}

// expire exports flows idle at the given time.
func (r *Router) expire(now time.Time) {
	for key, rec := range r.cache {
		if now.Sub(rec.Last) > r.IdleExpiry {
			r.export = append(r.export, *rec)
			delete(r.cache, key)
		}
	}
}

// Flush exports all remaining flows and returns every record collected so
// far, ordered by first-seen time.
func (r *Router) Flush() []Record {
	for key, rec := range r.cache {
		r.export = append(r.export, *rec)
		delete(r.cache, key)
	}
	sort.Slice(r.export, func(i, j int) bool { return r.export[i].First.Before(r.export[j].First) })
	out := r.export
	r.export = nil
	return out
}

// Truncate24 zeroes the host byte of an IPv4 address — the paper keeps only
// the /24 of each client address before analysis, for ethics.
func Truncate24(ip netip.Addr) netip.Addr {
	if !ip.Is4() {
		return ip
	}
	b := ip.As4()
	b[3] = 0
	return netip.AddrFrom4(b)
}

// Analyzer selects and aggregates DoT traffic from flow records.
type Analyzer struct {
	// Resolvers maps known DoT resolver addresses to provider names (the
	// list produced by the §3 scans).
	Resolvers map[netip.Addr]string
}

// DoTFlow is one selected DoT flow with its client truncated to /24.
type DoTFlow struct {
	Month    string // "2018-07"
	Day      string // "2018-07-15"
	Client24 netip.Addr
	Provider string
	Packets  uint64
	Bytes    uint64
}

// SelectDoT applies §5.1's filter: TCP port 853 toward a known DoT
// resolver, excluding flows whose only TCP flag is a single SYN.
func (a *Analyzer) SelectDoT(records []Record) []DoTFlow {
	var out []DoTFlow
	for _, rec := range records {
		if rec.Proto != ProtoTCP || rec.DstPort != 853 {
			continue
		}
		provider, known := a.Resolvers[rec.Dst]
		if !known {
			continue
		}
		if rec.Flags == FlagSYN {
			continue
		}
		out = append(out, DoTFlow{
			Month:    rec.First.Format("2006-01"),
			Day:      rec.First.Format("2006-01-02"),
			Client24: Truncate24(rec.Src),
			Provider: provider,
			Packets:  rec.Packets,
			Bytes:    rec.Bytes,
		})
	}
	return out
}

// MonthlyCounts returns flows per month per provider (Fig. 11).
func MonthlyCounts(flows []DoTFlow) map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, f := range flows {
		m, ok := out[f.Provider]
		if !ok {
			m = map[string]int{}
			out[f.Provider] = m
		}
		m[f.Month]++
	}
	return out
}

// NetblockStat summarizes one client /24's DoT activity (Fig. 12).
type NetblockStat struct {
	Client24 netip.Addr
	Flows    int
	// ActiveDays is the count of distinct days with observed traffic
	// (the "active time" color of Fig. 12).
	ActiveDays int
}

// NetblockStats aggregates flows per client /24 toward one provider,
// sorted by flow count descending.
func NetblockStats(flows []DoTFlow, provider string) []NetblockStat {
	type acc struct {
		flows int
		days  map[string]bool
	}
	byClient := map[netip.Addr]*acc{}
	for _, f := range flows {
		if f.Provider != provider {
			continue
		}
		a, ok := byClient[f.Client24]
		if !ok {
			a = &acc{days: map[string]bool{}}
			byClient[f.Client24] = a
		}
		a.flows++
		a.days[f.Day] = true
	}
	out := make([]NetblockStat, 0, len(byClient))
	for ip, a := range byClient {
		out = append(out, NetblockStat{Client24: ip, Flows: a.flows, ActiveDays: len(a.days)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		return out[i].Client24.Less(out[j].Client24)
	})
	return out
}

// TopShare returns the fraction of flows contributed by the top n
// netblocks (§5.2: top five /24s account for 44% of Cloudflare DoT flows).
func TopShare(stats []NetblockStat, n int) float64 {
	total, top := 0, 0
	for i, s := range stats {
		total += s.Flows
		if i < n {
			top += s.Flows
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// TemporaryFraction returns the fraction of netblocks active for fewer
// than the given number of days (§5.2: 96% active less than one week).
func TemporaryFraction(stats []NetblockStat, days int) float64 {
	if len(stats) == 0 {
		return 0
	}
	short := 0
	for _, s := range stats {
		if s.ActiveDays < days {
			short++
		}
	}
	return float64(short) / float64(len(stats))
}
