package dnswire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// MaxTCPMessage is the largest DNS message expressible with 2-byte framing.
const MaxTCPMessage = 0xFFFF

// WriteTCP writes msg to w with the 2-byte big-endian length prefix used by
// DNS over TCP (RFC 1035 §4.2.2) and DNS over TLS (RFC 7858). A single Write
// call carries prefix and payload so the kernel can coalesce them.
func WriteTCP(w io.Writer, msg []byte) error {
	if len(msg) > MaxTCPMessage {
		return fmt.Errorf("dnswire: message of %d bytes exceeds TCP framing limit", len(msg))
	}
	framed := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(framed, uint16(len(msg)))
	copy(framed[2:], msg)
	_, err := w.Write(framed)
	return err
}

// ReadTCP reads one length-prefixed DNS message from r.
func ReadTCP(r io.Reader) ([]byte, error) {
	var lenbuf [2]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenbuf[:]))
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// PackTCP packs m and prepends the 2-byte length prefix.
func PackTCP(m *Message) ([]byte, error) {
	body, err := m.Pack()
	if err != nil {
		return nil, err
	}
	if len(body) > MaxTCPMessage {
		return nil, fmt.Errorf("dnswire: message of %d bytes exceeds TCP framing limit", len(body))
	}
	framed := make([]byte, 2+len(body))
	binary.BigEndian.PutUint16(framed, uint16(len(body)))
	copy(framed[2:], body)
	return framed, nil
}

// idSource generates transaction IDs. DNS IDs only need to be unpredictable
// enough to frustrate off-path spoofing of clear-text queries; encrypted
// transports do not rely on them, so math/rand suffices here.
var idSource = struct {
	sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(0x00d15ea5e))}

// NewID returns a fresh transaction ID.
func NewID() uint16 {
	idSource.Lock()
	defer idSource.Unlock()
	return uint16(idSource.rng.Intn(0x10000))
}
