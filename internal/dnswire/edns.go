package dnswire

import (
	"encoding/binary"
	"fmt"
)

// EDNS(0) option codes (RFC 6891 §6.1.2 registry).
const (
	OptionCodeCookie  uint16 = 10
	OptionCodePadding uint16 = 12 // RFC 7830
)

// EDNSOption is a single option inside an OPT pseudo-record.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// OPT is the EDNS(0) pseudo-record payload (RFC 6891). The owner name is
// always root; the class and TTL fields of the enclosing record are
// repurposed and surfaced here as UDPSize, ExtendedRcode, Version and DO.
type OPT struct {
	UDPSize       uint16
	ExtendedRcode uint8 // upper 8 bits of the 12-bit rcode
	Version       uint8
	DO            bool // DNSSEC OK
	Options       []EDNSOption
}

// RType implements RData.
func (OPT) RType() Type { return TypeOPT }

func (o OPT) appendTo(buf []byte, _ *packState) ([]byte, error) {
	for _, opt := range o.Options {
		if len(opt.Data) > 0xFFFF {
			return nil, fmt.Errorf("dnswire: EDNS option %d data too long", opt.Code)
		}
		buf = binary.BigEndian.AppendUint16(buf, opt.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	return buf, nil
}

func (o OPT) String() string {
	return fmt.Sprintf("OPT udp=%d version=%d do=%v options=%d",
		o.UDPSize, o.Version, o.DO, len(o.Options))
}

// Padding returns the length of the padding option carried by the OPT
// record, and whether one is present.
func (o OPT) Padding() (int, bool) {
	for _, opt := range o.Options {
		if opt.Code == OptionCodePadding {
			return len(opt.Data), true
		}
	}
	return 0, false
}

func unpackOPTData(data []byte) (RData, error) {
	var o OPT
	for i := 0; i < len(data); {
		if i+4 > len(data) {
			return nil, ErrRDataTooShort
		}
		code := binary.BigEndian.Uint16(data[i:])
		n := int(binary.BigEndian.Uint16(data[i+2:]))
		i += 4
		if i+n > len(data) {
			return nil, ErrRDataTooShort
		}
		o.Options = append(o.Options, EDNSOption{
			Code: code,
			Data: append([]byte(nil), data[i:i+n]...),
		})
		i += n
	}
	return o, nil
}

// SetEDNS0 attaches (or replaces) an OPT record advertising udpSize and the
// DNSSEC-OK bit. It returns the message for chaining.
func (m *Message) SetEDNS0(udpSize uint16, do bool) *Message {
	m.removeOPT()
	m.Additionals = append(m.Additionals, Record{
		Name:  ".",
		Class: Class(udpSize),
		Data:  OPT{UDPSize: udpSize, DO: do},
	})
	return m
}

// OPT returns the message's EDNS(0) payload, if any.
func (m *Message) OPT() (OPT, bool) {
	for _, rr := range m.Additionals {
		if o, ok := rr.Data.(OPT); ok {
			return o, true
		}
	}
	return OPT{}, false
}

func (m *Message) removeOPT() {
	kept := m.Additionals[:0]
	for _, rr := range m.Additionals {
		if _, ok := rr.Data.(OPT); !ok {
			kept = append(kept, rr)
		}
	}
	m.Additionals = kept
}

// PadToBlock adds an EDNS(0) padding option (RFC 7830) so that the packed
// message length becomes a multiple of block, the policy RFC 8467 recommends
// for DNS-over-Encryption clients (block 128) and servers (block 468) to
// frustrate traffic analysis. The message must already carry an OPT record.
func (m *Message) PadToBlock(block int) error {
	if block <= 0 {
		return fmt.Errorf("dnswire: invalid padding block %d", block)
	}
	opt, ok := m.OPT()
	if !ok {
		return fmt.Errorf("dnswire: PadToBlock requires an EDNS(0) OPT record")
	}
	// Strip any existing padding option before measuring.
	kept := opt.Options[:0]
	for _, o := range opt.Options {
		if o.Code != OptionCodePadding {
			kept = append(kept, o)
		}
	}
	opt.Options = kept
	m.replaceOPT(opt)

	base, err := m.Pack()
	if err != nil {
		return err
	}
	// Adding the option itself costs 4 bytes of option header.
	unpadded := len(base) + 4
	pad := (block - unpadded%block) % block
	opt.Options = append(opt.Options, EDNSOption{
		Code: OptionCodePadding,
		Data: make([]byte, pad), //doelint:allow hotalloc -- pad option escapes into the message; at most one block per query
	})
	m.replaceOPT(opt)
	return nil
}

func (m *Message) replaceOPT(o OPT) {
	for i, rr := range m.Additionals {
		if _, ok := rr.Data.(OPT); ok {
			m.Additionals[i].Data = o
			return
		}
	}
}
