// Command doereport runs the complete end-to-end study — every table and
// figure of the paper, with DoQ columns alongside the paper's DoT/DoH in
// the reachability and performance experiments — and writes the full
// report to stdout (or a file).
//
//	doereport            # full-scale study
//	doereport -small     # miniature world (seconds)
//	doereport -only fig9 # a single experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/cli"
	"dnsencryption.info/doe/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doereport: ")
	seed := flag.Int64("seed", 0, "override the study seed (0 = default)")
	small := flag.Bool("small", false, "use the miniature test-scale world")
	only := flag.String("only", "", "run a single experiment by id (e.g. table4)")
	outPath := flag.String("o", "", "write the report to a file instead of stdout")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "parallel measurement workers (0 = default; report bytes are identical for any value)")
	timing := flag.Bool("timing", false, "log per-experiment wall time to stderr")
	faults := flag.String("faults", "", "fault-injection profile: "+strings.Join(core.FaultProfileNames(), ", "))
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (independent of the study seed)")
	inflight := flag.Int("inflight", -1, "per-session in-flight queries of the multiplexed perf pass (-1 = default, <2 disables)")
	tele := cli.TelemetryFlags()
	flag.Parse()

	if *list {
		for _, exp := range core.Experiments() {
			fmt.Printf("%-14s %s\n", exp.ID, exp.Title)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *small {
		cfg = core.TestConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *inflight >= 0 {
		cfg.MuxInFlight = *inflight
	}
	if *faults != "" {
		cfg.Faults = core.FaultsConfig{Profile: *faults, Seed: *faultSeed}
	}
	cfg.Telemetry = tele.Enabled()
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatalf("building study world: %v", err)
	}
	tele.Serve(study)
	if *timing {
		study.Progress = func(id, title string, elapsed time.Duration) {
			log.Printf("%s (%.1fs)", id, elapsed.Seconds())
		}
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("creating %s: %v", *outPath, err)
		}
		defer f.Close()
		w = f
	}

	finish := func() {
		if err := tele.Finish(study); err != nil {
			log.Fatalf("%v", err)
		}
	}

	if *only != "" {
		exp, ok := core.ExperimentByID(*only)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *only)
		}
		out, err := study.RunExperiment(exp)
		finish()
		if err != nil {
			log.Fatalf("%s: %v", *only, err)
		}
		fmt.Fprintf(w, "== %s: %s\n%s\n", exp.ID, exp.Title, out)
		return
	}
	err = study.RunAll(w)
	finish()
	if err != nil {
		log.Fatalf("report completed with errors: %v", err)
	}
}
