package core

import (
	"context"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/workload"
)

// scaleReport runs one campaign at the given worker count and returns its
// rendered report.
func scaleReport(t *testing.T, nodes, workers int, allProtos bool) string {
	t.Helper()
	cfg := DefaultScaleConfig()
	cfg.Nodes = nodes
	cfg.Workers = workers
	cfg.AllProtos = allProtos
	c, err := NewScaleCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Network.ActiveCount(); got != 0 {
		t.Errorf("campaign leaked %d acquired nodes", got)
	}
	return c.Report(stats)
}

func TestScaleCampaignByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const nodes = 3000
	base := scaleReport(t, nodes, 1, false)
	if !strings.Contains(base, "3000 vantages") {
		t.Fatalf("report header:\n%s", base)
	}
	// The report must show real measurement signal, not a degenerate world.
	if !strings.Contains(base, "cloudflare") || !strings.Contains(base, "dns") {
		t.Fatalf("report missing reachability rows:\n%s", base)
	}
	for _, workers := range []int{4, 8} {
		if got := scaleReport(t, nodes, workers, false); got != base {
			t.Errorf("workers=%d report differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}

func TestScaleCampaignAllProtosByteIdentical(t *testing.T) {
	const nodes = 400
	base := scaleReport(t, nodes, 1, true)
	for _, proto := range []string{"dot", "doh", "doq"} {
		if !strings.Contains(base, proto) {
			t.Errorf("all-protos report missing %s rows:\n%s", proto, base)
		}
	}
	if got := scaleReport(t, nodes, 8, true); got != base {
		t.Errorf("all-protos workers=8 report differs:\n--- serial ---\n%s\n--- parallel ---\n%s", base, got)
	}
}

// TestScaleCampaignBoundsWorldState pins the constant-memory levers: capped
// resolver cache, disabled zone query log, empty active ledger after the
// run.
func TestScaleCampaignBoundsWorldState(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.Nodes = 2000
	cfg.Workers = 4
	cfg.CacheLimit = 64
	c, err := NewScaleCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Resolver.CacheLen(); got > 64 {
		t.Errorf("resolver cache grew to %d entries past the 64 cap", got)
	}
	if got := len(c.Zone.QueriedNames()); got != 0 {
		t.Errorf("zone query log retained %d names with DisableQueryLog set", got)
	}
	if got := c.Network.ActiveCount(); got != 0 {
		t.Errorf("active ledger retained %d nodes", got)
	}
}

func TestValidateScaleNodes(t *testing.T) {
	if err := ValidateScaleNodes(1_000_000); err != nil {
		t.Errorf("1M rejected: %v", err)
	}
	if err := ValidateScaleNodes(0); err == nil {
		t.Error("0 accepted")
	}
	if err := ValidateScaleNodes(workload.VantageCapacity + 1); err == nil {
		t.Error("over-capacity accepted")
	}
	if err := ValidateScaleNodes(workload.VantageCapacity); err != nil {
		t.Errorf("exact capacity rejected: %v", err)
	}
}
