// Package doh implements DNS over HTTPS (RFC 8484): a server supporting the
// wire-format GET (?dns= base64url) and POST bindings plus a Google-style
// /resolve JSON API, and a client that — like all DoH implementations — is
// Strict-Privacy-only: if the server cannot be authenticated, the lookup
// fails (§2.2, §4.2).
//
// HTTP runs for real over the simulated TLS connections: requests and
// responses are produced and parsed with net/http's wire codecs, with
// HTTP/1.1 keep-alive providing connection reuse.
package doh

import (
	"bufio"
	"bytes"
	"crypto/tls"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Port is the DoH port, shared with all other HTTPS traffic.
const Port = 443

// ContentType is the RFC 8484 media type for wire-format messages.
const ContentType = "application/dns-message"

// DefaultPath is the de-facto standard endpoint path ("/dns-query"), used
// by Cloudflare, Quad9 and most public servers; JSONPath is Google's.
const (
	DefaultPath = "/dns-query"
	JSONPath    = "/resolve"
)

// Server is a DoH server configuration.
type Server struct {
	// Handler answers the DNS queries.
	Handler dnsserver.Handler
	// Paths are the wire-format endpoints (default: /dns-query).
	Paths []string
	// JSONAPI additionally enables the Google-style JSON endpoint at
	// /resolve.
	JSONAPI bool
	// ExtraProc is charged per query (TLS + HTTP processing).
	ExtraProc time.Duration
	// Webpage, when non-empty, is served for "/" — public resolvers run
	// informational landing pages the study fetches for identification.
	Webpage string
}

func (s *Server) paths() map[string]bool {
	m := make(map[string]bool)
	if len(s.Paths) == 0 {
		m[DefaultPath] = true
	}
	for _, p := range s.Paths {
		m[p] = true
	}
	return m
}

// Serve registers the DoH server on addr:443 of the world.
func Serve(w *netsim.World, addr netip.Addr, leaf *certs.Leaf, srv *Server) {
	cert := leaf.TLSCertificate()
	paths := srv.paths()
	w.RegisterStream(addr, Port, func(conn *netsim.Conn) {
		defer conn.Close()
		tc := tlsServer(conn, cert)
		if tc == nil {
			return
		}
		defer tc.Close()
		// Clients opting into multiplexing negotiate h2 via ALPN; everyone
		// else (including clients offering no ALPN at all) gets the serial
		// HTTP/1.1 loop below, byte-for-byte as before.
		if tc.ConnectionState().NegotiatedProtocol == "h2" {
			srv.serveH2(conn, tc, paths)
			return
		}
		br := bufio.NewReader(tc)
		for {
			req, err := http.ReadRequest(br)
			if err != nil {
				return
			}
			resp := srv.handle(conn, req, paths)
			if err := resp.Write(tc); err != nil {
				return
			}
			if req.Close || resp.Close {
				return
			}
		}
	})
}

func (s *Server) handle(conn *netsim.Conn, req *http.Request, paths map[string]bool) *http.Response {
	remote := conn.RemoteAddr().(netsim.Addr).IP
	switch {
	case paths[req.URL.Path]:
		return s.handleWire(conn, remote, req)
	case s.JSONAPI && req.URL.Path == JSONPath:
		return s.handleJSON(conn, remote, req)
	case req.URL.Path == "/" && s.Webpage != "":
		return httpResponse(req, http.StatusOK, "text/html", []byte(s.Webpage))
	default:
		return httpResponse(req, http.StatusNotFound, "text/plain", []byte("not found"))
	}
}

func (s *Server) handleWire(conn *netsim.Conn, remote netip.Addr, req *http.Request) *http.Response {
	var body []byte
	var err error
	switch req.Method {
	case http.MethodGet:
		dns := req.URL.Query().Get("dns")
		if dns == "" {
			return httpResponse(req, http.StatusBadRequest, "text/plain", []byte("missing dns parameter"))
		}
		body, err = base64.RawURLEncoding.DecodeString(dns)
		if err != nil {
			return httpResponse(req, http.StatusBadRequest, "text/plain", []byte("bad dns parameter"))
		}
	case http.MethodPost:
		if ct := req.Header.Get("Content-Type"); ct != ContentType {
			return httpResponse(req, http.StatusUnsupportedMediaType, "text/plain", []byte("want "+ContentType))
		}
		body, err = io.ReadAll(req.Body)
		if err != nil {
			return httpResponse(req, http.StatusBadRequest, "text/plain", []byte("bad body"))
		}
	default:
		return httpResponse(req, http.StatusMethodNotAllowed, "text/plain", []byte("GET or POST"))
	}
	m, err := dnswire.Unpack(body)
	if err != nil {
		return httpResponse(req, http.StatusBadRequest, "text/plain", []byte("malformed DNS message"))
	}
	resp, proc := s.Handler.ServeDNS(remote, m)
	conn.AddLatency(proc + s.ExtraProc)
	packed, err := resp.Pack()
	if err != nil {
		return httpResponse(req, http.StatusInternalServerError, "text/plain", []byte("pack error"))
	}
	return httpResponse(req, http.StatusOK, ContentType, packed)
}

// JSONAnswer is one answer record in the JSON API response.
type JSONAnswer struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
	TTL  uint32 `json:"TTL"`
	Data string `json:"data"`
}

// JSONResponse is the Google-style JSON API response body.
type JSONResponse struct {
	Status   int          `json:"Status"`
	TC       bool         `json:"TC"`
	RD       bool         `json:"RD"`
	RA       bool         `json:"RA"`
	Question []JSONQ      `json:"Question"`
	Answer   []JSONAnswer `json:"Answer,omitempty"`
}

// JSONQ is the question echo in the JSON API response.
type JSONQ struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
}

func (s *Server) handleJSON(conn *netsim.Conn, remote netip.Addr, req *http.Request) *http.Response {
	name := req.URL.Query().Get("name")
	if name == "" {
		return httpResponse(req, http.StatusBadRequest, "text/plain", []byte("missing name"))
	}
	qtype := dnswire.TypeA
	if ts := req.URL.Query().Get("type"); ts != "" {
		if t, ok := dnswire.ParseType(strings.ToUpper(ts)); ok {
			qtype = t
		} else if n, err := strconv.Atoi(ts); err == nil {
			qtype = dnswire.Type(n)
		}
	}
	q := dnswire.NewQuery(0, name, qtype)
	resp, proc := s.Handler.ServeDNS(remote, q)
	conn.AddLatency(proc + s.ExtraProc)

	jr := JSONResponse{
		Status: int(resp.Rcode),
		RD:     true, RA: true,
		Question: []JSONQ{{Name: dnswire.CanonicalName(name), Type: uint16(qtype)}},
	}
	for _, rr := range resp.Answers {
		jr.Answer = append(jr.Answer, JSONAnswer{
			Name: rr.Name, Type: uint16(rr.Type()), TTL: rr.TTL, Data: rr.Data.String(),
		})
	}
	body, _ := json.Marshal(jr)
	return httpResponse(req, http.StatusOK, "application/json", body)
}

func httpResponse(req *http.Request, status int, contentType string, body []byte) *http.Response {
	return &http.Response{
		StatusCode:    status,
		ProtoMajor:    1,
		ProtoMinor:    1,
		Request:       req,
		Header:        http.Header{"Content-Type": []string{contentType}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
	}
}

// UDPBackendForwarder reproduces the Quad9 misconfiguration of Finding 2.4:
// the DoH front-end forwards every query to its own clear-text DNS backend
// over UDP and waits at most Timeout (Quad9 used 2 seconds); when recursive
// resolution takes longer — busy networks, faraway nameservers — the client
// gets an unnecessary SERVFAIL.
type UDPBackendForwarder struct {
	World   *netsim.World
	From    netip.Addr // the DoH server's own address
	Backend netip.Addr // its DNS/UDP backend
	Timeout time.Duration
	// ExtraBackendLatency, when non-nil, adds client-dependent backend
	// latency (anycast PoPs near some clients have warm caches and close
	// backends; faraway clients land on busier paths — the reason the
	// SERVFAIL rate differed between the global and censored platforms).
	ExtraBackendLatency func(remote netip.Addr) time.Duration
}

// ServeDNS implements dnsserver.Handler.
func (f *UDPBackendForwarder) ServeDNS(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	servfail := func(proc time.Duration) (*dnswire.Message, time.Duration) {
		resp := req.Reply()
		resp.Rcode = dnswire.RcodeServFail
		return resp, proc
	}
	packed, err := req.Pack()
	if err != nil {
		return servfail(time.Millisecond)
	}
	raw, elapsed, err := f.World.Exchange(f.From, f.Backend, 53, packed)
	if err != nil {
		return servfail(f.Timeout)
	}
	if f.ExtraBackendLatency != nil {
		elapsed += f.ExtraBackendLatency(remote)
	}
	if elapsed > f.Timeout {
		// The backend answered, but after the front-end gave up.
		return servfail(f.Timeout)
	}
	m, err := dnswire.Unpack(raw)
	if err != nil {
		return servfail(elapsed)
	}
	resp := req.Reply()
	resp.Rcode = m.Rcode
	resp.Answers = append(resp.Answers, m.Answers...)
	return resp, elapsed
}

func tlsServer(conn *netsim.Conn, cert tls.Certificate) *tls.Conn {
	tc := tls.Server(conn, &tls.Config{
		Certificates: []tls.Certificate{cert},
		NextProtos:   []string{"h2", "http/1.1"},
	})
	if err := tc.Handshake(); err != nil {
		return nil
	}
	return tc
}
