package doq

import (
	"context"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
)

// ExchangeFunc sends one request datagram and returns the response, the
// virtual round-trip time, and an error. The direct path is a closure over
// World.Exchange; proxied vantage points substitute a relay that adds the
// proxy-leg latency, so the connection logic never knows the difference.
type ExchangeFunc func(req []byte) ([]byte, time.Duration, error)

// SessionCache remembers resumption tickets (and the handshake's
// verification outcome) per server, enabling 0-RTT dials.
type SessionCache struct {
	mu sync.Mutex
	m  map[netip.Addr]*cachedSession
}

type cachedSession struct {
	ticket    []byte
	verifyErr error
	certs     []*x509.Certificate
}

// NewSessionCache returns an empty resumption cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{m: make(map[netip.Addr]*cachedSession)}
}

func (sc *SessionCache) get(server netip.Addr) *cachedSession {
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.m[server]
}

func (sc *SessionCache) put(server netip.Addr, cs *cachedSession) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.m[server] = cs
	sc.mu.Unlock()
}

// Client issues DoQ queries from a vantage address.
type Client struct {
	World *netsim.World
	From  netip.Addr
	// Roots is the trust store for verification (the study's simulated
	// Mozilla CA list).
	Roots *x509.CertPool
	// Profile selects Strict or Opportunistic behaviour (RFC 9250 inherits
	// RFC 8310's usage profiles unchanged).
	Profile dot.Profile
	// ServerName, when set, is additionally matched against the
	// certificate; the scanner leaves it empty, like DoT.
	ServerName string
	// CryptoCost models per-query QUIC packet-protection processing,
	// charged to the connection's virtual clock per flight — the same
	// record-layer residual the DoT client charges.
	CryptoCost time.Duration
	// MaxInFlight bounds concurrent streams per connection (<= 0 means 1).
	MaxInFlight int
	// SessionCache, when set, enables 0-RTT resumption across Dials.
	SessionCache *SessionCache
}

// NewClient returns a Client with study defaults.
func NewClient(w *netsim.World, from netip.Addr, roots *x509.CertPool, profile dot.Profile) *Client {
	return &Client{
		World:      w,
		From:       from,
		Roots:      roots,
		Profile:    profile,
		CryptoCost: 2500 * time.Microsecond,
	}
}

// Conn is a reusable DoQ session. Queries may be issued concurrently up to
// the client's MaxInFlight; each runs on its own QUIC stream.
type Conn struct {
	client *Client
	xchg   ExchangeFunc
	server netip.Addr

	scid [dnswire.QUICCIDLen]byte
	dcid [dnswire.QUICCIDLen]byte

	// sem bounds in-flight streams, the QUIC analog of the mux's
	// in-flight window.
	sem chan struct{}
	// nextStream allocates client-initiated bidirectional stream IDs
	// (0, 4, 8, ... — RFC 9000 §2.1).
	nextStream atomic.Uint64
	// elapsed accumulates the session's virtual time across flights.
	// Addition is commutative, so concurrent streams converge to the same
	// total under any goroutine schedule.
	elapsed atomic.Int64
	// established flips once a flight has been acknowledged; until then a
	// resumed connection keeps sending 0-RTT long headers carrying the
	// early-data hello.
	established atomic.Bool

	setup     time.Duration
	resumed   bool
	verifyErr error
	peerCerts []*x509.Certificate

	mu     sync.Mutex
	closed bool
}

// Dial establishes a DoQ session with server.
func (c *Client) Dial(server netip.Addr) (*Conn, error) {
	return c.DialContext(context.Background(), server)
}

// DialContext establishes a DoQ session with server over the direct
// datagram path, bounded by ctx.
func (c *Client) DialContext(ctx context.Context, server netip.Addr) (*Conn, error) {
	return c.DialVia(ctx, server, func(req []byte) ([]byte, time.Duration, error) {
		return c.World.Exchange(c.From, server, Port, req)
	})
}

// DialVia establishes a DoQ session whose flights travel through xchg
// (direct or relayed). With a cached session for server the dial is 0-RTT:
// no flight is sent, setup latency is zero, and the handshake rides the
// first query as early data. Otherwise one Initial/Handshake round trip
// verifies the server and seeds the cache.
func (c *Client) DialVia(ctx context.Context, server netip.Addr, xchg ExchangeFunc) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doq: dial: %w", err)
	}
	conn := &Conn{client: c, xchg: xchg, server: server}
	ids := dnswire.NewIDGen()
	for i := 0; i < dnswire.QUICCIDLen; i += 2 {
		binary.BigEndian.PutUint16(conn.scid[i:], ids.Next())
	}
	inflight := c.MaxInFlight
	if inflight < 1 {
		inflight = 1
	}
	conn.sem = make(chan struct{}, inflight)

	if cs := c.SessionCache.get(server); cs != nil && (c.Profile != dot.Strict || cs.verifyErr == nil) {
		// 0-RTT resumption: the server CID is derivable without a round
		// trip, and verification state carries over from the full
		// handshake that minted the ticket.
		conn.resumed = true
		conn.verifyErr = cs.verifyErr
		conn.peerCerts = cs.certs
		conn.dcid = cidFor(conn.scid[:])
		return conn, nil
	}

	if err := conn.handshake(); err != nil {
		return nil, err
	}
	return conn, nil
}

// handshake runs the 1-RTT Initial/Handshake exchange: one flight carrying
// the client hello out, the certificate chain and resumption ticket back.
func (conn *Conn) handshake() error {
	c := conn.client
	wb := bufpool.Get(512)
	defer bufpool.Put(wb)
	buf, err := dnswire.AppendQUICHeader((*wb)[:0], dnswire.QUICHeader{
		Type: dnswire.QUICInitial, Version: dnswire.QUICVersion,
		DCID: conn.dcid[:], SCID: conn.scid[:],
	})
	if err != nil {
		return fmt.Errorf("doq: dial: %w", err)
	}
	hello := appendClientHello(nil, clientHello{alpn: helloALPN, serverName: c.ServerName})
	buf, err = dnswire.AppendQUICFrame(buf, dnswire.QUICFrame{Type: dnswire.QUICFrameCrypto, Data: hello})
	if err != nil {
		return fmt.Errorf("doq: dial: %w", err)
	}
	*wb = buf

	resp, rtt, err := conn.xchg(buf)
	if err != nil {
		return fmt.Errorf("doq: dial: %w", err)
	}
	h, n, err := dnswire.ParseQUICHeader(resp)
	if err != nil || h.Type != dnswire.QUICHandshake {
		return fmt.Errorf("doq: dial: %w: unexpected response packet", ErrProtocol)
	}
	var sh serverHello
	sawHello := false
	for n < len(resp) {
		f, adv, err := dnswire.ParseQUICFrame(resp[n:])
		if err != nil {
			return fmt.Errorf("doq: dial: %w: %w", ErrProtocol, err)
		}
		n += adv
		switch f.Type {
		case dnswire.QUICFrameCrypto:
			if sh, err = parseServerHello(f.Data); err != nil {
				return fmt.Errorf("doq: dial: %w", err)
			}
			sawHello = true
		case dnswire.QUICFrameConnClose, dnswire.QUICFrameConnCloseApp:
			return fmt.Errorf("doq: dial: %w: connection refused by peer (code %d: %s)",
				ErrClosed, f.ErrorCode, f.Data)
		}
	}
	if !sawHello {
		return fmt.Errorf("doq: dial: %w: handshake carried no server hello", ErrProtocol)
	}
	copy(conn.dcid[:], h.SCID)

	conn.verifyErr = verifyServerChain(c.Roots, c.ServerName, sh.chain)
	conn.peerCerts = parseChain(sh.chain)
	if c.Profile == dot.Strict && conn.verifyErr != nil {
		return fmt.Errorf("%w: %w", ErrAuthFailed, conn.verifyErr)
	}
	conn.setup = rtt + c.CryptoCost
	conn.elapsed.Add(int64(conn.setup))
	conn.established.Store(true)
	c.SessionCache.put(conn.server, &cachedSession{
		ticket: append([]byte(nil), sh.ticket...), verifyErr: conn.verifyErr, certs: conn.peerCerts,
	})
	return nil
}

// verifyServerChain performs path (and optional name) verification at
// certs.RefTime, mirroring the DoT client's profile semantics.
func verifyServerChain(roots *x509.CertPool, serverName string, rawCerts [][]byte) error {
	if len(rawCerts) == 0 {
		return errors.New("doq: no certificate presented")
	}
	chain := parseChain(rawCerts)
	if len(chain) != len(rawCerts) {
		return errors.New("doq: unparseable certificate in chain")
	}
	inter := x509.NewCertPool()
	for _, ic := range chain[1:] {
		inter.AddCert(ic)
	}
	opts := x509.VerifyOptions{Roots: roots, Intermediates: inter, CurrentTime: certs.RefTime}
	if serverName != "" {
		opts.DNSName = serverName
	}
	_, err := chain[0].Verify(opts)
	return err
}

func parseChain(rawCerts [][]byte) []*x509.Certificate {
	chain := make([]*x509.Certificate, 0, len(rawCerts))
	for _, rc := range rawCerts {
		cert, err := x509.ParseCertificate(rc)
		if err != nil {
			return chain
		}
		chain = append(chain, cert)
	}
	return chain
}

// VerifyError reports the chain verification outcome (nil when verified).
func (conn *Conn) VerifyError() error { return conn.verifyErr }

// PeerCertificates returns the presented chain (from the live handshake,
// or the cached one on a resumed connection).
func (conn *Conn) PeerCertificates() []*x509.Certificate { return conn.peerCerts }

// Resumed reports whether the session was dialed 0-RTT from a cached
// ticket.
func (conn *Conn) Resumed() bool { return conn.resumed }

// SetupLatency is the virtual time the handshake consumed: one round trip
// plus CryptoCost for a fresh connection, zero for a resumed one (the
// handshake rides the first query flight as 0-RTT data).
func (conn *Conn) SetupLatency() time.Duration { return conn.setup }

// Elapsed is the total virtual time consumed by the session so far.
func (conn *Conn) Elapsed() time.Duration { return time.Duration(conn.elapsed.Load()) }

// Close tears the session down locally. The close is silent — no
// CONNECTION_CLOSE flight — matching the common client practice of letting
// the server's idle timer collect the connection; a goodbye datagram would
// also consume a fault-schedule draw and perturb every later flow.
func (conn *Conn) Close() error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	conn.closed = true
	return nil
}

func (conn *Conn) die() {
	conn.mu.Lock()
	conn.closed = true
	conn.mu.Unlock()
}

func (conn *Conn) isClosed() bool {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	return conn.closed
}

// acquire takes an in-flight slot, honouring ctx.
func (conn *Conn) acquire(ctx context.Context) error {
	select {
	case conn.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case conn.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// appendFlightHeader starts a query flight's packet: a short header once
// established, else a 0-RTT long header still carrying the early-data
// hello (ticket included) so the server can admit the streams statelessly.
func (conn *Conn) appendFlightHeader(buf []byte) ([]byte, error) {
	if conn.established.Load() {
		return dnswire.AppendQUICHeader(buf, dnswire.QUICHeader{
			Type: dnswire.QUICOneRTT, DCID: conn.dcid[:],
		})
	}
	buf, err := dnswire.AppendQUICHeader(buf, dnswire.QUICHeader{
		Type: dnswire.QUICZeroRTT, Version: dnswire.QUICVersion,
		DCID: conn.dcid[:], SCID: conn.scid[:],
	})
	if err != nil {
		return nil, err
	}
	ticket := ticketFor(conn.server)
	hello := appendClientHello(nil, clientHello{
		alpn: helloALPN, serverName: conn.client.ServerName, ticket: ticket[:],
	})
	return dnswire.AppendQUICFrame(buf, dnswire.QUICFrame{Type: dnswire.QUICFrameCrypto, Data: hello})
}

// appendQuery packs one zero-ID query (RFC 9250 §4.2.1) as a FIN-bearing
// STREAM frame on sid. The query is framed into scratch (passed empty,
// returned grown so the caller can keep the backing for reuse) and copied
// into buf by AppendQUICFrame.
func appendQuery(buf, scratch []byte, sid uint64, name string, qtype dnswire.Type) (pkt, scr []byte, err error) {
	q := dnswire.NewQuery(0, name, qtype)
	framed, err := q.AppendPackTCP(scratch[:0])
	if err != nil {
		return nil, scratch, err
	}
	pkt, err = dnswire.AppendQUICFrame(buf, dnswire.QUICFrame{
		Type: dnswire.QUICFrameStream, StreamID: sid, Fin: true, Data: framed,
	})
	return pkt, framed, err
}

// flight sends one packet and demuxes the response frames by stream ID
// into out (keyed by sids). Any transport error or peer close kills the
// session: errors wrap ErrClosed so the resolver layer retries on a fresh
// connection.
//
//doelint:hotpath
func (conn *Conn) flight(pkt []byte, sids []uint64, out []*dnswire.Message) (time.Duration, error) {
	resp, rtt, err := conn.xchg(pkt)
	if err != nil {
		conn.die()
		return 0, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	h, n, err := dnswire.ParseQUICHeader(resp)
	if err != nil {
		conn.die()
		return 0, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	if h.Type != dnswire.QUICOneRTT || string(h.DCID) != string(conn.scid[:]) {
		conn.die()
		return 0, fmt.Errorf("%w: response for a different connection", ErrClosed)
	}
	answered := 0
	for n < len(resp) {
		f, adv, err := dnswire.ParseQUICFrame(resp[n:])
		if err != nil {
			conn.die()
			return 0, fmt.Errorf("%w: %w", ErrClosed, err)
		}
		n += adv
		switch f.Type {
		case dnswire.QUICFrameStream:
			for i, sid := range sids {
				if f.StreamID != sid || out[i] != nil {
					continue
				}
				if len(f.Data) < 2 || int(binary.BigEndian.Uint16(f.Data)) != len(f.Data)-2 {
					conn.die()
					return 0, fmt.Errorf("%w: bad response framing", ErrClosed)
				}
				m, err := dnswire.Unpack(f.Data[2:])
				if err != nil {
					conn.die()
					return 0, fmt.Errorf("%w: %w", ErrClosed, err)
				}
				if m.ID != 0 {
					conn.die()
					return 0, fmt.Errorf("%w: non-zero response message ID", ErrClosed)
				}
				out[i] = m
				answered++
			}
		case dnswire.QUICFrameConnClose, dnswire.QUICFrameConnCloseApp:
			conn.die()
			return 0, fmt.Errorf("%w: peer closed connection (code %d: %s)", ErrClosed, f.ErrorCode, f.Data)
		}
	}
	if answered != len(sids) {
		conn.die()
		return 0, fmt.Errorf("%w: response missing %d of %d streams", ErrClosed, len(sids)-answered, len(sids))
	}
	conn.established.Store(true)
	return rtt, nil
}

// Query issues one query on a fresh stream. See QueryContext.
func (conn *Conn) Query(name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return conn.QueryContext(context.Background(), name, qtype)
}

// QueryContext issues one query on a fresh stream and waits for its
// response. Safe for concurrent use up to the client's MaxInFlight.
//
//doelint:hotpath
func (conn *Conn) QueryContext(ctx context.Context, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := conn.acquire(ctx); err != nil {
		return nil, err
	}
	defer func() { <-conn.sem }()
	if conn.isClosed() {
		return nil, ErrClosed
	}
	sid := 4 * (conn.nextStream.Add(1) - 1)
	wb := bufpool.Get(512)
	defer bufpool.Put(wb)
	scratch := bufpool.Get(512)
	defer bufpool.Put(scratch)
	pkt, err := conn.appendFlightHeader((*wb)[:0])
	if err != nil {
		return nil, fmt.Errorf("doq: query: %w", err)
	}
	if pkt, *scratch, err = appendQuery(pkt, *scratch, sid, name, qtype); err != nil {
		return nil, fmt.Errorf("doq: query: %w", err)
	}
	*wb = pkt
	var answer [1]*dnswire.Message
	rtt, err := conn.flight(pkt, []uint64{sid}, answer[:])
	if err != nil {
		return nil, err
	}
	cost := rtt + conn.client.CryptoCost
	conn.elapsed.Add(int64(cost))
	return &dnsclient.Result{Msg: answer[0], Latency: cost}, nil
}

// BatchContext issues len(names) queries as concurrent streams packed into
// a single flight — the DoQ analog of dnsclient.Mux.Batch — and appends
// the results to out in names order. The flight's single round trip is
// amortized evenly across the batch, so per-query latencies are
// deterministic regardless of worker scheduling.
func (conn *Conn) BatchContext(ctx context.Context, names []string, qtype dnswire.Type, out []dnsclient.Result) ([]dnsclient.Result, error) {
	if len(names) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if err := conn.acquire(ctx); err != nil {
		return out, err
	}
	defer func() { <-conn.sem }()
	if conn.isClosed() {
		return out, ErrClosed
	}
	base := conn.nextStream.Add(uint64(len(names))) - uint64(len(names))
	sids := make([]uint64, len(names))
	for i := range names {
		sids[i] = 4 * (base + uint64(i))
	}
	wb := bufpool.Get(2048)
	defer bufpool.Put(wb)
	scratch := bufpool.Get(512)
	defer bufpool.Put(scratch)
	pkt, err := conn.appendFlightHeader((*wb)[:0])
	if err != nil {
		return out, fmt.Errorf("doq: batch: %w", err)
	}
	for i, name := range names {
		if pkt, *scratch, err = appendQuery(pkt, *scratch, sids[i], name, qtype); err != nil {
			return out, fmt.Errorf("doq: batch: %w", err)
		}
	}
	*wb = pkt
	answers := make([]*dnswire.Message, len(names))
	rtt, err := conn.flight(pkt, sids, answers)
	if err != nil {
		return out, err
	}
	per := rtt/time.Duration(len(names)) + conn.client.CryptoCost
	conn.elapsed.Add(int64(rtt) + int64(conn.client.CryptoCost)*int64(len(names)))
	for _, m := range answers {
		out = append(out, dnsclient.Result{Msg: m, Latency: per})
	}
	return out, nil
}

// Query dials, queries once, and closes. See QueryContext.
func (c *Client) Query(server netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return c.QueryContext(context.Background(), server, name, qtype)
}

// QueryContext dials, queries once, and closes; the result's latency
// includes connection setup, matching the one-shot DoT helper.
func (c *Client) QueryContext(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	conn, err := c.DialContext(ctx, server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	res.Latency = conn.Elapsed()
	return res, nil
}
