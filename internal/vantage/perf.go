package vantage

import (
	"crypto/x509"
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
)

// PerfSample is one vantage point's relative-performance measurement with
// reused connections (§4.3): per-protocol medians of T_R over N queries.
type PerfSample struct {
	NodeID  string
	Country string
	// Medians of observed per-query latency, milliseconds.
	DNSMedianMS float64
	DoTMedianMS float64
	DoHMedianMS float64
}

// DoTOverheadMS is the per-client DoT extra latency over clear-text DNS.
func (s PerfSample) DoTOverheadMS() float64 { return s.DoTMedianMS - s.DNSMedianMS }

// DoHOverheadMS is the per-client DoH extra latency over clear-text DNS.
func (s PerfSample) DoHOverheadMS() float64 { return s.DoHMedianMS - s.DNSMedianMS }

// MeasurePerformance runs the reused-connection test from one node: N
// DNS/TCP, N DoT and N DoH queries each on a single connection, reporting
// per-protocol medians. The comparison of T_R differences is valid because
// the client→proxy leg adds the same latency to every protocol (§4.1).
func (p *Platform) MeasurePerformance(node proxy.ExitNode, tgt Target, n int) (PerfSample, error) {
	sample := PerfSample{NodeID: node.ID, Country: node.Country}

	dnsLat, err := p.timeDNSQueries(node, tgt.DNS, n)
	if err != nil {
		return sample, err
	}
	sample.DNSMedianMS = analysis.Median(dnsLat)

	dotLat, err := p.timeDoTQueries(node, tgt.DoT, n)
	if err != nil {
		return sample, err
	}
	sample.DoTMedianMS = analysis.Median(dotLat)

	dohLat, err := p.timeDoHQueries(node, tgt.DoH, tgt.DoHAddr, n)
	if err != nil {
		return sample, err
	}
	sample.DoHMedianMS = analysis.Median(dohLat)
	return sample, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (p *Platform) timeDNSQueries(node proxy.ExitNode, target netip.Addr, n int) ([]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, target, 53)
	if err != nil {
		return nil, err
	}
	conn := dnsclient.TCPFromConn(tunnel)
	defer conn.Close()
	var lat []float64
	for i := 0; i < n; i++ {
		res, err := conn.Query(p.UniqueName(node.ID+"-perf-dns"), dnswire.TypeA)
		if err != nil {
			return nil, err
		}
		lat = append(lat, ms(res.Latency))
	}
	return lat, nil
}

func (p *Platform) timeDoTQueries(node proxy.ExitNode, target netip.Addr, n int) ([]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, target, dot.Port)
	if err != nil {
		return nil, err
	}
	client := dot.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialConn(tunnel)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var lat []float64
	for i := 0; i < n; i++ {
		res, err := conn.Query(p.UniqueName(node.ID+"-perf-dot"), dnswire.TypeA)
		if err != nil {
			return nil, err
		}
		lat = append(lat, ms(res.Latency))
	}
	return lat, nil
}

func (p *Platform) timeDoHQueries(node proxy.ExitNode, tmpl doh.Template, addr netip.Addr, n int) ([]float64, error) {
	tunnel, err := p.Network.Dial(p.From, node.ID, addr, doh.Port)
	if err != nil {
		return nil, err
	}
	client := doh.NewClient(nil, p.From, p.Roots)
	conn, err := client.DialConn(tmpl, tunnel)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var lat []float64
	for i := 0; i < n; i++ {
		res, err := conn.Query(p.UniqueName(node.ID+"-perf-doh"), dnswire.TypeA)
		if err != nil {
			return nil, err
		}
		lat = append(lat, ms(res.Latency))
	}
	return lat, nil
}

// CountryPerf aggregates per-client overheads per country (Fig. 9).
type CountryPerf struct {
	Country string
	Clients int
	// Overheads in milliseconds relative to clear-text DNS.
	DoTAvgMS, DoTMedianMS float64
	DoHAvgMS, DoHMedianMS float64
}

// AggregateByCountry computes Fig. 9's per-country series.
func AggregateByCountry(samples []PerfSample) []CountryPerf {
	byCountry := map[string][]PerfSample{}
	for _, s := range samples {
		byCountry[s.Country] = append(byCountry[s.Country], s)
	}
	var out []CountryPerf
	for cc, ss := range byCountry {
		var dotOH, dohOH []float64
		for _, s := range ss {
			dotOH = append(dotOH, s.DoTOverheadMS())
			dohOH = append(dohOH, s.DoHOverheadMS())
		}
		out = append(out, CountryPerf{
			Country:     cc,
			Clients:     len(ss),
			DoTAvgMS:    analysis.Mean(dotOH),
			DoTMedianMS: analysis.Median(dotOH),
			DoHAvgMS:    analysis.Mean(dohOH),
			DoHMedianMS: analysis.Median(dohOH),
		})
	}
	sortCountryPerf(out)
	return out
}

func sortCountryPerf(s []CountryPerf) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Clients > s[j-1].Clients ||
			(s[j].Clients == s[j-1].Clients && s[j].Country < s[j-1].Country)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GlobalOverheads computes the paper's headline averages/medians over all
// per-client overheads ("5ms/9ms for DoT, 8ms/6ms for DoH").
func GlobalOverheads(samples []PerfSample) (dotAvg, dotMed, dohAvg, dohMed float64) {
	var dotOH, dohOH []float64
	for _, s := range samples {
		dotOH = append(dotOH, s.DoTOverheadMS())
		dohOH = append(dohOH, s.DoHOverheadMS())
	}
	return analysis.Mean(dotOH), analysis.Median(dotOH), analysis.Mean(dohOH), analysis.Median(dohOH)
}

// NoReuseSample is one controlled vantage's fresh-connection comparison
// (Table 7): medians over n queries, each on a brand-new connection.
type NoReuseSample struct {
	Vantage     string
	DNSMedianMS float64
	DoTMedianMS float64
	DoHMedianMS float64
}

// DoTOverheadMS is the no-reuse DoT penalty.
func (s NoReuseSample) DoTOverheadMS() float64 { return s.DoTMedianMS - s.DNSMedianMS }

// DoHOverheadMS is the no-reuse DoH penalty.
func (s NoReuseSample) DoHOverheadMS() float64 { return s.DoHMedianMS - s.DNSMedianMS }

// MeasureNoReuse runs Table 7's controlled-vantage test: n queries per
// protocol, every one on a fresh connection (TCP+TLS each time), directly
// from a controlled address (no proxy hop).
func MeasureNoReuse(w *netsim.World, label string, from netip.Addr, tgt Target, probeZone string, roots *x509.CertPool, n int) (NoReuseSample, error) {
	sample := NoReuseSample{Vantage: label}
	uniq := 0
	name := func(tag string) string {
		uniq++
		return fmt.Sprintf("nr%d-%s.%s", uniq, tag, probeZone)
	}

	var dnsLat, dotLat, dohLat []float64
	stub := dnsclient.New(w, from)
	for i := 0; i < n; i++ {
		conn, err := stub.DialTCP(tgt.DNS)
		if err != nil {
			return sample, err
		}
		res, err := conn.Query(name("dns"), dnswire.TypeA)
		if err != nil {
			conn.Close()
			return sample, err
		}
		dnsLat = append(dnsLat, ms(conn.SetupLatency()+res.Latency))
		conn.Close()
	}
	dotClient := dot.NewClient(w, from, roots, dot.Strict)
	for i := 0; i < n; i++ {
		res, err := dotClient.Query(tgt.DoT, name("dot"), dnswire.TypeA)
		if err != nil {
			return sample, err
		}
		dotLat = append(dotLat, ms(res.Latency))
	}
	dohClient := doh.NewClient(w, from, roots)
	dohClient.Override[tgt.DoH.Host] = tgt.DoHAddr
	for i := 0; i < n; i++ {
		res, err := dohClient.Query(tgt.DoH, name("doh"), dnswire.TypeA)
		if err != nil {
			return sample, err
		}
		dohLat = append(dohLat, ms(res.Latency))
	}
	sample.DNSMedianMS = analysis.Median(dnsLat)
	sample.DoTMedianMS = analysis.Median(dotLat)
	sample.DoHMedianMS = analysis.Median(dohLat)
	return sample, nil
}
