package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Per-package fact summaries. A summary is everything the propagation
// machinery needs from a package — facts, annotations, call edges, source
// strings — without its AST or type information. Dependency packages that
// no root pattern asked to lint are reduced to summaries as soon as they
// are walked, and with a fact cache (doelint -factcache) the summary is
// reused across runs as long as the package's files are unchanged, so
// whole-module runs stay inside the doelint runtime budget as the module
// grows.

// summarySchema versions the on-disk format; bump it whenever facts,
// masking rules, or edge encoding change so stale caches miss cleanly.
const summarySchema = 1

// FuncSummary is the serializable form of one graph node.
type FuncSummary struct {
	ID            string        `json:"id"`
	Facts         FactSet       `json:"facts,omitempty"`
	Hotpath       bool          `json:"hotpath,omitempty"`
	ClockBoundary bool          `json:"clockboundary,omitempty"`
	Calls         []string      `json:"calls,omitempty"`
	CallPos       []string      `json:"callpos,omitempty"` // parallel to Calls
	Sources       []FactSourceS `json:"sources,omitempty"`
}

// FactSourceS is one serialized fact source.
type FactSourceS struct {
	Fact Fact   `json:"fact"`
	What string `json:"what"`
	Pos  string `json:"pos"`
}

// PackageSummary carries every function summary of one package.
type PackageSummary struct {
	Schema  int           `json:"schema"`
	Package string        `json:"package"`
	Hash    string        `json:"hash"`
	Funcs   []FuncSummary `json:"funcs"`
}

// summarize extracts the summaries of every node belonging to pkgPath, in
// deterministic (insertion, i.e. source) order.
func (g *Graph) summarize(pkgPath, hash string) *PackageSummary {
	ps := &PackageSummary{Schema: summarySchema, Package: pkgPath, Hash: hash}
	for _, id := range g.order {
		n := g.nodes[id]
		if n.pkg != pkgPath {
			continue
		}
		fs := FuncSummary{
			ID:            n.id,
			Facts:         n.direct,
			Hotpath:       n.hotpath,
			ClockBoundary: n.clockBoundary,
		}
		for _, e := range n.edges {
			fs.Calls = append(fs.Calls, e.callee)
			fs.CallPos = append(fs.CallPos, e.posStr)
		}
		var facts []Fact
		for f := range n.sources {
			facts = append(facts, f)
		}
		sort.Slice(facts, func(i, j int) bool { return facts[i] < facts[j] })
		for _, f := range facts {
			src := n.sources[f]
			fs.Sources = append(fs.Sources, FactSourceS{Fact: f, What: src.what, Pos: src.posStr})
		}
		ps.Funcs = append(ps.Funcs, fs)
	}
	return ps
}

// absorb loads a package summary into the graph under construction, as if
// the package had been walked from source.
func (b *graphBuilder) absorb(ps *PackageSummary) {
	for _, fs := range ps.Funcs {
		n := b.ensure(fs.ID, ps.Package)
		n.direct |= fs.Facts
		n.hotpath = n.hotpath || fs.Hotpath
		n.clockBoundary = n.clockBoundary || fs.ClockBoundary
		for i, callee := range fs.Calls {
			pos := ""
			if i < len(fs.CallPos) {
				pos = fs.CallPos[i]
			}
			dup := false
			for _, e := range n.edges {
				if e.callee == callee {
					dup = true
					break
				}
			}
			if !dup {
				n.edges = append(n.edges, edge{callee: callee, posStr: pos})
			}
		}
		for _, s := range fs.Sources {
			if _, ok := n.sources[s.Fact]; !ok {
				n.sources[s.Fact] = factSource{what: s.What, posStr: s.Pos}
			}
		}
	}
}

// EncodeSummaries writes the summaries for the named packages as one JSON
// document, for tests and external tooling.
func (g *Graph) EncodeSummaries(w io.Writer, pkgs []string, hashes map[string]string) error {
	var out []*PackageSummary
	for _, p := range pkgs {
		out = append(out, g.summarize(p, hashes[p]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeSummaries parses a document written by EncodeSummaries.
func DecodeSummaries(r io.Reader) ([]*PackageSummary, error) {
	var out []*PackageSummary
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("lint: decoding summaries: %w", err)
	}
	return out, nil
}

// hashFiles fingerprints a package's source files (paths and contents)
// together with the summary schema version.
func hashFiles(dir string, names []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "schema:%d\n", summarySchema)
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// factCache reads and writes package summaries under a directory, keyed by
// import path (flattened) and validated by content hash.
type factCache struct{ dir string }

func (c *factCache) path(pkgPath string) string {
	h := sha256.Sum256([]byte(pkgPath))
	return filepath.Join(c.dir, hex.EncodeToString(h[:8])+".json")
}

// load returns the cached summary for pkgPath when its hash matches.
func (c *factCache) load(pkgPath, hash string) *PackageSummary {
	if c == nil || c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.path(pkgPath))
	if err != nil {
		return nil
	}
	var ps PackageSummary
	if json.Unmarshal(data, &ps) != nil {
		return nil
	}
	if ps.Schema != summarySchema || ps.Package != pkgPath || ps.Hash != hash {
		return nil
	}
	return &ps
}

// store writes the summary; cache write failures are silent (the cache is
// an optimization, never a correctness input).
func (c *factCache) store(ps *PackageSummary) {
	if c == nil || c.dir == "" {
		return
	}
	if os.MkdirAll(c.dir, 0o755) != nil {
		return
	}
	data, err := json.Marshal(ps)
	if err != nil {
		return
	}
	tmp := c.path(ps.Package) + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, c.path(ps.Package))
	}
}
