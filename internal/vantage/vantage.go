// Package vantage is the client-side measurement platform of §4: from each
// proxy-network exit node it runs the Fig. 7 reachability workflow
// (clear-text DNS/TCP, DoT and DoH queries against a resolver list, with
// certificate collection and verification), the failure forensics of
// Finding 2.1 (port probes and webpage fetches of conflicted addresses),
// the TLS-interception detection of Finding 2.3, and the relative
// performance tests of §4.3.
package vantage

import (
	"context"
	"crypto/x509"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/resolver"
	"dnsencryption.info/doe/internal/runner"
)

// Proto identifies the tested transport.
type Proto string

// Transports of the reachability test. The encrypted labels reuse the
// resolver package's canonical protocol names (resolver.ParseProto
// round-trips them), so telemetry and report labels agree across layers.
// ProtoDNS stays distinct: the clear-text probe runs DNS over TCP/53,
// which the resolver layer labels "tcp".
var (
	ProtoDNS = Proto("dns")
	ProtoDoT = Proto(resolver.ProtoDoT.String())
	ProtoDoH = Proto(resolver.ProtoDoH.String())
	ProtoDoQ = Proto(resolver.ProtoDoQ.String())
)

// Outcome classifies one lookup per Table 4's footnote: Failed = no DNS
// response packets; Incorrect = SERVFAIL or zero-answer (or spoofed)
// responses; Correct = the authoritative answer.
type Outcome int

// Outcomes.
const (
	Correct Outcome = iota
	Incorrect
	Failed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Correct:
		return "correct"
	case Incorrect:
		return "incorrect"
	default:
		return "failed"
	}
}

// Target is one resolver in the test list (Fig. 7). Invalid addresses mark
// services the resolver does not offer (Google DoT was not announced at the
// time of the experiment).
type Target struct {
	Name    string
	DNS     netip.Addr
	DoT     netip.Addr
	DoH     doh.Template
	DoHAddr netip.Addr
	DoQ     netip.Addr
}

// Result is one lookup's classification.
type Result struct {
	NodeID   string
	Country  string
	ASN      int
	ASName   string
	Resolver string
	Proto    Proto
	Outcome  Outcome
	// Intercepted marks sessions whose certificate was re-signed by an
	// untrusted CA while the lookup still answered (opportunistic DoT
	// through a TLS-inspecting middlebox).
	Intercepted bool
	// IssuerCN is the certificate issuer observed on encrypted probes.
	IssuerCN string
	// Err preserves the failure cause.
	Err string
	// Dropped marks measurements lost to proxy-platform disruption (exit
	// node churn); the paper removes such nodes from its dataset, so
	// dropped results are excluded from every tally.
	Dropped bool
	// Attempts is the number of dial+query attempts this result consumed
	// (1 unless the platform has a retry budget and the first try failed).
	Attempts int
	// Recovered marks results that failed at least once and then
	// succeeded within the retry budget — the fault-injection experiments
	// report these separately from hard failures.
	Recovered bool
	// Setup is the session-establishment latency of the lookup's final
	// attempt (0 when no session was established). The streaming
	// campaign's per-protocol latency sketches are fed from it.
	Setup time.Duration
}

// Platform drives measurements through a proxy network.
type Platform struct {
	Network *proxy.Network
	// From is the measurement client's own address.
	From  netip.Addr
	Roots *x509.CertPool
	// ProbeZone is the measurement domain; queries use unique prefixes
	// "in order to avoid caching".
	ProbeZone string
	// ExpectedA is the authoritative answer for probe names.
	ExpectedA netip.Addr
	// MinUptime discards exit nodes expiring sooner than this.
	MinUptime time.Duration
	// Retry gives every lookup an attempt budget: a Failed outcome (no
	// DNS response) re-runs the whole dial+query sequence up to
	// Retry.Attempts times. Incorrect answers and platform disruptions
	// never retry — the former are measurement results, the latter are
	// terminal node churn. Backoff is not charged here: reachability
	// results carry outcomes, not latencies.
	Retry resolver.RetryPolicy
	// MuxInFlight, when > 1, adds a multiplexed pass to the performance
	// test: DoT sessions pipeline and DoH sessions run HTTP/2 with this
	// many queries in flight, reported as amortized per-query latency.
	MuxInFlight int

	seq atomic.Uint64
}

// UniqueName returns a fresh uniquely-prefixed probe name.
func (p *Platform) UniqueName(tag string) string {
	n := p.seq.Add(1)
	tag = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + 32
		default:
			return '-'
		}
	}, tag)
	return fmt.Sprintf("u%d-%s.%s", n, tag, p.ProbeZone)
}

// UsableNode applies the paper's node-selection rule: check remaining
// uptime via the platform API and discard nodes expiring soon.
func (p *Platform) UsableNode(node proxy.ExitNode) bool {
	left, err := p.Network.RemainingUptime(node.ID)
	return err == nil && left >= p.MinUptime
}

// TestReachability runs the Fig. 7 workflow for one node against targets.
func (p *Platform) TestReachability(node proxy.ExitNode, targets []Target) []Result {
	return p.TestReachabilityContext(context.Background(), node, targets)
}

// TestReachabilityContext runs the Fig. 7 workflow for one node against
// targets, honouring ctx on every lookup.
func (p *Platform) TestReachabilityContext(ctx context.Context, node proxy.ExitNode, targets []Target) []Result {
	var out []Result
	p.VisitReachability(ctx, node, targets, func(r Result) { out = append(out, r) })
	return out
}

// lookup wraps one (target, proto) reachability test in its telemetry:
// a lookup:<resolver>:<proto> span annotated with the classification,
// bound to the node→target flow so injected faults stamp their events on
// it, plus the per-(resolver, proto, outcome) counters the telemetry
// section reports. Lookups on one node run serially, so the spans need no
// explicit keys.
func (p *Platform) lookup(ctx context.Context, node proxy.ExitNode, tgt Target, proto Proto, remote netip.Addr,
	run func(ctx context.Context, node proxy.ExitNode, tgt Target) Result) Result {
	ctx, sp := obs.Start(ctx, fmt.Sprintf("lookup:%s:%s", tgt.Name, proto))
	release := obs.FromContext(ctx).WatchFlow(node.Addr, remote, sp)
	defer release()
	r := p.withRetry(ctx, node, tgt, run)
	sp.SetAttr("outcome", r.Outcome.String())
	sp.SetInt("attempts", int64(r.Attempts))
	if r.Recovered {
		sp.SetAttr("recovered", "true")
	}
	if r.Dropped {
		sp.SetAttr("dropped", "true")
	}
	if r.Intercepted {
		sp.SetAttr("intercepted", "true")
	}
	if r.Err != "" {
		sp.SetAttr("err", r.Err)
	}
	m := obs.Metrics(ctx)
	m.Counter("vantage_lookups_total",
		"resolver", tgt.Name, "proto", string(proto), "outcome", r.Outcome.String()).Add(1)
	if r.Intercepted {
		m.Counter("vantage_intercepted_total", "resolver", tgt.Name).Add(1)
	}
	return r
}

// attempts is the normalized per-lookup attempt budget.
func (p *Platform) attempts() int {
	if p.Retry.Attempts < 1 {
		return 1
	}
	return p.Retry.Attempts
}

// withRetry re-runs a lookup while it yields Failed outcomes and budget
// remains. Dropped results (platform disruption) and Incorrect answers
// return immediately; see Platform.Retry. Attempts after the first run
// under a retry:<n> child span, so chaos traces show the recovery ladder.
func (p *Platform) withRetry(ctx context.Context, node proxy.ExitNode, tgt Target,
	run func(ctx context.Context, node proxy.ExitNode, tgt Target) Result) Result {
	budget := p.attempts()
	var r Result
	for attempt := 1; attempt <= budget; attempt++ {
		actx := ctx
		if attempt > 1 {
			actx, _ = obs.Start(ctx, fmt.Sprintf("retry:%d", attempt))
		}
		r = run(actx, node, tgt)
		r.Attempts = attempt
		if r.Outcome != Failed {
			r.Recovered = attempt > 1
			return r
		}
		if r.Dropped || ctx.Err() != nil {
			return r
		}
	}
	return r
}

func (p *Platform) baseResult(node proxy.ExitNode, resolver string, proto Proto) Result {
	return Result{
		NodeID:   node.ID,
		Country:  node.Country,
		ASN:      node.ASN,
		ASName:   node.ASName,
		Resolver: resolver,
		Proto:    proto,
	}
}

// classify applies the Table 4 rules to a completed transaction.
func (p *Platform) classify(m *dnswire.Message) Outcome {
	if m.Rcode != dnswire.RcodeSuccess || len(m.Answers) == 0 {
		return Incorrect
	}
	if a, ok := m.FirstA(); ok && a == p.ExpectedA {
		return Correct
	}
	return Incorrect
}

// exchange runs one uniquely-named A lookup through the unified client API
// and classifies the answer into r. The query gets an xchg:<proto> span
// charged with the session's virtual elapsed-time delta.
func (p *Platform) exchange(ctx context.Context, sess resolver.Session, tag string, r *Result) {
	q := dnswire.NewQuery(0, p.UniqueName(tag), dnswire.TypeA)
	ctx, sp := obs.Start(ctx, "xchg:"+string(r.Proto))
	start := sess.Elapsed()
	m, err := sess.Exchange(ctx, q)
	obs.Charge(ctx, sess.Elapsed()-start)
	if err != nil {
		sp.Fail(err)
		r.Outcome, r.Err = Failed, err.Error()
		return
	}
	r.Outcome = p.classify(m)
}

// observeSetup records a fresh session's connection-establishment cost: a
// dial child span charged with the setup latency, plus the per-protocol
// setup histogram. It returns the latency so reachability results can
// carry it into the streaming campaign's sketches.
func (p *Platform) observeSetup(ctx context.Context, proto Proto, sess resolver.Session) time.Duration {
	dctx, _ := obs.Start(ctx, "dial")
	obs.Charge(dctx, sess.SetupLatency())
	obs.Metrics(ctx).Histogram("vantage_setup_latency", nil, "proto", string(proto)).Observe(sess.SetupLatency())
	return sess.SetupLatency()
}

func (p *Platform) testDNS(ctx context.Context, node proxy.ExitNode, tgt Target) Result {
	r := p.baseResult(node, tgt.Name, ProtoDNS)
	tunnel, err := p.Network.Dial(p.From, node.ID, tgt.DNS, 53)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		r.Dropped = proxy.IsPlatformDisruption(err)
		return r
	}
	sess := resolver.TCPSession(dnsclient.TCPFromConn(tunnel))
	defer sess.Close()
	r.Setup = p.observeSetup(ctx, ProtoDNS, sess)
	p.exchange(ctx, sess, node.ID+"-"+tgt.Name+"-dns", &r)
	return r
}

func (p *Platform) testDoT(ctx context.Context, node proxy.ExitNode, tgt Target) Result {
	r := p.baseResult(node, tgt.Name, ProtoDoT)
	tunnel, err := p.Network.Dial(p.From, node.ID, tgt.DoT, dot.Port)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		r.Dropped = proxy.IsPlatformDisruption(err)
		return r
	}
	// Opportunistic profile, per §4.1: "to understand the real-world
	// risks of opportunistic requests".
	client := dot.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialConnContext(ctx, tunnel)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		return r
	}
	sess := resolver.DoTSession(conn)
	defer sess.Close()
	r.Setup = p.observeSetup(ctx, ProtoDoT, sess)
	if chain := conn.PeerCertificates(); len(chain) > 0 {
		r.IssuerCN = chain[0].Issuer.CommonName
	}
	p.exchange(ctx, sess, node.ID+"-"+tgt.Name+"-dot", &r)
	// Interception detection: the lookup proceeded, but the certificate
	// does not verify — re-signed in path (Finding 2.3).
	if conn.VerifyError() != nil && r.Outcome == Correct {
		r.Intercepted = true
	}
	return r
}

func (p *Platform) testDoH(ctx context.Context, node proxy.ExitNode, tgt Target) Result {
	r := p.baseResult(node, tgt.Name, ProtoDoH)
	tunnel, err := p.Network.Dial(p.From, node.ID, tgt.DoHAddr, doh.Port)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		r.Dropped = proxy.IsPlatformDisruption(err)
		return r
	}
	client := doh.NewClient(nil, p.From, p.Roots)
	conn, err := client.DialConnContext(ctx, tgt.DoH, tunnel)
	if err != nil {
		// Strict-only: a forged certificate terminates the handshake
		// and the client sees a failure (Finding 2.3's DoH side).
		r.Outcome, r.Err = Failed, err.Error()
		return r
	}
	sess := resolver.DoHSession(conn)
	defer sess.Close()
	r.Setup = p.observeSetup(ctx, ProtoDoH, sess)
	p.exchange(ctx, sess, node.ID+"-"+tgt.Name+"-doh", &r)
	return r
}

// testDoQ runs the DoQ leg of the Fig. 7 workflow. QUIC flights are
// datagrams, so the proxy hop is a UDP-ASSOCIATE-style relay rather than a
// CONNECT tunnel; the DoQ client dials through it via DialVia and never
// knows the difference. Like DoT, the probe runs the Opportunistic profile
// and flags verified-but-resigned chains as interception.
func (p *Platform) testDoQ(ctx context.Context, node proxy.ExitNode, tgt Target) Result {
	r := p.baseResult(node, tgt.Name, ProtoDoQ)
	relay, err := p.Network.DialDatagram(p.From, node.ID, tgt.DoQ, doq.Port)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		r.Dropped = proxy.IsPlatformDisruption(err)
		return r
	}
	client := doq.NewClient(nil, p.From, p.Roots, dot.Opportunistic)
	conn, err := client.DialVia(ctx, tgt.DoQ, relay)
	if err != nil {
		r.Outcome, r.Err = Failed, err.Error()
		return r
	}
	sess := resolver.DoQSession(conn)
	defer sess.Close()
	r.Setup = p.observeSetup(ctx, ProtoDoQ, sess)
	if chain := conn.PeerCertificates(); len(chain) > 0 {
		r.IssuerCN = chain[0].Issuer.CommonName
	}
	p.exchange(ctx, sess, node.ID+"-"+tgt.Name+"-doq", &r)
	if conn.VerifyError() != nil && r.Outcome == Correct {
		r.Intercepted = true
	}
	return r
}

// Campaign runs reachability tests from every usable node, bounded by
// workers, and returns all results grouped by node in Nodes() order — the
// same concatenation a serial campaign produces, for any worker count.
// Node selection happens up front (a node's own tests are the only thing
// that consumes its session budget, so filtering before dispatch sees the
// same remaining uptimes a serial sweep would).
func (p *Platform) Campaign(targets []Target, workers int) []Result {
	out, _ := p.CampaignContext(context.Background(), targets, workers)
	return out
}

// CampaignContext is Campaign with cancellation: once ctx is done, workers
// stop taking new nodes and in-flight lookups fail fast. The partial result
// keeps per-node grouping in Nodes() order; the error is ctx.Err() when the
// campaign was cut short.
func (p *Platform) CampaignContext(ctx context.Context, targets []Target, workers int) ([]Result, error) {
	var usable []proxy.ExitNode
	for _, node := range p.Network.Nodes() {
		if p.UsableNode(node) {
			usable = append(usable, node)
		}
	}
	perNode, err := runner.MapCtx(obs.WithPool(ctx, "campaign"), workers, len(usable),
		func(ctx context.Context, i int) []Result {
			// Key(i) pins sibling order to the node's dispatch index, so the
			// trace is identical no matter which worker ran the node.
			ctx, sp := obs.Start(ctx, "node:"+usable[i].ID, obs.Key(i))
			sp.SetAttr("country", usable[i].Country)
			return p.TestReachabilityContext(ctx, usable[i], targets)
		})
	var out []Result
	for _, res := range perNode {
		out = append(out, res...)
	}
	return out, err
}

// Tally aggregates results into Table 4 cells: per (resolver, proto),
// fraction correct / incorrect / failed.
type Tally struct {
	Correct, Incorrect, Failed int
}

// Total is the number of classified lookups.
func (t Tally) Total() int { return t.Correct + t.Incorrect + t.Failed }

// Rates returns the three fractions (0 when empty).
func (t Tally) Rates() (correct, incorrect, failed float64) {
	n := float64(t.Total())
	if n == 0 {
		return 0, 0, 0
	}
	return float64(t.Correct) / n, float64(t.Incorrect) / n, float64(t.Failed) / n
}

// TallyResults groups results by (resolver, proto).
func TallyResults(results []Result) map[string]map[Proto]Tally {
	out := map[string]map[Proto]Tally{}
	for _, r := range results {
		if r.Dropped {
			continue
		}
		byProto, ok := out[r.Resolver]
		if !ok {
			byProto = map[Proto]Tally{}
			out[r.Resolver] = byProto
		}
		t := byProto[r.Proto]
		switch r.Outcome {
		case Correct:
			t.Correct++
		case Incorrect:
			t.Incorrect++
		default:
			t.Failed++
		}
		byProto[r.Proto] = t
	}
	return out
}

// RetryTally aggregates attempt-level outcomes of a campaign into the
// resolver's RetryStats shape: retry-recovered lookups vs. hard failures
// that exhausted the budget. Dropped results are excluded, matching every
// other tally.
func RetryTally(results []Result) resolver.RetryStats {
	var s resolver.RetryStats
	for _, r := range results {
		if r.Dropped {
			continue
		}
		a := r.Attempts
		if a < 1 {
			a = 1
		}
		s.Attempts += a
		s.Retries += a - 1
		if r.Recovered {
			s.Recovered++
		}
		if r.Outcome == Failed {
			s.HardFailures++
		}
	}
	return s
}

// InterceptedResults filters the sessions flagged as TLS-intercepted.
func InterceptedResults(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Intercepted {
			out = append(out, r)
		}
	}
	return out
}

// FailedNodes returns the IDs of nodes whose lookup of (resolver, proto)
// failed — the population fed into the Table 5 port probes.
func FailedNodes(results []Result, resolver string, proto Proto) []string {
	var out []string
	for _, r := range results {
		if r.Resolver == resolver && r.Proto == proto && r.Outcome == Failed && !r.Dropped {
			out = append(out, r.NodeID)
		}
	}
	return out
}
