package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// ── Sketch ────────────────────────────────────────────────────────────────

func TestSketchBoundsAreLogSpacedAndDeterministic(t *testing.T) {
	a := NewSketch(SketchOpts{})
	b := NewSketch(DefaultSketchOpts())
	if len(a.bounds) != len(b.bounds) {
		t.Fatalf("zero opts and defaults disagree: %d vs %d buckets", len(a.bounds), len(b.bounds))
	}
	for i := range a.bounds {
		if a.bounds[i] != b.bounds[i] {
			t.Fatalf("bound %d differs: %v vs %v", i, a.bounds[i], b.bounds[i])
		}
	}
	if a.bounds[0] != 100*time.Microsecond {
		t.Errorf("first bound = %v, want 100µs", a.bounds[0])
	}
	if last := a.bounds[len(a.bounds)-1]; last < 10*time.Second {
		t.Errorf("last bound = %v, want >= 10s", last)
	}
	for i := 1; i < len(a.bounds); i++ {
		if a.bounds[i] <= a.bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v then %v", i, a.bounds[i-1], a.bounds[i])
		}
	}
	// Eight buckets per decade: every 8 steps the edge is 10x (within
	// microsecond rounding).
	ratio := float64(a.bounds[8]) / float64(a.bounds[0])
	if ratio < 9.9 || ratio > 10.1 {
		t.Errorf("bounds[8]/bounds[0] = %.3f, want ~10", ratio)
	}
}

func TestSketchQuantilesHandComputed(t *testing.T) {
	// A tiny layout that is easy to reason about: edges 1ms, 10ms, 100ms.
	sk := NewSketch(SketchOpts{Min: time.Millisecond, Max: 100 * time.Millisecond, PerDecade: 1})
	if len(sk.bounds) != 3 {
		t.Fatalf("bounds = %v, want 3 edges", sk.bounds)
	}
	// 8 obs in (0, 1ms], 2 in (1ms, 10ms].
	for i := 0; i < 8; i++ {
		sk.Observe(500 * time.Microsecond)
	}
	sk.Observe(5 * time.Millisecond)
	sk.Observe(6 * time.Millisecond)
	if got := sk.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	// p50: rank 5 of 10 inside the first bucket (8 obs, edges 0..1ms):
	// 5/8 of the way -> 625µs.
	if got := sk.Quantile(0.50); got != 625*time.Microsecond {
		t.Errorf("p50 = %v, want 625µs", got)
	}
	// p90: rank 9 crosses into the second bucket (cum 8, 2 obs, edges
	// 1ms..10ms): (9-8)/2 of the span -> 1ms + 4.5ms.
	if got := sk.Quantile(0.90); got != 5500*time.Microsecond {
		t.Errorf("p90 = %v, want 5.5ms", got)
	}
	// Overflow clamps to the top edge.
	sk.Observe(3 * time.Second)
	if got := sk.Quantile(1.0); got != 100*time.Millisecond {
		t.Errorf("p100 with overflow = %v, want top edge 100ms", got)
	}
}

func TestSketchQuantileEdges(t *testing.T) {
	var nilSketch *Sketch
	if got := nilSketch.Quantile(0.5); got != 0 {
		t.Errorf("nil sketch quantile = %v, want 0", got)
	}
	empty := NewSketch(SketchOpts{})
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty sketch Quantile(%v) = %v, want 0", q, got)
		}
	}
	sk := NewSketch(SketchOpts{Min: time.Millisecond, Max: 100 * time.Millisecond, PerDecade: 1})
	sk.Observe(500 * time.Microsecond)
	// Out-of-range q clamps instead of extrapolating.
	if got, want := sk.Quantile(-3), sk.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v, Quantile(0) = %v; want equal", got, want)
	}
	if got, want := sk.Quantile(7), sk.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, Quantile(1) = %v; want equal", got, want)
	}
}

func TestSketchMergeMismatchAndNil(t *testing.T) {
	a := NewSketch(SketchOpts{Min: time.Millisecond, Max: time.Second, PerDecade: 4})
	b := NewSketch(SketchOpts{Min: time.Millisecond, Max: time.Second, PerDecade: 8})
	if err := a.Merge(b); err == nil {
		t.Error("merging sketches with different opts succeeded, want error")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
	var nilSketch *Sketch
	if err := nilSketch.Merge(a); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	nilSketch.Observe(time.Millisecond) // no-op, must not panic
}

// ── Histogram edges (satellite: pin the untested behavior) ────────────────

func TestHistogramQuantileEdges(t *testing.T) {
	var nilHist *Histogram
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	reg := NewRegistry()
	empty := reg.Histogram("lat", nil)
	for _, q := range []float64{-0.5, 0, 0.5, 1, 1.5} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	h := reg.Histogram("lat2", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	h.Observe(5 * time.Millisecond)
	h.Observe(15 * time.Millisecond)
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Errorf("Quantile(-1) = %v, Quantile(0) = %v; want equal (clamped)", got, want)
	}
	if got, want := h.Quantile(99), h.Quantile(1); got != want {
		t.Errorf("Quantile(99) = %v, Quantile(1) = %v; want equal (clamped)", got, want)
	}
	// Interpolation resolves to the upper edge of the bucket holding the
	// max observation, not the observation itself.
	if got := h.Quantile(1); got != 20*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want the 20ms bucket edge", got)
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("a", []time.Duration{time.Millisecond})
	b := reg.Histogram("b", []time.Duration{time.Millisecond, time.Second})
	if err := a.Merge(b); err == nil {
		t.Error("merging histograms with different bounds succeeded, want error")
	}
	c := reg.Histogram("c", []time.Duration{time.Millisecond})
	a.Observe(500 * time.Microsecond)
	c.Observe(700 * time.Microsecond)
	if err := a.Merge(c); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != 2 || a.SumUS() != 1200 {
		t.Errorf("after merge count=%d sum=%d, want 2/1200", a.Count(), a.SumUS())
	}
}

// ── Registry.Merge ────────────────────────────────────────────────────────

// shardFixture builds n shard registries with overlapping and disjoint
// families of every kind, deterministically from the shard index.
func shardFixture(n int) []*Registry {
	shards := make([]*Registry, n)
	for i := range shards {
		r := NewRegistry()
		r.Counter("tasks_total", "pool", "campaign").Add(int64(10 + i))
		r.Counter("dials_total", "outcome", fmt.Sprintf("kind-%d", i%3)).Add(int64(i + 1))
		r.Gauge("depth_max").Max(int64(i * 7 % 13))
		r.VolatileCounter("worker_share", "worker", fmt.Sprint(i)).Add(int64(i))
		h := r.Histogram("lat", nil, "proto", "dot")
		sk := r.Sketch("lat_sketch", SketchOpts{}, "proto", "doh")
		for j := 0; j <= i; j++ {
			d := time.Duration(1+(i*31+j*17)%5000) * time.Millisecond / 10
			h.Observe(d)
			sk.Observe(d)
		}
		shards[i] = r
	}
	return shards
}

// TestMergeOrderIndependence is the satellite property test: folding the
// same shards in shuffled orders and different tree shapes must produce
// byte-identical snapshots, volatile families included.
func TestMergeOrderIndependence(t *testing.T) {
	const n = 9
	baseline := NewRegistry()
	for _, s := range shardFixture(n) {
		if err := baseline.Merge(s); err != nil {
			t.Fatalf("baseline merge: %v", err)
		}
	}
	wantDet := baseline.Snapshot(false)
	wantAll := baseline.Snapshot(true)
	if wantDet == "" || wantAll == wantDet {
		t.Fatalf("fixture too trivial:\ndet=%q\nall=%q", wantDet, wantAll)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shards := shardFixture(n)
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
		root := NewRegistry()
		if trial%2 == 0 {
			// Flat fold, shuffled order.
			for _, s := range shards {
				if err := root.Merge(s); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		} else {
			// Random binary tree: repeatedly merge one registry into
			// another until a single root remains.
			for len(shards) > 1 {
				i := rng.Intn(len(shards) - 1)
				if err := shards[i].Merge(shards[i+1]); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				shards = append(shards[:i+1], shards[i+2:]...)
			}
			if err := root.Merge(shards[0]); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if got := root.Snapshot(false); got != wantDet {
			t.Fatalf("trial %d: deterministic snapshot diverged\ngot:\n%s\nwant:\n%s", trial, got, wantDet)
		}
		if got := root.Snapshot(true); got != wantAll {
			t.Fatalf("trial %d: full snapshot diverged\ngot:\n%s\nwant:\n%s", trial, got, wantAll)
		}
	}
}

func TestMergeMismatchErrors(t *testing.T) {
	kind := NewRegistry()
	kind.Counter("m")
	kindDst := NewRegistry()
	kindDst.Gauge("m")
	if err := kindDst.Merge(kind); err == nil || !strings.Contains(err.Error(), "kind mismatch") {
		t.Errorf("kind mismatch merge: %v, want kind mismatch error", err)
	}

	vol := NewRegistry()
	vol.VolatileCounter("m")
	volDst := NewRegistry()
	volDst.Counter("m")
	if err := volDst.Merge(vol); err == nil || !strings.Contains(err.Error(), "volatility mismatch") {
		t.Errorf("volatility mismatch merge: %v, want volatility mismatch error", err)
	}

	hb := NewRegistry()
	hb.Histogram("m", []time.Duration{time.Millisecond})
	hbDst := NewRegistry()
	hbDst.Histogram("m", []time.Duration{time.Second})
	if err := hbDst.Merge(hb); err == nil || !strings.Contains(err.Error(), "bounds mismatch") {
		t.Errorf("bounds mismatch merge: %v, want bounds mismatch error", err)
	}

	so := NewRegistry()
	so.Sketch("m", SketchOpts{Min: time.Millisecond, Max: time.Second, PerDecade: 2})
	soDst := NewRegistry()
	soDst.Sketch("m", SketchOpts{Min: time.Millisecond, Max: time.Second, PerDecade: 4})
	if err := soDst.Merge(so); err == nil || !strings.Contains(err.Error(), "sketch opts mismatch") {
		t.Errorf("sketch opts mismatch merge: %v, want opts mismatch error", err)
	}

	// A mismatch on one family must not block the others.
	mixed := NewRegistry()
	mixed.Counter("bad")
	mixed.Counter("good").Add(3)
	dst := NewRegistry()
	dst.Gauge("bad")
	if err := dst.Merge(mixed); err == nil {
		t.Fatal("expected error from bad family")
	}
	if got := dst.Counter("good").Value(); got != 3 {
		t.Errorf("good family not merged past the bad one: %d, want 3", got)
	}

	// Nil and self merges are no-ops.
	if err := dst.Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
	var nilReg *Registry
	if err := nilReg.Merge(dst); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	if err := dst.Merge(dst); err != nil {
		t.Errorf("self merge: %v", err)
	}
}

// TestMergeDuringConcurrentRecording is the satellite -race test: shards
// still being recorded into and a destination registry being read must
// survive a concurrent merge of other, quiescent shards.
func TestMergeDuringConcurrentRecording(t *testing.T) {
	dst := NewRegistry()
	quiescent := shardFixture(4)
	live := NewRegistry()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // recorder on the live shard
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			live.Counter("tasks_total", "pool", "campaign").Add(1)
			live.Sketch("lat_sketch", SketchOpts{}, "proto", "doh").Observe(time.Millisecond)
		}
	}()
	go func() { // recorder on the destination itself
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			dst.Counter("direct_total").Add(1)
			dst.Histogram("lat", nil, "proto", "dot").Observe(time.Millisecond)
		}
	}()
	go func() { // reader of the destination
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = dst.Snapshot(true)
			_ = dst.PrometheusText()
		}
	}()

	for _, s := range quiescent {
		if err := dst.Merge(s); err != nil {
			t.Errorf("merge: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	// The live shard is quiescent now; its fold must still be exact.
	before := dst.Counter("tasks_total", "pool", "campaign").Value()
	liveCount := live.Counter("tasks_total", "pool", "campaign").Value()
	if err := dst.Merge(live); err != nil {
		t.Fatalf("merging live shard after quiesce: %v", err)
	}
	if got := dst.Counter("tasks_total", "pool", "campaign").Value(); got != before+liveCount {
		t.Errorf("post-quiesce merge lost updates: %d, want %d", got, before+liveCount)
	}
}

// ── label escaping ────────────────────────────────────────────────────────

func TestLabelValueEscapingRoundTrips(t *testing.T) {
	hostile := `cn=EvilCA, O="quo\te",eq==` + "\nnext"
	reg := NewRegistry()
	reg.Counter("certs_total", "subject", hostile, "plain", "ok").Add(1)

	kv := parseLabelString(labelString([]string{"subject", hostile, "plain", "ok"}))
	if len(kv) != 4 || kv[0] != "subject" || kv[1] != hostile || kv[2] != "plain" || kv[3] != "ok" {
		t.Fatalf("label round trip lost data: %q", kv)
	}

	text := reg.PrometheusText()
	want := `doe_certs_total{subject="cn=EvilCA, O=\"quo\\te\",eq==\nnext",plain="ok"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("exposition line corrupt:\ngot:  %s\nwant: %s", text, want)
	}
	// Exactly one value line for the family (no spurious splits on the
	// embedded comma).
	if got := strings.Count(text, "doe_certs_total{"); got != 1 {
		t.Errorf("%d exposition lines for one instance", got)
	}
}

func TestLabelKeyRejectedAtRegistration(t *testing.T) {
	for _, key := range []string{"bad,key", "bad=key", `bad\key`, `bad"key`, "bad\nkey"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("label key %q accepted, want panic", key)
				}
			}()
			NewRegistry().Counter("m", key, "v")
		}()
	}
}

// ── progress + endpoints ──────────────────────────────────────────────────

func TestPhaseProgressAndNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.Phase("x").AddTotal(5)
	nilRec.Phase("x").Done(1)
	if got := nilRec.Progress(); got != nil {
		t.Errorf("nil recorder progress = %v, want nil", got)
	}

	rec := NewRecorder("study")
	rec.Phase("experiments").AddTotal(12)
	rec.Phase("campaign").AddTotal(80)
	rec.Phase("campaign").Done(25)
	rec.Phase("experiments").Done(3)
	got := rec.Progress()
	want := []PhaseStatus{{Name: "experiments", Done: 3, Total: 12}, {Name: "campaign", Done: 25, Total: 80}}
	if len(got) != len(want) {
		t.Fatalf("progress = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("phase %d = %+v, want %+v (registration order must hold)", i, got[i], want[i])
		}
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	rec := NewRecorder("study")
	rec.Metrics().Counter("alpha_total").Add(2)
	rec.Phase("experiments").AddTotal(12)
	rec.Phase("experiments").Done(4)
	sampled := 0
	srv := httptest.NewServer(DebugHandler(rec, func(reg *Registry) {
		sampled++
		SampleMemStats(reg)
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != `{"status":"ok"}` {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var prog struct {
		Phases []PhaseStatus `json:"phases"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if len(prog.Phases) != 1 || prog.Phases[0] != (PhaseStatus{Name: "experiments", Done: 4, Total: 12}) {
		t.Errorf("/progress = %+v", prog.Phases)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if sampled != 1 {
		t.Errorf("sampler ran %d times for one scrape", sampled)
	}
	for _, want := range []string{"doe_alpha_total 2", "doe_mem_heap_alloc_bytes", "doe_mem_high_water_bytes"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
