// Package dnscrypt implements the DNSCrypt v2 protocol (§2.2's fifth
// DNS-over-Encryption proposal): resolver certificates signed with Ed25519
// and distributed through TXT records, and queries protected with the
// X25519-XSalsa20Poly1305 construction. The Go standard library provides
// X25519 (crypto/ecdh) and Ed25519 (crypto/ed25519); the Salsa20 family and
// Poly1305 are implemented here from the NaCl specifications.
//
// The paper grades DNSCrypt "not standardized, non-TLS cryptography,
// extra client software required" in Table 1 — this package exists so the
// comparison row is backed by a working implementation, like the others.
package dnscrypt

import "encoding/binary"

// quarterRound is the Salsa20 quarter-round from the specification.
func quarterRound(y0, y1, y2, y3 uint32) (uint32, uint32, uint32, uint32) {
	rotl := func(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
	z1 := y1 ^ rotl(y0+y3, 7)
	z2 := y2 ^ rotl(z1+y0, 9)
	z3 := y3 ^ rotl(z2+z1, 13)
	z0 := y0 ^ rotl(z3+z2, 18)
	return z0, z1, z2, z3
}

// doubleRound applies one column round followed by one row round in place.
func doubleRound(x *[16]uint32) {
	// Column round.
	x[4], x[8], x[12], x[0] = qr4(x[0], x[4], x[8], x[12])
	x[9], x[13], x[1], x[5] = qr4(x[5], x[9], x[13], x[1])
	x[14], x[2], x[6], x[10] = qr4(x[10], x[14], x[2], x[6])
	x[3], x[7], x[11], x[15] = qr4(x[15], x[3], x[7], x[11])
	// Row round.
	x[1], x[2], x[3], x[0] = qr4(x[0], x[1], x[2], x[3])
	x[6], x[7], x[4], x[5] = qr4(x[5], x[6], x[7], x[4])
	x[11], x[8], x[9], x[10] = qr4(x[10], x[11], x[8], x[9])
	x[12], x[13], x[14], x[15] = qr4(x[15], x[12], x[13], x[14])
}

// qr4 reorders quarterRound's results for the in-place round layout:
// given (a, b, c, d) it returns (b', c', d', a').
func qr4(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	z0, z1, z2, z3 := quarterRound(a, b, c, d)
	return z1, z2, z3, z0
}

// sigma is the "expand 32-byte k" constant.
var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574}

// salsa20Block computes one 64-byte keystream block for key, 8-byte nonce
// and block counter.
func salsa20Block(key *[32]byte, nonce *[8]byte, counter uint64, out *[64]byte) {
	var in [16]uint32
	in[0] = sigma[0]
	in[5] = sigma[1]
	in[10] = sigma[2]
	in[15] = sigma[3]
	for i := 0; i < 4; i++ {
		in[1+i] = binary.LittleEndian.Uint32(key[4*i:])
		in[11+i] = binary.LittleEndian.Uint32(key[16+4*i:])
	}
	in[6] = binary.LittleEndian.Uint32(nonce[0:])
	in[7] = binary.LittleEndian.Uint32(nonce[4:])
	in[8] = uint32(counter)
	in[9] = uint32(counter >> 32)

	x := in
	for i := 0; i < 10; i++ {
		doubleRound(&x)
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], x[i]+in[i])
	}
}

// hSalsa20 derives a subkey from key and a 16-byte nonce (the core without
// the final feed-forward, reading the diagonal and nonce words).
func hSalsa20(key *[32]byte, nonce *[16]byte) [32]byte {
	var in [16]uint32
	in[0] = sigma[0]
	in[5] = sigma[1]
	in[10] = sigma[2]
	in[15] = sigma[3]
	for i := 0; i < 4; i++ {
		in[1+i] = binary.LittleEndian.Uint32(key[4*i:])
		in[11+i] = binary.LittleEndian.Uint32(key[16+4*i:])
		in[6+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	x := in
	for i := 0; i < 10; i++ {
		doubleRound(&x)
	}
	var out [32]byte
	for i, idx := range [8]int{0, 5, 10, 15, 6, 7, 8, 9} {
		binary.LittleEndian.PutUint32(out[4*i:], x[idx])
	}
	return out
}

// xsalsa20XOR XORs data with the XSalsa20 keystream for key and a 24-byte
// nonce, starting at keystream offset skip (used to reserve the Poly1305
// key in block zero). skip must be a multiple of 64 or less than 64.
func xsalsa20XOR(key *[32]byte, nonce *[24]byte, skip int, data []byte) {
	var hNonce [16]byte
	copy(hNonce[:], nonce[:16])
	subkey := hSalsa20(key, &hNonce)
	var sNonce [8]byte
	copy(sNonce[:], nonce[16:])

	var block [64]byte
	counter := uint64(skip / 64)
	offset := skip % 64
	for len(data) > 0 {
		salsa20Block(&subkey, &sNonce, counter, &block)
		avail := 64 - offset
		if avail > len(data) {
			avail = len(data)
		}
		for i := 0; i < avail; i++ {
			data[i] ^= block[offset+i]
		}
		data = data[avail:]
		counter++
		offset = 0
	}
}

// firstBlock returns keystream block zero (its first 32 bytes key
// Poly1305 in the secretbox construction).
func firstBlock(key *[32]byte, nonce *[24]byte) [64]byte {
	var hNonce [16]byte
	copy(hNonce[:], nonce[:16])
	subkey := hSalsa20(key, &hNonce)
	var sNonce [8]byte
	copy(sNonce[:], nonce[16:])
	var block [64]byte
	salsa20Block(&subkey, &sNonce, 0, &block)
	return block
}
