package netsim

import (
	"fmt"
	"io"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/geo"
)

// TestConcurrentDialAndAccept hammers one listener from many client
// goroutines. Run under -race this exercises the listener delivery path,
// the per-connection pipes, and the policy snapshotting in decide().
func TestConcurrentDialAndAccept(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterStream(serverIP, 7, echoHandler)

	const dialers = 32
	var wg sync.WaitGroup
	errs := make(chan error, dialers)
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			from := netip.MustParseAddr(fmt.Sprintf("10.1.%d.%d", d/200, 2+d%200))
			conn, err := w.Dial(from, serverIP, 7)
			if err != nil {
				errs <- fmt.Errorf("dial %d: %w", d, err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			msg := fmt.Sprintf("m%03d", d)
			if _, err := conn.Write([]byte(msg)); err != nil {
				errs <- fmt.Errorf("write %d: %w", d, err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, buf); err != nil {
				errs <- fmt.Errorf("read %d: %w", d, err)
				return
			}
			if string(buf) != msg {
				errs <- fmt.Errorf("echo %d = %q", d, buf)
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentExchange exercises the datagram path from many goroutines.
func TestConcurrentExchange(t *testing.T) {
	w := newTestWorld(t)
	w.RegisterDatagram(serverIP, 53, func(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
		return append([]byte("re:"), req...), time.Millisecond, nil
	})
	var wg sync.WaitGroup
	for d := 0; d < 32; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			resp, _, err := w.Exchange(clientIP, serverIP, 53, []byte{byte(d)})
			if err != nil || len(resp) != 4 {
				t.Errorf("exchange %d: resp=%q err=%v", d, resp, err)
			}
		}(d)
	}
	wg.Wait()
}

// TestJitterIsAPathProperty is the determinism guarantee the parallel
// runner depends on: the virtual latency a connection observes must be a
// function of the flow tuple and the world seed alone, never of the order
// in which concurrent dialers happen to be scheduled.
func TestJitterIsAPathProperty(t *testing.T) {
	measure := func(parallel bool) []time.Duration {
		w := NewWorld(7)
		w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
		w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
		w.RegisterStream(serverIP, 7, echoHandler)

		const flows = 16
		out := make([]time.Duration, flows)
		run := func(i int) {
			from := netip.MustParseAddr(fmt.Sprintf("10.1.0.%d", 10+i))
			conn, err := w.Dial(from, serverIP, 7)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			conn.Write([]byte("x"))            //nolint:errcheck
			io.ReadFull(conn, make([]byte, 1)) //nolint:errcheck
			out[i] = conn.Elapsed()
		}
		if parallel {
			var wg sync.WaitGroup
			// Reverse order plus concurrency: any schedule dependence in
			// jitter seeding would reshuffle the observed latencies.
			for i := flows - 1; i >= 0; i-- {
				wg.Add(1)
				go func(i int) { defer wg.Done(); run(i) }(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < flows; i++ {
				run(i)
			}
		}
		return out
	}

	serial := measure(false)
	concurrent := measure(true)
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Errorf("flow %d: serial elapsed %v != concurrent elapsed %v", i, serial[i], concurrent[i])
		}
	}
	// Jitter must still vary across flows (different tuples → different
	// streams), otherwise the model collapsed to a constant.
	distinct := map[time.Duration]bool{}
	for _, d := range serial {
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d flows observed identical latency %v; jitter lost", len(serial), serial[0])
	}
}
