package lint

import "encoding/json"

// SARIF renders findings as a minimal SARIF 2.1.0 log: one run, one rule
// per registered analyzer (plus the directive pseudo-check), one result
// per finding. The subset emitted is what code-scanning UIs consume to
// annotate pull requests — rule metadata, message, and a physical
// location — nothing more.
func SARIF(findings []Finding) ([]byte, error) {
	rules := make([]sarifRule, 0, len(registry)+1)
	for _, a := range registry {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               DirectiveCheck,
		ShortDescription: sarifText{Text: "malformed //doelint: directive"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "doelint",
				InformationURI: "https://dnsencryption.info/doe",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}
