package doe_test

import (
	"context"
	"crypto/tls"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/resolver"
	"dnsencryption.info/doe/internal/scandetect"
	"dnsencryption.info/doe/internal/scanner"
	"dnsencryption.info/doe/internal/vantage"
	"dnsencryption.info/doe/internal/workload"
)

// The benchmark study is built once (world construction dominates);
// individual benchmarks re-run pipeline stages, not the cached experiment
// wrappers.
var (
	benchOnce  sync.Once
	benchStudy *core.Study
)

func study(b testing.TB) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := core.NewStudy(core.TestConfig())
		if err != nil {
			b.Fatalf("NewStudy: %v", err)
		}
		benchStudy = s
	})
	return benchStudy
}

// cleanNode returns a dedicated benchmark vantage point: no in-path
// middleboxes and a session budget large enough for any iteration count
// (study nodes deliberately churn, which would starve long bench runs).
func cleanNode(b testing.TB, s *core.Study) proxy.ExitNode {
	b.Helper()
	const id = "bench-node"
	for _, n := range s.Global.Nodes() {
		if n.ID == id {
			return n
		}
	}
	addr := netip.MustParseAddr("10.200.0.5")
	s.World.Geo.Register(netip.MustParsePrefix("10.200.0.0/24"),
		geo.Location{Country: "US", ASN: 64999, ASName: "Bench ISP"})
	node := proxy.ExitNode{
		ID: id, Addr: addr, Country: "US", ASN: 64999, ASName: "Bench ISP",
		Lifetime: 10000 * time.Hour,
	}
	s.Global.AddNode(node)
	return node
}

// --- One benchmark per table and figure -------------------------------

func BenchmarkTable1ProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table1().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Fig1().Render() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable2DoTCountries measures one full Internet-wide scan round
// (sweep + DoT verification + grouping), the unit of Tables 2 and Fig 3.
func BenchmarkTable2DoTCountries(b *testing.B) {
	s := study(b)
	s.SetScanRound(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scanner.Scan("bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CountryCounts()) == 0 {
			b.Fatal("no countries")
		}
	}
}

// benchmarkParallelScan ablates the parallel engine's worker count on the
// Table 2 scan workload. The merged report is bit-for-bit identical at any
// width (TestReportByteIdenticalAcrossWorkerCounts pins that), so the only
// thing the knob moves is wall time.
func benchmarkParallelScan(b *testing.B, workers int) {
	s := study(b)
	s.SetScanRound(0)
	prev := s.Scanner.Workers
	s.Scanner.Workers = workers
	b.Cleanup(func() { s.Scanner.Workers = prev })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scanner.Scan("bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CountryCounts()) == 0 {
			b.Fatal("no countries")
		}
	}
}

func BenchmarkParallelScanN1(b *testing.B)  { benchmarkParallelScan(b, 1) }
func BenchmarkParallelScanN4(b *testing.B)  { benchmarkParallelScan(b, 4) }
func BenchmarkParallelScanN16(b *testing.B) { benchmarkParallelScan(b, 16) }

func BenchmarkFig3ResolversPerScan(b *testing.B) {
	s := study(b)
	s.SetScanRound(s.ScanRounds - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scanner.Scan("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Resolvers)), "resolvers")
	}
}

func BenchmarkFig4Providers(b *testing.B) {
	s := study(b)
	s.SetScanRound(s.ScanRounds - 1)
	res, err := s.Scanner.Scan("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := res.ProviderCounts()
		invalid := res.InvalidCertProviders()
		if len(counts) == 0 || len(invalid) == 0 {
			b.Fatal("grouping failed")
		}
	}
}

func BenchmarkTable3Vantage(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if len(s.Global.Nodes()) == 0 || len(s.Censored.Nodes()) == 0 {
			b.Fatal("no nodes")
		}
	}
}

// BenchmarkTable4Reachability measures one vantage point's full Fig. 7
// workflow across all four resolvers (the unit of Table 4).
func BenchmarkTable4Reachability(b *testing.B) {
	s := study(b)
	node := cleanNode(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.GlobalPlatform.TestReachability(node, s.Targets)
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkTable5PortProbe(b *testing.B) {
	s := study(b)
	node := cleanNode(b, s)
	cf := netip.MustParseAddr("1.1.1.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GlobalPlatform.ProbePorts(node, cf, vantage.Table5Ports)
	}
}

func BenchmarkTable6Interception(b *testing.B) {
	s := study(b)
	data := s.Reachability()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.Global.Intercepted()
	}
}

// BenchmarkTable7NoReuse measures the fresh-connection comparison from one
// controlled vantage with a reduced query count.
func BenchmarkTable7NoReuse(b *testing.B) {
	s := study(b)
	v := core.ControlledVantages[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sample, err := vantage.MeasureNoReuse(s.World, v.Label, v.Addr, s.Targets[0], core.ProbeZone, s.Roots, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sample.DoTOverheadMS(), "dot-overhead-ms")
	}
}

// BenchmarkFig9CountryPerf measures one vantage point's reused-connection
// performance test (the unit of Figs. 9 and 10).
func BenchmarkFig9CountryPerf(b *testing.B) {
	s := study(b)
	node := cleanNode(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sample, err := s.GlobalPlatform.MeasurePerformance(node, s.Targets[0], 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sample.DoTOverheadMS(), "dot-overhead-ms")
	}
}

func BenchmarkFig10Scatter(b *testing.B) {
	s := study(b)
	samples := s.PerfSamples()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vantage.AggregateByCountry(samples)
	}
}

// BenchmarkFig11MonthlyFlows measures the full §5 NetFlow pipeline:
// workload synthesis, sampling router, scan screening, DoT selection and
// monthly aggregation (also the unit of Fig. 12).
func BenchmarkFig11MonthlyFlows(b *testing.B) {
	cf := netip.MustParseAddr("1.1.1.1")
	for i := 0; i < b.N; i++ {
		router := netflow.NewRouter(3, 15*time.Second)
		gen := workload.NewDoTGenerator(int64(i))
		gen.Providers = []workload.ProviderTraffic{{
			Provider: "cloudflare", Resolver: cf,
			MonthlyFlows: map[workload.Month]int{"2018-07": 500, "2018-12": 780},
		}}
		gen.Generate(router)
		records := router.Flush()
		verdicts := scandetect.NewDetector(853).Classify(records)
		organic := scandetect.FilterOrganic(records, verdicts)
		analyzer := &netflow.Analyzer{Resolvers: map[netip.Addr]string{cf: "cloudflare"}}
		flows := analyzer.SelectDoT(organic)
		if len(netflow.MonthlyCounts(flows)) == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkFig12Netblocks(b *testing.B) {
	s := study(b)
	data := s.GenerateTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := netflow.NetblockStats(data.Flows, "cloudflare")
		b.ReportMetric(netflow.TopShare(stats, 5)*100, "top5-share-%")
	}
}

func BenchmarkFig13DoHVolume(b *testing.B) {
	s := study(b)
	data := s.GenerateTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(data.PDNS.MonthlyVolume("dns.google")) == 0 {
			b.Fatal("no volume")
		}
	}
}

func BenchmarkScanDetect(b *testing.B) {
	s := study(b)
	data := s.GenerateTraffic()
	detector := scandetect.NewDetector(853)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detector.Classify(data.Records)
	}
}

func BenchmarkTable8Implementations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table8().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ----------------

// Connection reuse is the paper's central performance lever: one virtual
// query on an established DoT session versus a full fresh session.
func BenchmarkAblationConnReuseDoT(b *testing.B) {
	s := study(b)
	client := dot.NewClient(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, dot.Strict)
	conn, err := client.Dial(s.Targets[0].DoT)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		res, err := conn.Query("bench."+core.ProbeZone, dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Latency
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "virtual-ms/query")
}

func BenchmarkAblationConnFreshDoT(b *testing.B) {
	s := study(b)
	client := dot.NewClient(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, dot.Strict)
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		res, err := client.Query(s.Targets[0].DoT, "bench."+core.ProbeZone, dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Latency
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "virtual-ms/query")
}

func BenchmarkAblationPaddingOff(b *testing.B) {
	q := dnswire.NewQuery(1, "padding-bench.probe.dnsencryption.info", dnswire.TypeA)
	q.SetEDNS0(4096, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPaddingOn(b *testing.B) {
	q := dnswire.NewQuery(1, "padding-bench.probe.dnsencryption.info", dnswire.TypeA)
	q.SetEDNS0(4096, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.PadToBlock(128); err != nil {
			b.Fatal(err)
		}
		packed, err := q.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if len(packed)%128 != 0 {
			b.Fatal("not padded")
		}
	}
}

// Scan order: ZMap's permutation versus a linear sweep over the same space
// (pure iteration cost; the fairness property is tested elsewhere).
func BenchmarkAblationScanOrderPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		perm, err := scanner.NewPermutation(1<<16, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		var sum uint64
		for {
			v, ok := perm.Next()
			if !ok {
				break
			}
			sum += v
		}
		if sum != (1<<16)*((1<<16)-1)/2 {
			b.Fatal("incomplete permutation")
		}
	}
}

func BenchmarkAblationScanOrderLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum uint64
		for v := uint64(0); v < 1<<16; v++ {
			sum += v
		}
		if sum != (1<<16)*((1<<16)-1)/2 {
			b.Fatal("bad sum")
		}
	}
}

func benchSampling(b *testing.B, rate int) {
	cf := netip.MustParseAddr("1.1.1.1")
	src := netip.MustParseAddr("40.1.2.3")
	t0 := time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router := netflow.NewRouter(rate, 15*time.Second)
		for p := 0; p < 30000; p++ {
			router.Observe(netflow.Packet{
				Time: t0.Add(time.Duration(p) * time.Millisecond),
				Src:  src, Dst: cf,
				SrcPort: uint16(10000 + p%1000), DstPort: 853,
				Proto: netflow.ProtoTCP, Bytes: 120, Flags: netflow.FlagACK,
			})
		}
		b.ReportMetric(float64(len(router.Flush())), "records")
	}
}

func BenchmarkAblationSampling1in3(b *testing.B)    { benchSampling(b, 3) }
func BenchmarkAblationSampling1in3000(b *testing.B) { benchSampling(b, 3000) }

func benchDoHMethod(b *testing.B, method doh.Method) {
	s := study(b)
	client := doh.NewClient(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	client.Method = method
	tgt := s.Targets[0]
	client.Override[tgt.DoH.Host] = tgt.DoHAddr
	conn, err := client.Dial(tgt.DoH, tgt.DoHAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query("bench."+core.ProbeZone, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDoHMethodGET(b *testing.B)  { benchDoHMethod(b, doh.GET) }
func BenchmarkAblationDoHMethodPOST(b *testing.B) { benchDoHMethod(b, doh.POST) }

// --- Steady-state exchange benchmarks ----------------------------------
//
// These are the allocation-budget anchors of the performance contract
// (DESIGN.md §9): one DNS transaction on an already established, reused
// session, the amortized arm of the paper's §4.3 comparison. The harness
// (cmd/doebench) tracks their allocs/op across PRs; alloc_budget_test.go
// pins hard ceilings.

func BenchmarkSteadyStateDoTExchange(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.DoT(s.Targets[0].DoT)
	defer tr.Close()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	// Prime: the first Exchange dials; steady state starts after it.
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exchange(context.Background(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateDoHExchange(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tgt := s.Targets[0]
	tr := c.DoH(tgt.DoH, tgt.DoHAddr)
	defer tr.Close()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exchange(context.Background(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateDoQExchange(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.DoQ(s.Targets[0].DoQ)
	defer tr.Close()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exchange(context.Background(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateTCPExchange(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots)
	tr := c.TCP(s.Targets[0].DNS)
	defer tr.Close()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exchange(context.Background(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConcurrentExchange drives waves of inflight concurrent Exchanges on
// one multiplexed session; allocs/op is per query, including the goroutine
// fan-out, and the budget contract keeps it within 1.5× the serial paths.
func benchConcurrentExchange(b *testing.B, tr *resolver.Transport, inflight int) {
	b.Helper()
	msg := dnswire.NewQuery(0, "bench."+core.ProbeZone, dnswire.TypeA)
	// Prime: the first Exchange dials; steady state starts after it.
	if _, err := tr.Exchange(context.Background(), msg); err != nil {
		b.Fatal(err)
	}
	var firstErr error
	var errMu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += inflight {
		n := inflight
		if b.N-i < n {
			n = b.N - i
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for j := 0; j < n; j++ {
			go func() {
				defer wg.Done()
				if _, err := tr.Exchange(context.Background(), msg); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
	}
}

func BenchmarkSteadyStateDoTExchangeInflight8(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.DoT(s.Targets[0].DoT)
	defer tr.Close()
	benchConcurrentExchange(b, tr, 8)
}

func BenchmarkSteadyStateDoHExchangeInflight8(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tgt := s.Targets[0]
	tr := c.DoH(tgt.DoH, tgt.DoHAddr)
	defer tr.Close()
	benchConcurrentExchange(b, tr, 8)
}

func BenchmarkSteadyStateDoQExchangeInflight8(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.DoQ(s.Targets[0].DoQ)
	defer tr.Close()
	benchConcurrentExchange(b, tr, 8)
}

func BenchmarkSteadyStateTCPExchangeInflight8(b *testing.B) {
	s := study(b)
	c := resolver.New(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, resolver.WithMaxInFlight(8))
	tr := c.TCP(s.Targets[0].DNS)
	defer tr.Close()
	benchConcurrentExchange(b, tr, 8)
}

// --- Substrate micro-benchmarks ----------------------------------------

func BenchmarkWirePack(b *testing.B) {
	m := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA).Reply()
	m.AddAnswer("www.example.com", 300, dnswire.CNAME{Target: "cdn.example.com"})
	m.AddAnswer("cdn.example.com", 60, dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireUnpack(b *testing.B) {
	m := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA).Reply()
	m.AddAnswer("www.example.com", 300, dnswire.CNAME{Target: "cdn.example.com"})
	m.AddAnswer("cdn.example.com", 60, dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")})
	packed, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(packed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTunnelRoundTrip(b *testing.B) {
	s := study(b)
	node := cleanNode(b, s)
	tunnel, err := s.Global.Dial(netip.MustParseAddr("172.16.0.9"), node.ID, s.Targets[3].DNS, 53)
	if err != nil {
		b.Fatal(err)
	}
	defer tunnel.Close()
	q, err := dnswire.PackTCP(dnswire.NewQuery(9, "bench."+core.ProbeZone, dnswire.TypeA))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tunnel.Write(q); err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.ReadTCP(tunnel); err != nil {
			b.Fatal(err)
		}
	}
}

// TLS session resumption: RFC 7858 §3.4's second amortization lever.
// Fresh full handshakes versus ticket-resumed handshakes (real CPU cost;
// virtual RTT is identical in TLS 1.3).
func benchResumption(b *testing.B, cache bool) {
	s := study(b)
	client := dot.NewClient(s.World, netip.MustParseAddr("172.20.1.1"), s.Roots, dot.Strict)
	client.ServerName = "dns.quad9.net"
	if cache {
		client.SessionCache = tls.NewLRUClientSessionCache(16)
		// Prime the cache (ticket arrives with the first transaction).
		conn, err := client.Dial(s.Targets[2].DoT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Query("prime."+core.ProbeZone, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
	b.ResetTimer()
	resumed := 0
	for i := 0; i < b.N; i++ {
		conn, err := client.Dial(s.Targets[2].DoT)
		if err != nil {
			b.Fatal(err)
		}
		if conn.Resumed() {
			resumed++
		}
		if _, err := conn.Query("res."+core.ProbeZone, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
	b.ReportMetric(float64(resumed)/float64(b.N)*100, "resumed-%")
}

func BenchmarkAblationTLSFullHandshake(b *testing.B) { benchResumption(b, false) }
func BenchmarkAblationTLSResumption(b *testing.B)    { benchResumption(b, true) }

// QNAME minimisation (RFC 7816, Table 8's "QM" column): privacy versus
// extra upstream queries during iterative resolution.
func benchQNAMEMin(b *testing.B, qmin bool) {
	w := netsim.NewWorld(99)
	w.Geo.Register(netip.MustParsePrefix("0.0.0.0/0"), geo.Location{Country: "US"})
	rootIP := netip.MustParseAddr("198.41.0.4")
	tldIP := netip.MustParseAddr("192.5.6.30")
	sldIP := netip.MustParseAddr("198.51.100.1")

	root := dnsserver.NewZone(".")
	root.Delegate("org.", "a.org-servers.example.", tldIP)
	w.RegisterDatagram(rootIP, 53, dnsserver.DatagramHandler(root))
	org := dnsserver.NewZone("org.")
	org.Delegate("bench.org.", "ns1.bench.org.", sldIP)
	w.RegisterDatagram(tldIP, 53, dnsserver.DatagramHandler(org))
	sld := dnsserver.NewZone("bench.org.")
	sld.WildcardA = netip.MustParseAddr("203.0.113.1")
	w.RegisterDatagram(sldIP, 53, dnsserver.DatagramHandler(sld))

	r := dnsserver.NewIterative(w, netip.MustParseAddr("192.0.2.77"), []netip.Addr{rootIP})
	r.QNAMEMinimisation = qmin
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := dnswire.NewQuery(1, fmt.Sprintf("h%d.www.bench.org", i), dnswire.TypeA)
		resp, _ := r.ServeDNS(netip.Addr{}, q)
		if resp.Rcode != dnswire.RcodeSuccess {
			b.Fatalf("rcode = %v", resp.Rcode)
		}
	}
	leaked := 0
	for _, q := range r.SentQueries() {
		if q.Server == rootIP && strings.Contains(q.Name, "www.") {
			leaked++
		}
	}
	b.ReportMetric(float64(len(r.SentQueries()))/float64(b.N), "upstream-queries/op")
	b.ReportMetric(float64(leaked), "full-names-leaked-to-root")
}

func BenchmarkAblationQNAMEMinOff(b *testing.B) { benchQNAMEMin(b, false) }
func BenchmarkAblationQNAMEMinOn(b *testing.B)  { benchQNAMEMin(b, true) }
