package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady-state body must not churn
// the allocator. It goes on the last line of the function's doc comment,
// like a //go:noinline pragma.
const hotpathDirective = "//doelint:hotpath"

// analyzerHotalloc flags the per-call allocation patterns the performance
// contract bans from //doelint:hotpath functions: make([]byte, ...) builds
// a fresh buffer per call where a reused scratch or bufpool buffer
// belongs, and fmt.Sprintf allocates a string (plus boxed arguments) per
// call. The annotation is the static half of the performance contract
// (DESIGN.md §9); the testing.AllocsPerRun budgets enforce the same
// contract at runtime.
//
// v2 closes the helper-function loophole interprocedurally: a hotpath
// function calling a non-hotpath helper whose *transitive* alloc fact is
// nonzero is also a finding, with the allocation chain in the message. A
// callee that is itself annotated //doelint:hotpath is exempt from the
// caller's perspective — its own discipline is enforced at its own
// declaration — and an allocation under a justified //doelint:allow
// hotalloc (amortized growth, once-per-session sizing) never taints
// callers.
var analyzerHotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make([]byte, ...) or fmt.Sprintf in //doelint:hotpath functions, directly or via helpers (call-graph check)",
	Run:  runHotalloc,
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotBody(p, fn)
			checkHotCallees(p, fn)
		}
	}
}

// checkHotCallees is the interprocedural half: every direct callee of a
// hotpath function whose propagated facts include an allocation is
// reported at the call site, with the chain down to the allocating
// primitive.
func checkHotCallees(p *Pass, fn *ast.FuncDecl) {
	if p.Graph == nil {
		return
	}
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	node := p.Graph.node(funcID(obj))
	if node == nil {
		return
	}
	for _, e := range node.edges {
		callee := p.Graph.node(e.callee)
		if callee == nil || callee.contribution()&FactAlloc == 0 {
			continue
		}
		steps, _, source := p.Graph.taintPath(e.callee, FactAlloc)
		p.Reportf(e.pos,
			"hot path %s calls %s, which allocates per call: %s; annotate the helper //doelint:hotpath and fix it, or justify with //doelint:allow hotalloc",
			fn.Name.Name, displayName(e.callee), renderTaint(steps, source))
	}
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// checkHotBody walks the whole body, including closures: a per-call FuncLit
// invoked on the hot path allocates just the same.
func checkHotBody(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "make" {
				return true
			}
			if _, ok := p.objectOf(fun).(*types.Builtin); !ok {
				return true
			}
			if isByteSlice(p.Info.TypeOf(call)) {
				p.Reportf(call.Pos(),
					"hot path %s allocates with make([]byte, ...); reuse a scratch buffer or bufpool", name)
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name != "Sprintf" {
				return true
			}
			id, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg, ok := p.objectOf(id).(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(),
					"hot path %s formats with fmt.Sprintf; precompute the string or append into a reused buffer", name)
			}
		}
		return true
	})
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
