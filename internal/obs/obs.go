// Package obs is the measurement pipeline's zero-dependency observability
// layer: hierarchical spans, counters/gauges/histograms, and the context
// plumbing that threads them through resolver, faults, runner, scanner,
// vantage and core.
//
// Everything obs records is charged to the netsim virtual clock — spans
// carry virtual durations, histograms bucket virtual latencies, and no
// recording path ever reads the wall clock (enforced by the doelint
// `obsclock` analyzer). That is what lets a trace and a metrics snapshot
// share the report contract: byte-identical output for a fixed seed at any
// worker count.
//
// Every entry point is nil-safe: a nil *Recorder, *Span, *Registry,
// *Counter, *Gauge or *Histogram turns the corresponding call into a
// no-op, so instrumented packages never branch on "telemetry enabled".
package obs

import (
	"context"
	"net/netip"
	"sync"
	"time"
)

// Recorder is the per-study telemetry hub: one span tree plus one metric
// registry. It is safe for concurrent use by the runner pool's workers.
type Recorder struct {
	root *Span
	reg  *Registry

	mu    sync.Mutex
	flows map[flowKey]*Span

	phaseMu    sync.Mutex
	phases     map[string]*Phase
	phaseOrder []string
}

type flowKey struct {
	from, to netip.Addr
}

// NewRecorder returns a Recorder whose span tree is rooted at a span named
// root ("study" for full pipeline runs).
func NewRecorder(root string) *Recorder {
	r := &Recorder{reg: NewRegistry(), flows: make(map[flowKey]*Span)}
	r.root = &Span{rec: r, name: sanitizeName(root), key: -1}
	return r
}

// Root returns the root span, or nil on a nil Recorder.
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Metrics returns the recorder's registry, or nil on a nil Recorder (a nil
// *Registry is itself a no-op sink).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// WatchFlow binds sp as the active span for the (from, to) flow pair and
// returns a release func that unbinds it. The fault injector annotates
// spans through this binding (FlowEvent) because netsim hands it only the
// flow tuple, never a context. Determinism relies on the same contract
// that keeps faulted reports byte-identical: the injector's Sources gate
// restricts faults to vantage-edge tuples, and each such tuple is dialed
// by exactly one runner task at a time, so at most one span ever watches a
// given pair.
func (r *Recorder) WatchFlow(from, to netip.Addr, sp *Span) (release func()) {
	if r == nil || sp == nil {
		return func() {}
	}
	k := flowKey{from, to}
	r.mu.Lock()
	r.flows[k] = sp
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if r.flows[k] == sp {
			delete(r.flows, k)
		}
		r.mu.Unlock()
	}
}

// FlowEvent appends event to the span currently watching (from, to), if
// any. Called by the fault injector at the moment it perturbs a flow.
func (r *Recorder) FlowEvent(from, to netip.Addr, event string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sp := r.flows[flowKey{from, to}]
	r.mu.Unlock()
	sp.Event(event)
}

// SpanCount reports the number of spans recorded so far, excluding the
// root. The count is schedule-independent for a deterministic study run.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	return r.root.descendants()
}

// ── context plumbing ──────────────────────────────────────────────────────

type recorderCtxKey struct{}
type spanCtxKey struct{}
type workerSinkCtxKey struct{}
type poolNameCtxKey struct{}
type registryCtxKey struct{}

// workerSink accumulates per-worker virtual busy time; runner.MapCtx puts
// one in each worker's context.
type workerSink struct {
	total  *Counter // deterministic: pool-wide virtual busy total
	worker *Counter // volatile: this worker's share (schedule-dependent)
}

// WithRecorder returns a context carrying r, with the current span set to
// r's root. It is the entry point core uses to thread telemetry through
// the pipeline.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, recorderCtxKey{}, r)
	return context.WithValue(ctx, spanCtxKey{}, r.root)
}

// FromContext returns the Recorder carried by ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderCtxKey{}).(*Recorder)
	return r
}

// WithMetricsRegistry overrides the registry Metrics returns beneath ctx.
// runner.MapCtx installs one shard registry per worker goroutine so hot
// recording paths touch worker-local atomics instead of contending on the
// study registry; the shards fold back via Registry.Merge when the pool
// joins. A nil reg returns ctx unchanged.
func WithMetricsRegistry(ctx context.Context, reg *Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, registryCtxKey{}, reg)
}

// Metrics returns the registry carried by ctx — a shard override installed
// by WithMetricsRegistry if present, else the recorder's registry, or nil.
func Metrics(ctx context.Context) *Registry {
	if ctx != nil {
		if reg, ok := ctx.Value(registryCtxKey{}).(*Registry); ok {
			return reg
		}
	}
	return FromContext(ctx).Metrics()
}

// CurrentSpan returns the span ctx points at, or nil.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// WithSpan repoints ctx at sp, making it the parent of subsequent Start
// calls. Core uses it to parent pipeline stages under the experiment span
// that triggered them; a nil sp returns ctx unchanged.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// Start opens a child span of ctx's current span and returns a derived
// context pointing at it. With telemetry off (no recorder in ctx) both
// returns are usable no-ops: ctx unchanged and a nil *Span.
//
// Concurrent siblings (fan-out under runner) MUST pass Key(i) with their
// task index so export order is schedule-independent; serial siblings rely
// on per-parent creation order instead.
func Start(ctx context.Context, name string, opts ...SpanOption) (context.Context, *Span) {
	parent := CurrentSpan(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Start(name, opts...)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// Charge adds virtual duration d to the current span and to the worker
// busy-time sink, if the context carries one. d is a virtual-clock delta
// (e.g. Conn.Elapsed() differences), never wall time.
func Charge(ctx context.Context, d time.Duration) {
	if ctx == nil || d <= 0 {
		return
	}
	CurrentSpan(ctx).Charge(d)
	if sink, ok := ctx.Value(workerSinkCtxKey{}).(*workerSink); ok && sink != nil {
		us := int64(d / 1000) // ns → µs
		sink.total.Add(us)
		sink.worker.Add(us)
	}
}

// WithPool names the runner pool instrumented calls beneath ctx belong to;
// runner.MapCtx reads it for metric labels.
func WithPool(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, poolNameCtxKey{}, name)
}

// PoolName returns the pool name carried by ctx, or fallback.
func PoolName(ctx context.Context, fallback string) string {
	if ctx != nil {
		if s, ok := ctx.Value(poolNameCtxKey{}).(string); ok && s != "" {
			return s
		}
	}
	return fallback
}

// WithWorkerSink attaches per-worker busy-time counters to ctx. The total
// counter is deterministic (schedule-independent sum); the worker counter
// is volatile. runner.MapCtx installs one per worker goroutine.
func WithWorkerSink(ctx context.Context, total, worker *Counter) context.Context {
	return context.WithValue(ctx, workerSinkCtxKey{}, &workerSink{total: total, worker: worker})
}
