package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// baselineSchema versions the on-disk baseline format.
const baselineSchema = 1

// Baseline is a findings ratchet: known findings recorded so a suite
// upgrade can land while the debt is burned down separately. A finding
// matching a baseline entry is suppressed; each entry absorbs as many
// findings as its count, so fixing one of several identical findings
// still surfaces nothing until the count is exceeded.
//
// Entries match on file, check, and message — not line — so unrelated
// edits that shift code do not invalidate the baseline. The repository
// policy is an empty committed baseline: the ratchet exists for
// downstream forks and for staging suite upgrades, not as a parking lot.
type Baseline struct {
	Schema  int             `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies a tolerated finding.
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// Count is how many identical findings this entry absorbs; zero or
	// absent means one.
	Count int `json:"count,omitempty"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("lint: baseline %s: schema %d, want %d", path, b.Schema, baselineSchema)
	}
	return &b, nil
}

type baselineKey struct {
	file, check, message string
}

// Filter splits findings into those not covered by the baseline (kept)
// and those it absorbs (suppressed).
func (b *Baseline) Filter(findings []Finding) (kept, suppressed []Finding) {
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey{e.File, e.Check, e.Message}] += n
	}
	for _, f := range findings {
		k := baselineKey{f.File, f.Check, f.Message}
		if budget[k] > 0 {
			budget[k]--
			suppressed = append(suppressed, f)
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// NewBaseline builds a baseline absorbing exactly the given findings,
// with identical findings collapsed into counted entries.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{f.File, f.Check, f.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.check != b.check {
			return a.check < b.check
		}
		return a.message < b.message
	})
	b := &Baseline{Schema: baselineSchema, Entries: []BaselineEntry{}}
	for _, k := range keys {
		e := BaselineEntry{File: k.file, Check: k.check, Message: k.message}
		if counts[k] > 1 {
			e.Count = counts[k]
		}
		b.Entries = append(b.Entries, e)
	}
	return b
}

// WriteBaseline writes b to path in the canonical (indented, sorted,
// trailing-newline) encoding.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("lint: baseline: %w", err)
	}
	return nil
}
