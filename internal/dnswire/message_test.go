package dnswire

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func mustUnpack(t *testing.T, b []byte) *Message {
	t.Helper()
	m, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return m
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "Example.COM", TypeA)
	got := mustUnpack(t, mustPack(t, q))
	if got.ID != 0x1234 || !got.RecursionDesired || got.Response {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	want := Question{Name: "example.com.", Type: TypeA, Class: ClassINET}
	if got.Question1() != want {
		t.Errorf("question = %+v, want %+v", got.Question1(), want)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeA)
	r := q.Reply()
	r.Authoritative = true
	r.AddAnswer("www.example.com", 300, CNAME{Target: "cdn.example.com"})
	r.AddAnswer("cdn.example.com", 60, A{Addr: netip.MustParseAddr("192.0.2.1")})
	r.AddAuthority("example.com", 3600, NS{Host: "ns1.example.com"})
	r.Additionals = append(r.Additionals, Record{
		Name: "ns1.example.com", Class: ClassINET, TTL: 3600,
		Data: A{Addr: netip.MustParseAddr("192.0.2.53")},
	})

	got := mustUnpack(t, mustPack(t, r))
	if !got.Response || !got.Authoritative || got.ID != 7 {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authorities) != 1 || len(got.Additionals) != 1 {
		t.Fatalf("section counts = %d/%d/%d", len(got.Answers), len(got.Authorities), len(got.Additionals))
	}
	if cn, ok := got.Answers[0].Data.(CNAME); !ok || cn.Target != "cdn.example.com." {
		t.Errorf("answer[0] = %v", got.Answers[0])
	}
	if a, ok := got.Answers[1].Data.(A); !ok || a.Addr != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("answer[1] = %v", got.Answers[1])
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	r := &Message{Header: Header{ID: 1, Response: true}}
	for i := 0; i < 8; i++ {
		r.AddAnswer("host.sub.long-example-domain.org", 60,
			A{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})})
	}
	packed := mustPack(t, r)
	// Owner names after the first must be 2-byte pointers: 8 records with
	// repeated 35-byte names would otherwise exceed 300 bytes.
	if len(packed) > 200 {
		t.Errorf("compressed message is %d bytes, compression not effective", len(packed))
	}
	got := mustUnpack(t, packed)
	for i, rr := range got.Answers {
		if rr.Name != "host.sub.long-example-domain.org." {
			t.Errorf("answer %d name = %q", i, rr.Name)
		}
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	records := []Record{
		{Name: "a.example.", Class: ClassINET, TTL: 1, Data: A{Addr: netip.MustParseAddr("198.51.100.7")}},
		{Name: "aaaa.example.", Class: ClassINET, TTL: 2, Data: AAAA{Addr: netip.MustParseAddr("2001:db8::7")}},
		{Name: "ns.example.", Class: ClassINET, TTL: 3, Data: NS{Host: "ns1.example."}},
		{Name: "cn.example.", Class: ClassINET, TTL: 4, Data: CNAME{Target: "target.example."}},
		{Name: "ptr.example.", Class: ClassINET, TTL: 5, Data: PTR{Target: "host.example."}},
		{Name: "mx.example.", Class: ClassINET, TTL: 6, Data: MX{Preference: 10, Host: "mail.example."}},
		{Name: "soa.example.", Class: ClassINET, TTL: 7, Data: SOA{
			MName: "ns1.example.", RName: "hostmaster.example.",
			Serial: 2019050101, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
		}},
		{Name: "txt.example.", Class: ClassINET, TTL: 8, Data: TXT{Texts: []string{"v=spf1 -all", "second"}}},
		{Name: "srv.example.", Class: ClassINET, TTL: 9, Data: SRV{Priority: 1, Weight: 2, Port: 853, Target: "dot.example."}},
		{Name: "raw.example.", Class: ClassINET, TTL: 10, Data: Raw{Type: Type(4095), Data: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 42, Response: true}, Answers: records}
	got := mustUnpack(t, mustPack(t, m))
	if len(got.Answers) != len(records) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(records))
	}
	for i, want := range records {
		if !reflect.DeepEqual(got.Answers[i], want) {
			t.Errorf("record %d:\n got %#v\nwant %#v", i, got.Answers[i], want)
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	q := NewQuery(9, "example.com", TypeA)
	q.SetEDNS0(4096, true)
	got := mustUnpack(t, mustPack(t, q))
	opt, ok := got.OPT()
	if !ok {
		t.Fatal("no OPT record after roundtrip")
	}
	if opt.UDPSize != 4096 || !opt.DO {
		t.Errorf("opt = %+v", opt)
	}
}

func TestExtendedRcode(t *testing.T) {
	m := NewQuery(3, "example.com", TypeA).Reply()
	m.SetEDNS0(1232, false)
	m.Rcode = RcodeBadVers // 16: needs the extended bits
	got := mustUnpack(t, mustPack(t, m))
	if got.Rcode != RcodeBadVers {
		t.Errorf("rcode = %v, want BADVERS", got.Rcode)
	}
}

func TestExtendedRcodeWithoutOPTFails(t *testing.T) {
	m := NewQuery(3, "example.com", TypeA).Reply()
	m.Rcode = RcodeBadVers
	if _, err := m.Pack(); err == nil {
		t.Error("Pack succeeded with extended rcode and no OPT record")
	}
}

func TestPadToBlock(t *testing.T) {
	for _, block := range []int{128, 468} {
		q := NewQuery(11, "some-unique-prefix.measure.example.org", TypeA)
		q.SetEDNS0(4096, false)
		if err := q.PadToBlock(block); err != nil {
			t.Fatalf("PadToBlock(%d): %v", block, err)
		}
		packed := mustPack(t, q)
		if len(packed)%block != 0 {
			t.Errorf("len %% %d = %d, want 0 (len=%d)", block, len(packed)%block, len(packed))
		}
		got := mustUnpack(t, packed)
		opt, _ := got.OPT()
		if _, ok := opt.Padding(); !ok {
			t.Errorf("block %d: padding option missing after roundtrip", block)
		}
	}
}

func TestPadToBlockIsIdempotent(t *testing.T) {
	q := NewQuery(12, "example.com", TypeA)
	q.SetEDNS0(4096, false)
	if err := q.PadToBlock(128); err != nil {
		t.Fatal(err)
	}
	first := len(mustPack(t, q))
	if err := q.PadToBlock(128); err != nil {
		t.Fatal(err)
	}
	if second := len(mustPack(t, q)); second != first {
		t.Errorf("repadding changed size: %d -> %d", first, second)
	}
}

func TestPadWithoutOPTFails(t *testing.T) {
	q := NewQuery(13, "example.com", TypeA)
	if err := q.PadToBlock(128); err == nil {
		t.Error("PadToBlock succeeded without OPT record")
	}
}

func TestUnpackRejectsTruncatedHeader(t *testing.T) {
	if _, err := Unpack(make([]byte, 11)); err == nil {
		t.Error("Unpack accepted 11-byte message")
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	b := mustPack(t, NewQuery(1, "example.com", TypeA))
	if _, err := Unpack(append(b, 0)); err == nil {
		t.Error("Unpack accepted trailing byte")
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Header claiming one question whose name is a pointer to itself.
	msg := make([]byte, 12, 18)
	msg[5] = 1 // QDCOUNT=1
	msg = append(msg, 0xC0, 12, 0, 1, 0, 1)
	if _, err := Unpack(msg); err == nil {
		t.Error("Unpack accepted self-referential compression pointer")
	}
}

func TestUnpackRejectsForwardPointer(t *testing.T) {
	msg := make([]byte, 12, 18)
	msg[5] = 1
	msg = append(msg, 0xC0, 14, 0, 1, 0, 1) // points past itself
	if _, err := Unpack(msg); err == nil {
		t.Error("Unpack accepted forward compression pointer")
	}
}

func TestNameValidation(t *testing.T) {
	long := strings.Repeat("a", 64)
	if _, err := appendName(nil, long+".example.com", nil); err != ErrLabelTooLong {
		t.Errorf("64-byte label: err = %v, want ErrLabelTooLong", err)
	}
	huge := strings.Repeat("abcdefgh.", 32) // 288 bytes > 255
	if _, err := appendName(nil, huge, nil); err != ErrNameTooLong {
		t.Errorf("oversized name: err = %v, want ErrNameTooLong", err)
	}
	if _, err := appendName(nil, "a..example.com", nil); err != ErrEmptyLabel {
		t.Errorf("empty label: err = %v, want ErrEmptyLabel", err)
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"":            ".",
		".":           ".",
		"Example.COM": "example.com.",
		"a.b.":        "a.b.",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"notexample.com", "example.com", false},
		{"anything.org", ".", true},
		{"example.com", "a.example.com", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestSLD(t *testing.T) {
	cases := map[string]string{
		"dns.example.com":            "example.com.",
		"a.b.c.example.org.":         "example.org.",
		"example.com":                "example.com.",
		"com":                        "com.",
		".":                          ".",
		"mozilla.cloudflare-dns.com": "cloudflare-dns.com.",
	}
	for in, want := range cases {
		if got := SLD(in); got != want {
			t.Errorf("SLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCaseInsensitiveDecoding(t *testing.T) {
	q := NewQuery(5, "MiXeD.ExAmPlE.CoM", TypeAAAA)
	got := mustUnpack(t, mustPack(t, q))
	if got.Question1().Name != "mixed.example.com." {
		t.Errorf("name = %q", got.Question1().Name)
	}
}

func TestTCPFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := mustPack(t, NewQuery(21, "example.com", TypeA))
	if err := WriteTCP(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("framed roundtrip mismatch")
	}
}

func TestTCPFramingMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	var want [][]byte
	for i := 0; i < 5; i++ {
		msg := mustPack(t, NewQuery(uint16(i), "example.com", TypeA))
		want = append(want, msg)
		if err := WriteTCP(&buf, msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		got, err := ReadTCP(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("message %d mismatch", i)
		}
	}
}

func TestPackTCPMatchesWriteTCP(t *testing.T) {
	m := NewQuery(33, "example.com", TypeA)
	framed, err := PackTCP(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTCP(&buf, mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(framed, buf.Bytes()) {
		t.Error("PackTCP differs from WriteTCP output")
	}
}

func TestWriteTCPRejectsOversized(t *testing.T) {
	if err := WriteTCP(&bytes.Buffer{}, make([]byte, MaxTCPMessage+1)); err == nil {
		t.Error("WriteTCP accepted oversized message")
	}
}

func TestNewIDVaries(t *testing.T) {
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		seen[NewID()] = true
	}
	if len(seen) < 90 {
		t.Errorf("only %d distinct IDs in 100 draws", len(seen))
	}
}

func TestTypeAndRcodeStrings(t *testing.T) {
	if TypeA.String() != "A" || Type(4095).String() != "TYPE4095" {
		t.Error("Type.String mismatch")
	}
	if RcodeServFail.String() != "SERVFAIL" || Rcode(100).String() != "RCODE100" {
		t.Error("Rcode.String mismatch")
	}
	if tt, ok := ParseType("AAAA"); !ok || tt != TypeAAAA {
		t.Error("ParseType(AAAA) failed")
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
}

func TestMessageString(t *testing.T) {
	m := NewQuery(77, "example.com", TypeA).Reply()
	m.AddAnswer("example.com", 60, A{Addr: netip.MustParseAddr("192.0.2.1")})
	s := m.String()
	for _, want := range []string{"NOERROR", "example.com.", "192.0.2.1", "ANSWER SECTION"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestUnpackFuzzCorpusDoesNotPanic(t *testing.T) {
	// Hand-picked malformed inputs; Unpack must return errors, never panic.
	corpus := [][]byte{
		nil,
		{0},
		make([]byte, 12),
		append(make([]byte, 12), 0xFF),
		{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 63},
		{0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 41, 16, 0, 0, 0, 0, 0, 0, 4, 0, 12, 0, 9},
	}
	for i, b := range corpus {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d: panic: %v", i, r)
				}
			}()
			Unpack(b) //nolint:errcheck // errors are expected; only panics matter
		}()
	}
}
