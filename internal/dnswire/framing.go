package dnswire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
)

// MaxTCPMessage is the largest DNS message expressible with 2-byte framing.
const MaxTCPMessage = 0xFFFF

// AppendTCP appends msg to buf with the 2-byte big-endian length prefix used
// by DNS over TCP (RFC 1035 §4.2.2) and DNS over TLS (RFC 7858), returning
// the extended slice.
func AppendTCP(buf, msg []byte) ([]byte, error) {
	if len(msg) > MaxTCPMessage {
		return nil, fmt.Errorf("dnswire: message of %d bytes exceeds TCP framing limit", len(msg))
	}
	buf = append(buf, byte(len(msg)>>8), byte(len(msg)))
	return append(buf, msg...), nil
}

// WriteTCP writes msg to w with the 2-byte big-endian length prefix. A
// single Write call carries prefix and payload so the kernel can coalesce
// them. It allocates a fresh frame per call; hot paths should use
// WriteMessageTCP with a reused scratch buffer instead.
func WriteTCP(w io.Writer, msg []byte) error {
	framed, err := AppendTCP(make([]byte, 0, 2+len(msg)), msg)
	if err != nil {
		return err
	}
	_, err = w.Write(framed)
	return err
}

// ReadTCP reads one length-prefixed DNS message from r into a fresh buffer.
func ReadTCP(r io.Reader) ([]byte, error) {
	return ReadTCPAppend(r, nil)
}

// growLen returns buf resized to len(buf)+n, reallocating (with capacity
// doubling) only when the capacity is insufficient. The added bytes are
// uninitialized.
func growLen(buf []byte, n int) []byte {
	want := len(buf) + n
	if want <= cap(buf) {
		return buf[:want]
	}
	nb := make([]byte, want, max(want, 2*cap(buf))) //doelint:allow hotalloc -- amortized doubling; steady state reuses capacity
	copy(nb, buf)
	return nb
}

// ReadTCPAppend reads one length-prefixed DNS message from r, appending it
// after len(buf) and returning the extended slice. Passing a reused scratch
// buffer (typically scratch[:0]) makes the steady-state read path
// allocation-free; the returned slice aliases the scratch and must not be
// retained past its next reuse.
//
//doelint:hotpath
func ReadTCPAppend(r io.Reader, buf []byte) ([]byte, error) {
	// The 2-byte length header is read into the scratch buffer itself and
	// then overwritten by the body: a local array would escape through the
	// io.Reader call and cost an allocation per read.
	start := len(buf)
	buf = growLen(buf, 2)
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		return nil, err
	}
	msgLen := int(binary.BigEndian.Uint16(buf[start:]))
	buf = growLen(buf[:start], msgLen)
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		return nil, err
	}
	return buf, nil
}

// PackTCP packs m and prepends the 2-byte length prefix.
func PackTCP(m *Message) ([]byte, error) {
	return m.AppendPackTCP(make([]byte, 0, 2+512))
}

// AppendPackTCP appends m in wire form with its 2-byte TCP length prefix to
// buf: it reserves the prefix, packs in place (compression pointers are
// message-relative, so the reserved headroom does not disturb them), and
// backfills the length — no intermediate copy.
//
//doelint:hotpath
func (m *Message) AppendPackTCP(buf []byte) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0)
	out, err := m.AppendPack(buf)
	if err != nil {
		return nil, err
	}
	body := len(out) - start - 2
	if body > MaxTCPMessage {
		return nil, fmt.Errorf("dnswire: message of %d bytes exceeds TCP framing limit", body)
	}
	binary.BigEndian.PutUint16(out[start:], uint16(body))
	return out, nil
}

// WriteMessageTCP packs m with TCP framing into scratch[:0] and writes the
// result to w in a single Write call, exactly like WriteTCP's wire behavior.
// It returns the (possibly grown) buffer so the caller can keep it for the
// next message; the returned buffer is valid for reuse even on error.
//
//doelint:hotpath
func WriteMessageTCP(w io.Writer, m *Message, scratch []byte) ([]byte, error) {
	framed, err := m.AppendPackTCP(scratch[:0])
	if err != nil {
		return scratch, err
	}
	if _, err := w.Write(framed); err != nil {
		return framed, err
	}
	return framed, nil
}

// idSource generates fallback transaction IDs. DNS IDs only need to be
// unpredictable enough to frustrate off-path spoofing of clear-text queries;
// encrypted transports do not rely on them, so math/rand suffices here.
// Sessions that issue many queries should carry their own IDGen instead of
// funnelling every query through this lock.
var idSource = struct {
	sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(0x00d15ea5e))}

// NewID returns a fresh transaction ID from the process-wide source.
func NewID() uint16 {
	idSource.Lock()
	defer idSource.Unlock()
	return uint16(idSource.rng.Intn(0x10000))
}

// idGenSeq numbers IDGen instances so each derives a distinct seed without
// any shared lock on the query path.
var idGenSeq atomic.Uint64

// IDGen is a per-session transaction-ID generator. Each session runs its
// own FNV-seeded splitmix64 stream, so parallel workers never contend on
// the idSource mutex. The zero IDGen is not usable; construct with NewIDGen.
type IDGen struct {
	state uint64
}

// NewIDGen returns a generator seeded by FNV-1a over a process-wide sequence
// number: concurrent sessions draw from decorrelated streams while the only
// shared operation is one atomic increment at session setup.
func NewIDGen() IDGen {
	seq := idGenSeq.Add(1)
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= seq & 0xff
		h *= prime64
		seq >>= 8
	}
	return IDGen{state: h}
}

// Next returns the next transaction ID. Next is not safe for concurrent
// use: a session owns its generator and already serializes queries behind
// the lock guarding its connection.
func (g *IDGen) Next() uint16 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return uint16(z)
}
