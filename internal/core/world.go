package core

import (
	"crypto/ed25519"
	"crypto/x509"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/doq"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/faults"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/obs"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/scanner"
	"dnsencryption.info/doe/internal/vantage"
)

// Well-known addresses of the study.
var (
	cloudflareDNS  = netip.MustParseAddr("1.1.1.1")
	cloudflareDoH  = netip.MustParseAddr("104.16.249.249")
	googleDNS      = netip.MustParseAddr("8.8.8.8")
	googleDoH      = netip.MustParseAddr("216.58.192.10")
	quad9Addr      = netip.MustParseAddr("9.9.9.9")
	quad9Backend   = netip.MustParseAddr("9.9.9.10")
	selfBuiltAddr  = netip.MustParseAddr("198.18.0.53")
	authServerAddr = netip.MustParseAddr("198.18.0.1")
	measureClient  = netip.MustParseAddr("172.16.0.9")
	globalSuper    = netip.MustParseAddr("172.16.1.1")
	censoredSuper  = netip.MustParseAddr("172.16.2.1")
	scanSpaceBase  = netip.MustParseAddr("100.64.0.0")
)

// scanSources are the paper's three scan origins (cloud hosts in the US
// and China).
var scanSources = []netip.Addr{
	netip.MustParseAddr("172.16.3.1"), // US cloud
	netip.MustParseAddr("172.16.3.2"), // US cloud
	netip.MustParseAddr("172.16.4.1"), // CN cloud
}

// ProbeZone is the measurement domain registered by the study.
const ProbeZone = "probe.dnsencryption.info"

// resolverSlot is one DoT resolver address of the scanned population, with
// its activity window across scan rounds.
type resolverSlot struct {
	addr     netip.Addr
	country  string
	provider providerSpec
	leaf     *certs.Leaf
	// activeFrom/activeTo are inclusive round indexes.
	activeFrom, activeTo int
	registered           bool
}

// certKind labels the certificate population of Finding 1.2.
type certKind int

const (
	certValid certKind = iota
	certExpired
	certSelfSigned
	certFortiGate
	certBadChain
)

// providerSpec describes one DoT provider of the scanned population.
type providerSpec struct {
	// cn is the certificate Common Name (provider grouping key follows
	// from it).
	cn   string
	kind certKind
}

// Study is the assembled end-to-end measurement.
type Study struct {
	Config
	World  *netsim.World
	RootCA *certs.CA
	Roots  *x509.CertPool

	// Progress, when set, receives per-experiment wall-clock timing from
	// RunAll (stderr logging in cmd/doereport); it never feeds the report.
	Progress Progress

	// Zone is the authoritative measurement zone; ExpectedA its wildcard
	// answer.
	Zone      *dnsserver.Zone
	ExpectedA netip.Addr

	// Scanner is the §3 discovery scanner; scan rounds are labeled
	// "2019-02-01" .. "2019-05-01".
	Scanner    *scanner.Scanner
	ScanLabels []string
	slots      []*resolverSlot
	curRound   int

	// DoH discovery inputs.
	DoHKnownList []string
	DoHCorpus    []string
	DoHResolve   map[string]netip.Addr

	// Client-side platforms.
	Global           *proxy.Network
	Censored         *proxy.Network
	GlobalPlatform   *vantage.Platform
	CensoredPlatform *vantage.Platform
	Targets          []vantage.Target
	Interceptors     []*netsim.TLSInterceptor

	// DoTResolvers is the ground-truth provider map for §5's NetFlow
	// analysis (well-known addresses).
	DoTResolvers map[netip.Addr]string

	// DNSCrypt deployment (OpenDNS-style, §2.2/Table 8): provider name,
	// pinned Ed25519 key and resolver address.
	DNSCryptProvider string
	DNSCryptPK       ed25519.PublicKey
	DNSCryptAddr     netip.Addr

	// LocalResolvers maps each vantage /24 to its ISP's local resolver
	// (the RIPE-Atlas-style probe target of §3.1's limitation note);
	// LocalDoTCapable lists the few that accept DoT.
	LocalResolvers  map[netip.Prefix]netip.Addr
	LocalDoTCapable map[netip.Addr]bool

	// Faults is the installed fault injector, nil when Config.Faults is
	// disabled. Its counters feed the end-of-report recovery summary.
	Faults *faults.Injector

	// Obs is the study-wide trace recorder and metric registry, nil when
	// Config.Telemetry is off. Every pipeline stage hangs its spans off
	// Obs.Root(); see internal/obs and the telemetry contract in DESIGN.md.
	Obs *obs.Recorder

	expMu   sync.Mutex
	expSpan *obs.Span

	rngMu sync.Mutex
	rng   *rand.Rand

	// Cached pipeline outputs (each stage runs once per study).
	scansOnce   sync.Once
	scanResults []*scanner.Result
	scanErr     error
	reachOnce   sync.Once
	reach       *ReachabilityData
	perfOnce    sync.Once
	perfSamples []vantage.PerfSample
	trafficOnce sync.Once
	traffic     *TrafficData
	dohOnce     sync.Once
	dohFound    []scanner.DoHResolver
}

func (s *Study) randIntn(n int) int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(n)
}

func (s *Study) randFloat() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// NewStudy builds the calibrated world and all measurement apparatus.
func NewStudy(cfg Config) (*Study, error) {
	s := &Study{
		Config: cfg,
		World:  netsim.NewWorld(cfg.Seed),
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	if cfg.Telemetry {
		s.Obs = obs.NewRecorder("study")
	}
	rootCA, err := certs.NewCA("DoE Study Root CA", true)
	if err != nil {
		return nil, err
	}
	s.RootCA = rootCA
	s.Roots = certs.Pool(rootCA)

	s.registerInfrastructureGeo()
	if err := s.buildAuthoritative(); err != nil {
		return nil, err
	}
	if err := s.buildPublicResolvers(); err != nil {
		return nil, err
	}
	if err := s.buildScanPopulation(); err != nil {
		return nil, err
	}
	if err := s.buildDoHWorld(); err != nil {
		return nil, err
	}
	if err := s.buildClientNetworks(); err != nil {
		return nil, err
	}
	if err := s.buildDNSCrypt(); err != nil {
		return nil, err
	}
	if err := s.buildLocalResolvers(); err != nil {
		return nil, err
	}
	if err := s.buildFaults(); err != nil {
		return nil, err
	}
	s.buildScanner()
	s.SetScanRound(0)
	return s, nil
}

func (s *Study) registerInfrastructureGeo() {
	reg := func(prefix, cc string, asn int, name string) {
		s.World.Geo.Register(netip.MustParsePrefix(prefix),
			geo.Location{Country: cc, ASN: asn, ASName: name})
	}
	reg("1.1.1.0/24", "US", 13335, "Cloudflare, Inc.")
	reg("104.16.0.0/12", "US", 13335, "Cloudflare, Inc.")
	reg("8.8.8.0/24", "US", 15169, "Google LLC")
	reg("216.58.192.0/24", "US", 15169, "Google LLC")
	reg("9.9.9.0/24", "US", 19281, "Quad9")
	reg("198.18.0.0/16", "US", 64500, "Study Infrastructure")
	reg("172.16.0.0/14", "US", 64501, "Study Clouds")
	reg("172.16.4.0/24", "CN", 64502, "Study Cloud CN")
	// Controlled vantages for the no-reuse performance test (Table 7).
	reg("172.20.1.0/24", "US", 64510, "Controlled Vantage US")
	reg("172.20.2.0/24", "NL", 64511, "Controlled Vantage NL")
	reg("172.20.3.0/24", "AU", 64512, "Controlled Vantage AU")
	reg("172.20.4.0/24", "HK", 64513, "Controlled Vantage HK")
}

// ControlledVantages are the Table 7 measurement machines.
var ControlledVantages = []struct {
	Label string
	Addr  netip.Addr
}{
	{"US", netip.MustParseAddr("172.20.1.1")},
	{"NL", netip.MustParseAddr("172.20.2.1")},
	{"AU", netip.MustParseAddr("172.20.3.1")},
	{"HK", netip.MustParseAddr("172.20.4.1")},
}

// buildAuthoritative installs the measurement zone's nameserver.
func (s *Study) buildAuthoritative() error {
	s.ExpectedA = netip.MustParseAddr("198.18.0.80")
	s.Zone = dnsserver.NewZone(ProbeZone)
	s.Zone.WildcardA = s.ExpectedA
	// The scanner's ethics fixture: reverse-DNS record and opt-out page.
	s.Zone.Add("scanner."+ProbeZone, 3600,
		dnswire.TXT{Texts: []string{"research scanner; opt-out: https://" + ProbeZone}})
	s.World.RegisterDatagram(authServerAddr, 53, dnsserver.DatagramHandler(s.Zone))
	s.World.RegisterStream(authServerAddr, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, s.Zone)
	})
	return nil
}

// resolverFor builds a caching recursive resolver forwarding the
// measurement zone to the authoritative server.
func (s *Study) resolverFor(addr netip.Addr, seed int64) *dnsserver.Resolver {
	return dnsserver.NewResolver(s.World, addr,
		map[string]netip.Addr{ProbeZone: authServerAddr}, seed)
}

// latencyShaper adds per-country path penalties at a resolver — the route
// and PoP asymmetries behind Fig. 9's per-country differences (Indonesian
// clients see slower encrypted paths; Indian clients see a congested
// clear-text path, making DoH *faster* than clear DNS).
type latencyShaper struct {
	inner   dnsserver.Handler
	world   *netsim.World
	penalty map[string]time.Duration
}

// ServeDNS implements dnsserver.Handler.
func (l *latencyShaper) ServeDNS(remote netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	resp, proc := l.inner.ServeDNS(remote, req)
	if extra, ok := l.penalty[l.world.Geo.Country(remote)]; ok {
		proc += extra
	}
	return resp, proc
}

// Per-country path penalties, milliseconds (see Fig. 9 discussion).
var (
	clearTextPenalty = map[string]time.Duration{
		"IN": 90 * time.Millisecond, // congested clear-DNS route
		"VN": 25 * time.Millisecond,
	}
	encryptedPenalty = map[string]time.Duration{
		"ID": 22 * time.Millisecond, // slow encrypted paths
		"BR": 8 * time.Millisecond,
	}
)

// buildPublicResolvers deploys Cloudflare, Google, Quad9 and the
// self-built resolver.
func (s *Study) buildPublicResolvers() error {
	issue := func(cn string, ips ...netip.Addr) (*certs.Leaf, error) {
		return s.RootCA.Issue(certs.LeafOptions{CommonName: cn, IPs: ips})
	}

	// Cloudflare: clear-text DNS + DoT on 1.1.1.1, DoH on
	// mozilla.cloudflare-dns.com.
	cfResolver := s.resolverFor(cloudflareDNS, s.Seed+101)
	cfClear := &latencyShaper{inner: cfResolver, world: s.World, penalty: clearTextPenalty}
	cfEnc := &latencyShaper{inner: cfResolver, world: s.World, penalty: encryptedPenalty}
	s.World.RegisterDatagram(cloudflareDNS, 53, dnsserver.DatagramHandler(cfClear))
	s.World.RegisterStream(cloudflareDNS, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, cfClear)
	})
	cfLeaf, err := issue("cloudflare-dns.com", cloudflareDNS)
	if err != nil {
		return err
	}
	dot.Serve(s.World, cloudflareDNS, cfLeaf, cfEnc, time.Millisecond)
	doq.Serve(s.World, cloudflareDNS, cfLeaf, cfEnc, time.Millisecond)
	cfDoHLeaf, err := issue("mozilla.cloudflare-dns.com", cloudflareDoH)
	if err != nil {
		return err
	}
	doh.Serve(s.World, cloudflareDoH, cfDoHLeaf, &doh.Server{
		Handler: cfEnc,
		Webpage: "<title>Cloudflare DNS</title>",
	})
	// Cloudflare serves a landing page on 1.1.1.1's ports 80/443 (used
	// by the genuine-resolver comparison).
	s.World.RegisterStream(cloudflareDNS, 80, staticPage("Cloudflare", "<title>1.1.1.1 — the free app that makes your Internet faster.</title>"))
	s.World.RegisterStream(cloudflareDNS, 443, staticPage("Cloudflare", "<title>1.1.1.1</title>"))

	// Google: clear-text on 8.8.8.8, DoH on dns.google. No DoT at the
	// time of the experiment ("Google DoT was not announced").
	gResolver := s.resolverFor(googleDNS, s.Seed+102)
	gClear := &latencyShaper{inner: gResolver, world: s.World, penalty: clearTextPenalty}
	gEnc := &latencyShaper{inner: gResolver, world: s.World, penalty: encryptedPenalty}
	s.World.RegisterDatagram(googleDNS, 53, dnsserver.DatagramHandler(gClear))
	s.World.RegisterStream(googleDNS, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, gClear)
	})
	gLeaf, err := issue("dns.google", googleDoH)
	if err != nil {
		return err
	}
	doh.Serve(s.World, googleDoH, gLeaf, &doh.Server{
		Handler: gEnc,
		Paths:   []string{doh.DefaultPath, doh.JSONPath},
		JSONAPI: true,
		Webpage: "<title>Google Public DNS</title>",
	})

	// Quad9: all three protocols on 9.9.9.9; the DoH front-end forwards
	// to its own UDP backend with a 2-second timeout (Finding 2.4).
	q9Resolver := s.resolverFor(quad9Backend, s.Seed+103)
	s.World.RegisterDatagram(quad9Backend, 53, dnsserver.DatagramHandler(q9Resolver))
	q9Front := s.resolverFor(quad9Addr, s.Seed+104)
	q9Clear := &latencyShaper{inner: q9Front, world: s.World, penalty: clearTextPenalty}
	q9Enc := &latencyShaper{inner: q9Front, world: s.World, penalty: encryptedPenalty}
	s.World.RegisterDatagram(quad9Addr, 53, dnsserver.DatagramHandler(q9Clear))
	s.World.RegisterStream(quad9Addr, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, q9Clear)
	})
	q9Leaf, err := issue("dns.quad9.net", quad9Addr)
	if err != nil {
		return err
	}
	dot.Serve(s.World, quad9Addr, q9Leaf, q9Enc, time.Millisecond)
	doq.Serve(s.World, quad9Addr, q9Leaf, q9Enc, time.Millisecond)
	// Backend latency draws are keyed by the querying exit node, not by a
	// single shared stream: with one RNG, the value each client observed
	// would depend on the global order of arrival, and parallel campaigns
	// would reshuffle it. A per-remote RNG (seeded from the study seed and
	// the client address) makes each vantage point's draw sequence a
	// property of that vantage point alone.
	var q9mu sync.Mutex
	q9rngs := make(map[netip.Addr]*rand.Rand)
	q9rngFor := func(remote netip.Addr) *rand.Rand {
		h := fnv.New64a()
		b, _ := remote.MarshalBinary()
		h.Write(b)
		if r, ok := q9rngs[remote]; ok {
			return r
		}
		r := rand.New(rand.NewSource(s.Seed + 105 + int64(h.Sum64()>>1)))
		q9rngs[remote] = r
		return r
	}
	doh.Serve(s.World, quad9Addr, q9Leaf, &doh.Server{
		Handler: &doh.UDPBackendForwarder{
			World:   s.World,
			From:    quad9Addr,
			Backend: quad9Backend,
			Timeout: 2 * time.Second,
			ExtraBackendLatency: func(remote netip.Addr) time.Duration {
				// Faraway clients land on busier paths and colder
				// caches; the censored platform's domestic PoP
				// rarely trips the 2 s timeout.
				p := 0.13
				if s.World.Geo.Country(remote) == "CN" {
					p = 0.005
				}
				q9mu.Lock()
				defer q9mu.Unlock()
				rng := q9rngFor(remote)
				if rng.Float64() < p {
					return 2500 * time.Millisecond
				}
				return time.Duration(rng.Intn(200)) * time.Millisecond
			},
		},
		Webpage: "<title>Quad9</title>",
	})

	// Self-built resolver: authoritative-backed, all three protocols.
	sb := s.resolverFor(selfBuiltAddr, s.Seed+106)
	s.World.RegisterDatagram(selfBuiltAddr, 53, dnsserver.DatagramHandler(sb))
	s.World.RegisterStream(selfBuiltAddr, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, sb)
	})
	sbLeaf, err := issue("self-built."+ProbeZone, selfBuiltAddr)
	if err != nil {
		return err
	}
	dot.Serve(s.World, selfBuiltAddr, sbLeaf, sb, time.Millisecond)
	doh.Serve(s.World, selfBuiltAddr, sbLeaf, &doh.Server{Handler: sb})
	doq.Serve(s.World, selfBuiltAddr, sbLeaf, sb, time.Millisecond)

	s.DoTResolvers = map[netip.Addr]string{
		cloudflareDNS: "cloudflare",
		quad9Addr:     "quad9",
	}

	s.Targets = []vantage.Target{
		{
			Name:    "cloudflare",
			DNS:     cloudflareDNS,
			DoT:     cloudflareDNS,
			DoH:     doh.Template{Host: "mozilla.cloudflare-dns.com", Path: doh.DefaultPath},
			DoHAddr: cloudflareDoH,
			DoQ:     cloudflareDNS,
		},
		{
			Name: "google",
			DNS:  googleDNS,
			// DoT and DoQ invalid: not announced at experiment time.
			DoH:     doh.Template{Host: "dns.google", Path: doh.DefaultPath},
			DoHAddr: googleDoH,
		},
		{
			Name:    "quad9",
			DNS:     quad9Addr,
			DoT:     quad9Addr,
			DoH:     doh.Template{Host: "dns.quad9.net", Path: doh.DefaultPath},
			DoHAddr: quad9Addr,
			DoQ:     quad9Addr,
		},
		{
			Name:    "self-built",
			DNS:     selfBuiltAddr,
			DoT:     selfBuiltAddr,
			DoH:     doh.Template{Host: "self-built." + ProbeZone, Path: doh.DefaultPath},
			DoHAddr: selfBuiltAddr,
			DoQ:     selfBuiltAddr,
		},
	}
	return nil
}

// staticPage returns a handler serving a fixed HTML page.
func staticPage(server, body string) netsim.StreamHandler {
	return func(conn *netsim.Conn) {
		defer conn.Close()
		buf := make([]byte, 1024)
		conn.Read(buf) //nolint:errcheck
		fmt.Fprintf(conn, "HTTP/1.0 200 OK\r\nServer: %s\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
			server, len(body), body)
	}
}
