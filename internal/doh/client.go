package doh

import (
	"bufio"
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"strings"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Method selects the RFC 8484 HTTP binding.
type Method int

// HTTP bindings.
const (
	GET Method = iota
	POST
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == POST {
		return "POST"
	}
	return "GET"
}

// Errors surfaced by the client.
var (
	ErrAuthFailed = errors.New("doh: server authentication failed")
	ErrHTTPStatus = errors.New("doh: non-200 HTTP status")
)

// Template is a parsed DoH URI template, e.g.
// "https://dns.example.com/dns-query{?dns}".
type Template struct {
	Host string // hostname to resolve and authenticate
	Path string // endpoint path
}

// ParseTemplate parses the subset of RFC 6570 templates DoH services use.
func ParseTemplate(s string) (Template, error) {
	s = strings.TrimSuffix(s, "{?dns}")
	u, err := url.Parse(s)
	if err != nil {
		return Template{}, err
	}
	if u.Scheme != "https" {
		return Template{}, fmt.Errorf("doh: template scheme %q, want https", u.Scheme)
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	return Template{Host: u.Hostname(), Path: path}, nil
}

// String renders the template back in {?dns} form.
func (t Template) String() string {
	return "https://" + t.Host + t.Path + "{?dns}"
}

// Client issues DoH queries. DoH is Strict-Privacy-only: certificate
// verification failures abort the lookup.
type Client struct {
	World *netsim.World
	From  netip.Addr
	Roots *x509.CertPool
	// Method selects GET (the cache-friendly default) or POST.
	Method Method
	// Timeout is the real-time guard per operation.
	Timeout time.Duration
	// CryptoCost models per-query TLS+HTTP processing on the client.
	CryptoCost time.Duration
	// Bootstrap resolves template hostnames when no override is given:
	// the address of a clear-text resolver used for bootstrapping (§2.2:
	// "the hostname in the template should be resolved to bootstrap DoH
	// lookups, e.g. via clear-text DNS").
	Bootstrap netip.Addr
	// Override maps hostnames directly to addresses (measurement configs
	// pin resolver IPs).
	Override map[string]netip.Addr
}

// NewClient returns a Client with study defaults.
func NewClient(w *netsim.World, from netip.Addr, roots *x509.CertPool) *Client {
	return &Client{
		World:      w,
		From:       from,
		Roots:      roots,
		Timeout:    5 * time.Second,
		CryptoCost: 3 * time.Millisecond,
		Override:   make(map[string]netip.Addr),
	}
}

// Resolve maps a template hostname to an address using the override table
// or the bootstrap resolver.
//
// Deprecated: use ResolveContext; this delegates with context.Background().
func (c *Client) Resolve(host string) (netip.Addr, error) {
	return c.ResolveContext(context.Background(), host)
}

// ResolveContext maps a template hostname to an address using the override
// table or the bootstrap resolver, honouring ctx on the bootstrap lookup.
func (c *Client) ResolveContext(ctx context.Context, host string) (netip.Addr, error) {
	if addr, ok := c.Override[dnswire.CanonicalName(host)]; ok {
		return addr, nil
	}
	if addr, ok := c.Override[host]; ok {
		return addr, nil
	}
	if !c.Bootstrap.IsValid() {
		return netip.Addr{}, fmt.Errorf("doh: no override for %q and no bootstrap resolver", host)
	}
	stub := dnsclient.New(c.World, c.From)
	res, err := stub.QueryUDPContext(ctx, c.Bootstrap, host, dnswire.TypeA)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("doh: bootstrap resolution of %q: %w", host, err)
	}
	addr, ok := res.FirstA()
	if !ok {
		return netip.Addr{}, fmt.Errorf("doh: bootstrap resolution of %q returned no address", host)
	}
	return addr, nil
}

// Conn is a reusable DoH session (one TLS connection, HTTP/1.1 keep-alive).
type Conn struct {
	mu       sync.Mutex
	raw      *netsim.Conn
	tls      *tls.Conn
	br       *bufio.Reader
	client   *Client
	template Template
	setup    time.Duration
	closed   bool
}

// Dial establishes a DoH session for the template, connecting to addr
// (resolved by the caller or via Resolve).
func (c *Client) Dial(t Template, addr netip.Addr) (*Conn, error) {
	return c.DialContext(context.Background(), t, addr)
}

// DialContext establishes a DoH session for the template, bounded by the
// context deadline if one is set.
func (c *Client) DialContext(ctx context.Context, t Template, addr netip.Addr) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: dial: %w", err)
	}
	raw, err := c.World.Dial(c.From, addr, Port)
	if err != nil {
		return nil, err
	}
	return c.DialConnContext(ctx, t, raw)
}

// DialConn establishes a DoH session over an already connected stream
// (e.g. a SOCKS tunnel through a proxy network vantage point).
func (c *Client) DialConn(t Template, raw *netsim.Conn) (*Conn, error) {
	return c.DialConnContext(context.Background(), t, raw)
}

// DialConnContext establishes a DoH session over an already connected
// stream, bounded by the context deadline if one is set.
func (c *Client) DialConnContext(ctx context.Context, t Template, raw *netsim.Conn) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("doh: dial: %w", err)
	}
	raw.SetDeadline(dnsclient.Deadline(ctx, c.Timeout))
	tc := tls.Client(raw, &tls.Config{
		RootCAs:    c.Roots,
		ServerName: t.Host,
		Time:       func() time.Time { return certs.RefTime },
	})
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("%w: %w", ErrAuthFailed, err)
	}
	return &Conn{
		raw:      raw,
		tls:      tc,
		br:       bufio.NewReader(tc),
		client:   c,
		template: t,
		setup:    raw.Elapsed(),
	}, nil
}

// SetupLatency is the virtual time spent on TCP + TLS establishment.
func (conn *Conn) SetupLatency() time.Duration { return conn.setup }

// Elapsed is the total virtual time consumed so far.
func (conn *Conn) Elapsed() time.Duration { return conn.raw.Elapsed() }

// Query performs one wire-format DoH transaction on the session.
func (conn *Conn) Query(name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return conn.QueryContext(context.Background(), name, qtype)
}

// QueryContext performs one wire-format DoH transaction on the session,
// checking ctx before the transaction starts.
func (conn *Conn) QueryContext(ctx context.Context, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: query: %w", err)
	}
	if conn.closed {
		return nil, dnsclient.ErrClosed
	}
	// RFC 8484 recommends ID 0 for cache friendliness.
	q := dnswire.NewQuery(0, name, qtype)
	packed, err := q.Pack()
	if err != nil {
		return nil, err
	}
	req, err := conn.buildRequest(packed)
	if err != nil {
		return nil, err
	}
	start := conn.raw.Elapsed()
	conn.raw.AddLatency(conn.client.CryptoCost)
	if err := req.Write(conn.tls); err != nil {
		return nil, err
	}
	resp, err := http.ReadResponse(conn.br, req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.StatusCode)
	}
	m, err := dnswire.Unpack(body)
	if err != nil {
		return nil, err
	}
	return &dnsclient.Result{Msg: m, Latency: conn.raw.Elapsed() - start}, nil
}

func (conn *Conn) buildRequest(packed []byte) (*http.Request, error) {
	u := &url.URL{Scheme: "https", Host: conn.template.Host, Path: conn.template.Path}
	var req *http.Request
	var err error
	switch conn.client.Method {
	case POST:
		req, err = http.NewRequest(http.MethodPost, u.String(), bytes.NewReader(packed))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", ContentType)
	default:
		u.RawQuery = "dns=" + base64.RawURLEncoding.EncodeToString(packed)
		req, err = http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, err
		}
	}
	req.Header.Set("Accept", ContentType)
	return req, nil
}

// QueryJSON performs one Google-style JSON API lookup on the session.
func (conn *Conn) QueryJSON(name string, qtype dnswire.Type) (*JSONResponse, error) {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.closed {
		return nil, dnsclient.ErrClosed
	}
	u := &url.URL{
		Scheme:   "https",
		Host:     conn.template.Host,
		Path:     JSONPath,
		RawQuery: "name=" + url.QueryEscape(name) + "&type=" + fmt.Sprint(uint16(qtype)),
	}
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	if err := req.Write(conn.tls); err != nil {
		return nil, err
	}
	resp, err := http.ReadResponse(conn.br, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: %d", ErrHTTPStatus, resp.StatusCode)
	}
	var jr JSONResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Close terminates the session.
func (conn *Conn) Close() error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.closed {
		return nil
	}
	conn.closed = true
	conn.tls.Close()
	return conn.raw.Close()
}

// Query is the one-shot convenience: resolve, dial, query once, close. The
// latency includes bootstrap-free connection establishment (no-reuse case).
func (c *Client) Query(t Template, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return c.QueryContext(context.Background(), t, name, qtype)
}

// QueryContext is the one-shot convenience, bounded by ctx: resolve, dial,
// query once, close.
func (c *Client) QueryContext(ctx context.Context, t Template, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	addr, err := c.ResolveContext(ctx, t.Host)
	if err != nil {
		return nil, err
	}
	conn, err := c.DialContext(ctx, t, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := conn.QueryContext(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	res.Latency = conn.Elapsed()
	return res, nil
}
