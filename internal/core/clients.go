package core

import (
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/vantage"
	"dnsencryption.info/doe/internal/workload"
)

// dohPublicHosts are the 15 DoH services on the public curated list at the
// time of the study, plus (last two) services absent from it that the URL
// corpus reveals (§3.2 found dns.233py.com and one more beyond the list).
var dohPublicHosts = []struct {
	host  string
	path  string
	known bool
}{
	{"mozilla.cloudflare-dns.com", "/dns-query", true},
	{"dns.google", "/resolve", true},
	{"dns.quad9.net", "/dns-query", true},
	{"doh.cleanbrowsing.org", "/dns-query", true},
	{"doh.crypto.sx", "/dns-query", true},
	{"doh.securedns.eu", "/dns-query", true},
	{"doh.blahdns.com", "/dns-query", true},
	{"dns.dnsoverhttps.net", "/dns-query", true},
	{"doh.li", "/dns-query", true},
	{"dns.dns-over-https.com", "/dns-query", true},
	{"commons.host", "/dns-query", true},
	{"doh.dns.sb", "/dns-query", true},
	{"dns.rubyfish.cn", "/dns-query", true},
	{"doh.netweaver.uk", "/dns-query", true},
	{"jp.tiar.app", "/dns-query", true},
	{"dns.233py.com", "/dns-query", false},
	{"dns.beyondlist.example", "/dns-query", false},
}

// buildDoHWorld deploys the public DoH population and synthesizes the URL
// corpus the discovery inspects.
func (s *Study) buildDoHWorld() error {
	s.DoHResolve = make(map[string]netip.Addr)
	base := netip.MustParseAddr("104.16.1.1").As4()
	for i, spec := range dohPublicHosts {
		var addr netip.Addr
		switch spec.host {
		case "mozilla.cloudflare-dns.com":
			addr = cloudflareDoH
		case "dns.google":
			addr = googleDoH
		case "dns.quad9.net":
			addr = quad9Addr
		default:
			b := base
			b[2] += byte(i)
			addr = netip.AddrFrom4(b)
			leaf, err := s.RootCA.Issue(certs.LeafOptions{CommonName: spec.host, IPs: []netip.Addr{addr}})
			if err != nil {
				return err
			}
			doh.Serve(s.World, addr, leaf, &doh.Server{
				Handler: s.Zone,
				Paths:   []string{spec.path},
				Webpage: "<title>" + spec.host + "</title>",
			})
		}
		s.DoHResolve[spec.host] = addr
		if spec.known {
			s.DoHKnownList = append(s.DoHKnownList,
				fmt.Sprintf("https://%s%s{?dns}", spec.host, spec.path))
		}
	}

	// URL corpus: the DoH endpoints (with known templates), one service
	// on an unknown path (missed, the documented limitation), and noise.
	var corpus []string
	for _, spec := range dohPublicHosts {
		corpus = append(corpus, "https://"+spec.host+spec.path)
	}
	corpus = append(corpus, "https://hidden-doh.example/private-endpoint")
	for i := 0; i < s.CorpusNoise; i++ {
		corpus = append(corpus, fmt.Sprintf("https://site-%d.example/page/%d", i%4096, i))
	}
	s.DoHCorpus = corpus
	return nil
}

// The ProxyRack-style country distribution lives in workload.VantageMix:
// the materialized pool here and the generator-fed scale population draw
// from the same Table 3 weights.

// dpiCANames are the untrusted issuer CNs Table 6 observes on intercepted
// sessions.
var dpiCANames = []string{
	"SonicWall Firewall DPI-SSL",
	"None",
	"Sample CA 2",
	"NThmYzgyYT",
	"c41618c762bf890f",
}

// buildClientNetworks creates the two proxy platforms, their exit nodes and
// the middleboxes afflicting parts of the client population.
func (s *Study) buildClientNetworks() error {
	s.Global = proxy.NewNetwork(s.World, "proxyrack", globalSuper, s.Seed+7)
	s.Censored = proxy.NewNetwork(s.World, "zhima", censoredSuper, s.Seed+8)
	// One tunneled session costs little lifetime; vantage sessions are
	// short but numerous.
	s.Global.PerDialCost = 10 * time.Second
	s.Censored.PerDialCost = 10 * time.Second

	// Weighted country sequence for global nodes.
	var countrySeq []string
	for _, w := range workload.VantageMix() {
		for i := 0; i < w.Weight; i++ {
			countrySeq = append(countrySeq, w.CC)
		}
	}

	var (
		conflictPrefixes   []netip.Prefix // global 1.1.1.1 conflicts
		conflictPrefixesCN []netip.Prefix
		filteredPrefixes   []netip.Prefix
		interceptedIdx     int
	)
	seAsia := map[string]bool{"ID": true, "IN": true, "VN": true}
	// TLS-inspection middleboxes sit at fixed node indices so the count
	// scales with the pool (the paper saw 17 of 29,622 clients; scaled
	// populations need at least one for Table 6 to materialize).
	interceptAt := map[int]bool{37: true, 211: true, 397: true, 499: true, 557: true}

	for i := 0; i < s.GlobalNodes; i++ {
		cc := countrySeq[s.randIntn(len(countrySeq))]
		prefix := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		addr := prefix.Addr().Next() // .1
		asn := 30000 + i%500
		asName := fmt.Sprintf("%s Residential ISP %d", cc, asn%37)
		// Give the paper's Table 5/6 AS names to the relevant countries.
		switch cc {
		case "BR":
			asName = "Telefnica Brazil S.A"
		case "ID":
			asName = "PT Telekomunikasi Selular"
		case "LA":
			asName = "Sinam LLC"
		case "MY":
			asName = "Speednet Telecomunicacoes Ldta"
		}
		s.World.Geo.Register(prefix, geo.Location{Country: cc, ASN: asn, ASName: asName})
		s.Global.AddNode(proxy.ExitNode{
			ID:       fmt.Sprintf("g-%04d-%s", i, cc),
			Addr:     addr,
			Country:  cc,
			ASN:      asn,
			ASName:   asName,
			Lifetime: time.Duration(10+s.randIntn(110)) * time.Minute,
		})

		// Afflictions.
		if interceptAt[i] && interceptedIdx < len(dpiCANames) {
			ca, err := certs.NewCA(dpiCANames[interceptedIdx], false)
			if err != nil {
				return err
			}
			ports := []uint16{dot.Port, doh.Port}
			if interceptedIdx == len(dpiCANames)-1 {
				ports = []uint16{doh.Port} // the 443-only devices of Table 6
			}
			box := netsim.NewTLSInterceptor(ca, []netip.Prefix{prefix}, ports...)
			s.World.AddPolicy(box)
			s.Interceptors = append(s.Interceptors, box)
			interceptedIdx++
			continue
		}
		r := s.randFloat()
		filterProb := 0.06
		if seAsia[cc] {
			filterProb = 0.5
		}
		switch {
		case r < 0.011:
			conflictPrefixes = append(conflictPrefixes, prefix)
		case r < 0.011+filterProb:
			filteredPrefixes = append(filteredPrefixes, prefix)
		}
	}

	// Censored platform: CN-only, 5 ASes of two ISPs.
	cnASNs := []struct {
		asn  int
		name string
	}{
		{4134, "Chinanet"}, {4837, "China Unicom"}, {4808, "China Unicom Beijing"},
		{17622, "China Unicom Guangzhou"}, {17816, "China Unicom IP network"},
	}
	for i := 0; i < s.CensoredNodes; i++ {
		prefix := netip.MustParsePrefix(fmt.Sprintf("11.%d.%d.0/24", i/256, i%256))
		addr := prefix.Addr().Next()
		as := cnASNs[i%len(cnASNs)]
		s.World.Geo.Register(prefix, geo.Location{Country: "CN", ASN: as.asn, ASName: as.name})
		s.Censored.AddNode(proxy.ExitNode{
			ID:       fmt.Sprintf("z-%04d", i),
			Addr:     addr,
			Country:  "CN",
			ASN:      as.asn,
			ASName:   as.name,
			Lifetime: time.Duration(10+s.randIntn(110)) * time.Minute,
		})
		if s.randFloat() < 0.15 {
			conflictPrefixesCN = append(conflictPrefixesCN, prefix)
		}
	}

	// 1.1.1.1 conflict devices: most silent, some identifiable.
	s.installConflictDevices(conflictPrefixes)
	s.installConflictDevices(conflictPrefixesCN)

	// Port-53 filtering middleboxes target the most prominent resolver
	// addresses only (Finding 2.1: Quad9's clear-text DNS is far less
	// affected than Cloudflare's and Google's).
	if len(filteredPrefixes) > 0 {
		s.World.AddPolicy(&netsim.PortFilter{
			ClientPrefixes: filteredPrefixes,
			Port:           53,
			DstIPs:         map[netip.Addr]bool{cloudflareDNS: true, googleDNS: true},
			Blackhole:      true,
		})
	}

	// National censorship: Google DoH addresses carry other Google
	// services and are blocked wholesale for CN clients (Finding 2.2).
	s.World.AddPolicy(&netsim.Censor{
		Countries: map[string]bool{"CN": true},
		BlockIPs:  map[netip.Addr]bool{googleDoH: true},
		Blackhole: true,
	})

	s.GlobalPlatform = &vantage.Platform{
		Network:     s.Global,
		From:        measureClient,
		Roots:       s.Roots,
		ProbeZone:   ProbeZone,
		ExpectedA:   s.ExpectedA,
		MinUptime:   3 * time.Minute,
		MuxInFlight: s.MuxInFlight,
	}
	s.CensoredPlatform = &vantage.Platform{
		Network:     s.Censored,
		From:        measureClient,
		Roots:       s.Roots,
		ProbeZone:   ProbeZone,
		ExpectedA:   s.ExpectedA,
		MinUptime:   3 * time.Minute,
		MuxInFlight: s.MuxInFlight,
	}
	return nil
}

// installConflictDevices splits conflicted prefixes among the device
// personalities Table 5 and the Finding 2.1 forensics identify.
func (s *Study) installConflictDevices(prefixes []netip.Prefix) {
	for i, prefix := range prefixes {
		dev := &netsim.ConflictDevice{
			ClientPrefixes: []netip.Prefix{prefix},
			ConflictIP:     cloudflareDNS,
		}
		switch i % 10 {
		case 0: // MikroTik router admin page
			dev.Kind = netsim.DeviceRouter
			dev.OpenPorts = map[uint16]string{80: "<title>RouterOS router configuration page — MikroTik</title>"}
		case 1: // cryptojacked router injecting a miner
			dev.Kind = netsim.DeviceMiner
			dev.OpenPorts = map[uint16]string{80: "<title>MikroTik</title><script src=\"coinhive.min.js\"></script>"}
		case 2: // modem
			dev.Kind = netsim.DeviceModem
			dev.OpenPorts = map[uint16]string{80: "<title>Powerbox Gvt Modem</title>"}
		case 3: // captive authentication portal
			dev.Kind = netsim.DeviceAuthPortal
			dev.OpenPorts = map[uint16]string{80: "<html>Authentication required: login to continue</html>"}
		case 4: // raw TCP services (SSH/telnet-style banners)
			dev.OpenPorts = map[uint16]string{22: "SSH-2.0-dropbear", 23: "login:"}
			dev.RefuseOthers = false
		default: // silent: internal routing or blackholing (the majority)
			dev.OpenPorts = nil
		}
		s.World.AddPolicy(dev)
	}
}
