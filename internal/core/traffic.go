package core

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/passivedns"
	"dnsencryption.info/doe/internal/scandetect"
	"dnsencryption.info/doe/internal/workload"
)

// TrafficData is the §5 dataset: 18 months of sampled NetFlow (screened for
// scanners) and the passive DNS databases.
type TrafficData struct {
	// Records is the raw sampled flow export.
	Records []netflow.Record
	// Verdicts is the scan screening over the raw records.
	Verdicts []scandetect.Verdict
	// Flows is the DoT selection over the organic records.
	Flows []netflow.DoTFlow
	// PDNS is the passive DNS database.
	PDNS *passivedns.DB
}

var trafficMonths = workload.MonthsBetween("2017-07", "2019-01")

// cloudflareMonthlyFlows interpolates Cloudflare's DoT volume: launch in
// April 2018, 4,674 sampled flows in Jul 2018 growing 56% to 7,318 by Dec
// 2018 (Fig. 11).
func cloudflareMonthlyFlows(scale float64) map[workload.Month]int {
	anchor := map[workload.Month]float64{
		"2018-04": 2400, "2018-05": 3200, "2018-06": 4000,
		"2018-07": 4674, "2018-08": 5100, "2018-09": 5600,
		"2018-10": 6200, "2018-11": 6800, "2018-12": 7318,
		"2019-01": 7100,
	}
	out := make(map[workload.Month]int, len(anchor))
	for m, v := range anchor {
		out[m] = int(v * scale)
	}
	return out
}

// quad9MonthlyFlows fluctuates through the whole window (Fig. 11).
func quad9MonthlyFlows(scale float64) map[workload.Month]int {
	out := make(map[workload.Month]int, len(trafficMonths))
	levels := []float64{700, 900, 650, 1100, 800, 1250, 950, 700, 1200, 850,
		1000, 780, 1150, 900, 1050, 820, 980, 1100, 940}
	for i, m := range trafficMonths {
		out[m] = int(levels[i%len(levels)] * scale)
	}
	return out
}

// dohDomainTraffic calibrates Fig. 13: Google DoH orders of magnitude above
// the rest with the longest history (since 2016); Cloudflare strong since
// the Firefox experiments; CleanBrowsing growing ~10x from Sep 2018 (200
// recorded queries) to Mar 2019 (1,915); crypto.sx small but growing.
func dohDomainTraffic(scale float64) []workload.DoHDomainTraffic {
	grow := func(first workload.Month, last workload.Month, from, to float64) map[workload.Month]int {
		months := workload.MonthsBetween(first, last)
		out := make(map[workload.Month]int, len(months))
		n := len(months)
		for i, m := range months {
			v := from
			if n > 1 {
				v = from * math.Pow(to/from, float64(i)/float64(n-1))
			}
			out[m] = int(v * scale)
		}
		return out
	}
	return []workload.DoHDomainTraffic{
		{Domain: "dns.google", MonthlyQueries: grow("2016-04", "2019-03", 220000, 740000)},
		{Domain: "mozilla.cloudflare-dns.com", MonthlyQueries: grow("2018-04", "2019-03", 9000, 64000)},
		{Domain: "doh.cleanbrowsing.org", MonthlyQueries: grow("2018-09", "2019-03", 200, 1915)},
		{Domain: "doh.crypto.sx", MonthlyQueries: grow("2018-03", "2019-03", 60, 820)},
		// The remaining 13 public DoH services see negligible lookups
		// (§5.3: "only 4 domains have more than 10K queries").
		{Domain: "doh.securedns.eu", MonthlyQueries: grow("2018-06", "2019-03", 30, 300)},
		{Domain: "doh.blahdns.com", MonthlyQueries: grow("2018-08", "2019-03", 20, 180)},
		{Domain: "dns.233py.com", MonthlyQueries: grow("2018-10", "2019-03", 10, 90)},
	}
}

func mustMonth(m string) time.Time {
	t, err := time.Parse("2006-01", m)
	if err != nil {
		panic(err)
	}
	return t
}

// GenerateTraffic synthesizes the §5 datasets once per study.
func (s *Study) GenerateTraffic() *TrafficData {
	s.trafficOnce.Do(func() {
		router := netflow.NewRouter(s.NetFlowSampleRate, s.NetFlowIdleExpiry)
		gen := workload.NewDoTGenerator(s.Seed + 51)
		gen.Providers = []workload.ProviderTraffic{
			{Provider: "cloudflare", Resolver: cloudflareDNS, MonthlyFlows: cloudflareMonthlyFlows(s.TrafficScale)},
			{Provider: "quad9", Resolver: quad9Addr, MonthlyFlows: quad9MonthlyFlows(s.TrafficScale)},
		}
		gen.Generate(router)
		// A research scanner sweeps port 853 during the window; the
		// screening must remove it before analysis (§5.2).
		scanSrc := netip.MustParseAddr("172.16.3.1")
		workload.GenerateScan(router, scanSrc, mustMonth("2018-09").AddDate(0, 0, 3), 300)

		// The router's flows travel to the collector as genuine NetFlow
		// v5 export datagrams, as at the paper's ISP. v5 uptime counters
		// wrap every ~49.7 days, so flows are exported in monthly
		// batches shortly after observation (as real exporters flush
		// within seconds of expiry).
		flushed := router.Flush()
		sysBoot := mustMonth("2017-06")
		byMonth := map[string][]netflow.Record{}
		for _, rec := range flushed {
			byMonth[rec.First.Format("2006-01")] = append(byMonth[rec.First.Format("2006-01")], rec)
		}
		collector := netflow.NewCollector()
		seq := uint32(0)
		for month, batch := range byMonth {
			exportAt := mustMonth(month).AddDate(0, 1, 0) // just after month end
			datagrams, err := netflow.ExportV5(batch, sysBoot, exportAt, s.NetFlowSampleRate, seq)
			if err != nil {
				panic(fmt.Sprintf("core: netflow export: %v", err))
			}
			for _, d := range datagrams {
				if err := collector.Ingest(d); err != nil {
					panic(fmt.Sprintf("core: netflow ingest: %v", err))
				}
			}
			seq += uint32(len(batch))
		}
		records := collector.Records()
		detector := scandetect.NewDetector(853)
		detector.ReverseNames = func(ip netip.Addr) []string {
			if ip == scanSrc {
				return []string{"scanner." + ProbeZone}
			}
			return nil
		}
		verdicts := detector.Classify(records)
		organic := scandetect.FilterOrganic(records, verdicts)

		analyzer := &netflow.Analyzer{Resolvers: s.DoTResolvers}
		flows := analyzer.SelectDoT(organic)

		pdns := passivedns.NewDB()
		workload.GenerateDoH(pdns, dohDomainTraffic(s.TrafficScale))

		s.traffic = &TrafficData{
			Records:  records,
			Verdicts: verdicts,
			Flows:    flows,
			PDNS:     pdns,
		}
	})
	return s.traffic
}
