package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is one JSONL trace line. Field order is fixed by the struct and
// attrs is a map (encoding/json sorts map keys), so a span tree always
// marshals to the same bytes.
type Record struct {
	Path   string            `json:"path"`
	VirtUS int64             `json:"virt_us"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Events []string          `json:"events,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// Records flattens the span tree into deterministic depth-first order:
// parent before children, siblings by (key, creation order). Returns nil
// on a nil Recorder.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	var walk func(s *Span, path string)
	walk = func(s *Span, path string) {
		s.mu.Lock()
		rec := Record{Path: path, VirtUS: int64(s.Virtual()) / 1000, Err: s.errMsg}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				rec.Attrs[a.k] = a.v
			}
		}
		if len(s.events) > 0 {
			rec.Events = append([]string(nil), s.events...)
		}
		s.mu.Unlock()
		out = append(out, rec)
		kids := s.sortedChildren()
		// Sibling names may repeat (several exchanges under one lookup);
		// suffix later duplicates with #2, #3, … in deterministic order so
		// paths stay unique.
		counts := make(map[string]int, len(kids))
		for _, c := range kids {
			counts[c.name]++
			name := c.name
			if n := counts[name]; n > 1 {
				name = fmt.Sprintf("%s#%d", name, n)
			}
			walk(c, path+"/"+name)
		}
	}
	walk(r.root, r.root.name)
	return out
}

// WriteJSONL writes the trace as one JSON object per line, in the
// deterministic order of Records. Byte-identical for a fixed seed at any
// worker count — the property the golden-trace test pins.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, rec := range r.Records() {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal trace record %q: %w", rec.Path, err)
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flush trace: %w", err)
	}
	return nil
}

// ReadTrace parses a JSONL trace produced by WriteJSONL, validating the
// schema as it goes (see ValidateRecords).
func ReadTrace(rd io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	if err := ValidateRecords(recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// ValidateRecords checks the structural invariants WriteJSONL guarantees:
// a single root first, non-empty slash-free span names, non-negative
// virtual costs, and every record's parent path emitted before it
// (depth-first order).
func ValidateRecords(recs []Record) error {
	if len(recs) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	seen := make(map[string]bool, len(recs))
	for i, rec := range recs {
		if rec.Path == "" {
			return fmt.Errorf("obs: record %d: empty path", i)
		}
		if rec.VirtUS < 0 {
			return fmt.Errorf("obs: record %d (%s): negative virt_us %d", i, rec.Path, rec.VirtUS)
		}
		if seen[rec.Path] {
			return fmt.Errorf("obs: record %d: duplicate path %q", i, rec.Path)
		}
		parent, _, hasParent := cutLast(rec.Path, '/')
		if i == 0 {
			if hasParent {
				return fmt.Errorf("obs: first record %q is not a root span", rec.Path)
			}
		} else {
			if !hasParent {
				return fmt.Errorf("obs: record %d: second root span %q", i, rec.Path)
			}
			if !seen[parent] {
				return fmt.Errorf("obs: record %d (%s): parent %q not yet emitted", i, rec.Path, parent)
			}
		}
		seen[rec.Path] = true
	}
	return nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}
