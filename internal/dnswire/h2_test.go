package dnswire

import (
	"bytes"
	"strings"
	"testing"
)

func TestH2FrameRoundTrip(t *testing.T) {
	payload := []byte("hello, stream")
	buf, err := AppendH2Frame(nil, H2FrameData, H2FlagEndStream, 5, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != H2FrameHeaderLen+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(buf), H2FrameHeaderLen+len(payload))
	}
	f, got, err := ReadH2FrameAppend(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != H2FrameData || !f.EndStream() || f.StreamID != 5 {
		t.Fatalf("parsed header %+v", f)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestH2FrameScratchReuse(t *testing.T) {
	var wire []byte
	var err error
	for i := 0; i < 3; i++ {
		wire, err = AppendH2Frame(wire, H2FrameHeaders, H2FlagEndHeaders, uint32(2*i+1), []byte{byte(i), byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(wire)
	scratch := make([]byte, 0, 64)
	for i := 0; i < 3; i++ {
		f, payload, err := ReadH2FrameAppend(r, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		if f.StreamID != uint32(2*i+1) || len(payload) != 2 || payload[0] != byte(i) {
			t.Fatalf("frame %d: header %+v payload %v", i, f, payload)
		}
	}
}

func TestH2FrameTooLarge(t *testing.T) {
	if _, err := AppendH2FrameHeader(nil, H2FrameData, 0, 1, MaxH2FrameLen+1); err == nil {
		t.Fatal("oversized frame header accepted")
	}
	// A wire header announcing an oversized payload must be rejected too.
	hdr := []byte{0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1}
	if _, _, err := ReadH2FrameAppend(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("oversized wire frame accepted")
	}
}

func TestHpackLiteralRoundTrip(t *testing.T) {
	long := strings.Repeat("x", 300) // forces multi-byte prefix integers
	fields := [][2]string{
		{":method", "GET"},
		{":path", "/dns-query?dns=" + long},
		{"content-type", "application/dns-message"},
	}
	var buf []byte
	for _, f := range fields {
		buf = AppendHpackLiteral(buf, f[0], f[1])
	}
	rest := buf
	for i, f := range fields {
		name, value, r, err := ReadHpackLiteral(rest)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if string(name) != f[0] || string(value) != f[1] {
			t.Fatalf("field %d: %q=%q, want %q=%q", i, name, value, f[0], f[1])
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all fields", len(rest))
	}
}

func TestHpackRejectsHuffmanAndIndexed(t *testing.T) {
	if _, _, _, err := ReadHpackLiteral([]byte{0x82}); err == nil {
		t.Fatal("indexed field accepted")
	}
	// Literal w/o indexing, new name, Huffman-coded name length.
	if _, _, _, err := ReadHpackLiteral([]byte{0x00, 0x81, 0xff}); err == nil {
		t.Fatal("Huffman string accepted")
	}
}
