// Package certs is the X.509 toolkit for the study. It issues the
// certificate population the paper observes on DoT port 853 — valid chains,
// expired leaves, self-signed certificates, broken chains, and the FortiGate
// factory-default certificates that mark TLS-inspection middleboxes — and
// classifies presented chains the way §3.2 (Finding 1.2) does.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"
)

// RefTime is the study's reference "now": the paper's last scan (May 1,
// 2019). All validity checks are made relative to this instant so results
// are reproducible regardless of wall-clock time.
var RefTime = time.Date(2019, time.May, 1, 0, 0, 0, 0, time.UTC)

var serialCounter atomic.Int64

func nextSerial() *big.Int {
	return big.NewInt(serialCounter.Add(1))
}

// CA is a certificate authority that can issue leaf certificates.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// Trusted CAs appear in the study's root store.
	Trusted bool
}

// NewCA creates a self-signed CA. Trusted CAs model the Mozilla root
// program; untrusted ones model interception-device and private CAs.
func NewCA(commonName string, trusted bool) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{commonName}},
		NotBefore:             RefTime.AddDate(-5, 0, 0),
		NotAfter:              RefTime.AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, Trusted: trusted}, nil
}

// LeafOptions controls leaf issuance.
type LeafOptions struct {
	CommonName string
	DNSNames   []string
	IPs        []netip.Addr
	// NotBefore/NotAfter default to a validity window around RefTime.
	NotBefore, NotAfter time.Time
}

// Leaf bundles a leaf certificate with its private key and the chain that
// should be presented with it.
type Leaf struct {
	Cert  *x509.Certificate
	Key   *ecdsa.PrivateKey
	Chain []*x509.Certificate // presented chain: leaf first
}

// TLSCertificate converts the leaf into a tls.Certificate for servers.
func (l *Leaf) TLSCertificate() tls.Certificate {
	raw := make([][]byte, 0, len(l.Chain))
	for _, c := range l.Chain {
		raw = append(raw, c.Raw)
	}
	return tls.Certificate{Certificate: raw, PrivateKey: l.Key, Leaf: l.Cert}
}

// Issue creates a leaf signed by the CA.
func (ca *CA) Issue(opts LeafOptions) (*Leaf, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	nb, na := opts.NotBefore, opts.NotAfter
	if nb.IsZero() {
		nb = RefTime.AddDate(0, -6, 0)
	}
	if na.IsZero() {
		na = RefTime.AddDate(0, 6, 0)
	}
	tmpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      pkix.Name{CommonName: opts.CommonName},
		NotBefore:    nb,
		NotAfter:     na,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     sanNames(opts),
	}
	for _, ip := range opts.IPs {
		tmpl.IPAddresses = append(tmpl.IPAddresses, net.IP(ip.AsSlice()))
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key, Chain: []*x509.Certificate{cert, ca.Cert}}, nil
}

// IssueExpired creates a leaf whose validity ended before RefTime.
// expiredSince controls how long ago it lapsed (e.g. the paper notes
// resolvers whose certificates expired in mid-2018).
func (ca *CA) IssueExpired(opts LeafOptions, expiredSince time.Duration) (*Leaf, error) {
	opts.NotAfter = RefTime.Add(-expiredSince)
	opts.NotBefore = opts.NotAfter.AddDate(-1, 0, 0)
	return ca.Issue(opts)
}

// IssueBrokenChain creates a leaf signed by a fresh intermediate that is
// *not* included in the presented chain, producing the "invalid certificate
// chain" class of Finding 1.2.
func (ca *CA) IssueBrokenChain(opts LeafOptions) (*Leaf, error) {
	interKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	interTmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               pkix.Name{CommonName: "Intermediate CA " + opts.CommonName},
		NotBefore:             RefTime.AddDate(-2, 0, 0),
		NotAfter:              RefTime.AddDate(2, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	interDER, err := x509.CreateCertificate(rand.Reader, interTmpl, ca.Cert, &interKey.PublicKey, ca.Key)
	if err != nil {
		return nil, err
	}
	inter, err := x509.ParseCertificate(interDER)
	if err != nil {
		return nil, err
	}
	interCA := &CA{Cert: inter, Key: interKey}
	leaf, err := interCA.Issue(opts)
	if err != nil {
		return nil, err
	}
	// Present the leaf alone: verifiers cannot build a path to the root.
	leaf.Chain = []*x509.Certificate{leaf.Cert}
	return leaf, nil
}

// SelfSigned creates a certificate signed by its own key.
func SelfSigned(opts LeafOptions) (*Leaf, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	nb, na := opts.NotBefore, opts.NotAfter
	if nb.IsZero() {
		nb = RefTime.AddDate(-1, 0, 0)
	}
	if na.IsZero() {
		na = RefTime.AddDate(1, 0, 0)
	}
	tmpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      pkix.Name{CommonName: opts.CommonName},
		NotBefore:    nb,
		NotAfter:     na,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     sanNames(opts),
	}
	for _, ip := range opts.IPs {
		tmpl.IPAddresses = append(tmpl.IPAddresses, net.IP(ip.AsSlice()))
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key, Chain: []*x509.Certificate{cert}}, nil
}

// FortiGateDefaultCN is the Common Name of the factory-default certificate
// shipped with FortiGate firewalls; §3.2 finds 47 DoT "resolvers" presenting
// it, revealing TLS-inspection devices acting as DoT proxies.
const FortiGateDefaultCN = "FGT60D0000000000"

// FortiGateDefault creates the self-signed factory certificate of a
// FortiGate inspection device.
func FortiGateDefault() (*Leaf, error) {
	return SelfSigned(LeafOptions{CommonName: FortiGateDefaultCN})
}

// Resign forges a copy of orig with the same subject, names and validity but
// a new key, signed by ca. TLS-interception middleboxes (Finding 2.3) do
// exactly this: "all resolver certificates are re-signed by an untrusted CA,
// while other fields remain unchanged".
func (ca *CA) Resign(orig *x509.Certificate) (*Leaf, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      orig.Subject,
		NotBefore:    orig.NotBefore,
		NotAfter:     orig.NotAfter,
		KeyUsage:     orig.KeyUsage,
		ExtKeyUsage:  orig.ExtKeyUsage,
		DNSNames:     orig.DNSNames,
		IPAddresses:  orig.IPAddresses,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key, Chain: []*x509.Certificate{cert, ca.Cert}}, nil
}

// sanNames returns the subject alternative names for a leaf: the explicit
// DNSNames, with a domain-shaped CommonName added if absent — modern
// verifiers ignore the CN, so real certificates always carry it as a SAN.
func sanNames(opts LeafOptions) []string {
	names := append([]string(nil), opts.DNSNames...)
	if opts.CommonName != "" && looksLikeDomain(opts.CommonName) {
		for _, n := range names {
			if n == opts.CommonName {
				return names
			}
		}
		names = append(names, opts.CommonName)
	}
	return names
}

// Status classifies a presented certificate chain.
type Status int

// Chain classifications, mirroring Finding 1.2's categories.
const (
	StatusValid Status = iota
	StatusExpired
	StatusSelfSigned
	StatusBadChain // unknown issuer or incomplete chain
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusValid:
		return "valid"
	case StatusExpired:
		return "expired"
	case StatusSelfSigned:
		return "self-signed"
	case StatusBadChain:
		return "invalid chain"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Classify verifies the presented chain (leaf first) against roots at
// RefTime and buckets failures the way the paper reports them: expired,
// self-signed, or invalid chain. The paper's scan does not know resolver
// names, so — like the paper — no hostname comparison is performed.
func Classify(chain []*x509.Certificate, roots *x509.CertPool) Status {
	if len(chain) == 0 {
		return StatusBadChain
	}
	leaf := chain[0]
	if RefTime.Before(leaf.NotBefore) || RefTime.After(leaf.NotAfter) {
		return StatusExpired
	}
	inter := x509.NewCertPool()
	for _, c := range chain[1:] {
		inter.AddCert(c)
	}
	_, err := leaf.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inter,
		CurrentTime:   RefTime,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
	if err == nil {
		return StatusValid
	}
	if isSelfSigned(leaf) {
		return StatusSelfSigned
	}
	return StatusBadChain
}

func isSelfSigned(c *x509.Certificate) bool {
	if !bytesEqual(c.RawIssuer, c.RawSubject) {
		return false
	}
	// CheckSignature (not CheckSignatureFrom) verifies the signature with
	// the certificate's own key without requiring CA basic constraints.
	return c.CheckSignature(c.SignatureAlgorithm, c.RawTBSCertificate, c.Signature) == nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ProviderKey derives the provider-grouping key from a certificate the way
// §3.2 does: group by Common Name; if the Common Name is a domain name,
// group by its second-level domain.
func ProviderKey(c *x509.Certificate) string {
	cn := c.Subject.CommonName
	if cn == "" {
		if len(c.DNSNames) > 0 {
			cn = c.DNSNames[0]
		} else {
			return "(no common name)"
		}
	}
	if looksLikeDomain(cn) {
		return strings.TrimSuffix(sldOf(cn), ".")
	}
	return cn
}

func looksLikeDomain(s string) bool {
	if !strings.Contains(s, ".") || strings.ContainsAny(s, " /\\") {
		return false
	}
	if _, err := netip.ParseAddr(s); err == nil {
		return false
	}
	return true
}

func sldOf(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	labels := strings.Split(name, ".")
	if len(labels) <= 2 {
		return name + "."
	}
	return strings.Join(labels[len(labels)-2:], ".") + "."
}

// Pool builds an x509.CertPool from trusted CAs.
func Pool(cas ...*CA) *x509.CertPool {
	pool := x509.NewCertPool()
	for _, ca := range cas {
		if ca.Trusted {
			pool.AddCert(ca.Cert)
		}
	}
	return pool
}
